//! Offline shim of `criterion`: groups, `bench_function`, and
//! `Bencher::iter` with a simple wall-clock median estimate — enough to
//! run every bench target in this workspace without the real crate.
//!
//! Each `bench_function` does a short warm-up, then `sample_size` timed
//! samples of an adaptively-chosen iteration count, and prints the median
//! time per iteration.
//!
//! Like the real crate, passing `--test` on the bench binary's command
//! line (i.e. `cargo bench -- --test`) switches to **smoke mode**: every
//! benchmark closure runs exactly once with no calibration or sampling,
//! so CI can prove the bench targets still build and execute without
//! paying for measurements.

use std::hint::black_box as std_black_box;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// `true` when the bench binary was invoked with `--test` (smoke mode).
fn smoke_mode() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| is_smoke_mode(std::env::args()))
}

fn is_smoke_mode(mut args: impl Iterator<Item = String>) -> bool {
    args.any(|a| a == "--test")
}

/// Re-export so benches can use `criterion::black_box` too.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level harness state.
pub struct Criterion {
    /// Default number of timed samples per benchmark.
    pub sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks directly at the top level.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        run_bench(&name.into(), self.sample_size, f);
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for subsequent benches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_bench(&name.into(), self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the bench closure; call [`Bencher::iter`] with the code under
/// test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `iters` calls of `routine`, excluding the per-call `setup`
    /// that builds its input — for routines that consume or mutate state
    /// (e.g. an in-place factorization needing a pristine buffer each
    /// call), where timing the rebuild would dilute the measurement.
    pub fn iter_with_setup<I, R, S: FnMut() -> I, F: FnMut(I) -> R>(
        &mut self,
        mut setup: S,
        mut routine: F,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    if smoke_mode() {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("  {name}: ok (smoke test, 1 iter)");
        return;
    }
    // Calibrate: grow the iteration count until one sample takes ≥ ~2 ms,
    // so short routines aren't all timer noise.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    println!(
        "  {name}: {} ({iters} iters/sample, {samples} samples)",
        format_time(median)
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a group of bench functions, like the real macro's simple form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { sample_size: 3 };
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let mut count = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        g.finish();
        assert!(count > 0);
    }

    #[test]
    fn iter_with_setup_excludes_setup_time() {
        let mut b = Bencher {
            iters: 4,
            elapsed: Duration::ZERO,
        };
        let mut built = 0u32;
        b.iter_with_setup(
            || {
                built += 1;
                vec![0u8; 8]
            },
            |v| v.len(),
        );
        assert_eq!(built, 4);
        assert!(b.elapsed < Duration::from_secs(1));
    }

    #[test]
    fn smoke_mode_flag_detection() {
        assert!(is_smoke_mode(
            ["bench", "--bench", "--test"].map(String::from).into_iter()
        ));
        assert!(!is_smoke_mode(
            ["bench", "--bench"].map(String::from).into_iter()
        ));
    }

    #[test]
    fn format_time_scales() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" us"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
