//! Offline shim of `serde_derive`: hand-rolled `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` over the vendored value-tree traits, with no
//! `syn`/`quote` dependency.
//!
//! The token-level parser handles exactly the shapes this workspace
//! derives on: structs with named fields, enums with unit variants,
//! tuple variants, and struct variants. Generics and tuple structs are
//! rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

enum Parsed {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<(String, VariantKind)>,
    },
}

/// Skips `#[...]` attribute pairs starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a `pub` / `pub(...)` visibility starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Field names of a named-field body `{ a: T, b: U }`, tracking
/// angle-bracket depth so commas inside `BTreeMap<K, V>` don't split.
fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs(body, i);
        i = skip_vis(body, i);
        if i >= body.len() {
            break;
        }
        let name = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, got {other}"),
        };
        i += 1;
        match &body[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected ':' after field {name}, got {other}"),
        }
        // Skip the type: consume until a top-level comma.
        let mut angle = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

fn parse_variants(body: &[TokenTree]) -> Vec<(String, VariantKind)> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs(body, i);
        if i >= body.len() {
            break;
        }
        let name = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, got {other}"),
        };
        i += 1;
        let kind = match body.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut arity = if inner.is_empty() { 0 } else { 1 };
                let mut angle = 0i32;
                for t in &inner {
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => arity += 1,
                        _ => {}
                    }
                }
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantKind::Struct(parse_named_fields(&inner))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant and the separating comma.
        while i < body.len() {
            if let TokenTree::Punct(p) = &body[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push((name, kind));
    }
    variants
}

fn parse(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic types are not supported (on {name})");
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            g.stream().into_iter().collect::<Vec<_>>()
        }
        _ => {
            panic!("serde_derive shim: {name} must have a braced body (tuple structs unsupported)")
        }
    };
    match kw.as_str() {
        "struct" => Parsed::Struct {
            name,
            fields: parse_named_fields(&body),
        },
        "enum" => Parsed::Enum {
            name,
            variants: parse_variants(&body),
        },
        other => panic!("serde_derive shim: cannot derive for {other}"),
    }
}

/// Derives `serde::Serialize` (the vendored value-tree trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse(input) {
        Parsed::Struct { name, fields } => {
            let mut pairs = String::new();
            for f in &fields {
                pairs.push_str(&format!(
                    "({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})),"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Parsed::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, kind) in &variants {
                match kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "Self::{v} => ::serde::Value::Str({v:?}.to_string()),"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "Self::{v}(f0) => ::serde::Value::Object(vec![({v:?}.to_string(), \
                         ::serde::Serialize::to_value(f0))]),"
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "Self::{v}({}) => ::serde::Value::Object(vec![({v:?}.to_string(), \
                             ::serde::Value::Array(vec![{}]))]),",
                            binders.join(","),
                            items.join(",")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binders = fields.join(",");
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        arms.push_str(&format!(
                            "Self::{v} {{ {binders} }} => ::serde::Value::Object(vec![\
                             ({v:?}.to_string(), ::serde::Value::Object(vec![{}]))]),",
                            items.join(",")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("serde_derive shim: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (the vendored value-tree trait).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse(input) {
        Parsed::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(v.field({f:?}))?,"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Object(_) => Ok(Self {{ {inits} }}),\n\
                             _ => Err(::serde::Error::custom(concat!(\"expected object for \", stringify!({name})))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Parsed::Enum { name, variants } => {
            let mut str_arms = String::new();
            let mut obj_arms = String::new();
            for (v, kind) in &variants {
                match kind {
                    VariantKind::Unit => {
                        str_arms.push_str(&format!("{v:?} => Ok(Self::{v}),"));
                    }
                    VariantKind::Tuple(1) => {
                        obj_arms.push_str(&format!(
                            "{v:?} => Ok(Self::{v}(::serde::Deserialize::from_value(inner)?)),"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&inner[{k}])?"))
                            .collect();
                        obj_arms.push_str(&format!("{v:?} => Ok(Self::{v}({})),", items.join(",")));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(inner.field({f:?}))?"
                                )
                            })
                            .collect();
                        obj_arms.push_str(&format!(
                            "{v:?} => Ok(Self::{v} {{ {} }}),",
                            inits.join(",")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {str_arms}\n\
                                 other => Err(::serde::Error::custom(format!(\"unknown variant {{other:?}} of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                                 let (key, inner) = &pairs[0];\n\
                                 let _ = inner;\n\
                                 match key.as_str() {{\n\
                                     {obj_arms}\n\
                                     other => Err(::serde::Error::custom(format!(\"unknown variant {{other:?}} of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(::serde::Error::custom(concat!(\"expected variant of \", stringify!({name})))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("serde_derive shim: generated invalid Deserialize impl")
}
