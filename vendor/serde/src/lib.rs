//! Offline shim of `serde`: serialization through an in-memory JSON value
//! tree.
//!
//! Real serde abstracts over wire formats with visitor machinery; the only
//! format this workspace uses is JSON lines, so the shim collapses the
//! design to two one-method traits — [`Serialize::to_value`] and
//! [`Deserialize::from_value`] — over a single [`Value`] tree. The derive
//! macros (feature `derive`, crate `serde_derive`) generate the same JSON
//! shapes real serde would: structs as objects, unit enum variants as
//! strings, newtype/struct variants as single-key objects.

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (only produced for negative numbers).
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// The shared null used when indexing misses.
pub const NULL: Value = Value::Null;

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(u) => Some(u),
            Value::I64(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(i) => Some(i),
            Value::U64(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(f) => Some(f),
            Value::I64(i) => Some(i as f64),
            Value::U64(u) => Some(u as f64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object member by key, or [`Value::Null`] when absent — the lookup
    /// the derive macros use so `Option` fields tolerate missing keys.
    pub fn field(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }

    /// One-word description of the value's kind, for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.field(key)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Serialization or deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    fn mismatch(expected: &str, got: &Value) -> Self {
        Error::custom(format!("expected {expected}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `v` into `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::mismatch("unsigned integer", v))?;
                <$t>::try_from(u).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::U64(i as u64) } else { Value::I64(i) }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::mismatch("integer", v))?;
                <$t>::try_from(i).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::mismatch("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::mismatch("number", v))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::mismatch("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::mismatch("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(Deserialize::from_value).collect(),
            _ => Err(Error::mismatch("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

/// Map keys, serialized as JSON object keys (strings), like real
/// `serde_json`.
pub trait JsonKey: Ord + Sized {
    /// The string form of the key.
    fn to_key(&self) -> String;
    /// Parses the string form back.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::custom(format!("invalid integer key {s:?}")))
            }
        }
    )*};
}

impl_int_key!(u32, u64, usize, i32, i64, isize);

impl<K: JsonKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: JsonKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::mismatch("object", v)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => Ok(($($name::from_value(
                        items.get($idx).unwrap_or(&NULL))?,)+)),
                    _ => Err(Error::mismatch("array", v)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Renders `value` as compact JSON text into `out`.
pub fn write_json(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // Keep the number a JSON *number* that reloads as f64.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(out, k);
                out.push(':');
                write_json(out, v);
            }
            out.push('}');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_json(&mut s, self);
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(usize::from_value(&42usize.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn f64_accepts_integer_values() {
        assert_eq!(f64::from_value(&Value::U64(7)).unwrap(), 7.0);
        assert_eq!(f64::from_value(&Value::I64(-7)).unwrap(), -7.0);
    }

    #[test]
    fn display_is_json() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::F64(2.0)),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":[true,null],"c":2.0}"#);
    }

    #[test]
    fn string_escapes() {
        let v = Value::Str("a\"b\\c\nd".into());
        assert_eq!(v.to_string(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn btreemap_uses_string_keys() {
        let mut m = BTreeMap::new();
        m.insert(8usize, 1.0f64);
        m.insert(16usize, 2.0f64);
        let v = m.to_value();
        assert_eq!(v["8"].as_f64(), Some(1.0));
        let back: BTreeMap<usize, f64> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn index_missing_is_null() {
        let v = Value::Object(vec![]);
        assert!(matches!(v["nope"], Value::Null));
        assert_eq!(v["nope"].as_str(), None);
    }
}
