//! Offline shim of `rayon`: indexed parallel iterators over ranges and
//! slices with `map`/`filter_map`/`for_each`/`collect`.
//!
//! Work is split into one contiguous chunk per worker thread
//! (`std::thread::scope`), which preserves item order on `collect` without
//! any reordering step. On a single-CPU host (or for a single item) the
//! drive degenerates to an inline loop with zero thread overhead.

use std::num::NonZeroUsize;

/// Worker count: `available_parallelism`, or 1 if unknown.
fn workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// An indexed source of optional items. `produce(i)` runs on worker
/// threads; `None` means the item was filtered out (order of survivors is
/// still the index order).
pub trait ParallelIterator: Sized + Sync {
    /// Item type after all adapters.
    type Item: Send;

    /// Number of underlying indices.
    fn len(&self) -> usize;

    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces item `i`, or `None` if an adapter filtered it out.
    fn produce(&self, i: usize) -> Option<Self::Item>;

    /// Maps every item through `f` in parallel.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Maps and filters in one pass.
    fn filter_map<R: Send, F: Fn(Self::Item) -> Option<R> + Sync>(
        self,
        f: F,
    ) -> FilterMap<Self, F> {
        FilterMap { base: self, f }
    }

    /// Runs `f` on every item in parallel.
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        drive(&self, &|_, item| f(item));
    }

    /// Collects the surviving items, in index order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

/// Collection types a parallel iterator can gather into.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Gathers `iter`'s items in index order.
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self {
        let mut chunks = drive(&iter, &|_, item| item);
        if chunks.len() == 1 {
            return chunks.pop().unwrap();
        }
        let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for c in chunks {
            out.extend(c);
        }
        out
    }
}

/// Runs `sink` over every produced item, one contiguous index chunk per
/// worker; returns the per-chunk sink outputs in chunk (= index) order.
fn drive<P: ParallelIterator, R, F>(iter: &P, sink: &F) -> Vec<Vec<R>>
where
    R: Send,
    F: Fn(usize, P::Item) -> R + Sync,
{
    let len = iter.len();
    let nt = workers().min(len.max(1));
    if nt <= 1 {
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            if let Some(item) = iter.produce(i) {
                out.push(sink(i, item));
            }
        }
        return vec![out];
    }
    let chunk = len.div_ceil(nt);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nt)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(len);
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(hi - lo);
                    for i in lo..hi {
                        if let Some(item) = iter.produce(i) {
                            out.push(sink(i, item));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon shim worker panicked"))
            .collect()
    })
}

/// `map` adapter.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn produce(&self, i: usize) -> Option<R> {
        self.base.produce(i).map(&self.f)
    }
}

/// `filter_map` adapter.
pub struct FilterMap<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for FilterMap<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> Option<R> + Sync,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn produce(&self, i: usize) -> Option<R> {
        self.base.produce(i).and_then(&self.f)
    }
}

/// Sources that can become parallel iterators by value.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Sources whose references can be iterated in parallel.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Parallel iterator over references.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_source {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            type Iter = RangeIter<$t>;
            fn into_par_iter(self) -> RangeIter<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangeIter { start: self.start, len }
            }
        }

        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;

            fn len(&self) -> usize {
                self.len
            }

            fn produce(&self, i: usize) -> Option<$t> {
                Some(self.start + i as $t)
            }
        }
    )*};
}

impl_range_source!(u32, u64, usize);

/// Parallel iterator over slice references.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync + 'a> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn produce(&self, i: usize) -> Option<&'a T> {
        Some(&self.slice[i])
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// The traits, like `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_keeps_index_order() {
        let v: Vec<usize> = (0..100usize)
            .into_par_iter()
            .filter_map(|i| (i % 3 == 0).then_some(i))
            .collect();
        assert_eq!(v, (0..100).filter(|i| i % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        (0..100u64).into_par_iter().for_each(|i| {
            sum.fetch_add(i as usize, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn slice_par_iter_references() {
        let data = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }
}
