//! Offline shim of `serde_json`: JSON text to/from the vendored
//! [`serde::Value`] tree, plus the `json!` macro.

pub use serde::{Error, Value};

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes `value` as compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::write_json(&mut out, &value.to_value());
    Ok(out)
}

/// Deserializes `T` from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Deserializes `T` from an already-parsed [`Value`].
pub fn from_value<T: serde::Deserialize>(v: Value) -> Result<T, Error> {
    T::from_value(&v)
}

/// Builds a [`Value`] inline: `json!({ "key": expr, ... })`,
/// `json!([a, b])`, `json!(null)`, or `json!(expr)`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($k:literal : $v:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($k).to_string(), $crate::to_value(&$v)) ),*
        ])
    };
    ([ $($v:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$v) ),* ])
    };
    ($v:expr) => { $crate::to_value(&$v) };
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(Error::custom(format!(
                "unexpected character {:?} at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                c => {
                    return Err(Error::custom(format!(
                        "expected ',' or ']' in array, got {:?}",
                        c as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                c => {
                    return Err(Error::custom(format!(
                        "expected ',' or '}}' in object, got {:?}",
                        c as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                        }
                        c => {
                            return Err(Error::custom(format!("invalid escape \\{:?}", c as char)))
                        }
                    }
                }
                // Multi-byte UTF-8: copy the raw byte run through.
                _ => {
                    let start = self.pos - 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b != b'"' && b != b'\\')
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom(format!("invalid number {text:?}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map_err(|_| Error::custom(format!("invalid number {text:?}")))
                .map(|u| Value::I64(-(u as i64)))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::custom(format!("invalid number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_value() {
        let v = parse(r#"{"gpu":"P100","batch":10000,"x":[1,2.5,-3,true,null]}"#).unwrap();
        assert_eq!(v["gpu"].as_str(), Some("P100"));
        assert_eq!(v["batch"].as_u64(), Some(10000));
        assert_eq!(v["x"][1].as_f64(), Some(2.5));
        assert_eq!(v["x"][2].as_i64(), Some(-3));
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn json_macro_builds_objects() {
        let n = 16usize;
        let v = json!({ "n": n, "name": "x" });
        assert_eq!(v["n"].as_u64(), Some(16));
        assert_eq!(v["name"].as_str(), Some("x"));
    }

    #[test]
    fn f64_text_round_trip_is_bitwise() {
        for &x in &[
            1.0f64,
            1e-4,
            0.1,
            123.456_789_012_345_68,
            3.0e8,
            f64::MIN_POSITIVE,
        ] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\n\"quoted\" \\ tab\t unicode \u{1F600}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("{\"a\":1}x").is_err());
    }
}
