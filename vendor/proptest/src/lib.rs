//! Offline shim of `proptest`: the macro surface (`proptest!`,
//! `prop_assert!`, `prop_assert_eq!`) and strategy combinators this
//! workspace uses, driven by a deterministic per-test RNG.
//!
//! No shrinking: a failing case panics with the case number and message.
//! Each test's stream is seeded from a hash of its name, so failures are
//! reproducible run-to-run and machine-to-machine.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::marker::PhantomData;

/// Per-run configuration; only `cases` is modeled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property assertion.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Deterministic RNG for the test named `name`.
pub fn test_rng(name: &str) -> StdRng {
    // FNV-1a over the name, mixed with a fixed run key.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ 0x9E3779B97F4A7C15)
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.random_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

/// `any::<T>()` strategy: draws from the type's full standard
/// distribution.
pub struct Any<T>(PhantomData<T>);

impl<T: rand::StandardUniform> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        rng.random()
    }
}

/// The standard strategy for `T` (uniform bits / `[0, 1)` floats).
pub fn any<T: rand::StandardUniform>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};

    /// Element-count specification for [`vec`]: a fixed size or a range.
    pub trait IntoSizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            use rand::Rng;
            rng.random_range(self.clone())
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            use rand::Rng;
            rng.random_range(self.clone())
        }
    }

    /// Vectors of `element` with length drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// A strategy for `Vec<S::Value>`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{StdRng, Strategy};

    /// Uniformly picks one of the given options.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// A strategy choosing uniformly from `options`.
    ///
    /// # Panics
    /// If `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            use rand::Rng;
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }
}

/// Module alias matching `proptest::prelude::prop`.
pub mod prop {
    pub use crate::{collection, sample};
}

/// The usual imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body; on failure the case
/// returns an error (reported with the case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::Strategy as _;
            let config = $cfg;
            let strat = ($($strat,)+);
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let ($($pat,)+) = strat.sample(&mut rng);
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 1u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(
            v in prop::collection::vec(0u32..100, 1..20),
            pick in prop::sample::select(vec![2usize, 4, 8]),
            flag in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 100));
            prop_assert!(pick == 2 || pick == 4 || pick == 8);
            let _ = flag;
        }

        #[test]
        fn prop_map_transforms((a, b) in (0usize..5, 0usize..5).prop_map(|(x, y)| (x * 2, y))) {
            prop_assert!(a % 2 == 0);
            prop_assert!(b < 5, "b was {}", b);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = crate::test_rng("same-name");
        let mut r2 = crate::test_rng("same-name");
        let s = 0u64..1000;
        for _ in 0..32 {
            assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
        }
    }
}
