//! Offline shim of the `rand` crate: exactly the surface this workspace
//! uses (`Rng::random`, `Rng::random_range`, `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`, `seq::SliceRandom::shuffle`), with a deterministic
//! xoshiro256++ generator seeded through SplitMix64.
//!
//! The point is reproducibility without a network: every test in the tree
//! seeds explicitly via `seed_from_u64`, so all that matters is that the
//! stream is fixed, well mixed, and identical across platforms.

/// Distribution hook for [`Rng::random`]: types that can be drawn from the
/// generator's "standard" distribution (uniform over the value range for
/// integers, uniform in `[0, 1)` for floats).
pub trait StandardUniform: Sized {
    #[doc(hidden)]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Core generator interface: a source of `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random-value interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A value from the standard distribution: uniform bits for integers,
    /// uniform `[0, 1)` for `f32`/`f64`.
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniform value in `range`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_in(self)
    }
}

impl<R: RngCore> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Alias kept because call sites import `rand::RngExt` (the name the
/// 0.10-era API sketch used for the extension trait); it is the same trait.
pub use Rng as RngExt;

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via SplitMix64, so nearby
    /// seeds yield uncorrelated streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    #[doc(hidden)]
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_standard {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }

        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_standard!(u8, u16, u32, u64, usize);

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 high bits -> [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice extension: in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_clones() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.random_range(5usize..17);
            assert!((5..17).contains(&v));
            let w = rng.random_range(2u32..=4);
            assert!((2..=4).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "64 elements should not shuffle to identity");
    }
}
