//! Integration: the device Cholesky kernel runs unchanged on the packed
//! symmetric layout (the kernels only touch `i >= j`), at ~52% of the
//! square layout's memory.

use ibcf::kernels::InterleavedCholesky;
use ibcf::prelude::*;
use ibcf_layout::{pack_symmetric, unpack_symmetric, PackedChunked};

#[test]
fn device_kernel_factors_on_packed_storage() {
    let n = 10;
    let batch = 128;
    let config = KernelConfig::baseline(n);

    // Reference: factor on the ordinary chunked layout.
    let square = config.layout(batch);
    let mut sq = vec![0.0f32; square.len()];
    fill_batch_spd(&square, &mut sq, SpdKind::Wishart, 44);
    let originals = sq.clone();

    // Pack the same batch into lower-triangle storage.
    let packed = PackedChunked::new(n, batch, config.chunk_size);
    let mut pk = vec![0.0f32; packed.len()];
    pack_symmetric(&square, &sq, &packed, &mut pk);
    assert!(
        (packed.len() as f64) < 0.6 * square.len() as f64,
        "packed storage should be ~half: {} vs {}",
        packed.len(),
        square.len()
    );

    // Factor both: the square one via the normal launch, the packed one by
    // binding the same kernel to the packed layout.
    factorize_batch_device(&config, batch, &mut sq);
    let kernel = InterleavedCholesky::with_layout(config, Layout::Packed(packed));
    ibcf::gpu::launch_functional(
        &kernel,
        config.launch(batch),
        &mut pk,
        ibcf::gpu::ExecOptions::default(),
    );

    // The packed factor must equal the square factor, element for element.
    let mut unpacked = vec![0.0f32; square.len()];
    unpack_symmetric(&packed, &pk, &square, &mut unpacked);
    let mut a = vec![0.0f32; n * n];
    let mut b = vec![0.0f32; n * n];
    for mat in 0..batch {
        gather_matrix(&square, &sq, mat, &mut a, n);
        gather_matrix(&square, &unpacked, mat, &mut b, n);
        for c in 0..n {
            for r in c..n {
                assert_eq!(
                    a[r + c * n],
                    b[r + c * n],
                    "mat {mat} ({r},{c}): packed and square factors differ"
                );
            }
        }
    }

    // And reconstruct correctly against the originals.
    let err = batch_reconstruction_error(&square, &originals, &unpacked);
    assert!(err < 1e-4, "packed-factor reconstruction error {err}");
}

#[test]
fn packed_accesses_stay_perfectly_coalesced() {
    use ibcf::gpu::coalesce::coalesce;
    use ibcf::gpu::trace_warp;
    let n = 8;
    let config = KernelConfig::baseline(n);
    let packed = PackedChunked::new(n, 256, config.chunk_size);
    let kernel = InterleavedCholesky::with_layout(config, Layout::Packed(packed));
    let trace = trace_warp(&kernel, config.launch(256), 0, 0);
    for a in &trace.accesses {
        let c = coalesce(a, 4, 128, 32);
        assert_eq!(c.transactions, 1, "packed layout must stay coalesced");
    }
}

#[test]
fn packed_timing_moves_less_memory() {
    use ibcf::gpu::{time_thread_kernel, TimingOptions};
    let n = 16;
    let batch = 16384;
    let config = KernelConfig {
        nb: 1,
        ..KernelConfig::baseline(n)
    };
    let spec = GpuSpec::p100();
    // nb = 1 streams every element it touches; packed touches the same
    // lower-triangle elements, so DRAM traffic matches the square layout
    // (the saving is footprint, not traffic — the kernels never read the
    // upper half anyway).
    let square_kernel = InterleavedCholesky::new(config, batch);
    let t_sq = time_thread_kernel(
        &square_kernel,
        config.launch(batch),
        &spec,
        TimingOptions::default(),
    );
    let packed = PackedChunked::new(n, batch, config.chunk_size);
    let packed_kernel = InterleavedCholesky::with_layout(config, Layout::Packed(packed));
    let t_pk = time_thread_kernel(
        &packed_kernel,
        config.launch(batch),
        &spec,
        TimingOptions::default(),
    );
    let ratio = t_pk.dram_bytes as f64 / t_sq.dram_bytes as f64;
    // The kernels touch the same lower-triangle elements either way, but
    // the packed footprint is ~half, so the re-reads of the nb=1 kernel
    // hit the L2 slice more often — packed moves *less* DRAM traffic.
    assert!(ratio <= 1.02, "traffic ratio {ratio}");
    // And it is never slower.
    assert!(t_pk.time_s <= t_sq.time_s * 1.05);
}
