//! Property tests over the whole kernel configuration space: any valid
//! configuration must factor any well-conditioned SPD batch accurately.

use ibcf::prelude::*;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = KernelConfig> {
    (
        2usize..=20,   // n
        1usize..=8,    // nb
        0usize..3,     // looking
        any::<bool>(), // chunked
        prop::sample::select(vec![32usize, 64, 128, 256, 512]),
        any::<bool>(), // full unroll
        any::<bool>(), // fast math
    )
        .prop_map(
            |(n, nb, lk, chunked, chunk_size, full, fast_math)| KernelConfig {
                n,
                nb,
                looking: Looking::ALL[lk],
                chunked,
                chunk_size,
                unroll: if full { Unroll::Full } else { Unroll::Partial },
                fast_math,
                cache_pref: CachePref::L1,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Functional correctness holds over the entire configuration space.
    #[test]
    fn any_config_factors_accurately(config in arb_config(), batch in 1usize..200) {
        let layout = config.layout(batch);
        let mut data = vec![0.0f32; layout.len()];
        fill_batch_spd(&layout, &mut data, SpdKind::Wishart, 0xFACADE);
        let orig = data.clone();
        factorize_batch_device(&config, batch, &mut data);
        let err = batch_reconstruction_error(&layout, &orig, &data);
        // Fast math degrades rcp/sqrt by a couple of mantissa bits.
        let tol = if config.fast_math { 5e-3 } else { 5e-4 };
        prop_assert!(err < tol, "{config} batch={batch}: err {err}");
    }

    /// The timing model accepts every configuration and produces sane
    /// numbers.
    #[test]
    fn any_config_times_sanely(config in arb_config()) {
        let spec = GpuSpec::p100();
        let t = time_config(&config, 16384, &spec);
        prop_assert!(t.time_s.is_finite() && t.time_s > 0.0);
        prop_assert!(t.dram_bytes > 0);
        prop_assert!(t.utilization > 0.0 && t.utilization <= 1.0);
        prop_assert!(t.row_hit_rate >= 0.0 && t.row_hit_rate <= 1.0);
        prop_assert!(t.occupancy.blocks_per_sm >= 1);
        let g = gflops_of_config(&config, 16384, &spec);
        prop_assert!(g > 0.0 && g < spec.peak_gflops(), "{config}: {g}");
    }

    /// Factorize-then-multiply round trip on the host path for random
    /// precision/layout combinations.
    #[test]
    fn host_factorization_round_trips(
        n in 1usize..24,
        batch in 1usize..64,
        kind in 0usize..3,
        seed in any::<u64>(),
    ) {
        let layout = match kind {
            0 => Layout::Canonical(Canonical::new(n, batch)),
            1 => Layout::Interleaved(Interleaved::new(n, batch)),
            _ => Layout::Chunked(Chunked::new(n, batch, 64)),
        };
        let mut data = vec![0.0f64; layout.len()];
        fill_batch_spd(&layout, &mut data, SpdKind::DiagDominant, seed);
        let orig = data.clone();
        prop_assert!(factorize_batch(&layout, &mut data).all_ok());
        let err = batch_reconstruction_error(&layout, &orig, &data);
        prop_assert!(err < 1e-12, "err {err}");
    }
}
