//! Cross-crate integration: every device-kernel configuration must produce
//! the same factors as the independently-tested host oracle.

use ibcf::prelude::*;
use ibcf_core::verify::max_lower_diff;

/// Factorizes the same batch on the device kernel and on the host oracle
/// and returns the worst per-element difference between the factors.
fn device_vs_host(config: KernelConfig, batch: usize) -> f64 {
    let layout = config.layout(batch);
    let mut dev = vec![0.0f32; layout.len()];
    fill_batch_spd(&layout, &mut dev, SpdKind::Wishart, 0xC0FFEE);
    let mut host = dev.clone();

    factorize_batch_device(&config, batch, &mut dev);
    assert!(factorize_batch(&layout, &mut host).all_ok());

    let n = config.n;
    let mut a = vec![0.0f32; n * n];
    let mut b = vec![0.0f32; n * n];
    let mut worst = 0.0f64;
    for mat in 0..batch {
        gather_matrix(&layout, &dev, mat, &mut a, n);
        gather_matrix(&layout, &host, mat, &mut b, n);
        worst = worst.max(max_lower_diff(n, &a, &b, n));
    }
    worst
}

#[test]
fn every_looking_and_unroll_matches_host() {
    for looking in Looking::ALL {
        for unroll in Unroll::ALL {
            let config = KernelConfig {
                n: 13,
                nb: 4,
                looking,
                unroll,
                ..KernelConfig::baseline(13)
            };
            let d = device_vs_host(config, 96);
            assert!(d < 1e-3, "{config}: diff {d}");
        }
    }
}

#[test]
fn every_nb_matches_host_including_ragged() {
    for nb in 1..=8usize {
        for n in [7usize, 16, 23] {
            let config = KernelConfig {
                n,
                nb,
                ..KernelConfig::baseline(n)
            };
            let d = device_vs_host(config, 64);
            assert!(d < 2e-3, "{config}: diff {d}");
        }
    }
}

#[test]
fn every_chunk_size_and_layout_matches_host() {
    for chunk_size in [32usize, 64, 128, 256, 512] {
        for chunked in [false, true] {
            let config = KernelConfig {
                chunked,
                chunk_size,
                ..KernelConfig::baseline(9)
            };
            let d = device_vs_host(config, 600);
            assert!(d < 1e-3, "{config}: diff {d}");
        }
    }
}

#[test]
fn traditional_kernel_matches_host() {
    let n = 20;
    let batch = 64;
    let layout = Canonical::new(n, batch);
    let mut dev = vec![0.0f32; layout.len()];
    fill_batch_spd(&layout, &mut dev, SpdKind::Wishart, 77);
    let mut host = dev.clone();
    factorize_batch_traditional(n, batch, &mut dev);
    assert!(factorize_batch(&layout, &mut host).all_ok());
    let mut a = vec![0.0f32; n * n];
    let mut b = vec![0.0f32; n * n];
    for mat in 0..batch {
        gather_matrix(&layout, &dev, mat, &mut a, n);
        gather_matrix(&layout, &host, mat, &mut b, n);
        let d = ibcf_core::verify::max_lower_diff(n, &a, &b, n);
        assert!(d < 1e-3, "mat {mat}: diff {d}");
    }
}

#[test]
fn results_are_identical_across_layouts() {
    // The kernel performs identical arithmetic per matrix regardless of
    // the layout; only addresses change. The factors must be bit-for-bit
    // identical between the simple and chunked interleaved layouts.
    let n = 11;
    let batch = 256;
    let base = KernelConfig {
        chunked: false,
        ..KernelConfig::baseline(n)
    };
    let chunked = KernelConfig {
        chunked: true,
        ..base
    };

    let gather_all = |config: KernelConfig| -> Vec<f32> {
        let layout = config.layout(batch);
        let mut data = vec![0.0f32; layout.len()];
        fill_batch_spd(&layout, &mut data, SpdKind::Wishart, 5);
        factorize_batch_device(&config, batch, &mut data);
        let mut out = Vec::with_capacity(batch * n * n);
        let mut m = vec![0.0f32; n * n];
        for mat in 0..batch {
            gather_matrix(&layout, &data, mat, &mut m, n);
            // Compare lower triangles only (upper is untouched input).
            for c in 0..n {
                for r in c..n {
                    out.push(m[r + c * n]);
                }
            }
        }
        out
    };
    assert_eq!(gather_all(base), gather_all(chunked));
}
