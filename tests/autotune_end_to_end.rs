//! Integration: the full autotuning + analysis pipeline — sweep, persist,
//! reload, query, model, and rank.

use ibcf::prelude::*;
use ibcf_bench_shim::*;

/// Re-exports used below; keeps the test readable.
mod ibcf_bench_shim {
    pub use ibcf::autotune::heuristics::hill_climb;
    pub use ibcf::forest::r2;
}

#[test]
fn sweep_persist_reload_analyze() {
    let spec = GpuSpec::p100();
    let space = ParamSpace::quick();
    let ds = sweep_sizes(
        &space,
        &[8, 16, 32],
        &spec,
        &SweepOptions {
            batch: 4096,
            progress_every: 0,
            ..Default::default()
        },
    );
    assert_eq!(ds.measurements.len(), 3 * space.len_per_n());

    // Persist and reload.
    let dir = std::env::temp_dir().join("ibcf_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sweep.jsonl");
    ds.save_jsonl(&path).unwrap();
    let ds2 = Dataset::load_jsonl(&path).unwrap();
    assert_eq!(ds2.measurements.len(), ds.measurements.len());
    assert_eq!(ds2.batch, 4096);

    // Query coherence: overall best dominates every slice.
    let table = BestTable::new(&ds2);
    for n in [8usize, 16, 32] {
        let best = table.best(n).unwrap().gflops;
        for looking in Looking::ALL {
            assert!(table.best_by_looking(n, looking).unwrap().gflops <= best);
        }
        for chunked in [false, true] {
            assert!(table.best_by_chunking(n, chunked).unwrap().gflops <= best);
        }
    }

    // Model the dataset: the forest must explain most of the variance.
    // The Table-I feature set excludes the arithmetic mode, so (like the
    // paper's analysis) restrict to the IEEE rows.
    let ieee: Vec<_> = ds2
        .measurements
        .iter()
        .filter(|m| !m.config.fast_math)
        .collect();
    let rows: Vec<Vec<f64>> = ieee.iter().map(|m| m.features()).collect();
    let targets: Vec<f64> = ieee.iter().map(|m| m.gflops).collect();
    let names = Measurement::feature_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let data = TableData::new(names, rows, targets);
    let forest = Forest::fit(
        &data,
        ForestConfig {
            num_trees: 50,
            ..Default::default()
        },
    );
    let preds: Vec<f64> = data.rows.iter().map(|r| forest.predict(r)).collect();
    let score = r2(&preds, &data.targets);
    assert!(score > 0.85, "in-sample R² {score}");

    // Importance: the constant-by-construction cache feature cannot beat
    // the real knobs.
    let imp = permutation_importance(&forest, &data, 3);
    let get = |name: &str| imp.inc_mse[imp.names.iter().position(|x| x == name).unwrap()];
    assert!(get("nb") > get("cache"), "{:?}", imp.ranking());
    assert!(get("chunking") > get("cache"), "{:?}", imp.ranking());

    std::fs::remove_file(&path).ok();
}

use ibcf::autotune::Measurement;

#[test]
fn guided_search_is_consistent_with_exhaustive() {
    let spec = GpuSpec::p100();
    let space = ParamSpace::quick();
    let n = 16;
    let batch = 4096;
    let ds = sweep_sizes(
        &space,
        &[n],
        &spec,
        &SweepOptions {
            batch,
            progress_every: 0,
            ..Default::default()
        },
    );
    // The climber explores one arithmetic mode (the space's first: IEEE);
    // compare against the exhaustive best under the same restriction.
    let best = BestTable::new(&ds)
        .best_where(n, |m| !m.config.fast_math)
        .unwrap()
        .gflops;
    let guided = hill_climb(&space, n, batch, &spec, 5, 42);
    assert!(
        guided.best.gflops <= best * 1.0000001,
        "guided exceeded exhaustive grid"
    );
    assert!(guided.best.gflops >= 0.85 * best, "guided too far off");
}
