//! Integration coverage for the extension features: device solve, device
//! packing, upper-triangular support, CUDA emission, and partial
//! dependence — all through the public facade.

use ibcf::prelude::*;

#[test]
fn full_on_device_pipeline_pack_factor_solve() {
    // Canonical input data -> device pack -> device factor -> device solve,
    // verified against a pure-host pipeline.
    let n = 8;
    let batch = 256;
    let config = KernelConfig::baseline(n);
    let inter = config.layout(batch);
    let canon = Canonical::new(n, batch);

    // Host-side assembly of the canonical batch.
    let mut canon_data = vec![0.0f32; canon.len()];
    fill_batch_spd(&canon, &mut canon_data, SpdKind::Wishart, 6);

    // Device buffer: [canonical | interleaved | rhs].
    let rhs_off = canon.len() + inter.len();
    let mut mem = vec![0.0f32; rhs_off + n * inter.padded_batch()];
    mem[..canon.len()].copy_from_slice(&canon_data);
    // Identity-fill padding slots so the factor kernel is happy.
    let eye: Vec<f32> = (0..n * n)
        .map(|i| if i % (n + 1) == 0 { 1.0 } else { 0.0 })
        .collect();
    pack_batch_device(canon, inter, canon.len(), &mut mem);
    for m in batch..inter.padded_batch() {
        // scatter into the interleaved region
        for c in 0..n {
            for r in 0..n {
                mem[canon.len() + inter.addr(m, r, c)] = eye[r + c * n];
            }
        }
    }
    // Factor the interleaved region on the device.
    {
        let (head, tail) = mem.split_at_mut(canon.len());
        let _ = head;
        ibcf::kernels::factorize_batch_device(&config, batch, &mut tail[..inter.len()]);
    }
    // RHS: all ones.
    for i in 0..n {
        for m in 0..inter.padded_batch() {
            mem[rhs_off + i * inter.padded_batch() + m] = 1.0;
        }
    }
    // Solve on the device (kernel addresses relative to the interleaved
    // region start).
    {
        let tail = &mut mem[canon.len()..];
        solve_batch_device(&inter, tail, 64);
    }

    // Host pipeline for comparison.
    let mut host = canon_data;
    assert!(factorize_batch(&canon, &mut host).all_ok());
    let vb = VectorBatch::interleaved(n, batch);
    let mut host_rhs = vec![1.0f32; vb.len()];
    solve_batch(&canon, &host, &vb, &mut host_rhs);

    for m in 0..batch {
        for i in 0..n {
            let dev = mem[rhs_off + i * inter.padded_batch() + m];
            let hst = host_rhs[vb.addr(m, i)];
            assert!(
                (dev - hst).abs() / hst.abs().max(1.0) < 1e-4,
                "m={m} i={i}: {dev} vs {hst}"
            );
        }
    }
}

#[test]
fn uplo_round_trip_through_prelude() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let n = 8;
    let mut rng = StdRng::seed_from_u64(10);
    let a = random_spd::<f64>(n, SpdKind::Wishart, &mut rng);
    for uplo in Uplo::ALL {
        let mut f = a.clone().into_vec();
        potrf_uplo(uplo, n, &mut f, n).unwrap();
        let mut b = vec![1.0f64; n];
        solve_cholesky_uplo(uplo, n, &f, n, &mut b);
        // Check A x = 1.
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..n {
                acc += a[(i, j)] * b[j];
            }
            assert!((acc - 1.0).abs() < 1e-9, "{uplo:?} row {i}: {acc}");
        }
    }
}

#[test]
fn emitted_cuda_matches_config_metadata() {
    let config = KernelConfig {
        n: 12,
        nb: 3,
        looking: Looking::Left,
        fast_math: true,
        ..KernelConfig::baseline(12)
    };
    let src = emit_cuda(&config);
    assert!(src.contains("n = 12, nb = 3, left looking"));
    assert!(src.contains("--use_fast_math"));
    assert!(src.contains("spotrf_batch_n12_nb3_left_partial"));
}

#[test]
fn pdp_on_sweep_data_matches_table1_story() {
    let spec = GpuSpec::p100();
    let space = ParamSpace::quick();
    let ds = sweep_sizes(
        &space,
        &[8, 16, 32],
        &spec,
        &SweepOptions {
            batch: 4096,
            ..Default::default()
        },
    );
    let ieee: Vec<&Measurement> = ds
        .measurements
        .iter()
        .filter(|m| !m.config.fast_math)
        .collect();
    let data = TableData::new(
        Measurement::feature_names()
            .iter()
            .map(|s| s.to_string())
            .collect(),
        ieee.iter().map(|m| m.features()).collect(),
        ieee.iter().map(|m| m.gflops).collect(),
    );
    let forest = Forest::fit(
        &data,
        ForestConfig {
            num_trees: 40,
            ..Default::default()
        },
    );
    let chunking = partial_dependence(&forest, &data, 3, None, 400);
    let cache = partial_dependence(&forest, &data, 6, None, 400);
    assert!(
        chunking.effect_size() > 5.0 * cache.effect_size().max(1.0),
        "chunking effect {:.1} vs cache {:.1}",
        chunking.effect_size(),
        cache.effect_size()
    );
    // Chunking on must predict higher performance than off.
    assert!(chunking.response[1] > chunking.response[0]);
}

#[test]
fn noisy_sweep_still_ranks_chunking_first() {
    let spec = GpuSpec::p100();
    let space = ParamSpace::quick();
    let ds = sweep_sizes(
        &space,
        &[16, 32],
        &spec,
        &SweepOptions {
            batch: 8192,
            noise_sigma: 0.05,
            noise_seed: 3,
            ..Default::default()
        },
    );
    let ieee: Vec<&Measurement> = ds
        .measurements
        .iter()
        .filter(|m| !m.config.fast_math)
        .collect();
    let data = TableData::new(
        Measurement::feature_names()
            .iter()
            .map(|s| s.to_string())
            .collect(),
        ieee.iter().map(|m| m.features()).collect(),
        ieee.iter().map(|m| m.gflops).collect(),
    );
    let forest = Forest::fit(
        &data,
        ForestConfig {
            num_trees: 60,
            ..Default::default()
        },
    );
    let imp = permutation_importance(&forest, &data, 5);
    let rank = imp.ranking();
    // Under 5% measurement noise, chunking must stay a top-2 predictor and
    // cache must stay in the bottom two.
    let pos = |name: &str| rank.iter().position(|(n, _)| n == name).unwrap();
    assert!(pos("chunking") <= 1, "{rank:?}");
    assert!(pos("cache") >= rank.len() - 2, "{rank:?}");
}
