//! Integration: full factor-then-solve pipelines, checked against an f64
//! oracle and against known closed forms.

use ibcf::prelude::*;

#[test]
fn factor_solve_recovers_planted_solution() {
    let n = 10;
    let batch = 128;
    let config = KernelConfig::baseline(n);
    let layout = config.layout(batch);
    let mut mats = vec![0.0f32; layout.len()];
    fill_batch_spd(&layout, &mut mats, SpdKind::Wishart, 123);

    // Plant x = (1, 2, ..., n) for every matrix; compute b = A x in f64.
    let vb = VectorBatch::interleaved(n, batch);
    let mut rhs = vec![0.0f32; vb.len()];
    let mut a = vec![0.0f32; n * n];
    for mat in 0..batch {
        gather_matrix(&layout, &mats, mat, &mut a, n);
        for i in 0..n {
            let mut acc = 0.0f64;
            for j in 0..n {
                let (r, c) = if i >= j { (i, j) } else { (j, i) };
                acc += a[r + c * n] as f64 * (j + 1) as f64;
            }
            rhs[vb.addr(mat, i)] = acc as f32;
        }
    }

    factorize_batch_device(&config, batch, &mut mats);
    solve_batch(&layout, &mats, &vb, &mut rhs);

    for mat in 0..batch {
        for i in 0..n {
            let got = rhs[vb.addr(mat, i)] as f64;
            let want = (i + 1) as f64;
            assert!(
                (got - want).abs() / want < 1e-3,
                "mat {mat} x[{i}] = {got}, want {want}"
            );
        }
    }
}

#[test]
fn f32_factors_track_f64_oracle() {
    // Factor the same (exactly representable) matrices in both precisions
    // through the host path; the f32 result must track f64 to f32 accuracy.
    let n = 14;
    let batch = 16;
    let layout = Canonical::new(n, batch);
    let mut f32_data = vec![0.0f32; layout.len()];
    fill_batch_spd(&layout, &mut f32_data, SpdKind::DiagDominant, 9);
    let f64_data: Vec<f64> = f32_data.iter().map(|&x| x as f64).collect();
    let mut f64_data = f64_data;

    assert!(factorize_batch(&layout, &mut f32_data).all_ok());
    assert!(factorize_batch(&layout, &mut f64_data).all_ok());

    for (i, (a, b)) in f32_data.iter().zip(&f64_data).enumerate() {
        let diff = (*a as f64 - b).abs();
        let scale = b.abs().max(1.0);
        assert!(diff / scale < 1e-5, "element {i}: f32 {a} vs f64 {b}");
    }
}

#[test]
fn ill_conditioned_matrices_lose_accuracy_gracefully() {
    use ibcf_core::reference::potrf;
    use ibcf_core::verify::reconstruction_error;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let n = 12;
    let mut rng = StdRng::seed_from_u64(4);
    let mut errs = Vec::new();
    for cond in [1e2, 1e5] {
        let a = random_spd::<f32>(n, SpdKind::Conditioned(cond), &mut rng);
        let mut f = a.clone();
        potrf(n, f.as_mut_slice()).expect("still numerically SPD");
        errs.push(reconstruction_error(n, a.as_slice(), f.as_slice(), n));
    }
    // Reconstruction error stays tiny in both cases (backward stability)...
    assert!(errs.iter().all(|&e| e < 1e-5), "{errs:?}");
}

#[test]
fn non_spd_matrices_are_reported_not_silently_wrong() {
    let n = 6;
    let batch = 32;
    let layout = Interleaved::new(n, batch);
    let mut data = vec![0.0f32; layout.len()];
    fill_batch_spd(&layout, &mut data, SpdKind::Wishart, 1);
    // Corrupt two matrices.
    let bad: Vec<f32> = (0..n * n)
        .map(|i| if i % (n + 1) == 0 { -5.0 } else { 0.1 })
        .collect();
    scatter_matrix(&layout, &mut data, 10, &bad, n);
    scatter_matrix(&layout, &mut data, 20, &bad, n);
    let report = factorize_batch(&layout, &mut data);
    let failed: Vec<usize> = report.failures.iter().map(|&(m, _)| m).collect();
    assert_eq!(failed, vec![10, 20]);
}
