//! Integration: invariants of the timing model that must hold regardless
//! of calibration constants.

use ibcf::prelude::*;
use ibcf_gpu_sim::Bottleneck;

#[test]
fn fast_math_never_slower() {
    let spec = GpuSpec::p100();
    for n in [4usize, 12, 24, 48] {
        for unroll in Unroll::ALL {
            let ieee = KernelConfig {
                unroll,
                ..KernelConfig::baseline(n)
            };
            let fast = KernelConfig {
                fast_math: true,
                ..ieee
            };
            let ti = time_config(&ieee, 16384, &spec).time_s;
            let tf = time_config(&fast, 16384, &spec).time_s;
            assert!(
                tf <= ti * 1.0000001,
                "n={n} {}: fast {tf} > ieee {ti}",
                unroll.name()
            );
        }
    }
}

#[test]
fn more_matrices_take_longer() {
    let spec = GpuSpec::p100();
    let config = KernelConfig::baseline(16);
    let mut last = 0.0;
    for batch in [2048usize, 8192, 32768] {
        let t = time_config(&config, batch, &spec).time_s;
        assert!(t > last, "batch {batch}: {t} <= {last}");
        last = t;
    }
}

#[test]
fn interleaved_is_perfectly_coalesced_canonical_is_not() {
    let spec = GpuSpec::p100();
    let n = 8;
    let batch = 4096;
    let config = KernelConfig::baseline(n);
    let inter = time_config(&config, batch, &spec);
    assert!(
        (inter.transactions_per_access - 1.0).abs() < 1e-9,
        "interleaved txn/access {}",
        inter.transactions_per_access
    );
    use ibcf::gpu::{time_thread_kernel, TimingOptions};
    use ibcf::kernels::InterleavedCholesky;
    let canon =
        InterleavedCholesky::with_layout(config, Layout::Canonical(Canonical::new(n, batch)));
    let t = time_thread_kernel(
        &canon,
        config.launch(batch),
        &spec,
        TimingOptions::default(),
    );
    assert!(
        t.transactions_per_access > 8.0,
        "canonical txn/access {}",
        t.transactions_per_access
    );
    assert!(t.time_s > inter.time_s, "canonical must be slower");
}

#[test]
fn tiny_matrices_are_memory_bound_with_fast_math() {
    let spec = GpuSpec::p100();
    let config = KernelConfig {
        fast_math: true,
        unroll: Unroll::Full,
        ..KernelConfig::baseline(8)
    };
    let t = time_config(&config, 16384, &spec);
    assert_eq!(t.bottleneck, Bottleneck::Dram, "{t:?}");
}

#[test]
fn gflops_below_hardware_peak() {
    let spec = GpuSpec::p100();
    for n in [4usize, 16, 32, 64] {
        for unroll in Unroll::ALL {
            let config = KernelConfig {
                fast_math: true,
                unroll,
                ..KernelConfig::baseline(n)
            };
            let g = gflops_of_config(&config, 16384, &spec);
            assert!(g > 0.0 && g < spec.peak_gflops(), "n={n}: {g}");
        }
    }
}

#[test]
fn v100_is_faster_than_p100_on_memory_bound_kernels() {
    let config = KernelConfig {
        fast_math: true,
        ..KernelConfig::baseline(16)
    };
    let p = time_config(&config, 16384, &GpuSpec::p100()).time_s;
    let v = time_config(&config, 16384, &GpuSpec::v100()).time_s;
    assert!(v < p, "V100 {v} should beat P100 {p}");
}

#[test]
fn register_pressure_reduces_occupancy() {
    let spec = GpuSpec::p100();
    // Full unroll at n=20 needs ~234 registers; partial needs ~72.
    let heavy = KernelConfig {
        unroll: Unroll::Full,
        ..KernelConfig::baseline(20)
    };
    let light = KernelConfig {
        unroll: Unroll::Partial,
        ..KernelConfig::baseline(20)
    };
    let oh = time_config(&heavy, 16384, &spec).occupancy;
    let ol = time_config(&light, 16384, &spec).occupancy;
    assert!(oh.occupancy < ol.occupancy, "heavy {oh:?} vs light {ol:?}");
}

#[test]
fn full_unroll_past_register_capacity_spills() {
    let spec = GpuSpec::p100();
    let over = KernelConfig {
        unroll: Unroll::Full,
        ..KernelConfig::baseline(32)
    };
    let t = time_config(&over, 16384, &spec);
    assert!(t.spill_bytes > 0, "tri(32)+24 = 552 regs must spill");
    let under = KernelConfig {
        unroll: Unroll::Full,
        ..KernelConfig::baseline(16)
    };
    let t = time_config(&under, 16384, &spec);
    assert_eq!(t.spill_bytes, 0, "tri(16)+24 = 160 regs fits");
}

#[test]
fn full_unroll_within_capacity_moves_compulsory_traffic_only() {
    let spec = GpuSpec::p100();
    let batch = 16384usize;
    let n = 16;
    let config = KernelConfig {
        unroll: Unroll::Full,
        ..KernelConfig::baseline(n)
    };
    let t = time_config(&config, batch, &spec);
    // Compulsory: read + write the lower triangle once per matrix.
    let compulsory = (2 * (n * (n + 1) / 2) * 4 * batch) as u64;
    assert!(
        t.dram_bytes <= compulsory + compulsory / 8,
        "traffic {} vs compulsory {}",
        t.dram_bytes,
        compulsory
    );
}
