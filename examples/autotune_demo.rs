//! Autotuning demo: exhaustively sweep the kernel configuration space for
//! a few sizes (a reduced version of the paper's 14,000-run sweep), print
//! the winners, and compare against hill-climbing guided search.
//!
//! Run with: `cargo run --release --example autotune_demo`

use ibcf::autotune::heuristics::hill_climb;
use ibcf::prelude::*;

fn main() {
    let spec = GpuSpec::p100();
    let batch = 16_384;
    let space = ParamSpace::paper();
    let sizes = [8usize, 16, 24, 32, 48, 64];
    println!(
        "exhaustive sweep: {} sizes x {} configurations each (batch {batch})",
        sizes.len(),
        space.len_per_n()
    );

    let ds = sweep_sizes(
        &space,
        &sizes,
        &spec,
        &SweepOptions {
            batch,
            progress_every: 0,
            ..Default::default()
        },
    );
    let table = BestTable::new(&ds);

    println!("\n{:<4} {:>10}  best configuration", "n", "GFLOP/s");
    for &n in &sizes {
        let best = table.best(n).expect("swept size");
        println!("{:<4} {:>10.0}  {}", n, best.gflops, best.config);
    }

    // How much does tuning matter? Compare the best against the default.
    println!("\ntuning headroom (best vs baseline config):");
    for &n in &sizes {
        let base = ibcf::kernels::gflops_of_config(&KernelConfig::baseline(n), batch, &spec);
        let best = table.best(n).unwrap().gflops;
        println!(
            "  n={n:<3} baseline {base:>7.0} -> tuned {best:>7.0} ({:.2}x)",
            best / base
        );
    }

    // Guided search: how close, how much cheaper?
    println!("\nhill climbing vs exhaustive (the paper's 'selection bias' trade-off):");
    for &n in &[24usize, 48] {
        let exhaustive = table.best(n).unwrap().gflops;
        let result = hill_climb(&space, n, batch, &spec, 6, 1234);
        println!(
            "  n={n}: guided {:.0} GFLOP/s in {} evals vs exhaustive {:.0} in {} ({:.1}% of optimum)",
            result.best.gflops,
            result.evaluations,
            exhaustive,
            space.len_per_n(),
            100.0 * result.best.gflops / exhaustive
        );
    }
}
