//! Quickstart: factor a batch of small SPD matrices with the interleaved
//! device kernel, verify the numerics against the originals, solve a
//! right-hand side, and ask the timing model what the configuration would
//! achieve on a P100.
//!
//! Run with: `cargo run --release --example quickstart`

use ibcf::prelude::*;

fn main() {
    let n = 16;
    let batch = 1024;

    // 1. Pick a kernel configuration (n, tile size, looking order,
    //    chunking, unrolling, arithmetic). `baseline` is a sensible
    //    default; the autotuner can do better.
    let config = KernelConfig::baseline(n);
    println!("configuration: {config}");

    // 2. Lay out the batch and fill it with random SPD matrices.
    let layout = config.layout(batch);
    let mut data = vec![0.0f32; layout.len()];
    fill_batch_spd(&layout, &mut data, SpdKind::Wishart, 7);
    let originals = data.clone();

    // 3. Factorize every matrix on the simulated GPU (functional mode —
    //    real arithmetic, bit-for-bit reproducible).
    factorize_batch_device(&config, batch, &mut data);

    // 4. Verify: worst relative reconstruction error ‖A − L·Lᵀ‖/‖A‖.
    let err = batch_reconstruction_error(&layout, &originals, &data);
    println!("worst reconstruction error over {batch} matrices: {err:.3e}");
    assert!(err < 1e-4, "factorization drifted");

    // 5. Solve A·x = b for every matrix using the computed factors (host
    //    batch solve against the device factors).
    let vb = VectorBatch::interleaved(n, batch);
    let mut rhs = vec![0.0f32; vb.len()];
    for mat in 0..batch {
        for i in 0..n {
            rhs[vb.addr(mat, i)] = 1.0;
        }
    }
    solve_batch(&layout, &data, &vb, &mut rhs);
    println!("solved {batch} systems; x_0[0] = {:.6}", rhs[vb.addr(0, 0)]);

    // 5b. Or do the whole factor+solve on the device in one call (POSV):
    //     [factors | right-hand sides] share one buffer.
    let padded = layout.padded_batch();
    let mut mem = vec![0.0f32; layout.len() + n * padded];
    mem[..layout.len()].copy_from_slice(&originals);
    for i in 0..n {
        for m in 0..padded {
            mem[layout.len() + i * padded + m] = 1.0;
        }
    }
    ibcf::kernels::posv_batch_device(&config, batch, &mut mem);
    let dev = mem[layout.len()]; // x_0[0] from the device pipeline
    let host = rhs[vb.addr(0, 0)];
    assert!(
        (dev - host).abs() < 1e-5,
        "device POSV {dev} vs host {host}"
    );
    println!("device POSV agrees with the host solve: x_0[0] = {dev:.6}");

    // 6. What would this configuration do on the paper's P100 at the
    //    paper's batch size?
    let spec = GpuSpec::p100();
    let timing = time_config(&config, 16384, &spec);
    let gflops = gflops_of_config(&config, 16384, &spec);
    println!(
        "P100 model @ batch 16384: {:.0} GFLOP/s ({:?}-bound, occupancy {:.0}%, row hit rate {:.0}%)",
        gflops,
        timing.bottleneck,
        timing.occupancy.occupancy * 100.0,
        timing.row_hit_rate * 100.0
    );

    // 7. Compare against the traditional (MAGMA-style) baseline.
    let trad = time_traditional(n, 16384, &spec, false).gflops(cholesky_flops_std(n) * 16384.0);
    println!(
        "traditional baseline: {trad:.0} GFLOP/s -> interleaved speedup {:.1}x",
        gflops / trad
    );
}
