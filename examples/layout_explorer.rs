//! Layout explorer: run the *same* Cholesky kernel over the canonical,
//! simple-interleaved, and chunked layouts and watch the memory system
//! react — coalescing transactions, DRAM row-buffer hit rate, and the
//! resulting GFLOP/s. This is the paper's §II-B argument, measured.
//!
//! Run with: `cargo run --release --example layout_explorer`

use ibcf::gpu::{time_thread_kernel, trace_warp, TimingOptions};
use ibcf::kernels::InterleavedCholesky;
use ibcf::prelude::*;

fn main() {
    let n = 12;
    let batch = 16_384;
    let spec = GpuSpec::p100();
    let config = KernelConfig::baseline(n);
    let flops = cholesky_flops_std(n) * batch as f64;

    println!(
        "same kernel (n={n}, nb={}, {} looking), three layouts, batch {batch}:\n",
        config.nb,
        config.looking.name()
    );
    println!(
        "{:<22} {:>12} {:>14} {:>12} {:>10}",
        "layout", "txn/access", "row hit rate", "DRAM MB", "GFLOP/s"
    );

    let layouts = [
        ("canonical", Layout::Canonical(Canonical::new(n, batch))),
        (
            "interleaved",
            Layout::Interleaved(Interleaved::new(n, batch)),
        ),
        ("chunked (64)", Layout::Chunked(Chunked::new(n, batch, 64))),
    ];
    for (name, layout) in layouts {
        let kernel = InterleavedCholesky::with_layout(config, layout);
        let launch = config.launch(batch);
        let t = time_thread_kernel(&kernel, launch, &spec, TimingOptions::default());
        println!(
            "{name:<22} {:>12.1} {:>13.0}% {:>12.1} {:>10.0}",
            t.transactions_per_access,
            t.row_hit_rate * 100.0,
            t.dram_bytes as f64 / 1e6,
            flops / t.time_s / 1e9
        );
    }

    // Show the raw coalescing of the very first warp load in each layout.
    println!("\nfirst warp access of the kernel, lane addresses (elements):");
    for (name, layout) in [
        ("canonical", Layout::Canonical(Canonical::new(n, batch))),
        (
            "interleaved",
            Layout::Interleaved(Interleaved::new(n, batch)),
        ),
    ] {
        let kernel = InterleavedCholesky::with_layout(config, layout);
        let trace = trace_warp(&kernel, config.launch(batch), 0, 0);
        let first = &trace.accesses[0];
        let shown: Vec<u32> = first.addrs.iter().copied().take(6).collect();
        let lines = {
            let mut l: Vec<u64> = first.addrs.iter().map(|&a| a as u64 * 4 / 128).collect();
            l.sort_unstable();
            l.dedup();
            l.len()
        };
        println!("  {name:<12} lanes 0..6 -> {shown:?}...  ({lines} x 128B lines)");
    }

    println!(
        "\nconclusion: identical arithmetic, ~{}x fewer memory transactions from layout alone",
        32
    );
}
