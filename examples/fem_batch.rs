//! Finite-element style workload: assemble and solve thousands of small
//! independent element systems — the first application class the paper's
//! introduction motivates batch solvers with.
//!
//! We build 1-D bar elements with `nodes` local nodes each (stiffness
//! matrices are SPD after constraining one node), assemble a batch in the
//! chunked interleaved layout, factorize it on the simulated GPU kernel,
//! and solve for unit end loads.
//!
//! Run with: `cargo run --release --example fem_batch`

use ibcf::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Local stiffness of a 1-D bar discretized into `nodes - 1` two-node
/// segments with per-segment stiffness `k[i]`, with node 0 clamped.
/// The reduced system over nodes 1..nodes is tridiagonal and SPD.
fn bar_stiffness(nodes: usize, k: &[f32]) -> Vec<f32> {
    let n = nodes - 1; // free nodes after the clamp
    let mut a = vec![0.0f32; n * n];
    for (seg, &ks) in k.iter().enumerate() {
        // Segment between global nodes seg and seg+1; free indices are
        // (seg-1, seg) after dropping node 0.
        let (i, j) = (seg as isize - 1, seg as isize);
        for &(r, c, v) in &[(i, i, ks), (i, j, -ks), (j, i, -ks), (j, j, ks)] {
            if r >= 0 && c >= 0 {
                a[r as usize + c as usize * n] += v;
            }
        }
    }
    a
}

fn main() {
    let nodes = 9; // 8x8 reduced element systems
    let n = nodes - 1;
    let batch = 4096;
    let mut rng = StdRng::seed_from_u64(2024);

    // Assemble the batch: each element gets random segment stiffnesses
    // (different material samples), scattered into the kernel's layout.
    let config = KernelConfig::baseline(n);
    let layout = config.layout(batch);
    let mut mats = vec![0.0f32; layout.len()];
    for e in 0..batch {
        let k: Vec<f32> = (0..nodes - 1)
            .map(|_| 1.0 + rng.random::<f32>() * 9.0)
            .collect();
        let a = bar_stiffness(nodes, &k);
        scatter_matrix(&layout, &mut mats, e, &a, n);
    }
    // Padding slots must be factorizable: identity.
    for e in batch..layout.padded_batch() {
        let eye = ColMatrix::<f32>::identity(n).into_vec();
        scatter_matrix(&layout, &mut mats, e, &eye, n);
    }
    let assembled = mats.clone();
    println!("assembled {batch} element systems of size {n}x{n}");

    // Factorize the whole batch on the simulated device kernel.
    factorize_batch_device(&config, batch, &mut mats);
    let err = batch_reconstruction_error(&layout, &assembled, &mats);
    println!("worst reconstruction error: {err:.3e}");
    assert!(err < 1e-3);

    // Unit load at the free end of every bar; solve for displacements.
    let vb = VectorBatch::interleaved(n, batch);
    let mut f = vec![0.0f32; vb.len()];
    for e in 0..batch {
        f[vb.addr(e, n - 1)] = 1.0;
    }
    solve_batch(&layout, &mats, &vb, &mut f);

    // Sanity: displacement of an end-loaded bar = sum of segment
    // compliances; check element 0 against the closed form.
    let mut rng_check = StdRng::seed_from_u64(2024);
    let k0: Vec<f32> = (0..nodes - 1)
        .map(|_| 1.0 + rng_check.random::<f32>() * 9.0)
        .collect();
    let expect: f32 = k0.iter().map(|k| 1.0 / k).sum();
    let got = f[vb.addr(0, n - 1)];
    println!("element 0 end displacement: {got:.5} (closed form {expect:.5})");
    assert!((got - expect).abs() / expect < 1e-3);

    // Displacements must be monotone along the bar (tension everywhere).
    for e in [0usize, 1, batch - 1] {
        for i in 1..n {
            assert!(
                f[vb.addr(e, i)] >= f[vb.addr(e, i - 1)] - 1e-5,
                "non-monotone displacement in element {e}"
            );
        }
    }
    println!("all {batch} solutions physically consistent");
}
