//! Alternating Least Squares for recommender systems — the application
//! that motivated the paper (its reference [10]).
//!
//! ALS factorizes a sparse ratings matrix `R ≈ U·Vᵀ` by alternating:
//! fixing item factors `V` and solving, **for every user**, a small
//! `f × f` SPD normal-equations system (f = latent rank); then the same
//! per item. Each half-step is exactly a *batch Cholesky factorization
//! and solve of thousands of tiny matrices* — the workload this library
//! accelerates.
//!
//! Run with: `cargo run --release --example als_recommender`

use ibcf::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A sparse rating: user, item, value.
struct Rating {
    user: usize,
    item: usize,
    value: f32,
}

/// Synthetic ratings from a planted low-rank model plus noise.
fn synthetic_ratings(
    users: usize,
    items: usize,
    rank: usize,
    per_user: usize,
    rng: &mut StdRng,
) -> (Vec<Rating>, Vec<f32>, Vec<f32>) {
    let mut u_true = vec![0.0f32; users * rank];
    let mut v_true = vec![0.0f32; items * rank];
    for x in u_true.iter_mut().chain(v_true.iter_mut()) {
        *x = rng.random::<f32>() - 0.5;
    }
    let mut ratings = Vec::new();
    for user in 0..users {
        for _ in 0..per_user {
            let item = rng.random_range(0..items);
            let mut dot = 0.0f32;
            for k in 0..rank {
                dot += u_true[user * rank + k] * v_true[item * rank + k];
            }
            ratings.push(Rating {
                user,
                item,
                value: dot + 0.05 * (rng.random::<f32>() - 0.5),
            });
        }
    }
    (ratings, u_true, v_true)
}

/// One ALS half-step: solve, for each of `count` entities, the system
/// `(Σ v vᵀ + λI) x = Σ r·v` over its ratings. Returns the new factors.
fn als_half_step(
    count: usize,
    rank: usize,
    lambda: f32,
    ratings: &[Rating],
    other: &[f32],
    by_user: bool,
) -> Vec<f32> {
    // Assemble the batch of normal-equation matrices, interleaved.
    let layout = Interleaved::new(rank, count);
    let mut mats = vec![0.0f32; layout.len()];
    let vb = VectorBatch::interleaved(rank, count);
    let mut rhs = vec![0.0f32; vb.len()];
    // λI regularization on every diagonal.
    for e in 0..count {
        for k in 0..rank {
            mats[layout.addr(e, k, k)] = lambda;
        }
    }
    for r in ratings {
        let (entity, oidx) = if by_user {
            (r.user, r.item)
        } else {
            (r.item, r.user)
        };
        let v = &other[oidx * rank..(oidx + 1) * rank];
        for i in 0..rank {
            for j in 0..=i {
                let a = layout.addr(entity, i, j);
                mats[a] += v[i] * v[j];
            }
            rhs[vb.addr(entity, i)] += r.value * v[i];
        }
    }
    // Mirror the lower triangle (the kernels only read the lower part,
    // but keep the full square well-defined).
    for e in 0..count {
        for i in 0..rank {
            for j in 0..i {
                let lower = mats[layout.addr(e, i, j)];
                mats[layout.addr(e, j, i)] = lower;
            }
        }
    }
    // Batch Cholesky + batch solve — the paper's workload.
    let report = factorize_batch(&layout, &mut mats);
    assert!(report.all_ok(), "ALS normal equations must be SPD");
    solve_batch(&layout, &mats, &vb, &mut rhs);
    // Unpack the solutions into a dense factor matrix.
    let mut out = vec![0.0f32; count * rank];
    for e in 0..count {
        for k in 0..rank {
            out[e * rank + k] = rhs[vb.addr(e, k)];
        }
    }
    out
}

fn rmse(ratings: &[Rating], u: &[f32], v: &[f32], rank: usize) -> f64 {
    let mut se = 0.0f64;
    for r in ratings {
        let mut dot = 0.0f32;
        for k in 0..rank {
            dot += u[r.user * rank + k] * v[r.item * rank + k];
        }
        se += ((dot - r.value) as f64).powi(2);
    }
    (se / ratings.len() as f64).sqrt()
}

fn main() {
    let users = 2000;
    let items = 800;
    let rank = 12; // the tiny-matrix dimension: one 12x12 solve per entity
    let lambda = 0.05;
    let mut rng = StdRng::seed_from_u64(99);
    let (ratings, _, _) = synthetic_ratings(users, items, rank, 20, &mut rng);
    println!(
        "ALS: {} ratings, {users} users x {items} items, rank {rank} \
         -> per sweep: {users} + {items} batched {rank}x{rank} Cholesky solves",
        ratings.len()
    );

    // Random init for V.
    let mut v: Vec<f32> = (0..items * rank)
        .map(|_| rng.random::<f32>() - 0.5)
        .collect();
    let mut u = vec![0.0f32; users * rank];
    for sweep in 1..=8 {
        u = als_half_step(users, rank, lambda, &ratings, &v, true);
        v = als_half_step(items, rank, lambda, &ratings, &u, false);
        println!("sweep {sweep}: RMSE {:.4}", rmse(&ratings, &u, &v, rank));
    }
    let final_rmse = rmse(&ratings, &u, &v, rank);
    assert!(
        final_rmse < 0.1,
        "ALS failed to converge: RMSE {final_rmse}"
    );
    println!("converged: RMSE {final_rmse:.4}");
}
