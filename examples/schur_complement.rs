//! Batched block elimination via Schur complements — a domain-
//! decomposition workload composed entirely of the library's batched
//! interleaved kernels.
//!
//! For thousands of 2n × 2n SPD systems `[[A, Bᵀ], [B, C]]` (interior and
//! interface unknowns of independent subdomains), block elimination
//! computes, per system:
//!
//! 1. `A = L·Lᵀ`                (batched POTRF — the paper's kernel),
//! 2. `X = B·L⁻ᵀ`               (batched TRSM),
//! 3. `S = C − X·Xᵀ`            (batched SYRK — the Schur complement),
//! 4. `S = Ls·Lsᵀ`              (batched POTRF again).
//!
//! The result is verified against a direct factorization of the assembled
//! 2n × 2n systems by the f64 host oracle.
//!
//! Run with: `cargo run --release --example schur_complement`

use ibcf::kernels::{syrk_batch_device, trsm_batch_device, InterleavedSyrk, InterleavedTrsm};
use ibcf::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let n = 8; // block size; full systems are 16 x 16
    let batch = 512;
    let config = KernelConfig::baseline(n);
    let lay = config.layout(batch);
    let region = lay.len();
    let mut rng = StdRng::seed_from_u64(77);

    // Assemble per-system blocks A (SPD), B (general), C (SPD, made
    // strongly definite so S stays SPD).
    // Device buffer: [A | B | C] — three interleaved regions.
    let mut mem = vec![0.0f32; 3 * region];
    let mut full_systems: Vec<Vec<f64>> = Vec::with_capacity(batch);
    for m in 0..lay.padded_batch() {
        let a = random_spd::<f32>(n, SpdKind::Wishart, &mut rng);
        let bmat = ColMatrix::<f32>::from_fn(n, n, |_, _| rng.random::<f32>() - 0.5);
        let mut c = random_spd::<f32>(n, SpdKind::Wishart, &mut rng);
        for i in 0..n {
            c[(i, i)] += 4.0 * n as f32; // keep the Schur complement SPD
        }
        scatter_matrix(&lay, &mut mem[..region], m, a.as_slice(), n);
        scatter_matrix(&lay, &mut mem[region..2 * region], m, bmat.as_slice(), n);
        scatter_matrix(&lay, &mut mem[2 * region..], m, c.as_slice(), n);
        if m < batch {
            // Assemble the full 2n x 2n system for the oracle.
            let two = 2 * n;
            let mut full = vec![0.0f64; two * two];
            for col in 0..n {
                for row in 0..n {
                    full[row + col * two] = a[(row, col)] as f64;
                    full[(n + row) + col * two] = bmat[(row, col)] as f64;
                    full[col + (n + row) * two] = bmat[(row, col)] as f64;
                    full[(n + row) + (n + col) * two] = c[(row, col)] as f64;
                }
            }
            full_systems.push(full);
        }
    }

    println!(
        "eliminating {batch} systems of size {}x{} (block size {n})",
        2 * n,
        2 * n
    );

    // 1. Factor the A blocks in place.
    factorize_batch_device(&config, batch, &mut mem[..region]);
    // 2. X = B · L^-T.
    trsm_batch_device(
        &InterleavedTrsm {
            layout: lay,
            l_offset: 0,
            b_offset: region,
            nb: config.nb,
        },
        &mut mem,
        config.chunk_size,
    );
    // 3. S = C − X·Xᵀ.
    syrk_batch_device(
        &InterleavedSyrk {
            layout: lay,
            a_offset: region,
            c_offset: 2 * region,
            nb: config.nb,
        },
        &mut mem,
        config.chunk_size,
    );
    // 4. Factor the Schur complements in place.
    {
        let tail = &mut mem[2 * region..];
        factorize_batch_device(&config, batch, tail);
    }

    // Verify: the (2,2) block of the full system's factor equals Ls.
    let two = 2 * n;
    let mut worst = 0.0f64;
    let mut ls = vec![0.0f32; n * n];
    for (m, full) in full_systems.iter().enumerate() {
        let mut f = full.clone();
        potrf_unblocked(two, &mut f, two).expect("full system SPD");
        gather_matrix(&lay, &mem[2 * region..], m, &mut ls, n);
        for col in 0..n {
            for row in col..n {
                let oracle = f[(n + row) + (n + col) * two];
                let got = ls[row + col * n] as f64;
                worst = worst.max((got - oracle).abs() / oracle.abs().max(1.0));
            }
        }
    }
    println!("worst relative deviation of Schur factors vs 2n oracle: {worst:.3e}");
    assert!(worst < 1e-3, "Schur pipeline drifted: {worst}");
    println!("block elimination pipeline verified against the full-system oracle");
}
