//! # ibcf — Interleaved Batch Cholesky Factorization
//!
//! A full reproduction of *Autotuning Batch Cholesky Factorization in CUDA
//! with Interleaved Layout of Matrices* (Gates, Kurzak, Luszczek, Pei,
//! Dongarra — IPPS 2017) in Rust, with the GPU replaced by an explicit
//! SIMT simulator.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`layout`] — canonical / interleaved / chunked batch layouts,
//! * [`core`] — host batch linear algebra (reference Cholesky, tile
//!   microkernels, blocked variants, SPD generators, solves),
//! * [`gpu`] — the SIMT GPU simulator (functional + timing),
//! * [`kernels`] — the interleaved and traditional device kernels,
//! * [`autotune`] — the exhaustive sweep and best-configuration queries,
//! * [`forest`] — random-forest regression and permutation importance.
//!
//! ## Quickstart
//!
//! ```
//! use ibcf::prelude::*;
//!
//! // A batch of 256 SPD matrices of dimension 12, chunked-interleaved.
//! let config = KernelConfig::baseline(12);
//! let layout = config.layout(256);
//! let mut data = vec![0.0f32; layout.len()];
//! fill_batch_spd(&layout, &mut data, SpdKind::Wishart, 42);
//! let orig = data.clone();
//!
//! // Factorize on the simulated GPU and verify against the originals.
//! factorize_batch_device(&config, 256, &mut data);
//! let err = batch_reconstruction_error(&layout, &orig, &data);
//! assert!(err < 1e-4);
//!
//! // Ask the timing model what this configuration would achieve on a P100.
//! let gflops = gflops_of_config(&config, 16384, &GpuSpec::p100());
//! assert!(gflops > 100.0);
//! ```

pub use ibcf_autotune as autotune;
pub use ibcf_core as core;
pub use ibcf_forest as forest;
pub use ibcf_gpu_sim as gpu;
pub use ibcf_kernels as kernels;
pub use ibcf_layout as layout;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use ibcf_autotune::{
        sweep, sweep_sizes, BestTable, Dataset, Measurement, ParamSpace, SweepOptions,
        TunedDispatch,
    };
    pub use ibcf_core::flops::{batch_gflops, cholesky_flops_std};
    pub use ibcf_core::host_batch::{factorize_batch, factorize_batch_seq};
    pub use ibcf_core::lane_batch::{
        factorize_batch_auto, factorize_batch_lanes, lane_compatible, LaneOrder, LaneWidth,
    };
    pub use ibcf_core::solve::{solve_batch, solve_cholesky, VectorBatch};
    pub use ibcf_core::spd::{fill_batch_spd, random_spd, SpdKind};
    pub use ibcf_core::verify::{batch_reconstruction_error, reconstruction_error};
    pub use ibcf_core::{
        batch_cond_estimate, cond_estimate, potrf_blocked, potrf_unblocked, potrf_uplo,
        solve_cholesky_uplo, CholeskyError, ColMatrix, Looking, Uplo,
    };
    pub use ibcf_forest::{
        partial_dependence, permutation_importance, Forest, ForestConfig, TableData,
    };
    pub use ibcf_gpu_sim::{GpuSpec, KernelTiming, LaunchConfig};
    pub use ibcf_kernels::{
        emit_cuda, factorize_batch_device, factorize_batch_traditional, gflops_of_config,
        pack_batch_device, pack_batch_host, solve_batch_device, time_config, time_solve,
        time_traditional, unpack_batch_host, CachePref, InterleavedCholesky, InterleavedSolve,
        KernelConfig, PackKernel, TraditionalCholesky, Unroll,
    };
    pub use ibcf_layout::{
        alloc_aligned, alloc_batch, gather_lower, gather_matrix, pack_symmetric, scatter_lower,
        scatter_matrix, transcode, unpack_symmetric, AlignedVec, BatchLayout, Canonical, Chunked,
        Interleaved, Layout, LayoutKind, PackedChunked, BUFFER_ALIGN,
    };
}
