//! Regression quality metrics.

/// Mean squared error of paired predictions.
///
/// # Panics
/// If the slices differ in length or are empty.
pub fn mse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty(), "mse of empty slice");
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64
}

/// Coefficient of determination R².
pub fn r2(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty());
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Pearson correlation coefficient (the statistic behind Figure 21's
/// predicted-vs-observed cloud).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    assert!(a.len() >= 2, "correlation needs at least two points");
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// Mean and sample standard deviation.
pub fn mean_sd(xs: &[f64]) -> (f64, f64) {
    assert!(!xs.is_empty());
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_basics() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(mse(&[0.0, 0.0], &[2.0, 2.0]), 4.0);
    }

    #[test]
    fn r2_perfect_and_mean_predictor() {
        let truth = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(r2(&truth, &truth), 1.0);
        let mean_pred = [2.5; 4];
        assert!(r2(&mean_pred, &truth).abs() < 1e-12);
    }

    #[test]
    fn pearson_signs() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let z: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
        let c = [5.0; 4];
        assert_eq!(pearson(&x, &c), 0.0);
    }

    #[test]
    fn mean_sd_matches_hand_calc() {
        let (m, s) = mean_sd(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }
}
