//! Partial-dependence analysis: the marginal effect of one feature on the
//! forest's prediction, averaged over the data distribution.
//!
//! Permutation importance (Table I) says *which* parameters matter;
//! partial dependence says *how*: e.g. predicted GFLOP/s as a function of
//! `nb` with everything else marginalized — an actionable tuning guide
//! extracted from the same model.

use crate::dataset::TableData;
use crate::forest::Forest;

/// One partial-dependence curve.
#[derive(Debug, Clone)]
pub struct PartialDependence {
    /// The feature the curve varies.
    pub feature: usize,
    /// Grid values of the feature.
    pub grid: Vec<f64>,
    /// Mean model prediction at each grid value.
    pub response: Vec<f64>,
}

impl PartialDependence {
    /// Range of the response (max − min): a crude effect size.
    pub fn effect_size(&self) -> f64 {
        let max = self
            .response
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let min = self.response.iter().copied().fold(f64::INFINITY, f64::min);
        max - min
    }
}

/// Computes the partial dependence of `feature` over its distinct values
/// in the data (or an explicit `grid`): for each grid value `v`, every row
/// is evaluated with its `feature` column replaced by `v`, and the
/// predictions averaged. Rows are subsampled to at most `max_rows` for
/// tractability (deterministic stride subsampling).
pub fn partial_dependence(
    forest: &Forest,
    data: &TableData,
    feature: usize,
    grid: Option<Vec<f64>>,
    max_rows: usize,
) -> PartialDependence {
    assert!(feature < data.num_features(), "feature index out of range");
    assert!(!data.is_empty(), "empty data");
    let grid = grid.unwrap_or_else(|| {
        let mut vals: Vec<f64> = data.rows.iter().map(|r| r[feature]).collect();
        vals.sort_by(f64::total_cmp);
        vals.dedup();
        // Cap the grid at 16 quantile points for continuous features.
        if vals.len() > 16 {
            let mut g = Vec::with_capacity(16);
            for i in 0..16 {
                g.push(vals[i * (vals.len() - 1) / 15]);
            }
            g.dedup();
            g
        } else {
            vals
        }
    });
    let stride = (data.len() / max_rows.max(1)).max(1);
    let rows: Vec<&Vec<f64>> = data.rows.iter().step_by(stride).collect();
    let mut response = Vec::with_capacity(grid.len());
    let mut buf = vec![0.0f64; data.num_features()];
    for &v in &grid {
        let mut sum = 0.0f64;
        for row in &rows {
            buf.copy_from_slice(row);
            buf[feature] = v;
            sum += forest.predict(&buf);
        }
        response.push(sum / rows.len() as f64);
    }
    PartialDependence {
        feature,
        grid,
        response,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestConfig;

    /// y = 4·x0 + noise; x1 irrelevant.
    fn synth(n: usize) -> TableData {
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        let mut state = 77u64;
        let mut unit = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 40) as f64 / (1u64 << 24) as f64
        };
        for _ in 0..n {
            let x0 = unit();
            let x1 = unit();
            rows.push(vec![x0, x1]);
            targets.push(4.0 * x0 + 0.02 * (unit() - 0.5));
        }
        TableData::new(vec!["x0".into(), "x1".into()], rows, targets)
    }

    #[test]
    fn pdp_recovers_monotone_effect() {
        let data = synth(600);
        let forest = Forest::fit(
            &data,
            ForestConfig {
                num_trees: 60,
                ..Default::default()
            },
        );
        let pdp = partial_dependence(&forest, &data, 0, None, 200);
        // Response must be (weakly) increasing along the grid and span
        // most of the 0..4 range.
        for w in pdp.response.windows(2) {
            assert!(w[1] >= w[0] - 0.15, "non-monotone: {:?}", pdp.response);
        }
        assert!(pdp.effect_size() > 2.5, "effect {:.2}", pdp.effect_size());
    }

    #[test]
    fn irrelevant_feature_is_flat() {
        let data = synth(600);
        let forest = Forest::fit(
            &data,
            ForestConfig {
                num_trees: 60,
                ..Default::default()
            },
        );
        let flat = partial_dependence(&forest, &data, 1, None, 200);
        let strong = partial_dependence(&forest, &data, 0, None, 200);
        assert!(
            flat.effect_size() < 0.2 * strong.effect_size(),
            "flat {:.3} vs strong {:.3}",
            flat.effect_size(),
            strong.effect_size()
        );
    }

    #[test]
    fn explicit_grid_is_respected() {
        let data = synth(100);
        let forest = Forest::fit(
            &data,
            ForestConfig {
                num_trees: 10,
                ..Default::default()
            },
        );
        let pdp = partial_dependence(&forest, &data, 0, Some(vec![0.0, 0.5, 1.0]), 50);
        assert_eq!(pdp.grid, vec![0.0, 0.5, 1.0]);
        assert_eq!(pdp.response.len(), 3);
    }
}
