//! Random-forest regression, built from scratch for the paper's
//! Section IV analysis.
//!
//! The paper models its 14,000-measurement autotuning corpus with R's
//! `randomForest` (500 trees, average depth 11, regression mode), reports
//! per-parameter predictive power as permutation importance (Table I), and
//! plots predicted-vs-observed performance (Figure 21). This crate
//! provides the same pipeline: CART regression trees with variance-
//! reduction splits, bootstrap bagging with out-of-bag (OOB) tracking,
//! OOB-permutation importance (`%IncMSE`, signed — irrelevant features come
//! out near or below zero), and prediction/correlation metrics.

#![warn(missing_docs)]

pub mod dataset;
pub mod forest;
pub mod importance;
pub mod metrics;
pub mod pdp;
pub mod tree;

pub use dataset::TableData;
pub use forest::{Forest, ForestConfig};
pub use importance::{permutation_importance, Importance};
pub use metrics::{mse, pearson, r2};
pub use pdp::{partial_dependence, PartialDependence};
pub use tree::{RegressionTree, TreeConfig};
