//! Tabular training data.

use serde::{Deserialize, Serialize};

/// A dense feature table with a regression target.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableData {
    /// Feature names, one per column.
    pub names: Vec<String>,
    /// Row-major feature matrix.
    pub rows: Vec<Vec<f64>>,
    /// Regression targets, one per row.
    pub targets: Vec<f64>,
}

impl TableData {
    /// Builds a table, checking shape consistency.
    ///
    /// # Panics
    /// If row lengths disagree with `names` or `targets` has a different
    /// length than `rows`.
    pub fn new(names: Vec<String>, rows: Vec<Vec<f64>>, targets: Vec<f64>) -> Self {
        assert_eq!(
            rows.len(),
            targets.len(),
            "rows and targets length mismatch"
        );
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), names.len(), "row {i} has wrong width");
        }
        TableData {
            names,
            rows,
            targets,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of feature columns.
    pub fn num_features(&self) -> usize {
        self.names.len()
    }

    /// Mean of the targets.
    pub fn target_mean(&self) -> f64 {
        if self.targets.is_empty() {
            0.0
        } else {
            self.targets.iter().sum::<f64>() / self.targets.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks() {
        let t = TableData::new(
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            vec![10.0, 20.0],
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.num_features(), 2);
        assert_eq!(t.target_mean(), 15.0);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "wrong width")]
    fn rejects_ragged_rows() {
        let _ = TableData::new(
            vec!["a".into()],
            vec![vec![1.0], vec![2.0, 3.0]],
            vec![1.0, 2.0],
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_target_mismatch() {
        let _ = TableData::new(vec!["a".into()], vec![vec![1.0]], vec![1.0, 2.0]);
    }
}
