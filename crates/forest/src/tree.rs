//! CART regression trees with variance-reduction splits.

use crate::dataset::TableData;
use rand::seq::SliceRandom;
use rand::Rng;

/// Tree growth limits.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum depth (`usize::MAX` for unlimited).
    pub max_depth: usize,
    /// Minimum samples a leaf may hold.
    pub min_samples_leaf: usize,
    /// Features considered per split (`mtry`); 0 means all.
    pub mtry: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: usize::MAX,
            min_samples_leaf: 5,
            mtry: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: u32,
        right: u32,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

struct Builder<'a> {
    data: &'a TableData,
    config: TreeConfig,
    nodes: Vec<Node>,
}

/// Finds the SSE-minimizing split of `idx` on `feature`. Returns
/// `(threshold, sse, left_count)` or `None` if no valid split exists.
fn best_split_on(
    data: &TableData,
    idx: &[usize],
    feature: usize,
    min_leaf: usize,
) -> Option<(f64, f64)> {
    let mut order: Vec<usize> = idx.to_vec();
    order.sort_by(|&a, &b| data.rows[a][feature].total_cmp(&data.rows[b][feature]));
    let n = order.len();
    // Prefix sums of y and y².
    let mut sum = 0.0f64;
    let mut sum2 = 0.0f64;
    let total: f64 = order.iter().map(|&i| data.targets[i]).sum();
    let total2: f64 = order
        .iter()
        .map(|&i| data.targets[i] * data.targets[i])
        .sum();
    let mut best: Option<(f64, f64)> = None;
    for k in 0..n - 1 {
        let y = data.targets[order[k]];
        sum += y;
        sum2 += y * y;
        let left_n = k + 1;
        let right_n = n - left_n;
        if left_n < min_leaf || right_n < min_leaf {
            continue;
        }
        let xv = data.rows[order[k]][feature];
        let xn = data.rows[order[k + 1]][feature];
        if xv == xn {
            continue; // can't split between equal values
        }
        let sse_left = sum2 - sum * sum / left_n as f64;
        let rs = total - sum;
        let rs2 = total2 - sum2;
        let sse_right = rs2 - rs * rs / right_n as f64;
        let sse = sse_left + sse_right;
        if best.is_none_or(|(_, b)| sse < b) {
            best = Some(((xv + xn) / 2.0, sse));
        }
    }
    best
}

impl Builder<'_> {
    fn build(&mut self, idx: &[usize], depth: usize, rng: &mut impl Rng) -> u32 {
        let mean = idx.iter().map(|&i| self.data.targets[i]).sum::<f64>() / idx.len().max(1) as f64;
        let constant = idx
            .iter()
            .all(|&i| (self.data.targets[i] - mean).abs() < 1e-12);
        if depth >= self.config.max_depth
            || idx.len() < 2 * self.config.min_samples_leaf
            || constant
        {
            self.nodes.push(Node::Leaf(mean));
            return (self.nodes.len() - 1) as u32;
        }

        // Feature subset (mtry).
        let nf = self.data.num_features();
        let mtry = if self.config.mtry == 0 {
            nf
        } else {
            self.config.mtry.min(nf)
        };
        let mut feats: Vec<usize> = (0..nf).collect();
        feats.shuffle(rng);
        feats.truncate(mtry);

        let mut best: Option<(usize, f64, f64)> = None;
        for &f in &feats {
            if let Some((thr, sse)) = best_split_on(self.data, idx, f, self.config.min_samples_leaf)
            {
                if best.is_none_or(|(_, _, b)| sse < b) {
                    best = Some((f, thr, sse));
                }
            }
        }
        let Some((feature, threshold, _)) = best else {
            self.nodes.push(Node::Leaf(mean));
            return (self.nodes.len() - 1) as u32;
        };

        let mut left: Vec<usize> = Vec::new();
        let mut right: Vec<usize> = Vec::new();
        for &i in idx.iter() {
            if self.data.rows[i][feature] <= threshold {
                left.push(i);
            } else {
                right.push(i);
            }
        }
        debug_assert!(!left.is_empty() && !right.is_empty());
        // Reserve this node's slot before recursing.
        self.nodes.push(Node::Leaf(mean));
        let slot = (self.nodes.len() - 1) as u32;
        let l = self.build(&left, depth + 1, rng);
        let r = self.build(&right, depth + 1, rng);
        self.nodes[slot as usize] = Node::Split {
            feature,
            threshold,
            left: l,
            right: r,
        };
        slot
    }
}

impl RegressionTree {
    /// Fits a tree on the rows selected by `idx`.
    pub fn fit(data: &TableData, idx: &[usize], config: TreeConfig, rng: &mut impl Rng) -> Self {
        assert!(!idx.is_empty(), "cannot fit a tree on no rows");
        let mut b = Builder {
            data,
            config,
            nodes: Vec::new(),
        };
        let root = b.build(idx, 0, rng);
        debug_assert_eq!(root, 0);
        RegressionTree { nodes: b.nodes }
    }

    /// Predicts one feature row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cur = if row[*feature] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Average leaf depth — the statistic the paper quotes ("500 trees of
    /// average depth 11").
    pub fn average_leaf_depth(&self) -> f64 {
        let mut total = 0usize;
        let mut leaves = 0usize;
        let mut stack = vec![(0usize, 0usize)];
        while let Some((node, depth)) = stack.pop() {
            match &self.nodes[node] {
                Node::Leaf(_) => {
                    total += depth;
                    leaves += 1;
                }
                Node::Split { left, right, .. } => {
                    stack.push((*left as usize, depth + 1));
                    stack.push((*right as usize, depth + 1));
                }
            }
        }
        if leaves == 0 {
            0.0
        } else {
            total as f64 / leaves as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn step_data() -> TableData {
        // y = 10 if x0 > 0.5 else 2; x1 is noise.
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for i in 0..100 {
            let x0 = i as f64 / 100.0;
            rows.push(vec![x0, (i % 7) as f64]);
            targets.push(if x0 > 0.5 { 10.0 } else { 2.0 });
        }
        TableData::new(vec!["x0".into(), "noise".into()], rows, targets)
    }

    #[test]
    fn learns_a_step_function() {
        let data = step_data();
        let idx: Vec<usize> = (0..data.len()).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let t = RegressionTree::fit(&data, &idx, TreeConfig::default(), &mut rng);
        assert!((t.predict(&[0.1, 3.0]) - 2.0).abs() < 1e-9);
        assert!((t.predict(&[0.9, 3.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn respects_max_depth() {
        let data = step_data();
        let idx: Vec<usize> = (0..data.len()).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        };
        let t = RegressionTree::fit(&data, &idx, cfg, &mut rng);
        assert_eq!(t.num_nodes(), 1);
        // Root leaf = overall mean.
        let mean = data.target_mean();
        assert!((t.predict(&[0.9, 0.0]) - mean).abs() < 1e-9);
    }

    #[test]
    fn min_leaf_limits_granularity() {
        let data = step_data();
        let idx: Vec<usize> = (0..data.len()).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = TreeConfig {
            min_samples_leaf: 60,
            ..TreeConfig::default()
        };
        let t = RegressionTree::fit(&data, &idx, cfg, &mut rng);
        assert_eq!(t.num_nodes(), 1, "no split can keep both sides >= 60");
    }

    #[test]
    fn fits_smooth_function_approximately() {
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for i in 0..400 {
            let x = i as f64 / 400.0 * 6.0;
            rows.push(vec![x]);
            targets.push(x.sin());
        }
        let data = TableData::new(vec!["x".into()], rows, targets);
        let idx: Vec<usize> = (0..data.len()).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = TreeConfig {
            min_samples_leaf: 3,
            ..TreeConfig::default()
        };
        let t = RegressionTree::fit(&data, &idx, cfg, &mut rng);
        let mut worst = 0.0f64;
        for i in 0..60 {
            let x = i as f64 / 10.0;
            worst = worst.max((t.predict(&[x]) - x.sin()).abs());
        }
        assert!(worst < 0.15, "worst error {worst}");
        assert!(t.average_leaf_depth() > 3.0);
    }

    #[test]
    fn constant_targets_give_single_leaf() {
        let data = TableData::new(
            vec!["x".into()],
            (0..50).map(|i| vec![i as f64]).collect(),
            vec![7.0; 50],
        );
        let idx: Vec<usize> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let t = RegressionTree::fit(&data, &idx, TreeConfig::default(), &mut rng);
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.predict(&[25.0]), 7.0);
    }
}
