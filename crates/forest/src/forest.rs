//! Bootstrap-bagged forests with out-of-bag tracking.

use crate::dataset::TableData;
use crate::metrics::mse;
use crate::tree::{RegressionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;

/// Forest hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct ForestConfig {
    /// Number of trees (the paper uses 500).
    pub num_trees: usize,
    /// Per-tree growth limits. With `mtry = 0`, regression default
    /// `max(1, p/3)` is used, like R's `randomForest`.
    pub tree: TreeConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            num_trees: 500,
            tree: TreeConfig::default(),
            seed: 0x5eed,
        }
    }
}

/// A fitted random forest.
pub struct Forest {
    trees: Vec<RegressionTree>,
    /// Out-of-bag row indices per tree.
    oob: Vec<Vec<usize>>,
    config: ForestConfig,
}

impl Forest {
    /// Fits a forest; trees train in parallel.
    ///
    /// # Examples
    ///
    /// ```
    /// use ibcf_forest::{Forest, ForestConfig, TableData};
    ///
    /// // y = 2·x over a small grid.
    /// let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
    /// let targets: Vec<f64> = (0..100).map(|i| 2.0 * i as f64).collect();
    /// let data = TableData::new(vec!["x".into()], rows, targets);
    /// let forest = Forest::fit(&data, ForestConfig { num_trees: 20, ..Default::default() });
    /// let y = forest.predict(&[50.0]);
    /// assert!((y - 100.0).abs() < 10.0);
    /// ```
    pub fn fit(data: &TableData, config: ForestConfig) -> Self {
        assert!(!data.is_empty(), "cannot fit a forest on no rows");
        assert!(config.num_trees > 0);
        let n = data.len();
        let p = data.num_features();
        let mut tree_cfg = config.tree;
        if tree_cfg.mtry == 0 {
            tree_cfg.mtry = (p / 3).max(1);
        }
        let fitted: Vec<(RegressionTree, Vec<usize>)> = (0..config.num_trees)
            .into_par_iter()
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(config.seed ^ (t as u64).wrapping_mul(0x9E37));
                let mut in_bag = vec![false; n];
                let mut idx = Vec::with_capacity(n);
                for _ in 0..n {
                    let i = rng.random_range(0..n);
                    in_bag[i] = true;
                    idx.push(i);
                }
                let tree = RegressionTree::fit(data, &idx, tree_cfg, &mut rng);
                let oob: Vec<usize> = (0..n).filter(|&i| !in_bag[i]).collect();
                (tree, oob)
            })
            .collect();
        let (trees, oob): (Vec<_>, Vec<_>) = fitted.into_iter().unzip();
        Forest { trees, oob, config }
    }

    /// Ensemble prediction (mean of tree predictions).
    pub fn predict(&self, row: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(row)).sum::<f64>() / self.trees.len() as f64
    }

    /// The fitted trees.
    pub fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }

    /// Out-of-bag rows per tree.
    pub fn oob_indices(&self) -> &[Vec<usize>] {
        &self.oob
    }

    /// The configuration used for fitting.
    pub fn config(&self) -> &ForestConfig {
        &self.config
    }

    /// Average leaf depth across trees (the paper: "500 trees of average
    /// depth 11").
    pub fn average_depth(&self) -> f64 {
        self.trees
            .iter()
            .map(|t| t.average_leaf_depth())
            .sum::<f64>()
            / self.trees.len() as f64
    }

    /// Out-of-bag prediction per row (`None` for rows every tree sampled).
    pub fn oob_predictions(&self, data: &TableData) -> Vec<Option<f64>> {
        let n = data.len();
        let mut sums = vec![0.0f64; n];
        let mut counts = vec![0u32; n];
        for (tree, oob) in self.trees.iter().zip(&self.oob) {
            for &i in oob {
                sums[i] += tree.predict(&data.rows[i]);
                counts[i] += 1;
            }
        }
        (0..n)
            .map(|i| {
                if counts[i] > 0 {
                    Some(sums[i] / counts[i] as f64)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Out-of-bag MSE.
    pub fn oob_mse(&self, data: &TableData) -> f64 {
        let preds = self.oob_predictions(data);
        let mut p = Vec::new();
        let mut t = Vec::new();
        for (i, pred) in preds.iter().enumerate() {
            if let Some(v) = pred {
                p.push(*v);
                t.push(data.targets[i]);
            }
        }
        mse(&p, &t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    /// y = 3·x0 − 2·x1 + deterministic pseudo-noise; x2 irrelevant.
    fn synth(n: usize) -> TableData {
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        let mut state = 12345u64;
        let mut unit = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 40) as f64 / (1u64 << 24) as f64
        };
        for _ in 0..n {
            let x0 = unit();
            let x1 = unit();
            let x2 = unit();
            rows.push(vec![x0, x1, x2]);
            targets.push(3.0 * x0 - 2.0 * x1 + 0.05 * (unit() - 0.5));
        }
        TableData::new(vec!["x0".into(), "x1".into(), "x2".into()], rows, targets)
    }

    #[test]
    fn forest_fits_linear_signal() {
        let data = synth(600);
        let cfg = ForestConfig {
            num_trees: 80,
            ..ForestConfig::default()
        };
        let f = Forest::fit(&data, cfg);
        let preds: Vec<f64> = data.rows.iter().map(|r| f.predict(r)).collect();
        let score = r2(&preds, &data.targets);
        assert!(score > 0.9, "in-sample R² {score}");
        let oob = f.oob_mse(&data);
        // Target variance is about 9/12 + 4/12 ≈ 1.08; OOB must beat the
        // mean predictor by a wide margin.
        assert!(oob < 0.3, "OOB MSE {oob}");
    }

    #[test]
    fn oob_indices_are_nonempty_and_disjoint_from_perfection() {
        let data = synth(200);
        let f = Forest::fit(
            &data,
            ForestConfig {
                num_trees: 20,
                ..ForestConfig::default()
            },
        );
        // With n=200, each tree leaves ~36% of rows out of bag.
        for oob in f.oob_indices() {
            assert!(
                oob.len() > 200 / 5,
                "suspiciously few OOB rows: {}",
                oob.len()
            );
        }
        let preds = f.oob_predictions(&data);
        let covered = preds.iter().filter(|p| p.is_some()).count();
        assert!(covered > 190, "OOB coverage {covered}");
    }

    #[test]
    fn forest_is_deterministic_given_seed() {
        let data = synth(150);
        let cfg = ForestConfig {
            num_trees: 10,
            ..ForestConfig::default()
        };
        let a = Forest::fit(&data, cfg);
        let b = Forest::fit(&data, cfg);
        for r in &data.rows[..20] {
            assert_eq!(a.predict(r), b.predict(r));
        }
    }

    #[test]
    fn average_depth_is_reasonable() {
        let data = synth(800);
        let f = Forest::fit(
            &data,
            ForestConfig {
                num_trees: 12,
                ..ForestConfig::default()
            },
        );
        let d = f.average_depth();
        assert!(d > 2.0 && d < 30.0, "average depth {d}");
    }
}
