//! Out-of-bag permutation importance — R `randomForest`'s `%IncMSE`
//! (type-1, scaled), the statistic of the paper's Table I.
//!
//! For each tree: compute the MSE over its out-of-bag rows, then, for each
//! feature, permute that feature's values among the OOB rows and measure
//! the MSE increase. The importance of a feature is the mean increase
//! across trees divided by its standard error — so a feature the model
//! never relies on scores near zero, and can score *negative* by chance,
//! exactly like the `-18.6` cache row of Table I.

use crate::dataset::TableData;
use crate::forest::Forest;
use crate::metrics::mean_sd;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Importance scores per feature.
#[derive(Debug, Clone)]
pub struct Importance {
    /// Feature names.
    pub names: Vec<String>,
    /// Scaled permutation importance (`%IncMSE`), one per feature.
    pub inc_mse: Vec<f64>,
    /// Raw mean MSE increase, one per feature.
    pub raw_increase: Vec<f64>,
}

impl Importance {
    /// Features sorted by descending importance.
    pub fn ranking(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self
            .names
            .iter()
            .cloned()
            .zip(self.inc_mse.iter().copied())
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }
}

/// Computes OOB permutation importance for a fitted forest.
pub fn permutation_importance(forest: &Forest, data: &TableData, seed: u64) -> Importance {
    let p = data.num_features();
    let t = forest.trees().len();
    // deltas[feature][tree] = permuted MSE − baseline MSE.
    let mut deltas = vec![vec![0.0f64; t]; p];
    let mut rng = StdRng::seed_from_u64(seed);

    for (ti, (tree, oob)) in forest.trees().iter().zip(forest.oob_indices()).enumerate() {
        if oob.len() < 2 {
            continue;
        }
        let baseline: f64 = oob
            .iter()
            .map(|&i| {
                let e = tree.predict(&data.rows[i]) - data.targets[i];
                e * e
            })
            .sum::<f64>()
            / oob.len() as f64;
        for f in 0..p {
            // Permute feature f's values among the OOB rows.
            let mut values: Vec<f64> = oob.iter().map(|&i| data.rows[i][f]).collect();
            values.shuffle(&mut rng);
            let mut err = 0.0f64;
            let mut row_buf: Vec<f64> = Vec::with_capacity(p);
            for (k, &i) in oob.iter().enumerate() {
                row_buf.clear();
                row_buf.extend_from_slice(&data.rows[i]);
                row_buf[f] = values[k];
                let e = tree.predict(&row_buf) - data.targets[i];
                err += e * e;
            }
            deltas[f][ti] = err / oob.len() as f64 - baseline;
        }
    }

    let mut inc_mse = Vec::with_capacity(p);
    let mut raw = Vec::with_capacity(p);
    for delta in &deltas {
        let (mean, sd) = mean_sd(delta);
        raw.push(mean);
        if sd > 0.0 {
            inc_mse.push(mean / (sd / (t as f64).sqrt()));
        } else {
            inc_mse.push(0.0);
        }
    }
    Importance {
        names: data.names.clone(),
        inc_mse,
        raw_increase: raw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::{Forest, ForestConfig};

    /// y depends strongly on x0, weakly on x1, not at all on x2.
    fn synth(n: usize) -> TableData {
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        let mut state = 99u64;
        let mut unit = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 40) as f64 / (1u64 << 24) as f64
        };
        for _ in 0..n {
            let x0 = unit();
            let x1 = unit();
            let x2 = unit();
            rows.push(vec![x0, x1, x2]);
            targets.push(10.0 * x0 + 1.0 * x1 + 0.02 * (unit() - 0.5));
        }
        TableData::new(
            vec!["strong".into(), "weak".into(), "junk".into()],
            rows,
            targets,
        )
    }

    #[test]
    fn importance_ranks_signal_over_noise() {
        let data = synth(500);
        let forest = Forest::fit(
            &data,
            ForestConfig {
                num_trees: 60,
                ..Default::default()
            },
        );
        let imp = permutation_importance(&forest, &data, 7);
        let rank = imp.ranking();
        assert_eq!(rank[0].0, "strong", "{rank:?}");
        assert_eq!(rank[1].0, "weak", "{rank:?}");
        assert_eq!(rank[2].0, "junk", "{rank:?}");
        // The junk feature must be near zero (possibly negative);
        // the strong feature must dominate.
        assert!(imp.inc_mse[0] > 5.0 * imp.inc_mse[2].abs().max(1.0));
    }

    #[test]
    fn junk_feature_can_be_near_zero_or_negative() {
        let data = synth(400);
        let forest = Forest::fit(
            &data,
            ForestConfig {
                num_trees: 40,
                ..Default::default()
            },
        );
        let imp = permutation_importance(&forest, &data, 3);
        let junk = imp.inc_mse[2];
        let strong = imp.inc_mse[0];
        assert!(junk < 0.3 * strong, "junk {junk} vs strong {strong}");
    }

    #[test]
    fn raw_increase_positive_for_used_features() {
        let data = synth(300);
        let forest = Forest::fit(
            &data,
            ForestConfig {
                num_trees: 30,
                ..Default::default()
            },
        );
        let imp = permutation_importance(&forest, &data, 11);
        assert!(imp.raw_increase[0] > 0.0);
    }
}
