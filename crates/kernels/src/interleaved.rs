//! The paper's interleaved-layout batch Cholesky kernel: one thread per
//! matrix, tile microkernels on register tiles, configurable looking order
//! and unrolling, ragged corner tiles for `n % nb != 0`.
//!
//! The memory behaviour (which tile is loaded/stored when) matches
//! [`crate::codesize::walk`] operation-for-operation; a unit test asserts
//! that equivalence, so the code-size/traffic analysis and the executed
//! kernel can never drift apart.

use crate::codesize;
use crate::config::{KernelConfig, Unroll};
use crate::tileops::{
    gemm_tile, load_full, load_lower, potrf_tile, store_full, store_lower, syrk_tile, tile,
    trsm_tile,
};
use ibcf_core::Looking;
use ibcf_gpu_sim::{KernelCtx, KernelStatics, ThreadKernel};
use ibcf_layout::{BatchLayout, Layout};

/// The interleaved batch Cholesky kernel, bound to a concrete layout.
#[derive(Debug, Clone)]
pub struct InterleavedCholesky {
    config: KernelConfig,
    layout: Layout,
}

impl InterleavedCholesky {
    /// Builds the kernel for `config` over a batch of `batch` matrices.
    ///
    /// # Panics
    /// If the configuration is invalid.
    pub fn new(config: KernelConfig, batch: usize) -> Self {
        config.validate().expect("invalid kernel configuration");
        let layout = config.layout(batch);
        InterleavedCholesky { config, layout }
    }

    /// Builds the kernel over an explicit layout (used to run the same
    /// kernel on a canonical layout, demonstrating the coalescing loss).
    pub fn with_layout(config: KernelConfig, layout: Layout) -> Self {
        config.validate().expect("invalid kernel configuration");
        InterleavedCholesky { config, layout }
    }

    /// The kernel's configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// The layout the kernel addresses.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    fn block_dim(&self, b: usize) -> usize {
        self.config
            .nb_eff()
            .min(self.config.n - b * self.config.nb_eff())
    }
}

impl ThreadKernel for InterleavedCholesky {
    fn run<C: KernelCtx>(&self, ctx: &mut C) {
        let mat = ctx.thread().global();
        if mat >= self.layout.padded_batch() {
            return;
        }
        let n = self.config.n;
        let nb = self.config.nb_eff();
        let nt = n.div_ceil(nb);
        let lay = &self.layout;
        let io = self.config.unroll == Unroll::Partial; // charge loop iops
        let dim = |b: usize| self.block_dim(b);

        let (mut a1, mut a2, mut a3) = (tile(), tile(), tile());
        match self.config.looking {
            Looking::Right => {
                for kk in 0..nt {
                    let dk = dim(kk);
                    load_lower(ctx, lay, mat, nb, kk, dk, &mut a1, io);
                    potrf_tile(ctx, dk, &mut a1, io);
                    store_lower(ctx, lay, mat, nb, kk, dk, &a1, io);
                    for mm in kk + 1..nt {
                        let dm = dim(mm);
                        load_full(ctx, lay, mat, nb, mm, kk, dm, dk, &mut a2, io);
                        trsm_tile(ctx, dm, dk, &a1, &mut a2, io);
                        store_full(ctx, lay, mat, nb, mm, kk, dm, dk, &a2, io);
                    }
                    for nn in kk + 1..nt {
                        let dn = dim(nn);
                        load_full(ctx, lay, mat, nb, nn, kk, dn, dk, &mut a1, io);
                        load_lower(ctx, lay, mat, nb, nn, dn, &mut a3, io);
                        syrk_tile(ctx, dn, dk, &a1, &mut a3, io);
                        store_lower(ctx, lay, mat, nb, nn, dn, &a3, io);
                        for mm in nn + 1..nt {
                            let dm = dim(mm);
                            load_full(ctx, lay, mat, nb, mm, kk, dm, dk, &mut a2, io);
                            load_full(ctx, lay, mat, nb, mm, nn, dm, dn, &mut a3, io);
                            gemm_tile(ctx, dm, dn, dk, &a2, &a1, &mut a3, io);
                            store_full(ctx, lay, mat, nb, mm, nn, dm, dn, &a3, io);
                        }
                    }
                }
            }
            Looking::Left => {
                for kk in 0..nt {
                    let dk = dim(kk);
                    load_lower(ctx, lay, mat, nb, kk, dk, &mut a1, io);
                    for mm in 0..kk {
                        let dm = dim(mm);
                        load_full(ctx, lay, mat, nb, kk, mm, dk, dm, &mut a2, io);
                        syrk_tile(ctx, dk, dm, &a2, &mut a1, io);
                    }
                    potrf_tile(ctx, dk, &mut a1, io);
                    store_lower(ctx, lay, mat, nb, kk, dk, &a1, io);
                    for ii in kk + 1..nt {
                        let di = dim(ii);
                        // GEMM call: update the panel tile, store it back
                        // (the LAPACK GEMM/TRSM call boundary: one extra
                        // panel write versus the top-looking order).
                        load_full(ctx, lay, mat, nb, ii, kk, di, dk, &mut a3, io);
                        for mm in 0..kk {
                            let dm = dim(mm);
                            load_full(ctx, lay, mat, nb, ii, mm, di, dm, &mut a2, io);
                            load_full(ctx, lay, mat, nb, kk, mm, dk, dm, &mut a1, io);
                            gemm_tile(ctx, di, dk, dm, &a2, &a1, &mut a3, io);
                        }
                        store_full(ctx, lay, mat, nb, ii, kk, di, dk, &a3, io);
                        // TRSM call: the tile stays live in registers;
                        // re-load only the factored diagonal.
                        load_lower(ctx, lay, mat, nb, kk, dk, &mut a1, io);
                        trsm_tile(ctx, di, dk, &a1, &mut a3, io);
                        store_full(ctx, lay, mat, nb, ii, kk, di, dk, &a3, io);
                    }
                }
            }
            Looking::Top => {
                for kk in 0..nt {
                    let dk = dim(kk);
                    for nn in 0..kk {
                        let dn = dim(nn);
                        load_full(ctx, lay, mat, nb, kk, nn, dk, dn, &mut a3, io);
                        for mm in 0..nn {
                            let dm = dim(mm);
                            load_full(ctx, lay, mat, nb, kk, mm, dk, dm, &mut a1, io);
                            load_full(ctx, lay, mat, nb, nn, mm, dn, dm, &mut a2, io);
                            gemm_tile(ctx, dk, dn, dm, &a1, &a2, &mut a3, io);
                        }
                        load_lower(ctx, lay, mat, nb, nn, dn, &mut a1, io);
                        trsm_tile(ctx, dk, dn, &a1, &mut a3, io);
                        store_full(ctx, lay, mat, nb, kk, nn, dk, dn, &a3, io);
                    }
                    load_lower(ctx, lay, mat, nb, kk, dk, &mut a1, io);
                    for nn in 0..kk {
                        let dn = dim(nn);
                        load_full(ctx, lay, mat, nb, kk, nn, dk, dn, &mut a2, io);
                        syrk_tile(ctx, dk, dn, &a2, &mut a1, io);
                    }
                    potrf_tile(ctx, dk, &mut a1, io);
                    store_lower(ctx, lay, mat, nb, kk, dk, &a1, io);
                }
            }
        }
    }

    fn statics(&self) -> KernelStatics {
        codesize::statics(&self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codesize::{walk, TileOp};
    use ibcf_core::spd::{fill_batch_spd, SpdKind};
    use ibcf_core::verify::batch_reconstruction_error;
    use ibcf_gpu_sim::{launch_functional, trace_warp, ExecOptions, LaunchConfig};

    fn run_config(config: KernelConfig, batch: usize) -> f64 {
        let kernel = InterleavedCholesky::new(config, batch);
        let layout = *kernel.layout();
        let mut data = vec![0.0f32; layout.len()];
        fill_batch_spd(&layout, &mut data, SpdKind::Wishart, 1234);
        let orig = data.clone();
        launch_functional(
            &kernel,
            config.launch(batch),
            &mut data,
            ExecOptions::default(),
        );
        batch_reconstruction_error(&layout, &orig, &data)
    }

    #[test]
    fn factors_correctly_across_lookings_and_sizes() {
        for looking in Looking::ALL {
            for (n, nb) in [(4, 2), (8, 4), (13, 4), (16, 8), (24, 5)] {
                let config = KernelConfig {
                    n,
                    nb,
                    looking,
                    ..KernelConfig::baseline(n)
                };
                let err = run_config(config, 100);
                assert!(err < 2e-4, "{config}: err {err}");
            }
        }
    }

    #[test]
    fn works_without_chunking_and_with_every_chunk_size() {
        for chunk_size in [32usize, 64, 128, 256, 512] {
            for chunked in [false, true] {
                let config = KernelConfig {
                    chunked,
                    chunk_size,
                    ..KernelConfig::baseline(10)
                };
                let err = run_config(config, 700);
                assert!(err < 1e-4, "{config}: err {err}");
            }
        }
    }

    #[test]
    fn memory_behaviour_matches_the_walker() {
        // The traced load/store stream must agree with the analytical
        // walker: same op count per kind, in order.
        for looking in Looking::ALL {
            for (n, nb) in [(12, 4), (11, 4)] {
                let config = KernelConfig {
                    n,
                    nb,
                    looking,
                    ..KernelConfig::baseline(n)
                };
                let kernel = InterleavedCholesky::new(config, 64);
                let trace = trace_warp(&kernel, config.launch(64), 0, 0);
                // Expected element-granular load/store sequence.
                let mut expected: Vec<(bool, u64)> = Vec::new();
                walk(n, nb, looking, |op| match op {
                    TileOp::LoadFull(..) | TileOp::LoadLower(_) => {
                        expected.push((false, op.instrs()))
                    }
                    TileOp::StoreFull(..) | TileOp::StoreLower(_) => {
                        expected.push((true, op.instrs()))
                    }
                    _ => {}
                });
                let expected_total: u64 = expected.iter().map(|&(_, c)| c).sum();
                assert_eq!(
                    trace.accesses.len() as u64,
                    expected_total,
                    "{config}: access count mismatch"
                );
                // Direction sequence must match op-by-op.
                let mut i = 0usize;
                for (store, count) in expected {
                    for _ in 0..count {
                        assert_eq!(
                            trace.accesses[i].store, store,
                            "{config}: access {i} direction"
                        );
                        i += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn interleaved_accesses_are_perfectly_coalesced() {
        use ibcf_gpu_sim::coalesce::coalesce;
        let config = KernelConfig::baseline(8);
        let kernel = InterleavedCholesky::new(config, 256);
        let trace = trace_warp(&kernel, config.launch(256), 0, 0);
        for a in &trace.accesses {
            let c = coalesce(a, 4, 128, 32);
            assert_eq!(c.transactions, 1, "interleaved access must be 1 line");
        }
    }

    #[test]
    fn canonical_layout_scatters_accesses() {
        use ibcf_gpu_sim::coalesce::coalesce;
        use ibcf_layout::{Canonical, Layout};
        let config = KernelConfig::baseline(8);
        let kernel =
            InterleavedCholesky::with_layout(config, Layout::Canonical(Canonical::new(8, 256)));
        let trace = trace_warp(&kernel, LaunchConfig::new(8, 32), 0, 0);
        let worst = trace
            .accesses
            .iter()
            .map(|a| coalesce(a, 4, 128, 32).transactions)
            .max()
            .unwrap();
        assert!(worst >= 16, "canonical at n=8 must scatter, got {worst}");
    }

    #[test]
    fn fast_math_functional_path_still_accurate() {
        let config = KernelConfig {
            fast_math: true,
            ..KernelConfig::baseline(12)
        };
        let kernel = InterleavedCholesky::new(config, 64);
        let layout = *kernel.layout();
        let mut data = vec![0.0f32; layout.len()];
        fill_batch_spd(&layout, &mut data, SpdKind::Wishart, 5);
        let orig = data.clone();
        launch_functional(
            &kernel,
            config.launch(64),
            &mut data,
            ExecOptions { fast_math: true },
        );
        let err = batch_reconstruction_error(&layout, &orig, &data);
        assert!(err < 1e-3, "fast-math err {err}");
    }

    #[test]
    fn nb_one_and_nb_equal_n_both_work() {
        for nb in [1usize, 9] {
            let config = KernelConfig {
                nb,
                ..KernelConfig::baseline(9)
            };
            let err = run_config(config, 64);
            assert!(err < 1e-4, "nb={nb}: err {err}");
        }
    }
}
