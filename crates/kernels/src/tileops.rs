//! Device-side tile micro-operations, written against the simulator's
//! [`KernelCtx`] instruction set — the direct analogue of the paper's
//! Figure 9 (compute) and Figure 10 (load/store) pyexpander stencils.
//!
//! Tiles live in per-thread local arrays ("registers"), column-major with
//! tile stride [`TS`]. All dimensions are explicit so the ragged corner
//! tiles of `n % nb != 0` reuse the same code.
//!
//! When `charge_iops` is set (partial unrolling), each load/store element
//! charges one address-arithmetic op and each tile-op invocation charges a
//! small loop-control overhead — the instructions full unrolling folds
//! into immediate operands.

// Device tile ops mirror the paper's stencil signatures.
#![allow(clippy::too_many_arguments)]

use ibcf_gpu_sim::KernelCtx;
use ibcf_layout::BatchLayout;

/// Tile stride of the local tile buffers (max `nb` is 8).
pub const TS: usize = 8;

/// Loop-control ops charged per tile-operation invocation under partial
/// unrolling.
pub const LOOP_OVERHEAD_IOPS: u64 = 6;

/// A local tile buffer.
pub type Tile = [f32; TS * TS];

/// A fresh zeroed tile.
pub fn tile() -> Tile {
    [0.0; TS * TS]
}

/// Loads a full `rows × cols` tile at block `(bi, bj)` of matrix `mat`.
#[allow(clippy::too_many_arguments)]
pub fn load_full<C: KernelCtx, L: BatchLayout>(
    ctx: &mut C,
    layout: &L,
    mat: usize,
    nb: usize,
    bi: usize,
    bj: usize,
    rows: usize,
    cols: usize,
    t: &mut Tile,
    charge_iops: bool,
) {
    for c in 0..cols {
        for r in 0..rows {
            t[r + c * TS] = ctx.ld(layout.addr(mat, bi * nb + r, bj * nb + c));
        }
    }
    if charge_iops {
        ctx.iops(LOOP_OVERHEAD_IOPS + (rows * cols) as u64);
    }
}

/// Stores a full `rows × cols` tile back to block `(bi, bj)`.
#[allow(clippy::too_many_arguments)]
pub fn store_full<C: KernelCtx, L: BatchLayout>(
    ctx: &mut C,
    layout: &L,
    mat: usize,
    nb: usize,
    bi: usize,
    bj: usize,
    rows: usize,
    cols: usize,
    t: &Tile,
    charge_iops: bool,
) {
    for c in 0..cols {
        for r in 0..rows {
            ctx.st(layout.addr(mat, bi * nb + r, bj * nb + c), t[r + c * TS]);
        }
    }
    if charge_iops {
        ctx.iops(LOOP_OVERHEAD_IOPS + (rows * cols) as u64);
    }
}

/// Loads the lower triangle of the `d × d` diagonal tile at block `(bk, bk)`.
pub fn load_lower<C: KernelCtx, L: BatchLayout>(
    ctx: &mut C,
    layout: &L,
    mat: usize,
    nb: usize,
    bk: usize,
    d: usize,
    t: &mut Tile,
    charge_iops: bool,
) {
    for c in 0..d {
        for r in c..d {
            t[r + c * TS] = ctx.ld(layout.addr(mat, bk * nb + r, bk * nb + c));
        }
    }
    if charge_iops {
        ctx.iops(LOOP_OVERHEAD_IOPS + (d * (d + 1) / 2) as u64);
    }
}

/// Stores the lower triangle of the `d × d` diagonal tile at block `(bk, bk)`.
pub fn store_lower<C: KernelCtx, L: BatchLayout>(
    ctx: &mut C,
    layout: &L,
    mat: usize,
    nb: usize,
    bk: usize,
    d: usize,
    t: &Tile,
    charge_iops: bool,
) {
    for c in 0..d {
        for r in c..d {
            ctx.st(layout.addr(mat, bk * nb + r, bk * nb + c), t[r + c * TS]);
        }
    }
    if charge_iops {
        ctx.iops(LOOP_OVERHEAD_IOPS + (d * (d + 1) / 2) as u64);
    }
}

/// `spotrf_tile` (Figure 9): Cholesky of the `d × d` lower triangle of `a`.
/// Follows the paper's instruction mix exactly: one `sqrtf`, one reciprocal,
/// column scaling by multiplication, FMA trailing updates. Non-positive
/// pivots propagate NaN like the real CUDA kernel (no device-side error
/// reporting).
pub fn potrf_tile<C: KernelCtx>(ctx: &mut C, d: usize, a: &mut Tile, charge_iops: bool) {
    for k in 0..d {
        let pivot = ctx.sqrt(a[k + k * TS]);
        a[k + k * TS] = pivot;
        let inv = ctx.rcp(pivot);
        for m in k + 1..d {
            a[m + k * TS] = ctx.mul(a[m + k * TS], inv);
        }
        for j in k + 1..d {
            let ajk = a[j + k * TS];
            for m in j..d {
                a[m + j * TS] = ctx.fma(-a[m + k * TS], ajk, a[m + j * TS]);
            }
        }
    }
    if charge_iops {
        ctx.iops(LOOP_OVERHEAD_IOPS);
    }
}

/// `strsm_tile` (Figure 9): `B := B · L⁻ᵀ` for an `m × d` panel tile `b`
/// against the factored diagonal tile `l`. Divides like the paper's code.
pub fn trsm_tile<C: KernelCtx>(
    ctx: &mut C,
    m: usize,
    d: usize,
    l: &Tile,
    b: &mut Tile,
    charge_iops: bool,
) {
    for row in 0..m {
        for k in 0..d {
            let x = ctx.div(b[row + k * TS], l[k + k * TS]);
            b[row + k * TS] = x;
            for j in k + 1..d {
                b[row + j * TS] = ctx.fma(-x, l[j + k * TS], b[row + j * TS]);
            }
        }
    }
    if charge_iops {
        ctx.iops(LOOP_OVERHEAD_IOPS);
    }
}

/// `ssyrk_tile` (Figure 9): `C := C − A·Aᵀ` on the lower triangle, `A` is
/// `d × k`.
pub fn syrk_tile<C: KernelCtx>(
    ctx: &mut C,
    d: usize,
    k: usize,
    a: &Tile,
    c: &mut Tile,
    charge_iops: bool,
) {
    for col in 0..d {
        for row in col..d {
            let mut acc = c[row + col * TS];
            for p in 0..k {
                acc = ctx.fma(-a[row + p * TS], a[col + p * TS], acc);
            }
            c[row + col * TS] = acc;
        }
    }
    if charge_iops {
        ctx.iops(LOOP_OVERHEAD_IOPS);
    }
}

/// `sgemm_tile` (Figure 9): `C := C − A·Bᵀ`, `A` is `m × k`, `B` is
/// `n × k`, `C` is `m × n`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_tile<C: KernelCtx>(
    ctx: &mut C,
    m: usize,
    n: usize,
    k: usize,
    a: &Tile,
    b: &Tile,
    c: &mut Tile,
    charge_iops: bool,
) {
    for col in 0..n {
        for row in 0..m {
            let mut acc = c[row + col * TS];
            for p in 0..k {
                acc = ctx.fma(-a[row + p * TS], b[col + p * TS], acc);
            }
            c[row + col * TS] = acc;
        }
    }
    if charge_iops {
        ctx.iops(LOOP_OVERHEAD_IOPS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibcf_gpu_sim::{
        launch_functional_seq, ExecOptions, KernelStatics, LaunchConfig, ThreadKernel,
    };
    use ibcf_layout::Canonical;

    /// A kernel that factors a 2×2-tiled matrix via the ctx tile ops, used
    /// to check the device micro-ops against the host microkernels.
    struct TwoTile {
        layout: Canonical,
        nb: usize,
    }

    impl ThreadKernel for TwoTile {
        fn run<C: KernelCtx>(&self, ctx: &mut C) {
            let mat = ctx.thread().global();
            if mat >= self.layout.batch() {
                return;
            }
            let nb = self.nb;
            let (mut t00, mut t10, mut t11) = (tile(), tile(), tile());
            load_lower(ctx, &self.layout, mat, nb, 0, nb, &mut t00, false);
            potrf_tile(ctx, nb, &mut t00, false);
            store_lower(ctx, &self.layout, mat, nb, 0, nb, &t00, false);
            load_full(ctx, &self.layout, mat, nb, 1, 0, nb, nb, &mut t10, false);
            trsm_tile(ctx, nb, nb, &t00, &mut t10, false);
            store_full(ctx, &self.layout, mat, nb, 1, 0, nb, nb, &t10, false);
            load_lower(ctx, &self.layout, mat, nb, 1, nb, &mut t11, false);
            syrk_tile(ctx, nb, nb, &t10, &mut t11, false);
            potrf_tile(ctx, nb, &mut t11, false);
            store_lower(ctx, &self.layout, mat, nb, 1, nb, &t11, false);
        }
        fn statics(&self) -> KernelStatics {
            KernelStatics::streaming(64, 1000)
        }
    }

    #[test]
    fn device_tile_ops_factor_correctly() {
        use ibcf_core::spd::{fill_batch_spd, SpdKind};
        use ibcf_core::verify::batch_reconstruction_error;
        let nb = 4;
        let n = 8;
        let layout = Canonical::new(n, 32);
        let mut data = vec![0.0f32; layout.len()];
        fill_batch_spd(&layout, &mut data, SpdKind::Wishart, 3);
        let orig = data.clone();
        let k = TwoTile { layout, nb };
        launch_functional_seq(
            &k,
            LaunchConfig::new(1, 32),
            &mut data,
            ExecOptions::default(),
        );
        let err = batch_reconstruction_error(&layout, &orig, &data);
        assert!(err < 1e-5, "reconstruction error {err}");
    }

    #[test]
    fn fast_math_result_stays_close() {
        use ibcf_core::spd::{fill_batch_spd, SpdKind};
        let nb = 4;
        let n = 8;
        let layout = Canonical::new(n, 32);
        let mut ieee = vec![0.0f32; layout.len()];
        fill_batch_spd(&layout, &mut ieee, SpdKind::Wishart, 3);
        let mut fast = ieee.clone();
        let k = TwoTile { layout, nb };
        let lc = LaunchConfig::new(1, 32);
        launch_functional_seq(&k, lc, &mut ieee, ExecOptions { fast_math: false });
        launch_functional_seq(&k, lc, &mut fast, ExecOptions { fast_math: true });
        let mut worst = 0.0f32;
        for (a, b) in ieee.iter().zip(&fast) {
            if a.abs() > 1e-3 {
                worst = worst.max(((a - b) / a).abs());
            }
        }
        assert!(worst > 0.0, "fast math should differ somewhere");
        assert!(worst < 1e-3, "fast math drifted too far: {worst}");
    }
}
