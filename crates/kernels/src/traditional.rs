//! The traditional (MAGMA-style) batched Cholesky baseline: one thread
//! block per matrix, canonical column-major layout, the matrix staged
//! through shared memory, one thread per row.
//!
//! This is the comparison kernel of the paper's Figures 13 and 14. For
//! very small matrices most lanes of each warp idle (only `n` of 32 rows
//! exist) and the canonical-layout loads coalesce poorly, which is why the
//! interleaved kernel wins there; for larger matrices the shared-memory
//! reuse pays off and the traditional kernel catches up — the crossover
//! the paper reports.

use ibcf_gpu_sim::{BlockCtx, BlockKernel, KernelStatics};
use ibcf_layout::{BatchLayout, Canonical};

/// The block-per-matrix shared-memory Cholesky kernel.
#[derive(Debug, Clone)]
pub struct TraditionalCholesky {
    layout: Canonical,
}

impl TraditionalCholesky {
    /// Builds the kernel over a canonical batch of `batch` matrices of
    /// dimension `n` (`n <= 96` so the `n × n` tile fits the 48 KiB
    /// shared-memory-per-block limit).
    pub fn new(n: usize, batch: usize) -> Self {
        assert!(n > 0 && n <= 96, "traditional kernel supports n in 1..=96");
        TraditionalCholesky {
            layout: Canonical::new(n, batch),
        }
    }

    /// The canonical layout the kernel addresses.
    pub fn layout(&self) -> &Canonical {
        &self.layout
    }

    /// Thread-block size: rows rounded up to a whole warp.
    pub fn block_threads(&self) -> usize {
        self.layout.n().div_ceil(32) * 32
    }

    /// Grid size: one block per matrix.
    pub fn grid(&self) -> usize {
        self.layout.batch()
    }
}

impl BlockKernel for TraditionalCholesky {
    fn run(&self, block: &mut dyn BlockCtx) {
        let n = self.layout.n();
        let mat = block.block_idx();
        if mat >= self.layout.batch() {
            return;
        }
        let layout = self.layout;

        // Stage the lower triangle into shared memory, row per thread:
        // thread t loads row t (columns 0..=t). Column-major shared tile.
        block.phase(&mut |t, lane| {
            if t < n {
                for j in 0..=t {
                    let v = lane.ld(layout.addr(mat, t, j));
                    lane.st_shared(t + j * n, v);
                }
                lane.iops(t as u64 + 1);
            }
        });
        block.sync();

        // Right-looking factorization in shared memory.
        for k in 0..n {
            // Pivot: thread k takes the square root.
            block.phase(&mut |t, lane| {
                if t == k {
                    let akk = lane.ld_shared(k + k * n);
                    let p = lane.sqrt(akk);
                    lane.st_shared(k + k * n, p);
                }
            });
            block.sync();
            // Column scaling: threads k+1..n divide their row element.
            block.phase(&mut |t, lane| {
                if t > k && t < n {
                    let p = lane.ld_shared(k + k * n);
                    let v = lane.ld_shared(t + k * n);
                    let s = lane.div(v, p);
                    lane.st_shared(t + k * n, s);
                }
            });
            block.sync();
            // Rank-1 update: thread t updates its row t, columns k+1..=t.
            block.phase(&mut |t, lane| {
                if t > k && t < n {
                    let ltk = lane.ld_shared(t + k * n);
                    for j in k + 1..=t {
                        let ljk = lane.ld_shared(j + k * n);
                        let v = lane.ld_shared(t + j * n);
                        let u = lane.fma(-ltk, ljk, v);
                        lane.st_shared(t + j * n, u);
                    }
                    lane.iops((t - k) as u64);
                }
            });
            block.sync();
        }

        // Write the factor back, row per thread.
        block.phase(&mut |t, lane| {
            if t < n {
                for j in 0..=t {
                    let v = lane.ld_shared(t + j * n);
                    lane.st(layout.addr(mat, t, j), v);
                }
                lane.iops(t as u64 + 1);
            }
        });
    }

    fn statics(&self) -> KernelStatics {
        let n = self.layout.n() as u32;
        KernelStatics {
            regs_per_thread: 32,
            // Looped row-wise code: modest and nearly n-independent.
            static_instrs: 400,
            reg_reuse_capacity: 0,
            dead_store_elim: false,
            shared_bytes_per_block: n * n * 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibcf_core::spd::{fill_batch_spd, SpdKind};
    use ibcf_core::verify::batch_reconstruction_error;
    use ibcf_gpu_sim::{
        launch_block_functional, time_block_kernel, GpuSpec, LaunchConfig, TimingOptions,
    };

    fn check(n: usize, batch: usize) -> f64 {
        let kernel = TraditionalCholesky::new(n, batch);
        let layout = *kernel.layout();
        let mut data = vec![0.0f32; layout.len()];
        fill_batch_spd(&layout, &mut data, SpdKind::Wishart, 88);
        let orig = data.clone();
        launch_block_functional(
            &kernel,
            LaunchConfig::new(kernel.grid(), kernel.block_threads()),
            &mut data,
        );
        batch_reconstruction_error(&layout, &orig, &data)
    }

    #[test]
    fn factors_correctly_small_and_multi_warp() {
        for n in [1usize, 2, 5, 16, 32, 33, 48, 64] {
            let err = check(n, 20);
            assert!(err < 3e-4, "n={n}: err {err}");
        }
    }

    #[test]
    fn matches_host_reference_closely() {
        use ibcf_core::reference::potrf;
        use ibcf_layout::gather_matrix;
        let n = 12;
        let kernel = TraditionalCholesky::new(n, 8);
        let layout = *kernel.layout();
        let mut data = vec![0.0f32; layout.len()];
        fill_batch_spd(&layout, &mut data, SpdKind::DiagDominant, 7);
        let mut host = data.clone();
        launch_block_functional(
            &kernel,
            LaunchConfig::new(kernel.grid(), kernel.block_threads()),
            &mut data,
        );
        // Host factorization, matrix by matrix.
        for mat in 0..8 {
            let mut a = vec![0.0f32; n * n];
            gather_matrix(&layout, &host, mat, &mut a, n);
            potrf(n, &mut a).unwrap();
            let mut dev = vec![0.0f32; n * n];
            gather_matrix(&layout, &data, mat, &mut dev, n);
            for c in 0..n {
                for r in c..n {
                    let d = (a[r + c * n] - dev[r + c * n]).abs();
                    let scale = a[r + c * n].abs().max(1.0);
                    assert!(d / scale < 1e-5, "mat {mat} ({r},{c}): {d}");
                }
            }
        }
        let _ = &mut host;
    }

    #[test]
    fn timing_runs_and_is_slower_per_matrix_at_tiny_n() {
        let spec = GpuSpec::p100();
        let k = TraditionalCholesky::new(8, 16384);
        let t = time_block_kernel(
            &k,
            LaunchConfig::new(k.grid(), k.block_threads()),
            &spec,
            TimingOptions::default(),
        );
        assert!(t.time_s > 0.0);
        // At n=8 the kernel runs far below 10% of peak.
        let flops = 16384.0 * 8.0f64.powi(3) / 3.0;
        let gf = t.gflops(flops);
        assert!(
            gf < spec.peak_gflops() * 0.1,
            "traditional n=8: {gf} GFLOP/s"
        );
    }
}
