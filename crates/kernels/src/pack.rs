//! Device-side layout packing: transcode a canonical batch into the
//! (chunked) interleaved layout on the GPU.
//!
//! A practical objection to the interleaved layout is that application
//! data usually arrives canonically (contiguous matrices). This kernel
//! answers it: one thread re-lays-out one matrix, reading the canonical
//! region and writing the interleaved region of the same buffer. The
//! *writes* are perfectly coalesced; the reads are scattered — but the
//! pass is made once and costs roughly one memory sweep, while the
//! factorization (and any iterative use, like ALS sweeps) reuses the
//! packed data every time. `time_pack` quantifies the amortization.

use ibcf_gpu_sim::{
    launch_functional, plan_thread_kernel, price, ExecOptions, GpuSpec, KernelCtx, KernelStatics,
    KernelTiming, LaunchConfig, PlanParams, PricingCtx, ThreadKernel,
};
use ibcf_layout::{alloc_batch, transcode_into, AlignedVec, BatchLayout, Canonical, Layout};

/// Direction of the device transcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackDirection {
    /// Canonical source region → interleaved destination region.
    Pack,
    /// Interleaved source region → canonical destination region.
    Unpack,
}

/// The packing kernel: thread `m` copies matrix `m` between a canonical
/// region (at offset 0) and an interleaved region (at `dst_offset`).
#[derive(Debug, Clone)]
pub struct PackKernel {
    canonical: Canonical,
    interleaved: Layout,
    interleaved_offset: usize,
    direction: PackDirection,
}

impl PackKernel {
    /// Builds a pack/unpack kernel. The canonical batch sits at the start
    /// of global memory; the interleaved batch at `interleaved_offset`.
    ///
    /// # Panics
    /// If the layouts disagree on `n` or batch size.
    pub fn new(
        canonical: Canonical,
        interleaved: Layout,
        interleaved_offset: usize,
        direction: PackDirection,
    ) -> Self {
        assert_eq!(canonical.n(), interleaved.n(), "layouts disagree on n");
        assert_eq!(
            canonical.batch(),
            interleaved.batch(),
            "layouts disagree on batch"
        );
        PackKernel {
            canonical,
            interleaved,
            interleaved_offset,
            direction,
        }
    }

    /// Total buffer length required.
    pub fn required_len(&self) -> usize {
        self.interleaved_offset + self.interleaved.len()
    }
}

impl ThreadKernel for PackKernel {
    fn run<C: KernelCtx>(&self, ctx: &mut C) {
        let mat = ctx.thread().global();
        if mat >= self.canonical.batch() {
            return;
        }
        let n = self.canonical.n();
        for col in 0..n {
            for row in 0..n {
                match self.direction {
                    PackDirection::Pack => {
                        let v = ctx.ld(self.canonical.addr(mat, row, col));
                        ctx.st(
                            self.interleaved_offset + self.interleaved.addr(mat, row, col),
                            v,
                        );
                    }
                    PackDirection::Unpack => {
                        let v =
                            ctx.ld(self.interleaved_offset + self.interleaved.addr(mat, row, col));
                        ctx.st(self.canonical.addr(mat, row, col), v);
                    }
                }
            }
        }
        ctx.iops(2 * (n * n) as u64);
    }

    fn statics(&self) -> KernelStatics {
        KernelStatics::streaming(24, 200)
    }
}

/// Packs a canonical batch (at the start of `mem`) into `interleaved`
/// form at `interleaved_offset`, on the device.
pub fn pack_batch_device(
    canonical: Canonical,
    interleaved: Layout,
    interleaved_offset: usize,
    mem: &mut [f32],
) {
    let kernel = PackKernel::new(
        canonical,
        interleaved,
        interleaved_offset,
        PackDirection::Pack,
    );
    assert!(mem.len() >= kernel.required_len(), "buffer too short");
    let block = 64;
    let grid = canonical.batch().div_ceil(block);
    launch_functional(
        &kernel,
        LaunchConfig::new(grid, block),
        mem,
        ExecOptions::default(),
    );
}

/// The host mirror of [`pack_batch_device`]: re-lays-out a batch from
/// `src_layout` into a freshly allocated, 128-byte-aligned buffer in
/// `dst_layout`. This is the staging step for the lane-vectorized host
/// engine (`ibcf_core::lane_batch`) when data arrives canonically — pay
/// one memory sweep once, then every factorization (or ALS solve sweep)
/// runs on coalescable interleaved data.
///
/// # Panics
/// If the layouts disagree on `n` or `batch`, or `src` is too short.
pub fn pack_batch_host<T: Copy + Default, A: BatchLayout, B: BatchLayout>(
    src_layout: &A,
    src: &[T],
    dst_layout: &B,
) -> AlignedVec<T> {
    let mut dst = alloc_batch::<T, _>(dst_layout);
    transcode_into(src_layout, src, dst_layout, &mut dst);
    dst
}

/// The inverse of [`pack_batch_host`]: writes the live matrices of a
/// packed batch back into a caller-provided buffer in `dst_layout`.
/// Padding slots of `dst` are left untouched.
///
/// # Panics
/// If the layouts disagree on `n` or `batch`, or either buffer is too
/// short.
pub fn unpack_batch_host<T: Copy, A: BatchLayout, B: BatchLayout>(
    src_layout: &A,
    src: &[T],
    dst_layout: &B,
    dst: &mut [T],
) {
    transcode_into(src_layout, src, dst_layout, dst);
}

/// Times one pack pass on `spec`, via the two-phase plan/price pipeline.
pub fn time_pack(canonical: Canonical, interleaved: Layout, spec: &GpuSpec) -> KernelTiming {
    let kernel = PackKernel::new(canonical, interleaved, canonical.len(), PackDirection::Pack);
    let block = 64;
    let grid = canonical.batch().div_ceil(block);
    let launch = LaunchConfig::new(grid, block);
    let plan = plan_thread_kernel(&kernel, launch, PlanParams::from_spec(spec, false));
    price(
        &plan,
        &PricingCtx {
            spec,
            launch,
            fast_math: false,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelConfig;
    use crate::launch::time_config;
    use ibcf_layout::{transcode, LayoutKind};

    #[test]
    fn device_pack_matches_host_transcode() {
        let n = 7;
        let batch = 300;
        let canonical = Canonical::new(n, batch);
        let interleaved = Layout::build(LayoutKind::Chunked, n, batch, 64);
        let mut mem = vec![0.0f32; canonical.len() + interleaved.len()];
        for (i, v) in mem[..canonical.len()].iter_mut().enumerate() {
            *v = (i as f32).sin();
        }
        let host = transcode(&canonical, &mem[..canonical.len()], &interleaved);
        pack_batch_device(canonical, interleaved, canonical.len(), &mut mem);
        // Live matrices must match; padding slots are unspecified.
        let mut a = vec![0.0f32; n * n];
        let mut b = vec![0.0f32; n * n];
        for mat in 0..batch {
            ibcf_layout::gather_matrix(&interleaved, &mem[canonical.len()..], mat, &mut a, n);
            ibcf_layout::gather_matrix(&interleaved, &host, mat, &mut b, n);
            assert_eq!(a, b, "matrix {mat}");
        }
    }

    #[test]
    fn unpack_round_trips() {
        let n = 5;
        let batch = 128;
        let canonical = Canonical::new(n, batch);
        let interleaved = Layout::build(LayoutKind::Interleaved, n, batch, 64);
        let off = canonical.len();
        let mut mem = vec![0.0f32; off + interleaved.len()];
        for (i, v) in mem[..off].iter_mut().enumerate() {
            *v = i as f32;
        }
        let orig = mem[..off].to_vec();
        pack_batch_device(canonical, interleaved, off, &mut mem);
        // Wipe the canonical region, unpack, compare.
        mem[..off].fill(-1.0);
        let kernel = PackKernel::new(canonical, interleaved, off, PackDirection::Unpack);
        let grid = batch.div_ceil(64);
        launch_functional(
            &kernel,
            LaunchConfig::new(grid, 64),
            &mut mem,
            ExecOptions::default(),
        );
        assert_eq!(&mem[..off], &orig[..]);
    }

    #[test]
    fn host_pack_is_aligned_and_round_trips() {
        let n = 6;
        let batch = 150;
        let canonical = Canonical::new(n, batch);
        let interleaved = Layout::build(LayoutKind::Chunked, n, batch, 32);
        let data: Vec<f32> = (0..canonical.len()).map(|i| (i as f32).cos()).collect();
        let packed = pack_batch_host(&canonical, &data, &interleaved);
        assert_eq!(packed.as_ptr() as usize % ibcf_layout::BUFFER_ALIGN, 0);
        assert_eq!(packed.len(), interleaved.len());
        let host = transcode(&canonical, &data, &interleaved);
        let mut a = vec![0.0f32; n * n];
        let mut b = vec![0.0f32; n * n];
        for mat in 0..batch {
            ibcf_layout::gather_matrix(&interleaved, &packed, mat, &mut a, n);
            ibcf_layout::gather_matrix(&interleaved, &host, mat, &mut b, n);
            assert_eq!(a, b, "matrix {mat}");
        }
        let mut back = vec![0.0f32; canonical.len()];
        unpack_batch_host(&interleaved, &packed, &canonical, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn host_pack_feeds_the_lane_engine() {
        // The whole point of the host pack path: canonical data, packed
        // once, factorizes with the in-place lane engine and unpacks to
        // the same factors the direct canonical oracle produces.
        let n = 8;
        let batch = 100;
        let canonical = Canonical::new(n, batch);
        let mut data = vec![0.0f32; canonical.len()];
        ibcf_core::spd::fill_batch_spd(&canonical, &mut data, ibcf_core::spd::SpdKind::Wishart, 9);
        let mut oracle = data.clone();
        assert!(ibcf_core::host_batch::factorize_batch_seq(&canonical, &mut oracle).all_ok());

        let interleaved = Layout::build(LayoutKind::Chunked, n, batch, 64);
        let mut packed = pack_batch_host(&canonical, &data, &interleaved);
        assert!(ibcf_core::factorize_batch_lanes(&interleaved, &mut packed).all_ok());
        unpack_batch_host(&interleaved, &packed, &canonical, &mut data);
        assert_eq!(data, oracle);
    }

    #[test]
    fn pack_cost_amortizes_over_a_few_factorizations() {
        // The one-time pack should cost no more than a handful of
        // factorizations of the same batch.
        let n = 16;
        let batch = 16384;
        let spec = GpuSpec::p100();
        let canonical = Canonical::new(n, batch);
        let interleaved = Layout::build(LayoutKind::Chunked, n, batch, 64);
        let t_pack = time_pack(canonical, interleaved, &spec).time_s;
        let t_factor = time_config(
            &KernelConfig {
                fast_math: true,
                ..KernelConfig::baseline(n)
            },
            batch,
            &spec,
        )
        .time_s;
        assert!(
            t_pack < 6.0 * t_factor,
            "pack {t_pack} vs factorization {t_factor}"
        );
        assert!(t_pack > 0.0);
    }
}
