//! Static code-size and register estimates — what `nvcc -Xptxas -v` would
//! report for the paper's generated kernels, derived from an enumeration
//! of the tile operations each configuration executes.

use crate::config::{KernelConfig, Unroll};
use ibcf_core::Looking;
use ibcf_gpu_sim::KernelStatics;
use std::collections::HashSet;

/// One tile operation with its concrete dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TileOp {
    /// Cholesky of a `d × d` diagonal tile.
    Potrf(usize),
    /// Solve of an `m × d` panel tile.
    Trsm(usize, usize),
    /// Rank-k update of a `d × d` diagonal tile.
    Syrk(usize, usize),
    /// General `m × n × k` update.
    Gemm(usize, usize, usize),
    /// Full-tile load of `r × c`.
    LoadFull(usize, usize),
    /// Full-tile store of `r × c`.
    StoreFull(usize, usize),
    /// Lower-triangle load of `d × d`.
    LoadLower(usize),
    /// Lower-triangle store of `d × d`.
    StoreLower(usize),
}

impl TileOp {
    /// Instruction count of the fully unrolled body of this operation
    /// (arithmetic + memory instructions; one instruction per element op).
    pub fn instrs(self) -> u64 {
        let tri = |d: usize| (d * (d + 1) / 2) as u64;
        match self {
            TileOp::Potrf(d) => {
                let mut c = 0u64;
                for k in 0..d {
                    c += 2; // sqrt + rcp
                    c += (d - k - 1) as u64; // column scaling muls
                    for j in k + 1..d {
                        c += (d - j) as u64; // trailing FMAs
                    }
                }
                c
            }
            TileOp::Trsm(m, d) => (m * d) as u64 + m as u64 * tri(d.saturating_sub(1)),
            TileOp::Syrk(d, k) => tri(d) * k as u64,
            TileOp::Gemm(m, n, k) => (m * n * k) as u64,
            TileOp::LoadFull(r, c) | TileOp::StoreFull(r, c) => (r * c) as u64,
            TileOp::LoadLower(d) | TileOp::StoreLower(d) => tri(d),
        }
    }
}

/// Enumerates, in execution order, every tile operation the blocked
/// factorization of dimension `n` with tile size `nb` performs under the
/// given looking order — the same structure the device kernel executes and
/// the host `ibcf_core::blocked` mirrors.
pub fn walk(n: usize, nb: usize, looking: Looking, mut f: impl FnMut(TileOp)) {
    let nt = n.div_ceil(nb);
    let dim = |b: usize| nb.min(n - b * nb);
    match looking {
        Looking::Right => {
            for kk in 0..nt {
                let dk = dim(kk);
                f(TileOp::LoadLower(dk));
                f(TileOp::Potrf(dk));
                f(TileOp::StoreLower(dk));
                for mm in kk + 1..nt {
                    let dm = dim(mm);
                    f(TileOp::LoadFull(dm, dk));
                    f(TileOp::Trsm(dm, dk));
                    f(TileOp::StoreFull(dm, dk));
                }
                for nn in kk + 1..nt {
                    let dn = dim(nn);
                    f(TileOp::LoadFull(dn, dk));
                    f(TileOp::LoadLower(dn));
                    f(TileOp::Syrk(dn, dk));
                    f(TileOp::StoreLower(dn));
                    for mm in nn + 1..nt {
                        let dm = dim(mm);
                        f(TileOp::LoadFull(dm, dk));
                        f(TileOp::LoadFull(dm, dn));
                        f(TileOp::Gemm(dm, dn, dk));
                        f(TileOp::StoreFull(dm, dn));
                    }
                }
            }
        }
        Looking::Left => {
            // LAPACK's order (Figure 4), at BLAS-call granularity: the
            // GEMM update of each panel tile is stored, then re-loaded for
            // the TRSM — one extra write per panel tile compared to the
            // top-looking order, which is why the paper finds top-looking
            // the fastest and left-looking in between.
            for kk in 0..nt {
                let dk = dim(kk);
                f(TileOp::LoadLower(dk));
                for mm in 0..kk {
                    let dm = dim(mm);
                    f(TileOp::LoadFull(dk, dm));
                    f(TileOp::Syrk(dk, dm));
                }
                f(TileOp::Potrf(dk));
                f(TileOp::StoreLower(dk));
                for ii in kk + 1..nt {
                    let di = dim(ii);
                    // GEMM call: update the panel tile, store it (the
                    // GEMM/TRSM call boundary of the LAPACK order — the
                    // extra panel write that makes left-looking slower
                    // than top-looking in the paper's Figure 16).
                    f(TileOp::LoadFull(di, dk));
                    for mm in 0..kk {
                        let dm = dim(mm);
                        f(TileOp::LoadFull(di, dm));
                        f(TileOp::LoadFull(dk, dm));
                        f(TileOp::Gemm(di, dk, dm));
                    }
                    f(TileOp::StoreFull(di, dk));
                    // TRSM call: the tile block stays live in registers;
                    // only the factored diagonal is (re)loaded.
                    f(TileOp::LoadLower(dk));
                    f(TileOp::Trsm(di, dk));
                    f(TileOp::StoreFull(di, dk));
                }
            }
        }
        Looking::Top => {
            for kk in 0..nt {
                let dk = dim(kk);
                for nn in 0..kk {
                    let dn = dim(nn);
                    f(TileOp::LoadFull(dk, dn));
                    for mm in 0..nn {
                        let dm = dim(mm);
                        f(TileOp::LoadFull(dk, dm));
                        f(TileOp::LoadFull(dn, dm));
                        f(TileOp::Gemm(dk, dn, dm));
                    }
                    f(TileOp::LoadLower(dn));
                    f(TileOp::Trsm(dk, dn));
                    f(TileOp::StoreFull(dk, dn));
                }
                f(TileOp::LoadLower(dk));
                for nn in 0..kk {
                    let dn = dim(nn);
                    f(TileOp::LoadFull(dk, dn));
                    f(TileOp::Syrk(dk, dn));
                }
                f(TileOp::Potrf(dk));
                f(TileOp::StoreLower(dk));
            }
        }
    }
}

/// Static instruction count of the generated kernel.
///
/// Fully unrolled: every executed tile op is straight-line code, so the
/// static count is the dynamic count. Partially unrolled: each *distinct*
/// op body (by kind and dimensions) is emitted once inside loops, plus
/// loop scaffolding.
pub fn static_instrs(config: &KernelConfig) -> u64 {
    let nb = config.nb_eff();
    match config.unroll {
        Unroll::Full => {
            let mut total = 0u64;
            walk(config.n, nb, config.looking, |op| total += op.instrs());
            total
        }
        Unroll::Partial => {
            let mut bodies: HashSet<TileOp> = HashSet::new();
            walk(config.n, nb, config.looking, |op| {
                bodies.insert(op);
            });
            let body_instrs: u64 = bodies.iter().map(|op| op.instrs()).sum();
            body_instrs + 64 // loop scaffolding, prologue, guards
        }
    }
}

/// Register overhead beyond the tile working set: indices, pointers,
/// pipeline temporaries — typical of the paper-era generated kernels.
pub const REG_OVERHEAD: u32 = 24;

/// Full resource estimates for a configuration.
pub fn statics(config: &KernelConfig) -> KernelStatics {
    let nb = config.nb_eff();
    let tri_n = (config.n * (config.n + 1) / 2) as u32;
    let instrs = static_instrs(config);
    match config.unroll {
        Unroll::Partial => KernelStatics {
            // Three live tiles (rA1, rA2, rA3).
            regs_per_thread: 3 * (nb * nb) as u32 + REG_OVERHEAD,
            static_instrs: instrs,
            reg_reuse_capacity: 0,
            dead_store_elim: false,
            shared_bytes_per_block: 0,
        },
        Unroll::Full => {
            // Straight-line code: the compiler keeps as much of the matrix
            // in registers as fits; demand is the whole lower triangle.
            let demand = tri_n + REG_OVERHEAD;
            KernelStatics {
                regs_per_thread: demand,
                static_instrs: instrs,
                reg_reuse_capacity: 255 - REG_OVERHEAD,
                dead_store_elim: demand <= 255,
                shared_bytes_per_block: 0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelConfig;

    #[test]
    fn op_instr_counts() {
        assert_eq!(TileOp::Potrf(1).instrs(), 2);
        // d=2: k=0: sqrt+rcp+1 mul+1 fma = 4; k=1: sqrt+rcp = 2.
        assert_eq!(TileOp::Potrf(2).instrs(), 6);
        assert_eq!(TileOp::Gemm(2, 3, 4).instrs(), 24);
        assert_eq!(TileOp::Syrk(3, 2).instrs(), 12);
        // trsm m=2,d=2: 2*2 divs + 2*tri(1)=2 fmas.
        assert_eq!(TileOp::Trsm(2, 2).instrs(), 6);
        assert_eq!(TileOp::LoadLower(4).instrs(), 10);
        assert_eq!(TileOp::StoreFull(3, 2).instrs(), 6);
    }

    #[test]
    fn walk_flop_total_is_looking_invariant() {
        // The compute flops (not loads) must be identical across orders.
        let compute = |looking| {
            let mut t = 0u64;
            walk(13, 4, looking, |op| {
                t += match op {
                    TileOp::Potrf(_) | TileOp::Trsm(..) | TileOp::Syrk(..) | TileOp::Gemm(..) => {
                        op.instrs()
                    }
                    _ => 0,
                }
            });
            t
        };
        let r = compute(Looking::Right);
        let l = compute(Looking::Left);
        let t = compute(Looking::Top);
        assert_eq!(r, l);
        assert_eq!(l, t);
    }

    #[test]
    fn lazier_orders_store_less() {
        let stores = |looking| {
            let mut s = 0u64;
            walk(32, 4, looking, |op| {
                if matches!(op, TileOp::StoreFull(..) | TileOp::StoreLower(_)) {
                    s += op.instrs();
                }
            });
            s
        };
        let right = stores(Looking::Right);
        let left = stores(Looking::Left);
        let top = stores(Looking::Top);
        // The paper's Figure 16 rationale: right > left? No — right-looking
        // rewrites the trailing submatrix every step; left and top write
        // each tile once. Top defers even panel writes.
        assert!(right > left, "right {right} left {left}");
        assert!(left >= top, "left {left} top {top}");
        // Every order writes at least the n(n+1)/2 result elements.
        assert!(top >= 32 * 33 / 2);
    }

    #[test]
    fn full_unroll_code_grows_with_n() {
        let mk = |n, unroll| KernelConfig {
            n,
            unroll,
            ..KernelConfig::baseline(n)
        };
        let small = static_instrs(&mk(8, Unroll::Full));
        let big = static_instrs(&mk(32, Unroll::Full));
        assert!(big > 10 * small, "small {small} big {big}");
        // Partial unrolling's code size is nearly n-independent.
        let p_small = static_instrs(&mk(8, Unroll::Partial));
        let p_big = static_instrs(&mk(32, Unroll::Partial));
        assert!(p_big < 3 * p_small, "partial small {p_small} big {p_big}");
    }

    #[test]
    fn full_unroll_statics_enable_reuse() {
        let c = KernelConfig {
            unroll: Unroll::Full,
            ..KernelConfig::baseline(16)
        };
        let s = statics(&c);
        assert!(s.dead_store_elim, "tri(16)+24 = 160 fits");
        assert!(s.reg_reuse_capacity > 200);
        let c = KernelConfig {
            unroll: Unroll::Full,
            ..KernelConfig::baseline(24)
        };
        let s = statics(&c);
        assert!(!s.dead_store_elim, "tri(24)+24 = 324 spills");
        assert!(s.regs_per_thread > 255);
    }

    #[test]
    fn ragged_configs_walk_consistent_dims() {
        // n=10, nb=4: blocks of 4,4,2. Every op dimension must be <= nb.
        walk(10, 4, Looking::Top, |op| {
            let ok = match op {
                TileOp::Potrf(d) | TileOp::LoadLower(d) | TileOp::StoreLower(d) => d <= 4,
                TileOp::Trsm(m, d) => m <= 4 && d <= 4,
                TileOp::Syrk(d, k) => d <= 4 && k <= 4,
                TileOp::Gemm(m, n, k) => m <= 4 && n <= 4 && k <= 4,
                TileOp::LoadFull(r, c) | TileOp::StoreFull(r, c) => r <= 4 && c <= 4,
            };
            assert!(ok, "{op:?}");
        });
    }
}
