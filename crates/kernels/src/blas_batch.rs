//! Batched BLAS-3 operations on interleaved layouts — the paper's
//! building blocks exposed as standalone batch routines, in the spirit of
//! MKL's `*_compact` API and cuBLAS's batched BLAS.
//!
//! Each operation processes whole `n × n` matrices, one thread per matrix
//! instance, tiles streamed through registers exactly like the
//! factorization kernel:
//!
//! * [`InterleavedTrsm`] — `B := B · L⁻ᵀ` (right triangular solve against
//!   a factored batch),
//! * [`InterleavedSyrk`] — `C := C − A·Aᵀ` (lower triangle),
//! * [`InterleavedGemm`] — `C := C − A·Bᵀ`.
//!
//! All operands live in the same global buffer at caller-chosen offsets,
//! each region laid out by the same [`Layout`]; every warp access is one
//! 128-byte transaction.

use crate::codesize::TileOp;
use crate::tileops::{gemm_tile, load_full, load_lower, store_full, syrk_tile, tile, trsm_tile};
use ibcf_gpu_sim::{
    launch_functional, plan_thread_kernel, price, ExecOptions, GpuSpec, KernelCtx, KernelStatics,
    KernelTiming, LaunchConfig, PlanParams, PricingCtx, ThreadKernel,
};
use ibcf_layout::{BatchLayout, Layout};

fn launch_for(layout: &Layout, block: usize) -> LaunchConfig {
    let padded = ibcf_layout::align_up(layout.padded_batch(), block);
    LaunchConfig::new(padded / block, block)
}

fn blas_statics(nb: usize, body: TileOp) -> KernelStatics {
    KernelStatics {
        regs_per_thread: 3 * (nb * nb) as u32 + 24,
        static_instrs: body.instrs() + 4 * (nb * nb) as u64 + 64,
        reg_reuse_capacity: 0,
        dead_store_elim: false,
        shared_bytes_per_block: 0,
    }
}

/// Batched right triangular solve `B := B · L⁻ᵀ`: the lower factors live
/// at offset `l_offset`, the right-hand-side matrices at `b_offset`, both
/// laid out by `layout`.
#[derive(Debug, Clone)]
pub struct InterleavedTrsm {
    /// Operand layout (shared by both regions).
    pub layout: Layout,
    /// Element offset of the factor region.
    pub l_offset: usize,
    /// Element offset of the right-hand-side region (updated in place).
    pub b_offset: usize,
    /// Tile size.
    pub nb: usize,
}

impl ThreadKernel for InterleavedTrsm {
    fn run<C: KernelCtx>(&self, ctx: &mut C) {
        let mat = ctx.thread().global();
        if mat >= self.layout.padded_batch() {
            return;
        }
        let n = self.layout.n();
        let nb = self.nb.clamp(1, crate::tileops::TS);
        let nt = n.div_ceil(nb);
        let dim = |b: usize| nb.min(n - b * nb);
        let lay = OffsetLayout {
            inner: self.layout,
            offset: self.l_offset,
        };
        let bay = OffsetLayout {
            inner: self.layout,
            offset: self.b_offset,
        };
        let (mut l_diag, mut l_panel, mut b_tile) = (tile(), tile(), tile());
        // Column sweep of the triangular solve: for each block column kk of
        // L, solve the B block-column, then update the ones to its right.
        for kk in 0..nt {
            let dk = dim(kk);
            load_lower(ctx, &lay, mat, nb, kk, dk, &mut l_diag, true);
            for bi in 0..nt {
                let di = dim(bi);
                load_full(ctx, &bay, mat, nb, bi, kk, di, dk, &mut b_tile, true);
                trsm_tile(ctx, di, dk, &l_diag, &mut b_tile, true);
                store_full(ctx, &bay, mat, nb, bi, kk, di, dk, &b_tile, true);
                // Update B[bi][jj] for jj > kk: B[bi][jj] -= X[bi][kk]·L[jj][kk]ᵀ.
                for jj in kk + 1..nt {
                    let dj = dim(jj);
                    let mut c_tile = tile();
                    load_full(ctx, &bay, mat, nb, bi, jj, di, dj, &mut c_tile, true);
                    load_full(ctx, &lay, mat, nb, jj, kk, dj, dk, &mut l_panel, true);
                    gemm_tile(ctx, di, dj, dk, &b_tile, &l_panel, &mut c_tile, true);
                    store_full(ctx, &bay, mat, nb, bi, jj, di, dj, &c_tile, true);
                }
            }
        }
    }

    fn statics(&self) -> KernelStatics {
        let nb = self.nb.clamp(1, crate::tileops::TS);
        blas_statics(nb, TileOp::Trsm(nb, nb))
    }
}

/// Batched symmetric rank-n update `C := C − A·Aᵀ` (lower triangle):
/// `A` matrices at `a_offset`, `C` matrices at `c_offset`.
#[derive(Debug, Clone)]
pub struct InterleavedSyrk {
    /// Operand layout (shared by both regions).
    pub layout: Layout,
    /// Element offset of the `A` region.
    pub a_offset: usize,
    /// Element offset of the `C` region (updated in place).
    pub c_offset: usize,
    /// Tile size.
    pub nb: usize,
}

impl ThreadKernel for InterleavedSyrk {
    fn run<C: KernelCtx>(&self, ctx: &mut C) {
        let mat = ctx.thread().global();
        if mat >= self.layout.padded_batch() {
            return;
        }
        let n = self.layout.n();
        let nb = self.nb.clamp(1, crate::tileops::TS);
        let nt = n.div_ceil(nb);
        let dim = |b: usize| nb.min(n - b * nb);
        let aay = OffsetLayout {
            inner: self.layout,
            offset: self.a_offset,
        };
        let cay = OffsetLayout {
            inner: self.layout,
            offset: self.c_offset,
        };
        let (mut a1, mut a2, mut c) = (tile(), tile(), tile());
        for jj in 0..nt {
            let dj = dim(jj);
            for ii in jj..nt {
                let di = dim(ii);
                if ii == jj {
                    load_lower(ctx, &cay, mat, nb, ii, di, &mut c, true);
                } else {
                    load_full(ctx, &cay, mat, nb, ii, jj, di, dj, &mut c, true);
                }
                for kk in 0..nt {
                    let dk = dim(kk);
                    load_full(ctx, &aay, mat, nb, ii, kk, di, dk, &mut a1, true);
                    if ii == jj {
                        syrk_tile(ctx, di, dk, &a1, &mut c, true);
                    } else {
                        load_full(ctx, &aay, mat, nb, jj, kk, dj, dk, &mut a2, true);
                        gemm_tile(ctx, di, dj, dk, &a1, &a2, &mut c, true);
                    }
                }
                if ii == jj {
                    crate::tileops::store_lower(ctx, &cay, mat, nb, ii, di, &c, true);
                } else {
                    store_full(ctx, &cay, mat, nb, ii, jj, di, dj, &c, true);
                }
            }
        }
    }

    fn statics(&self) -> KernelStatics {
        let nb = self.nb.clamp(1, crate::tileops::TS);
        blas_statics(nb, TileOp::Syrk(nb, nb))
    }
}

/// Batched general update `C := C − A·Bᵀ`: `A` at `a_offset`, `B` at
/// `b_offset`, `C` at `c_offset`, all `n × n` and laid out by `layout`.
#[derive(Debug, Clone)]
pub struct InterleavedGemm {
    /// Operand layout (shared by all three regions).
    pub layout: Layout,
    /// Element offset of the `A` region.
    pub a_offset: usize,
    /// Element offset of the `B` region.
    pub b_offset: usize,
    /// Element offset of the `C` region (updated in place).
    pub c_offset: usize,
    /// Tile size.
    pub nb: usize,
}

impl ThreadKernel for InterleavedGemm {
    fn run<C: KernelCtx>(&self, ctx: &mut C) {
        let mat = ctx.thread().global();
        if mat >= self.layout.padded_batch() {
            return;
        }
        let n = self.layout.n();
        let nb = self.nb.clamp(1, crate::tileops::TS);
        let nt = n.div_ceil(nb);
        let dim = |b: usize| nb.min(n - b * nb);
        let aay = OffsetLayout {
            inner: self.layout,
            offset: self.a_offset,
        };
        let bay = OffsetLayout {
            inner: self.layout,
            offset: self.b_offset,
        };
        let cay = OffsetLayout {
            inner: self.layout,
            offset: self.c_offset,
        };
        let (mut a, mut b, mut c) = (tile(), tile(), tile());
        for jj in 0..nt {
            let dj = dim(jj);
            for ii in 0..nt {
                let di = dim(ii);
                load_full(ctx, &cay, mat, nb, ii, jj, di, dj, &mut c, true);
                for kk in 0..nt {
                    let dk = dim(kk);
                    load_full(ctx, &aay, mat, nb, ii, kk, di, dk, &mut a, true);
                    load_full(ctx, &bay, mat, nb, jj, kk, dj, dk, &mut b, true);
                    gemm_tile(ctx, di, dj, dk, &a, &b, &mut c, true);
                }
                store_full(ctx, &cay, mat, nb, ii, jj, di, dj, &c, true);
            }
        }
    }

    fn statics(&self) -> KernelStatics {
        let nb = self.nb.clamp(1, crate::tileops::TS);
        blas_statics(nb, TileOp::Gemm(nb, nb, nb))
    }
}

/// A layout shifted by a constant element offset — lets several operand
/// batches share one global buffer.
#[derive(Debug, Clone, Copy)]
struct OffsetLayout {
    inner: Layout,
    offset: usize,
}

impl BatchLayout for OffsetLayout {
    fn n(&self) -> usize {
        self.inner.n()
    }
    fn lda(&self) -> usize {
        self.inner.lda()
    }
    fn batch(&self) -> usize {
        self.inner.batch()
    }
    fn padded_batch(&self) -> usize {
        self.inner.padded_batch()
    }
    fn len(&self) -> usize {
        self.offset + self.inner.len()
    }
    fn addr(&self, mat: usize, row: usize, col: usize) -> usize {
        self.offset + self.inner.addr(mat, row, col)
    }
    fn lane_stride(&self) -> usize {
        self.inner.lane_stride()
    }
    fn kind(&self) -> ibcf_layout::LayoutKind {
        self.inner.kind()
    }
}

/// Runs `C := C − A·Bᵀ` functionally over a shared buffer.
pub fn gemm_batch_device(kernel: &InterleavedGemm, mem: &mut [f32], block: usize) {
    launch_functional(
        kernel,
        launch_for(&kernel.layout, block),
        mem,
        ExecOptions::default(),
    );
}

/// Runs `C := C − A·Aᵀ` functionally over a shared buffer.
pub fn syrk_batch_device(kernel: &InterleavedSyrk, mem: &mut [f32], block: usize) {
    launch_functional(
        kernel,
        launch_for(&kernel.layout, block),
        mem,
        ExecOptions::default(),
    );
}

/// Runs `B := B · L⁻ᵀ` functionally over a shared buffer.
pub fn trsm_batch_device(kernel: &InterleavedTrsm, mem: &mut [f32], block: usize) {
    launch_functional(
        kernel,
        launch_for(&kernel.layout, block),
        mem,
        ExecOptions::default(),
    );
}

/// Times any of the batched BLAS kernels via the two-phase plan/price
/// pipeline.
pub fn time_blas<K: ThreadKernel>(
    kernel: &K,
    layout: &Layout,
    block: usize,
    spec: &GpuSpec,
) -> KernelTiming {
    let launch = launch_for(layout, block);
    let plan = plan_thread_kernel(kernel, launch, PlanParams::from_spec(spec, false));
    price(
        &plan,
        &PricingCtx {
            spec,
            launch,
            fast_math: false,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibcf_core::matrix::ColMatrix;
    use ibcf_core::spd::{fill_batch_spd, SpdKind};
    use ibcf_layout::{gather_matrix, scatter_matrix, LayoutKind};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn layout(n: usize, batch: usize) -> Layout {
        Layout::build(LayoutKind::Chunked, n, batch, 64)
    }

    fn random_batch(lay: &Layout, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = lay.n();
        let mut buf = vec![0.0f32; lay.len()];
        for m in 0..lay.padded_batch() {
            let a: Vec<f32> = (0..n * n).map(|_| rng.random::<f32>() - 0.5).collect();
            scatter_matrix(lay, &mut buf, m, &a, n);
        }
        buf
    }

    #[test]
    fn gemm_batch_matches_host_matmul() {
        let n = 9;
        let batch = 96;
        let lay = layout(n, batch);
        let a = random_batch(&lay, 1);
        let b = random_batch(&lay, 2);
        let c0 = random_batch(&lay, 3);
        let mut mem = Vec::new();
        mem.extend_from_slice(&a);
        mem.extend_from_slice(&b);
        mem.extend_from_slice(&c0);
        let k = InterleavedGemm {
            layout: lay,
            a_offset: 0,
            b_offset: lay.len(),
            c_offset: 2 * lay.len(),
            nb: 4,
        };
        gemm_batch_device(&k, &mut mem, 64);
        let (mut am, mut bm, mut cm, mut got) = (
            vec![0.0f32; n * n],
            vec![0.0f32; n * n],
            vec![0.0f32; n * n],
            vec![0.0f32; n * n],
        );
        for mat in [0usize, 17, 95] {
            gather_matrix(&lay, &a, mat, &mut am, n);
            gather_matrix(&lay, &b, mat, &mut bm, n);
            gather_matrix(&lay, &c0, mat, &mut cm, n);
            gather_matrix(&lay, &mem[2 * lay.len()..], mat, &mut got, n);
            let amx = ColMatrix::from_col_major(n, n, am.iter().map(|&x| x as f64).collect());
            let bmx = ColMatrix::from_col_major(n, n, bm.iter().map(|&x| x as f64).collect());
            let abt = amx.matmul(&bmx.transpose());
            for col in 0..n {
                for row in 0..n {
                    let want = cm[row + col * n] as f64 - abt[(row, col)];
                    let d = (got[row + col * n] as f64 - want).abs();
                    assert!(d < 1e-4, "mat {mat} ({row},{col}): {d}");
                }
            }
        }
    }

    #[test]
    fn syrk_batch_matches_host() {
        let n = 7;
        let batch = 64;
        let lay = layout(n, batch);
        let a = random_batch(&lay, 4);
        let c0 = random_batch(&lay, 5);
        let mut mem = Vec::new();
        mem.extend_from_slice(&a);
        mem.extend_from_slice(&c0);
        let k = InterleavedSyrk {
            layout: lay,
            a_offset: 0,
            c_offset: lay.len(),
            nb: 3,
        };
        syrk_batch_device(&k, &mut mem, 64);
        let (mut am, mut cm, mut got) = (
            vec![0.0f32; n * n],
            vec![0.0f32; n * n],
            vec![0.0f32; n * n],
        );
        for mat in [0usize, 31, 63] {
            gather_matrix(&lay, &a, mat, &mut am, n);
            gather_matrix(&lay, &c0, mat, &mut cm, n);
            gather_matrix(&lay, &mem[lay.len()..], mat, &mut got, n);
            let amx = ColMatrix::from_col_major(n, n, am.iter().map(|&x| x as f64).collect());
            let aat = amx.matmul(&amx.transpose());
            // Lower triangle updated; strict upper untouched.
            for col in 0..n {
                for row in col..n {
                    let want = cm[row + col * n] as f64 - aat[(row, col)];
                    let d = (got[row + col * n] as f64 - want).abs();
                    assert!(d < 1e-4, "mat {mat} ({row},{col})");
                }
                for row in 0..col {
                    assert_eq!(got[row + col * n], cm[row + col * n]);
                }
            }
        }
    }

    #[test]
    fn trsm_batch_solves_against_factored_batch() {
        let n = 8;
        let batch = 64;
        let lay = layout(n, batch);
        // Factored SPD batch as L.
        let mut l = vec![0.0f32; lay.len()];
        fill_batch_spd(&lay, &mut l, SpdKind::Wishart, 9);
        let config = crate::config::KernelConfig::baseline(n);
        crate::launch::factorize_batch_device(&config, batch, &mut l);
        let b0 = random_batch(&lay, 11);
        let mut mem = Vec::new();
        mem.extend_from_slice(&l);
        mem.extend_from_slice(&b0);
        let k = InterleavedTrsm {
            layout: lay,
            l_offset: 0,
            b_offset: lay.len(),
            nb: 4,
        };
        trsm_batch_device(&k, &mut mem, 64);
        // Check X · Lᵀ == B for a few matrices.
        let (mut lm, mut bm, mut xm) = (
            vec![0.0f32; n * n],
            vec![0.0f32; n * n],
            vec![0.0f32; n * n],
        );
        for mat in [0usize, 40] {
            gather_matrix(&lay, &l, mat, &mut lm, n);
            gather_matrix(&lay, &b0, mat, &mut bm, n);
            gather_matrix(&lay, &mem[lay.len()..], mat, &mut xm, n);
            for row in 0..n {
                for col in 0..n {
                    // (X·Lᵀ)[row][col] = Σ_k X[row][k]·L[col][k], k <= col.
                    let mut s = 0.0f64;
                    for kidx in 0..=col {
                        s += xm[row + kidx * n] as f64 * lm[col + kidx * n] as f64;
                    }
                    let d = (s - bm[row + col * n] as f64).abs();
                    assert!(d < 2e-3, "mat {mat} ({row},{col}): {d}");
                }
            }
        }
    }

    #[test]
    fn blas_kernels_are_coalesced_and_time_sanely() {
        let n = 8;
        let lay = layout(n, 4096);
        let spec = GpuSpec::p100();
        let gemm = InterleavedGemm {
            layout: lay,
            a_offset: 0,
            b_offset: lay.len(),
            c_offset: 2 * lay.len(),
            nb: 4,
        };
        let t = time_blas(&gemm, &lay, 64, &spec);
        assert!((t.transactions_per_access - 1.0).abs() < 1e-9);
        assert!(t.time_s > 0.0 && t.time_s.is_finite());
    }
}
