//! Launch plumbing: run a configuration functionally (real numerics on the
//! simulator's memory) or through the timing model.

use crate::config::{KernelConfig, Unroll};
use crate::interleaved::InterleavedCholesky;
use crate::traditional::TraditionalCholesky;
use ibcf_core::Looking;
use ibcf_gpu_sim::{
    launch_block_functional, launch_functional, plan_thread_kernel, price, time_block_kernel,
    ExecOptions, GpuSpec, KernelTiming, LaunchConfig, PlanParams, PricingCtx, TimingOptions,
    TraceCache, TracePlan,
};
use ibcf_layout::{BatchLayout, Layout};

/// Factorizes a batch in place with the interleaved device kernel. The
/// buffer must be laid out by `config.layout(batch)` (e.g. filled via
/// [`ibcf_core::spd::fill_batch_spd`]); returns that layout for reading
/// results back.
pub fn factorize_batch_device(config: &KernelConfig, batch: usize, data: &mut [f32]) -> Layout {
    let kernel = InterleavedCholesky::new(*config, batch);
    let layout = *kernel.layout();
    assert!(
        data.len() >= layout.len(),
        "batch buffer too short for layout"
    );
    launch_functional(
        &kernel,
        config.launch(batch),
        data,
        ExecOptions {
            fast_math: config.fast_math,
        },
    );
    layout
}

/// Factorizes a canonical-layout batch in place with the traditional
/// (MAGMA-style) block-per-matrix kernel.
pub fn factorize_batch_traditional(n: usize, batch: usize, data: &mut [f32]) {
    let kernel = TraditionalCholesky::new(n, batch);
    assert!(
        data.len() >= kernel.layout().len(),
        "batch buffer too short"
    );
    launch_block_functional(
        &kernel,
        LaunchConfig::new(kernel.grid(), kernel.block_threads()),
        data,
    );
}

/// Times one interleaved configuration for a batch of `batch` matrices.
///
/// # Examples
///
/// ```
/// use ibcf_gpu_sim::GpuSpec;
/// use ibcf_kernels::{time_config, KernelConfig};
///
/// let t = time_config(&KernelConfig::baseline(16), 16_384, &GpuSpec::p100());
/// assert!(t.time_s > 0.0);
/// // Interleaved layouts coalesce perfectly: one transaction per access.
/// assert!((t.transactions_per_access - 1.0).abs() < 1e-9);
/// ```
pub fn time_config(config: &KernelConfig, batch: usize, spec: &GpuSpec) -> KernelTiming {
    let plan = plan_config(config, batch, PlanParams::from_spec(spec, false));
    price_config(&plan, config, batch, spec)
}

/// The structural identity of a configuration's instruction stream: two
/// configurations with equal keys trace identical warps, so they can share
/// one [`TracePlan`]. Notably *absent* are `fast_math`, `cache_pref`, and
/// (for chunked layouts) `chunk_size` and the batch — those only affect
/// pricing, which is why a sweep-wide cache pays off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Matrix dimension.
    pub n: usize,
    /// Effective tile size (`nb` clamped).
    pub nb: usize,
    /// Tile-operation evaluation order.
    pub looking: Looking,
    /// Outer-loop unrolling mode.
    pub unroll: Unroll,
    /// Chunked vs simple interleaved layout.
    pub chunked: bool,
    /// Lane stride of the traced addresses: the chunk size when chunked,
    /// the padded batch (the only batch-dependent part) otherwise.
    pub stride: usize,
    /// Structural GPU parameters the plan was built under.
    pub params: PlanParams,
}

impl PlanKey {
    /// The key of `config` at `batch` under `params`.
    pub fn of(config: &KernelConfig, batch: usize, params: PlanParams) -> Self {
        let stride = if config.chunked {
            config.chunk_size
        } else {
            config.layout(batch).padded_batch()
        };
        PlanKey {
            n: config.n,
            nb: config.nb_eff(),
            looking: config.looking,
            unroll: config.unroll,
            chunked: config.chunked,
            stride,
            params,
        }
    }
}

/// Builds the structural [`TracePlan`] of an interleaved configuration:
/// traces one representative warp and runs the register-reuse and
/// coalescing passes. The result is shared by every configuration with the
/// same [`PlanKey`].
pub fn plan_config(config: &KernelConfig, batch: usize, params: PlanParams) -> TracePlan {
    let kernel = InterleavedCholesky::new(*config, batch);
    plan_thread_kernel(&kernel, config.launch(batch), params)
}

/// Prices a configuration's plan on `spec` at `batch`: the cheap half of
/// [`time_config`], safe to repeat across pricing-only parameter changes.
pub fn price_config(
    plan: &TracePlan,
    config: &KernelConfig,
    batch: usize,
    spec: &GpuSpec,
) -> KernelTiming {
    price(
        plan,
        &PricingCtx {
            spec,
            launch: config.launch(batch),
            fast_math: config.fast_math,
        },
    )
}

/// [`time_config`] through a shared plan cache: the hot path of autotuning
/// sweeps. Produces bitwise-identical timings to [`time_config`].
pub fn time_config_cached(
    config: &KernelConfig,
    batch: usize,
    spec: &GpuSpec,
    cache: &TraceCache<PlanKey>,
) -> KernelTiming {
    let params = PlanParams::from_spec(spec, false);
    let key = PlanKey::of(config, batch, params);
    let plan = cache.get_or_build(key, || plan_config(config, batch, params));
    let start = std::time::Instant::now();
    let timing = price_config(&plan, config, batch, spec);
    cache.record_price_ns(start.elapsed().as_nanos() as u64);
    timing
}

/// Batched POSV: factorizes the batch at the head of `mem` and solves the
/// right-hand sides stored at `layout.len()` (interleaved with the padded
/// batch, one length-`n` vector per matrix) — the full `A·x = b` pipeline
/// on the device, composed from the factorization and solve kernels.
///
/// Returns the layout for reading the factors back.
pub fn posv_batch_device(config: &KernelConfig, batch: usize, mem: &mut [f32]) -> Layout {
    let layout = config.layout(batch);
    let rhs_len = layout.n() * layout.padded_batch();
    assert!(
        mem.len() >= layout.len() + rhs_len,
        "buffer must hold factors + rhs"
    );
    factorize_batch_device(config, batch, &mut mem[..layout.len()]);
    // Solve under the same arithmetic mode the factorization used.
    crate::solve_kernel::solve_batch_device_opts(
        &layout,
        mem,
        config.chunk_size,
        ibcf_gpu_sim::ExecOptions {
            fast_math: config.fast_math,
        },
    );
    layout
}

/// Times the traditional kernel at dimension `n` for `batch` matrices.
pub fn time_traditional(n: usize, batch: usize, spec: &GpuSpec, fast_math: bool) -> KernelTiming {
    let kernel = TraditionalCholesky::new(n, batch);
    time_block_kernel(
        &kernel,
        LaunchConfig::new(kernel.grid(), kernel.block_threads()),
        spec,
        TimingOptions {
            fast_math,
            ..Default::default()
        },
    )
}

/// Gflop/s of a configuration at the paper's standard `batch · n³/3` flop
/// count.
pub fn gflops_of_config(config: &KernelConfig, batch: usize, spec: &GpuSpec) -> f64 {
    let t = time_config(config, batch, spec);
    let flops = ibcf_core::flops::cholesky_flops_std(config.n) * batch as f64;
    t.gflops(flops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Unroll;
    use ibcf_core::spd::{fill_batch_spd, SpdKind};
    use ibcf_core::verify::batch_reconstruction_error;
    use ibcf_core::Looking;

    #[test]
    fn device_and_traditional_agree_numerically() {
        let n = 10;
        let batch = 50;
        let config = KernelConfig::baseline(n);
        let layout = config.layout(batch);
        let mut inter = vec![0.0f32; layout.len()];
        fill_batch_spd(&layout, &mut inter, SpdKind::Wishart, 42);
        let orig_inter = inter.clone();
        factorize_batch_device(&config, batch, &mut inter);
        assert!(batch_reconstruction_error(&layout, &orig_inter, &inter) < 1e-4);

        let trad_kernel = TraditionalCholesky::new(n, batch);
        let trad_layout = *trad_kernel.layout();
        let mut trad = vec![0.0f32; trad_layout.len()];
        fill_batch_spd(&trad_layout, &mut trad, SpdKind::Wishart, 42);
        factorize_batch_traditional(n, batch, &mut trad);

        // Same seeds → same matrices → factors must agree closely.
        let mut a = vec![0.0f32; n * n];
        let mut b = vec![0.0f32; n * n];
        for mat in 0..batch {
            ibcf_layout::gather_matrix(&layout, &inter, mat, &mut a, n);
            ibcf_layout::gather_matrix(&trad_layout, &trad, mat, &mut b, n);
            for c in 0..n {
                for r in c..n {
                    let d = (a[r + c * n] - b[r + c * n]).abs();
                    assert!(d < 1e-3, "mat {mat} ({r},{c}): {d}");
                }
            }
        }
    }

    #[test]
    fn interleaved_beats_traditional_at_tiny_sizes() {
        let spec = GpuSpec::p100();
        let batch = 16384;
        let n = 8;
        let config = KernelConfig {
            unroll: Unroll::Full,
            ..KernelConfig::baseline(n)
        };
        let inter = gflops_of_config(&config, batch, &spec);
        let trad = time_traditional(n, batch, &spec, false)
            .gflops(ibcf_core::flops::cholesky_flops_std(n) * batch as f64);
        assert!(
            inter > 2.0 * trad,
            "interleaved {inter:.0} GFLOP/s vs traditional {trad:.0}"
        );
    }

    #[test]
    fn fast_math_beats_ieee_at_small_sizes() {
        let spec = GpuSpec::p100();
        let batch = 16384;
        let ieee = KernelConfig {
            unroll: Unroll::Full,
            ..KernelConfig::baseline(12)
        };
        let fast = KernelConfig {
            fast_math: true,
            ..ieee
        };
        let g_ieee = gflops_of_config(&ieee, batch, &spec);
        let g_fast = gflops_of_config(&fast, batch, &spec);
        assert!(g_fast > g_ieee, "fast {g_fast:.0} vs ieee {g_ieee:.0}");
    }

    #[test]
    fn posv_solves_end_to_end() {
        use ibcf_core::spd::{fill_batch_spd, SpdKind};
        let n = 6;
        let batch = 96;
        let config = KernelConfig::baseline(n);
        let layout = config.layout(batch);
        let padded = ibcf_layout::BatchLayout::padded_batch(&layout);
        let region = ibcf_layout::BatchLayout::len(&layout);
        let mut mem = vec![0.0f32; region + n * padded];
        fill_batch_spd(&layout, &mut mem[..region], SpdKind::Wishart, 5);
        let orig = mem[..region].to_vec();
        // b = A·1 per matrix, computed on the host.
        let mut a = vec![0.0f32; n * n];
        for m in 0..padded {
            ibcf_layout::gather_matrix(&layout, &orig, m, &mut a, n);
            for i in 0..n {
                let mut acc = 0.0f32;
                for j in 0..n {
                    let (r, c) = if i >= j { (i, j) } else { (j, i) };
                    acc += a[r + c * n];
                }
                mem[region + i * padded + m] = acc;
            }
        }
        posv_batch_device(&config, batch, &mut mem);
        for m in 0..batch {
            for i in 0..n {
                let x = mem[region + i * padded + m];
                assert!((x - 1.0).abs() < 1e-3, "m={m} i={i}: {x}");
            }
        }
    }

    #[test]
    fn top_looking_writes_least_and_times_fastest_at_mid_sizes() {
        let spec = GpuSpec::p100();
        let batch = 16384;
        let mut times = Vec::new();
        for looking in Looking::ALL {
            let config = KernelConfig {
                looking,
                nb: 4,
                unroll: Unroll::Partial,
                ..KernelConfig::baseline(32)
            };
            times.push((looking, time_config(&config, batch, &spec).time_s));
        }
        let right = times[0].1;
        let left = times[1].1;
        let top = times[2].1;
        assert!(
            top <= left && left <= right,
            "right {right} left {left} top {top}"
        );
    }
}
