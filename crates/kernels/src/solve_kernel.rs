//! Device-side batched Cholesky solve: forward and backward substitution
//! with one thread per system, right-hand sides interleaved like the
//! matrices.
//!
//! The paper factors ("in this article we focus solely on the
//! factorization step") but its motivating ALS application solves; this
//! kernel completes the pipeline on the same layout principles: every
//! warp access — factor elements and vector elements alike — is one
//! 128-byte transaction.

use ibcf_gpu_sim::{
    launch_functional, plan_thread_kernel, price, ExecOptions, GpuSpec, KernelCtx, KernelStatics,
    KernelTiming, LaunchConfig, PlanParams, PricingCtx, ThreadKernel,
};
use ibcf_layout::{BatchLayout, Layout};

/// Largest system dimension the solve kernel supports (bounded by the
/// per-thread register file the solution vector lives in).
pub const MAX_SOLVE_N: usize = 96;

/// Batched `L·Lᵀ x = b` solve kernel over an interleaved factor batch.
///
/// Global memory holds the factors (laid out by `layout`) followed —
/// at `rhs_offset` — by the right-hand sides, interleaved with the same
/// padded batch: element `i` of system `m` lives at
/// `rhs_offset + i * padded_batch + m`. Solutions overwrite the
/// right-hand sides.
#[derive(Debug, Clone)]
pub struct InterleavedSolve {
    layout: Layout,
    rhs_offset: usize,
}

impl InterleavedSolve {
    /// Builds the kernel; `rhs_offset` is where the vector batch begins
    /// within the shared global buffer (usually `layout.len()`).
    ///
    /// # Panics
    /// If `n > MAX_SOLVE_N`.
    pub fn new(layout: Layout, rhs_offset: usize) -> Self {
        assert!(
            layout.n() <= MAX_SOLVE_N,
            "solve kernel supports n <= {MAX_SOLVE_N}"
        );
        InterleavedSolve { layout, rhs_offset }
    }

    /// Address of element `i` of system `mat` in the vector batch.
    #[inline]
    fn rhs_addr(&self, mat: usize, i: usize) -> usize {
        self.rhs_offset + i * self.layout.padded_batch() + mat
    }

    /// Required total buffer length (factors + right-hand sides).
    pub fn required_len(&self) -> usize {
        self.rhs_offset + self.layout.n() * self.layout.padded_batch()
    }
}

impl ThreadKernel for InterleavedSolve {
    fn run<C: KernelCtx>(&self, ctx: &mut C) {
        let mat = ctx.thread().global();
        if mat >= self.layout.padded_batch() {
            return;
        }
        let n = self.layout.n();
        let lay = &self.layout;
        let mut x = [0.0f32; MAX_SOLVE_N];

        // Forward substitution: L·y = b.
        for i in 0..n {
            let mut acc = ctx.ld(self.rhs_addr(mat, i));
            for (k, &xk) in x.iter().enumerate().take(i) {
                let lik = ctx.ld(lay.addr(mat, i, k));
                acc = ctx.fma(-lik, xk, acc);
            }
            let lii = ctx.ld(lay.addr(mat, i, i));
            x[i] = ctx.div(acc, lii);
            ctx.iops(2);
        }
        // Backward substitution: Lᵀ·x = y.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (k, &xk) in x.iter().enumerate().take(n).skip(i + 1) {
                let lki = ctx.ld(lay.addr(mat, k, i));
                acc = ctx.fma(-lki, xk, acc);
            }
            let lii = ctx.ld(lay.addr(mat, i, i));
            x[i] = ctx.div(acc, lii);
            ctx.iops(2);
        }
        for (i, &xi) in x.iter().enumerate().take(n) {
            ctx.st(self.rhs_addr(mat, i), xi);
        }
    }

    fn statics(&self) -> KernelStatics {
        let n = self.layout.n() as u32;
        KernelStatics {
            // The solution vector lives in registers, plus pipeline
            // overhead.
            regs_per_thread: n + 16,
            // Looped substitution code: small and n-independent-ish.
            static_instrs: 300,
            reg_reuse_capacity: 0,
            dead_store_elim: false,
            shared_bytes_per_block: 0,
        }
    }
}

/// Solves, in place, the right-hand sides stored at `layout.len()` within
/// `mem` against the factored batch stored at its start. `block` threads
/// per block (a warp multiple; use the layout's chunk size).
pub fn solve_batch_device(layout: &Layout, mem: &mut [f32], block: usize) {
    solve_batch_device_opts(layout, mem, block, ExecOptions::default());
}

/// [`solve_batch_device`] with explicit arithmetic options, so a pipeline
/// factored under `--use_fast_math` can solve under the same mode.
pub fn solve_batch_device_opts(layout: &Layout, mem: &mut [f32], block: usize, opts: ExecOptions) {
    let kernel = InterleavedSolve::new(*layout, layout.len());
    assert!(mem.len() >= kernel.required_len(), "buffer too short");
    let padded = ibcf_layout::align_up(layout.padded_batch(), block);
    launch_functional(&kernel, LaunchConfig::new(padded / block, block), mem, opts);
}

/// Times the solve kernel on `spec` for a batch of `batch` systems, via
/// the two-phase plan/price pipeline.
pub fn time_solve(layout: &Layout, batch: usize, spec: &GpuSpec, block: usize) -> KernelTiming {
    let _ = batch;
    let kernel = InterleavedSolve::new(*layout, layout.len());
    let padded = ibcf_layout::align_up(layout.padded_batch(), block);
    let launch = LaunchConfig::new(padded / block, block);
    let plan = plan_thread_kernel(&kernel, launch, PlanParams::from_spec(spec, false));
    price(
        &plan,
        &PricingCtx {
            spec,
            launch,
            fast_math: false,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelConfig;
    use crate::launch::factorize_batch_device;
    use ibcf_core::spd::{fill_batch_spd, SpdKind};
    use ibcf_gpu_sim::trace_warp;

    #[test]
    fn device_solve_matches_host_solve() {
        use ibcf_core::solve::{solve_batch, VectorBatch};
        let n = 10;
        let batch = 128;
        let config = KernelConfig::baseline(n);
        let layout = config.layout(batch);

        // Factor on the device.
        let mut mem = vec![0.0f32; layout.len() + n * layout.padded_batch()];
        fill_batch_spd(&layout, &mut mem[..layout.len()], SpdKind::Wishart, 31);
        factorize_batch_device(&config, batch, &mut mem[..layout.len()]);

        // Right-hand sides: b[i] = i + 1 for every system, on the device
        // buffer and in a host copy.
        let padded = layout.padded_batch();
        for i in 0..n {
            for m in 0..padded {
                mem[layout.len() + i * padded + m] = (i + 1) as f32;
            }
        }
        let vb = VectorBatch::interleaved(n, batch);
        let mut host_rhs = vec![0.0f32; vb.len()];
        for m in 0..batch {
            for i in 0..n {
                host_rhs[vb.addr(m, i)] = (i + 1) as f32;
            }
        }
        let factors = mem[..layout.len()].to_vec();

        solve_batch_device(&layout, &mut mem, config.chunk_size);
        solve_batch(&layout, &factors, &vb, &mut host_rhs);

        for m in 0..batch {
            for i in 0..n {
                let dev = mem[layout.len() + i * padded + m];
                let host = host_rhs[vb.addr(m, i)];
                let d = (dev - host).abs() / host.abs().max(1.0);
                assert!(d < 1e-5, "m={m} i={i}: device {dev} vs host {host}");
            }
        }
    }

    #[test]
    fn solve_kernel_is_perfectly_coalesced() {
        use ibcf_gpu_sim::coalesce::coalesce;
        let config = KernelConfig::baseline(8);
        let layout = config.layout(256);
        let kernel = InterleavedSolve::new(layout, layout.len());
        let trace = trace_warp(&kernel, LaunchConfig::new(4, 64), 0, 0);
        for a in &trace.accesses {
            let c = coalesce(a, 4, 128, 32);
            assert_eq!(c.transactions, 1);
        }
    }

    #[test]
    fn solve_timing_is_sane_and_memory_bound() {
        let spec = GpuSpec::p100();
        let config = KernelConfig::baseline(16);
        let layout = config.layout(16384);
        let t = time_solve(&layout, 16384, &spec, 64);
        assert!(t.time_s > 0.0 && t.time_s.is_finite());
        // Substitution reads the whole triangle twice and has O(n²) flops:
        // decisively memory bound.
        assert_eq!(t.bottleneck, ibcf_gpu_sim::Bottleneck::Dram);
    }

    #[test]
    #[should_panic(expected = "solve kernel supports")]
    fn rejects_oversized_systems() {
        let layout = Layout::Interleaved(ibcf_layout::Interleaved::new(100, 32));
        let _ = InterleavedSolve::new(layout, 0);
    }
}
