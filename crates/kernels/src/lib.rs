//! The paper's batch Cholesky kernels, runnable on the SIMT simulator.
//!
//! Two kernel families:
//!
//! * [`interleaved::InterleavedCholesky`] — the paper's contribution: one
//!   thread owns one matrix, data in a (chunked) interleaved layout, tile
//!   microkernels fully unrolled, optional full unrolling of the outer
//!   loops, right/left/top-looking evaluation orders, ragged corner tiles
//!   for `n % nb != 0`.
//! * [`traditional::TraditionalCholesky`] — the MAGMA-style baseline: one
//!   thread block per matrix, canonical column-major layout, the matrix
//!   staged through shared memory.
//!
//! Plus the regime neither batched family reaches:
//!
//! * [`blocked_sim`] — blocked factorization of *one large* matrix as a
//!   per-step launch schedule (POTRF / TRSM panel / trailing update),
//!   the device-side counterpart of the host task-graph runtime
//!   (`ibcf_core::tiled`), priced launch-by-launch for the
//!   batched-vs-blocked crossover study.
//!
//! [`config::KernelConfig`] captures the paper's five tuning parameters
//! (plus arithmetic mode and cache preference); [`launch`] maps a config
//! onto functional or timed launches.

#![warn(missing_docs)]

pub mod blas_batch;
pub mod blocked_sim;
pub mod codesize;
pub mod config;
pub mod emit;
pub mod interleaved;
pub mod launch;
pub mod pack;
pub mod solve_kernel;
pub mod tileops;
pub mod traditional;

pub use blas_batch::{
    gemm_batch_device, syrk_batch_device, time_blas, trsm_batch_device, InterleavedGemm,
    InterleavedSyrk, InterleavedTrsm,
};
pub use blocked_sim::{
    blocked_launches, factorize_blocked_device, time_blocked, BlockedTiming, MAX_BLOCKED_NB,
};
pub use config::{CachePref, KernelConfig, Unroll};
pub use emit::emit_cuda;
pub use interleaved::InterleavedCholesky;
pub use launch::{
    factorize_batch_device, factorize_batch_traditional, gflops_of_config, plan_config,
    posv_batch_device, price_config, time_config, time_config_cached, time_traditional, PlanKey,
};
pub use pack::{
    pack_batch_device, pack_batch_host, time_pack, unpack_batch_host, PackDirection, PackKernel,
};
pub use solve_kernel::{solve_batch_device, solve_batch_device_opts, time_solve, InterleavedSolve};
pub use traditional::TraditionalCholesky;
