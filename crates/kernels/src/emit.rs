//! CUDA C source emission — the analogue of the paper's *pyexpander*
//! preprocessor.
//!
//! The paper's artifact is not a library but a *generator*: for every
//! point of the tuning space it textually expands the tile microkernels of
//! Figure 9, the load/store stencils of Figure 10, and (optionally) the
//! fully unrolled factorization of Figure 12 into a CUDA kernel, compiles
//! it, and measures it. This module reproduces the generator: given a
//! [`KernelConfig`] it emits the complete CUDA C source the paper would
//! have compiled. The emitted code is what the simulator's traced
//! instruction stream models, so a unit test pins the emitted statement
//! counts to the operation walker.
//!
//! The output is real, self-contained CUDA C (one `__global__` kernel plus
//! a header comment); it is used for inspection, documentation, and for
//! checking the code-size model, not compiled here.

use crate::codesize::TileOp;
use crate::config::{KernelConfig, Unroll};
use ibcf_core::Looking;
use std::fmt::Write;

/// Register-tile roles, named like the paper's `rA1`/`rA2`/`rA3`.
#[derive(Clone, Copy, PartialEq)]
enum Reg {
    A1,
    A2,
    A3,
}

impl Reg {
    fn name(self) -> &'static str {
        match self {
            Reg::A1 => "rA1",
            Reg::A2 => "rA2",
            Reg::A3 => "rA3",
        }
    }
}

/// Emits the complete CUDA C source for one kernel configuration.
///
/// # Examples
///
/// ```
/// use ibcf_kernels::{emit_cuda, KernelConfig, Unroll};
///
/// let config = KernelConfig { unroll: Unroll::Full, ..KernelConfig::baseline(4) };
/// let src = emit_cuda(&config);
/// assert!(src.contains("__global__ void spotrf_batch_n4_nb4_top_full"));
/// assert_eq!(src.matches("sqrtf(").count(), 4); // one per pivot
/// ```
pub fn emit_cuda(config: &KernelConfig) -> String {
    let mut s = String::new();
    let n = config.n;
    let nb = config.nb_eff();
    let chunk = config.chunk_size;
    let kind = if config.chunked {
        "chunked"
    } else {
        "interleaved"
    };
    writeln!(
        s,
        "// Auto-generated batch Cholesky kernel (IPPS'17 reproduction).\n\
         // n = {n}, nb = {nb}, {} looking, {kind} layout, chunk/block = {chunk},\n\
         // {} unrolling, {} arithmetic.\n\
         //\n\
         // One thread factorizes one matrix; lane-adjacent threads own\n\
         // memory-adjacent matrices, so every access below is a single\n\
         // 128-byte transaction per warp.",
        config.looking.name(),
        config.unroll.name(),
        if config.fast_math {
            "--use_fast_math"
        } else {
            "IEEE"
        },
    )
    .unwrap();
    writeln!(s, "#define N {n}").unwrap();
    writeln!(s, "#define NB {nb}").unwrap();
    writeln!(s, "#define CHUNK {chunk}").unwrap();
    // Element (i, j) of this thread's matrix, in the (chunked) interleaved
    // layout: the chunk base is folded into dA below.
    writeln!(s, "#define IDX(i, j) ((((j) * N) + (i)) * CHUNK + lane)").unwrap();
    writeln!(s).unwrap();
    writeln!(
        s,
        "extern \"C\" __global__ void spotrf_batch_n{n}_nb{nb}_{}_{}(float *dA_base)\n{{",
        config.looking.name(),
        config.unroll.name()
    )
    .unwrap();
    writeln!(s, "    const int lane = threadIdx.x;").unwrap();
    writeln!(
        s,
        "    float *dA = dA_base + (size_t)blockIdx.x * N * N * CHUNK;"
    )
    .unwrap();
    match config.unroll {
        Unroll::Full => emit_full(&mut s, config),
        Unroll::Partial => emit_partial(&mut s, config),
    }
    writeln!(s, "}}").unwrap();
    s
}

/// Scalar statements of one tile operation over named register variables,
/// exactly the expansion of the paper's Figure 9/10 stencils.
fn emit_op_statements(s: &mut String, op: TileOp, regs: OpRegs, at: Option<(usize, usize)>) {
    let ind = "    ";
    match op {
        TileOp::LoadFull(r, c) => {
            let (bi, bj) = at.expect("load needs a location");
            for col in 0..c {
                for row in 0..r {
                    writeln!(
                        s,
                        "{ind}{}_{row}{col} = dA[IDX({}, {})];",
                        regs.dst.name(),
                        bi + row,
                        bj + col
                    )
                    .unwrap();
                }
            }
        }
        TileOp::StoreFull(r, c) => {
            let (bi, bj) = at.expect("store needs a location");
            for col in 0..c {
                for row in 0..r {
                    writeln!(
                        s,
                        "{ind}dA[IDX({}, {})] = {}_{row}{col};",
                        bi + row,
                        bj + col,
                        regs.dst.name()
                    )
                    .unwrap();
                }
            }
        }
        TileOp::LoadLower(d) => {
            let (bi, bj) = at.expect("load needs a location");
            for col in 0..d {
                for row in col..d {
                    writeln!(
                        s,
                        "{ind}{}_{row}{col} = dA[IDX({}, {})];",
                        regs.dst.name(),
                        bi + row,
                        bj + col
                    )
                    .unwrap();
                }
            }
        }
        TileOp::StoreLower(d) => {
            let (bi, bj) = at.expect("store needs a location");
            for col in 0..d {
                for row in col..d {
                    writeln!(
                        s,
                        "{ind}dA[IDX({}, {})] = {}_{row}{col};",
                        bi + row,
                        bj + col,
                        regs.dst.name()
                    )
                    .unwrap();
                }
            }
        }
        TileOp::Potrf(d) => {
            let a = regs.dst.name();
            for k in 0..d {
                writeln!(s, "{ind}{a}_{k}{k} = sqrtf({a}_{k}{k});").unwrap();
                writeln!(s, "{ind}inv = 1.0f / {a}_{k}{k};").unwrap();
                for m in k + 1..d {
                    writeln!(s, "{ind}{a}_{m}{k} *= inv;").unwrap();
                }
                for j in k + 1..d {
                    for m in j..d {
                        writeln!(s, "{ind}{a}_{m}{j} -= {a}_{m}{k} * {a}_{j}{k};").unwrap();
                    }
                }
            }
        }
        TileOp::Trsm(m, d) => {
            let l = regs.a.name();
            let b = regs.dst.name();
            for row in 0..m {
                for k in 0..d {
                    writeln!(s, "{ind}{b}_{row}{k} /= {l}_{k}{k};").unwrap();
                    for j in k + 1..d {
                        writeln!(s, "{ind}{b}_{row}{j} -= {b}_{row}{k} * {l}_{j}{k};").unwrap();
                    }
                }
            }
        }
        TileOp::Syrk(d, k) => {
            let a = regs.a.name();
            let c = regs.dst.name();
            for col in 0..d {
                for row in col..d {
                    for p in 0..k {
                        writeln!(s, "{ind}{c}_{row}{col} -= {a}_{row}{p} * {a}_{col}{p};").unwrap();
                    }
                }
            }
        }
        TileOp::Gemm(m, n, k) => {
            let a = regs.a.name();
            let b = regs.b.name();
            let c = regs.dst.name();
            for col in 0..n {
                for row in 0..m {
                    for p in 0..k {
                        writeln!(s, "{ind}{c}_{row}{col} -= {a}_{row}{p} * {b}_{col}{p};").unwrap();
                    }
                }
            }
        }
    }
}

#[derive(Clone, Copy)]
struct OpRegs {
    dst: Reg,
    a: Reg,
    b: Reg,
}

fn regs(dst: Reg, a: Reg, b: Reg) -> OpRegs {
    OpRegs { dst, a, b }
}

/// Declares every register-tile scalar used by the kernel.
fn emit_decls(s: &mut String, nb: usize) {
    writeln!(s, "    float inv;").unwrap();
    for reg in [Reg::A1, Reg::A2, Reg::A3] {
        write!(s, "    float").unwrap();
        let mut first = true;
        for col in 0..nb {
            for row in 0..nb {
                write!(
                    s,
                    "{} {}_{row}{col}",
                    if first { "" } else { "," },
                    reg.name()
                )
                .unwrap();
                first = false;
            }
        }
        writeln!(s, ";").unwrap();
    }
}

/// Fully unrolled body (Figure 12): the operation walker drives straight-
/// line emission; each op's location and register roles mirror the
/// executed kernel exactly.
fn emit_full(s: &mut String, config: &KernelConfig) {
    let nb = config.nb_eff();
    emit_decls(s, nb);
    // Re-walk with explicit register roles per looking order. The roles
    // match `InterleavedCholesky::run` so that the emitted text is the
    // source of the traced kernel.
    let role_stream = role_walk(config);
    for (op, r, at) in role_stream {
        emit_op_statements(s, op, r, at);
    }
}

/// Pairs every walked op with its register roles and tile coordinates,
/// mirroring the data flow of `InterleavedCholesky::run`.
/// One emitted operation: the tile op, its register roles, and (for
/// loads/stores) the element coordinates of the tile origin.
type RoleOp = (TileOp, OpRegs, Option<(usize, usize)>);

fn role_walk(config: &KernelConfig) -> Vec<RoleOp> {
    let n = config.n;
    let nb = config.nb_eff();
    let nt = n.div_ceil(nb);
    let dim = |b: usize| nb.min(n - b * nb);
    let mut out: Vec<RoleOp> = Vec::new();
    let mut push = |op: TileOp, r: OpRegs, at: Option<(usize, usize)>| out.push((op, r, at));
    let pos = |bi: usize, bj: usize| Some((bi * nb, bj * nb));
    match config.looking {
        Looking::Right => {
            for kk in 0..nt {
                let dk = dim(kk);
                push(
                    TileOp::LoadLower(dk),
                    regs(Reg::A1, Reg::A1, Reg::A1),
                    pos(kk, kk),
                );
                push(TileOp::Potrf(dk), regs(Reg::A1, Reg::A1, Reg::A1), None);
                push(
                    TileOp::StoreLower(dk),
                    regs(Reg::A1, Reg::A1, Reg::A1),
                    pos(kk, kk),
                );
                for mm in kk + 1..nt {
                    let dm = dim(mm);
                    push(
                        TileOp::LoadFull(dm, dk),
                        regs(Reg::A2, Reg::A1, Reg::A1),
                        pos(mm, kk),
                    );
                    push(TileOp::Trsm(dm, dk), regs(Reg::A2, Reg::A1, Reg::A1), None);
                    push(
                        TileOp::StoreFull(dm, dk),
                        regs(Reg::A2, Reg::A1, Reg::A1),
                        pos(mm, kk),
                    );
                }
                for nn in kk + 1..nt {
                    let dn = dim(nn);
                    push(
                        TileOp::LoadFull(dn, dk),
                        regs(Reg::A1, Reg::A1, Reg::A1),
                        pos(nn, kk),
                    );
                    push(
                        TileOp::LoadLower(dn),
                        regs(Reg::A3, Reg::A1, Reg::A1),
                        pos(nn, nn),
                    );
                    push(TileOp::Syrk(dn, dk), regs(Reg::A3, Reg::A1, Reg::A1), None);
                    push(
                        TileOp::StoreLower(dn),
                        regs(Reg::A3, Reg::A1, Reg::A1),
                        pos(nn, nn),
                    );
                    for mm in nn + 1..nt {
                        let dm = dim(mm);
                        push(
                            TileOp::LoadFull(dm, dk),
                            regs(Reg::A2, Reg::A1, Reg::A1),
                            pos(mm, kk),
                        );
                        push(
                            TileOp::LoadFull(dm, dn),
                            regs(Reg::A3, Reg::A1, Reg::A1),
                            pos(mm, nn),
                        );
                        push(
                            TileOp::Gemm(dm, dn, dk),
                            regs(Reg::A3, Reg::A2, Reg::A1),
                            None,
                        );
                        push(
                            TileOp::StoreFull(dm, dn),
                            regs(Reg::A3, Reg::A1, Reg::A1),
                            pos(mm, nn),
                        );
                    }
                }
            }
        }
        Looking::Left => {
            for kk in 0..nt {
                let dk = dim(kk);
                push(
                    TileOp::LoadLower(dk),
                    regs(Reg::A1, Reg::A1, Reg::A1),
                    pos(kk, kk),
                );
                for mm in 0..kk {
                    let dm = dim(mm);
                    push(
                        TileOp::LoadFull(dk, dm),
                        regs(Reg::A2, Reg::A1, Reg::A1),
                        pos(kk, mm),
                    );
                    push(TileOp::Syrk(dk, dm), regs(Reg::A1, Reg::A2, Reg::A2), None);
                }
                push(TileOp::Potrf(dk), regs(Reg::A1, Reg::A1, Reg::A1), None);
                push(
                    TileOp::StoreLower(dk),
                    regs(Reg::A1, Reg::A1, Reg::A1),
                    pos(kk, kk),
                );
                for ii in kk + 1..nt {
                    let di = dim(ii);
                    push(
                        TileOp::LoadFull(di, dk),
                        regs(Reg::A3, Reg::A1, Reg::A1),
                        pos(ii, kk),
                    );
                    for mm in 0..kk {
                        let dm = dim(mm);
                        push(
                            TileOp::LoadFull(di, dm),
                            regs(Reg::A2, Reg::A1, Reg::A1),
                            pos(ii, mm),
                        );
                        push(
                            TileOp::LoadFull(dk, dm),
                            regs(Reg::A1, Reg::A1, Reg::A1),
                            pos(kk, mm),
                        );
                        push(
                            TileOp::Gemm(di, dk, dm),
                            regs(Reg::A3, Reg::A2, Reg::A1),
                            None,
                        );
                    }
                    push(
                        TileOp::StoreFull(di, dk),
                        regs(Reg::A3, Reg::A1, Reg::A1),
                        pos(ii, kk),
                    );
                    push(
                        TileOp::LoadLower(dk),
                        regs(Reg::A1, Reg::A1, Reg::A1),
                        pos(kk, kk),
                    );
                    push(TileOp::Trsm(di, dk), regs(Reg::A3, Reg::A1, Reg::A1), None);
                    push(
                        TileOp::StoreFull(di, dk),
                        regs(Reg::A3, Reg::A1, Reg::A1),
                        pos(ii, kk),
                    );
                }
            }
        }
        Looking::Top => {
            for kk in 0..nt {
                let dk = dim(kk);
                for nn in 0..kk {
                    let dn = dim(nn);
                    push(
                        TileOp::LoadFull(dk, dn),
                        regs(Reg::A3, Reg::A1, Reg::A1),
                        pos(kk, nn),
                    );
                    for mm in 0..nn {
                        let dm = dim(mm);
                        push(
                            TileOp::LoadFull(dk, dm),
                            regs(Reg::A1, Reg::A1, Reg::A1),
                            pos(kk, mm),
                        );
                        push(
                            TileOp::LoadFull(dn, dm),
                            regs(Reg::A2, Reg::A1, Reg::A1),
                            pos(nn, mm),
                        );
                        push(
                            TileOp::Gemm(dk, dn, dm),
                            regs(Reg::A3, Reg::A1, Reg::A2),
                            None,
                        );
                    }
                    push(
                        TileOp::LoadLower(dn),
                        regs(Reg::A1, Reg::A1, Reg::A1),
                        pos(nn, nn),
                    );
                    push(TileOp::Trsm(dk, dn), regs(Reg::A3, Reg::A1, Reg::A1), None);
                    push(
                        TileOp::StoreFull(dk, dn),
                        regs(Reg::A3, Reg::A1, Reg::A1),
                        pos(kk, nn),
                    );
                }
                push(
                    TileOp::LoadLower(dk),
                    regs(Reg::A1, Reg::A1, Reg::A1),
                    pos(kk, kk),
                );
                for nn in 0..kk {
                    let dn = dim(nn);
                    push(
                        TileOp::LoadFull(dk, dn),
                        regs(Reg::A2, Reg::A1, Reg::A1),
                        pos(kk, nn),
                    );
                    push(TileOp::Syrk(dk, dn), regs(Reg::A1, Reg::A2, Reg::A2), None);
                }
                push(TileOp::Potrf(dk), regs(Reg::A1, Reg::A1, Reg::A1), None);
                push(
                    TileOp::StoreLower(dk),
                    regs(Reg::A1, Reg::A1, Reg::A1),
                    pos(kk, kk),
                );
            }
        }
    }
    out
}

/// Partially unrolled body (Figure 11): tile-operation macros with fully
/// unrolled bodies, driven by outer loops. The macros are emitted for the
/// main tile size only; when `n % nb != 0` the real generator would emit
/// the separate corner-case kernels the paper mentions but does not show,
/// and the emitted source says so explicitly.
fn emit_partial(s: &mut String, config: &KernelConfig) {
    let nb = config.nb_eff();
    emit_decls(s, nb);
    writeln!(
        s,
        "    // Tile-operation bodies are macros with fully unrolled\n\
         \x20   // contents (Figure 9); only the outer tile loops below remain\n\
         \x20   // as loops (Figure 11)."
    )
    .unwrap();
    if config.is_ragged() {
        writeln!(
            s,
            "    // NOTE: N % NB != 0 — the ragged last block row/column is\n\
             \x20   // handled by separate corner-case kernels (not emitted\n\
             \x20   // here), as in the paper."
        )
        .unwrap();
    }
    writeln!(s, "    int kk, nn, mm;").unwrap();
    let nt = config.n.div_ceil(nb);
    match config.looking {
        Looking::Right => {
            writeln!(s, "    for (kk = 0; kk < {nt}; kk++) {{").unwrap();
            writeln!(s, "        LOAD_LOWER(kk, kk, rA1); SPOTRF_TILE(rA1);").unwrap();
            writeln!(s, "        STORE_LOWER(kk, kk, rA1);").unwrap();
            writeln!(s, "        for (mm = kk + 1; mm < {nt}; mm++) {{").unwrap();
            writeln!(
                s,
                "            LOAD_FULL(mm, kk, rA2); STRSM_TILE(rA1, rA2);"
            )
            .unwrap();
            writeln!(s, "            STORE_FULL(mm, kk, rA2);").unwrap();
            writeln!(s, "        }}").unwrap();
            writeln!(s, "        for (nn = kk + 1; nn < {nt}; nn++) {{").unwrap();
            writeln!(
                s,
                "            LOAD_FULL(nn, kk, rA1); LOAD_LOWER(nn, nn, rA3);"
            )
            .unwrap();
            writeln!(
                s,
                "            SSYRK_TILE(rA1, rA3); STORE_LOWER(nn, nn, rA3);"
            )
            .unwrap();
            writeln!(s, "            for (mm = nn + 1; mm < {nt}; mm++) {{").unwrap();
            writeln!(
                s,
                "                LOAD_FULL(mm, kk, rA2); LOAD_FULL(mm, nn, rA3);"
            )
            .unwrap();
            writeln!(
                s,
                "                SGEMM_TILE(rA2, rA1, rA3); STORE_FULL(mm, nn, rA3);"
            )
            .unwrap();
            writeln!(s, "            }}").unwrap();
            writeln!(s, "        }}").unwrap();
            writeln!(s, "    }}").unwrap();
        }
        Looking::Left => {
            writeln!(s, "    for (kk = 0; kk < {nt}; kk++) {{").unwrap();
            writeln!(s, "        LOAD_LOWER(kk, kk, rA1);").unwrap();
            writeln!(s, "        for (mm = 0; mm < kk; mm++) {{").unwrap();
            writeln!(
                s,
                "            LOAD_FULL(kk, mm, rA2); SSYRK_TILE(rA2, rA1);"
            )
            .unwrap();
            writeln!(s, "        }}").unwrap();
            writeln!(s, "        SPOTRF_TILE(rA1); STORE_LOWER(kk, kk, rA1);").unwrap();
            writeln!(s, "        for (nn = kk + 1; nn < {nt}; nn++) {{").unwrap();
            writeln!(s, "            LOAD_FULL(nn, kk, rA3);").unwrap();
            writeln!(s, "            for (mm = 0; mm < kk; mm++) {{").unwrap();
            writeln!(
                s,
                "                LOAD_FULL(nn, mm, rA2); LOAD_FULL(kk, mm, rA1);"
            )
            .unwrap();
            writeln!(s, "                SGEMM_TILE(rA2, rA1, rA3);").unwrap();
            writeln!(s, "            }}").unwrap();
            writeln!(s, "            STORE_FULL(nn, kk, rA3);").unwrap();
            writeln!(
                s,
                "            LOAD_LOWER(kk, kk, rA1); STRSM_TILE(rA1, rA3);"
            )
            .unwrap();
            writeln!(s, "            STORE_FULL(nn, kk, rA3);").unwrap();
            writeln!(s, "        }}").unwrap();
            writeln!(s, "    }}").unwrap();
        }
        Looking::Top => {
            // Figure 11, verbatim structure.
            writeln!(s, "    for (kk = 0; kk < {nt}; kk++) {{").unwrap();
            writeln!(s, "        for (nn = 0; nn < kk; nn++) {{").unwrap();
            writeln!(s, "            LOAD_FULL(kk, nn, rA3);").unwrap();
            writeln!(s, "            for (mm = 0; mm < nn; mm++) {{").unwrap();
            writeln!(
                s,
                "                LOAD_FULL(kk, mm, rA1); LOAD_FULL(nn, mm, rA2);"
            )
            .unwrap();
            writeln!(s, "                SGEMM_TILE(rA1, rA2, rA3);").unwrap();
            writeln!(s, "            }}").unwrap();
            writeln!(
                s,
                "            LOAD_LOWER(nn, nn, rA1); STRSM_TILE(rA1, rA3);"
            )
            .unwrap();
            writeln!(s, "            STORE_FULL(kk, nn, rA3);").unwrap();
            writeln!(s, "        }}").unwrap();
            writeln!(s, "        LOAD_LOWER(kk, kk, rA1);").unwrap();
            writeln!(s, "        for (nn = 0; nn < kk; nn++) {{").unwrap();
            writeln!(
                s,
                "            LOAD_FULL(kk, nn, rA2); SSYRK_TILE(rA2, rA1);"
            )
            .unwrap();
            writeln!(s, "        }}").unwrap();
            writeln!(s, "        SPOTRF_TILE(rA1); STORE_LOWER(kk, kk, rA1);").unwrap();
            writeln!(s, "    }}").unwrap();
        }
    }
}

/// Number of executable statements (assignments) in an emitted full-unroll
/// kernel — used to cross-check the code-size model.
pub fn emitted_statements(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| {
            !l.is_empty()
                && !l.starts_with("//")
                && !l.starts_with('#')
                && !l.starts_with("extern")
                && !l.starts_with("float")
                && !l.starts_with("const")
                && !l.starts_with("int ")
                && (l.contains('=') || l.contains("*="))
                && l.ends_with(';')
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codesize::static_instrs;

    #[test]
    fn full_unroll_statement_count_matches_code_model() {
        for looking in Looking::ALL {
            for (n, nb) in [(8usize, 4usize), (12, 4), (9, 4)] {
                let config = KernelConfig {
                    n,
                    nb,
                    looking,
                    unroll: Unroll::Full,
                    ..KernelConfig::baseline(n)
                };
                let src = emit_cuda(&config);
                // Statements: arithmetic + loads + stores, plus one `inv =`
                // per potrf column (the walker prices sqrt+rcp as 2 ops on
                // the same line pair: `sqrtf` + `inv`).
                let stmts = emitted_statements(&src);
                let model = static_instrs(&config);
                // `x = sqrtf(x)` and `inv = 1/x` are two statements and two
                // modeled ops; every other statement is one op. Column
                // scaling `*=` lines are one op each. So statements ==
                // modeled instrs exactly.
                assert_eq!(
                    stmts as u64, model,
                    "{config}: {stmts} statements vs model {model}"
                );
            }
        }
    }

    #[test]
    fn emitted_source_is_structurally_cuda() {
        let config = KernelConfig {
            unroll: Unroll::Full,
            ..KernelConfig::baseline(8)
        };
        let src = emit_cuda(&config);
        assert!(src.contains("__global__ void spotrf_batch_n8_nb4_top_full"));
        assert!(src.contains("threadIdx.x"));
        assert!(src.contains("blockIdx.x"));
        assert!(src.contains("sqrtf("));
        // Fully unrolled code has no loops.
        assert!(!src.contains("for ("), "full unroll must be straight-line");
        // Balanced braces.
        assert_eq!(src.matches('{').count(), src.matches('}').count());
    }

    #[test]
    fn partial_unroll_emits_loops_and_macros() {
        for looking in Looking::ALL {
            let config = KernelConfig {
                looking,
                unroll: Unroll::Partial,
                ..KernelConfig::baseline(16)
            };
            let src = emit_cuda(&config);
            assert!(src.contains("for (kk = 0;"), "{looking:?}");
            assert!(src.contains("SPOTRF_TILE"), "{looking:?}");
            assert!(src.contains("SGEMM_TILE"), "{looking:?}");
            assert_eq!(
                src.matches('{').count(),
                src.matches('}').count(),
                "{looking:?}"
            );
        }
    }

    #[test]
    fn sqrt_count_equals_n_for_full_unroll() {
        let config = KernelConfig {
            n: 12,
            nb: 4,
            unroll: Unroll::Full,
            ..KernelConfig::baseline(12)
        };
        let src = emit_cuda(&config);
        assert_eq!(src.matches("sqrtf(").count(), 12);
        assert_eq!(src.matches("inv = 1.0f /").count(), 12);
    }

    #[test]
    fn full_unroll_grows_with_n() {
        let small = emit_cuda(&KernelConfig {
            unroll: Unroll::Full,
            ..KernelConfig::baseline(8)
        });
        let big = emit_cuda(&KernelConfig {
            unroll: Unroll::Full,
            ..KernelConfig::baseline(24)
        });
        assert!(big.len() > 5 * small.len());
    }
}
