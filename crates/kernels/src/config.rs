//! The kernel configuration space — the paper's tuning parameters
//! (§II-D): tile size, looking order, chunking, chunk size, unrolling —
//! plus the arithmetic mode of Figure 13 and the cache preference of
//! Table I.

use ibcf_core::Looking;
use ibcf_gpu_sim::LaunchConfig;
use ibcf_layout::{BatchLayout, Layout, LayoutKind};
use serde::{Deserialize, Serialize};

/// Outer-loop unrolling mode (the tile-operation bodies are always
/// unrolled, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Unroll {
    /// Outer loops remain loops (Figure 11).
    Partial,
    /// The entire factorization is straight-line code (Figure 12).
    Full,
}

impl Unroll {
    /// Both modes.
    pub const ALL: [Unroll; 2] = [Unroll::Partial, Unroll::Full];

    /// Short name for datasets and reports.
    pub fn name(self) -> &'static str {
        match self {
            Unroll::Partial => "partial",
            Unroll::Full => "full",
        }
    }
}

/// `cudaFuncSetCacheConfig` preference: more L1 or more shared memory.
/// Fixed-function on Pascal — the paper's Table I finds it the weakest
/// (negative) predictor — so the simulator treats it as a no-op knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CachePref {
    /// Prefer a larger L1.
    L1,
    /// Prefer more shared memory.
    Shared,
}

impl CachePref {
    /// Both preferences.
    pub const ALL: [CachePref; 2] = [CachePref::L1, CachePref::Shared];

    /// Short name for datasets and reports.
    pub fn name(self) -> &'static str {
        match self {
            CachePref::L1 => "l1",
            CachePref::Shared => "shared",
        }
    }
}

/// One point in the kernel tuning space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Matrix dimension.
    pub n: usize,
    /// Tile size `nb` (1..=8 in the paper's sweep; clamped to `n`).
    pub nb: usize,
    /// Order of evaluation of the tile operations.
    pub looking: Looking,
    /// Chunked interleaved layout (true) or simple interleaved (false).
    pub chunked: bool,
    /// Chunk size; also the thread-block size (32, 64, 128, 256, 512).
    pub chunk_size: usize,
    /// Outer-loop unrolling.
    pub unroll: Unroll,
    /// `--use_fast_math` arithmetic.
    pub fast_math: bool,
    /// L1-vs-shared carveout preference.
    pub cache_pref: CachePref,
}

impl KernelConfig {
    /// A reasonable default configuration for dimension `n`: top-looking,
    /// `nb = 4`, chunked at 64, partial unrolling, IEEE arithmetic.
    pub fn baseline(n: usize) -> Self {
        KernelConfig {
            n,
            nb: 4.min(n),
            looking: Looking::Top,
            chunked: true,
            chunk_size: 64,
            unroll: Unroll::Partial,
            fast_math: false,
            cache_pref: CachePref::L1,
        }
    }

    /// Effective tile size: `nb` clamped to `n` and to the maximum tile
    /// edge the register-tile buffers support (8, the top of the paper's
    /// sweep range).
    pub fn nb_eff(&self) -> usize {
        self.nb.min(self.n).clamp(1, crate::tileops::TS)
    }

    /// Checks structural validity.
    pub fn validate(&self) -> Result<(), String> {
        if self.n == 0 {
            return Err("n must be positive".into());
        }
        if self.nb == 0 {
            return Err("nb must be positive".into());
        }
        if self.chunk_size == 0 || !self.chunk_size.is_multiple_of(32) {
            return Err("chunk size must be a positive multiple of 32".into());
        }
        Ok(())
    }

    /// Builds the data layout this configuration runs on, for `batch`
    /// matrices. Non-chunked configurations use the simple interleaved
    /// layout; `chunk_size` then only determines the thread-block size.
    pub fn layout(&self, batch: usize) -> Layout {
        if self.chunked {
            Layout::build(LayoutKind::Chunked, self.n, batch, self.chunk_size)
        } else {
            Layout::build(LayoutKind::Interleaved, self.n, batch, self.chunk_size)
        }
    }

    /// Launch shape: one thread per matrix, `chunk_size` threads per block.
    pub fn launch(&self, batch: usize) -> LaunchConfig {
        let layout = self.layout(batch);
        let padded = ibcf_layout::align_up(layout.padded_batch(), self.chunk_size);
        LaunchConfig::new(padded / self.chunk_size, self.chunk_size)
    }

    /// Number of tile blocks per dimension.
    pub fn num_tile_blocks(&self) -> usize {
        self.n.div_ceil(self.nb_eff())
    }

    /// `true` if the last tile is ragged (`n % nb != 0`).
    pub fn is_ragged(&self) -> bool {
        !self.n.is_multiple_of(self.nb_eff())
    }
}

impl std::fmt::Display for KernelConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} nb={} {} {} chunk={} {} {} {}",
            self.n,
            self.nb,
            self.looking.name(),
            if self.chunked { "chunked" } else { "simple" },
            self.chunk_size,
            self.unroll.name(),
            if self.fast_math { "fast" } else { "ieee" },
            self.cache_pref.name(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_valid() {
        let c = KernelConfig::baseline(17);
        c.validate().unwrap();
        assert_eq!(c.nb_eff(), 4);
        assert_eq!(c.num_tile_blocks(), 5);
        assert!(c.is_ragged());
    }

    #[test]
    fn layout_matches_chunking_flag() {
        let mut c = KernelConfig::baseline(8);
        assert_eq!(c.layout(1000).kind(), LayoutKind::Chunked);
        c.chunked = false;
        assert_eq!(c.layout(1000).kind(), LayoutKind::Interleaved);
    }

    #[test]
    fn launch_covers_padded_batch() {
        let c = KernelConfig {
            chunk_size: 128,
            ..KernelConfig::baseline(5)
        };
        let lc = c.launch(1000);
        assert_eq!(lc.block, 128);
        // 1000 pads to 1024 (chunk 128): 8 blocks.
        assert_eq!(lc.grid, 8);
        assert!(lc.total_threads() >= 1000);
    }

    #[test]
    fn launch_covers_interleaved_padding_with_large_blocks() {
        // Non-chunked: layout pads to 32, but blocks are 512 wide — the
        // grid must still cover every matrix.
        let c = KernelConfig {
            chunked: false,
            chunk_size: 512,
            ..KernelConfig::baseline(4)
        };
        let lc = c.launch(100);
        assert_eq!(lc.block, 512);
        assert_eq!(lc.grid, 1);
        assert!(lc.total_threads() >= 100);
    }

    #[test]
    fn validation_catches_bad_chunk() {
        let c = KernelConfig {
            chunk_size: 48,
            ..KernelConfig::baseline(4)
        };
        assert!(c.validate().is_err());
        let c = KernelConfig {
            nb: 0,
            ..KernelConfig::baseline(4)
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn nb_clamps_to_n() {
        let c = KernelConfig {
            nb: 8,
            ..KernelConfig::baseline(3)
        };
        assert_eq!(c.nb_eff(), 3);
        assert_eq!(c.num_tile_blocks(), 1);
        assert!(!c.is_ragged());
    }

    #[test]
    fn display_is_informative() {
        let s = KernelConfig::baseline(24).to_string();
        assert!(s.contains("n=24") && s.contains("top") && s.contains("chunk=64"));
    }
}
