//! Simulator-side blocked Cholesky for *one large* matrix.
//!
//! The batched kernels in this crate assume the whole matrix fits one
//! thread's registers ([`InterleavedCholesky`](crate::InterleavedCholesky))
//! or one block's shared memory
//! ([`TraditionalCholesky`](crate::TraditionalCholesky)) — both cap out
//! around `n ≈ 96`. Past that, the device-side answer is the MAGMA-style
//! *blocked* factorization: tile the matrix by `nb` and run one kernel
//! launch per step of the right-looking loop,
//!
//! 1. [`BlockedPotrfStep`] — one block factors the diagonal tile `(k, k)`
//!    in shared memory;
//! 2. [`BlockedTrsmStep`] — `nt − k − 1` blocks each solve one panel tile
//!    `(i, k)` against the staged `(k, k)`;
//! 3. [`BlockedUpdateStep`] — one block per trailing tile `(i, j)`,
//!    `k < j ≤ i`, applies `A[i][j] −= A[i][k]·A[j][k]ᵀ` (SYRK on the
//!    diagonal).
//!
//! The three launches per step are exactly the task kinds of the host DAG
//! runtime ([`ibcf_core::tiled`]); a step here is the DAG cut "everything
//! with panel index `k`", i.e. the sequential right-looking order with a
//! grid-wide barrier between kinds. Summing [`time_block_kernel`] over the
//! launch sequence ([`time_blocked`]) prices a blocked large-`n` config on
//! the timing model, which is what the batched-vs-blocked crossover study
//! in EXPERIMENTS.md compares against the batched kernels.
//!
//! Within a launch, distinct blocks write disjoint tiles (the functional
//! executor's contract); tiles read by several blocks — the factored
//! diagonal in step 2, the panel in step 3 — are only *read*.

use ibcf_gpu_sim::{
    launch_block_functional, time_block_kernel, BlockCtx, BlockKernel, GpuSpec, KernelStatics,
    LaunchConfig, TimingOptions,
};

/// Hard cap on the tile edge: two `nb × nb` f32 tiles must fit the 48 KiB
/// shared-memory budget with room to spare.
pub const MAX_BLOCKED_NB: usize = 64;

/// Column-major address of global element `(r, c)` in an `n × n` matrix.
#[inline]
fn gaddr(n: usize, r: usize, c: usize) -> usize {
    r + c * n
}

/// Threads per block: the tile edge rounded up to a full warp.
#[inline]
fn block_threads(nb: usize) -> usize {
    nb.div_ceil(32) * 32
}

/// Tile-grid geometry shared by the step kernels.
#[derive(Debug, Clone, Copy)]
struct Geom {
    n: usize,
    nb: usize,
    nt: usize,
}

impl Geom {
    fn new(n: usize, nb: usize) -> Self {
        assert!(n > 0, "matrix dimension must be positive");
        assert!(nb > 0, "tile size must be positive");
        assert!(
            nb <= MAX_BLOCKED_NB,
            "tile size {nb} exceeds shared-memory budget (max {MAX_BLOCKED_NB})"
        );
        Geom {
            n,
            nb,
            nt: n.div_ceil(nb),
        }
    }

    /// Edge of tile block `b` (ragged last block is smaller).
    #[inline]
    fn dim(&self, b: usize) -> usize {
        self.nb.min(self.n - b * self.nb)
    }
}

/// Step-`k` diagonal factorization: one block, tile `(k, k)` staged through
/// shared memory, the in-tile loop identical to
/// [`TraditionalCholesky`](crate::TraditionalCholesky)'s.
pub struct BlockedPotrfStep {
    g: Geom,
    /// Step index (diagonal tile row).
    k: usize,
}

impl BlockKernel for BlockedPotrfStep {
    fn run(&self, block: &mut dyn BlockCtx) {
        let Geom { n, nb, .. } = self.g;
        let dk = self.g.dim(self.k);
        let r0 = self.k * nb;

        // Stage the lower triangle of the diagonal tile, row per thread.
        block.phase(&mut |t, lane| {
            if t < dk {
                for j in 0..=t {
                    let v = lane.ld(gaddr(n, r0 + t, r0 + j));
                    lane.st_shared(t + j * nb, v);
                }
                lane.iops(t as u64 + 1);
            }
        });
        block.sync();

        // Right-looking factorization in shared memory.
        for c in 0..dk {
            block.phase(&mut |t, lane| {
                if t == c {
                    let acc = lane.ld_shared(c + c * nb);
                    let p = lane.sqrt(acc);
                    lane.st_shared(c + c * nb, p);
                }
            });
            block.sync();
            block.phase(&mut |t, lane| {
                if t > c && t < dk {
                    let p = lane.ld_shared(c + c * nb);
                    let v = lane.ld_shared(t + c * nb);
                    let s = lane.div(v, p);
                    lane.st_shared(t + c * nb, s);
                }
            });
            block.sync();
            block.phase(&mut |t, lane| {
                if t > c && t < dk {
                    let ltc = lane.ld_shared(t + c * nb);
                    for j in c + 1..=t {
                        let ljc = lane.ld_shared(j + c * nb);
                        let v = lane.ld_shared(t + j * nb);
                        let u = lane.fma(-ltc, ljc, v);
                        lane.st_shared(t + j * nb, u);
                    }
                    lane.iops((t - c) as u64);
                }
            });
            block.sync();
        }

        // Write the factored tile back.
        block.phase(&mut |t, lane| {
            if t < dk {
                for j in 0..=t {
                    let v = lane.ld_shared(t + j * nb);
                    lane.st(gaddr(n, r0 + t, r0 + j), v);
                }
                lane.iops(t as u64 + 1);
            }
        });
    }

    fn statics(&self) -> KernelStatics {
        KernelStatics {
            regs_per_thread: 32,
            static_instrs: 400,
            reg_reuse_capacity: 0,
            dead_store_elim: false,
            shared_bytes_per_block: (self.g.nb * self.g.nb * 4) as u32,
        }
    }
}

/// Step-`k` panel solve: block `b` owns panel tile `(k + 1 + b, k)`, solves
/// it row-per-thread against the factored diagonal staged in shared memory.
pub struct BlockedTrsmStep {
    g: Geom,
    /// Step index (panel column).
    k: usize,
}

impl BlockKernel for BlockedTrsmStep {
    fn run(&self, block: &mut dyn BlockCtx) {
        let Geom { n, nb, .. } = self.g;
        let i = self.k + 1 + block.block_idx();
        let dk = self.g.dim(self.k);
        let di = self.g.dim(i);
        let lr0 = self.k * nb;
        let br0 = i * nb;
        // Shared layout: L tile at 0, this block's B tile at nb·nb.
        let bs = nb * nb;

        block.phase(&mut |t, lane| {
            if t < dk {
                for j in 0..=t {
                    let v = lane.ld(gaddr(n, lr0 + t, lr0 + j));
                    lane.st_shared(t + j * nb, v);
                }
                lane.iops(t as u64 + 1);
            }
            if t < di {
                for j in 0..dk {
                    let v = lane.ld(gaddr(n, br0 + t, lr0 + j));
                    lane.st_shared(bs + t + j * nb, v);
                }
                lane.iops(dk as u64);
            }
        });
        block.sync();

        // Forward substitution, one B row per thread; rows are independent
        // and L is read-only here, so one phase suffices. Write back as
        // each row finishes.
        block.phase(&mut |t, lane| {
            if t < di {
                for c in 0..dk {
                    let lcc = lane.ld_shared(c + c * nb);
                    let v = lane.ld_shared(bs + t + c * nb);
                    let x = lane.div(v, lcc);
                    lane.st_shared(bs + t + c * nb, x);
                    for j in c + 1..dk {
                        let ljc = lane.ld_shared(j + c * nb);
                        let w = lane.ld_shared(bs + t + j * nb);
                        let u = lane.fma(-x, ljc, w);
                        lane.st_shared(bs + t + j * nb, u);
                    }
                    lane.iops((dk - c) as u64);
                }
                for j in 0..dk {
                    let v = lane.ld_shared(bs + t + j * nb);
                    lane.st(gaddr(n, br0 + t, lr0 + j), v);
                }
                lane.iops(dk as u64);
            }
        });
    }

    fn statics(&self) -> KernelStatics {
        KernelStatics {
            regs_per_thread: 32,
            static_instrs: 400,
            reg_reuse_capacity: 0,
            dead_store_elim: false,
            shared_bytes_per_block: (2 * self.g.nb * self.g.nb * 4) as u32,
        }
    }
}

/// Step-`k` trailing update: block `b` owns trailing tile `(i, j)` (pairs
/// `k < j ≤ i` linearized row-major), stages the two panel tiles it reads
/// and applies `A[i][j] −= A[i][k]·A[j][k]ᵀ` straight to global memory
/// (SYRK keeps only the lower triangle when `i == j`).
pub struct BlockedUpdateStep {
    g: Geom,
    /// Step index (source panel column).
    k: usize,
}

impl BlockKernel for BlockedUpdateStep {
    fn run(&self, block: &mut dyn BlockCtx) {
        let Geom { n, nb, .. } = self.g;
        // Decode the linearized pair index: b = ii·(ii+1)/2 + jj, jj ≤ ii.
        let b = block.block_idx();
        let mut ii = 0usize;
        while (ii + 1) * (ii + 2) / 2 <= b {
            ii += 1;
        }
        let jj = b - ii * (ii + 1) / 2;
        let i = self.k + 1 + ii;
        let j = self.k + 1 + jj;
        let dk = self.g.dim(self.k);
        let di = self.g.dim(i);
        let dj = self.g.dim(j);
        let kc0 = self.k * nb;
        // Shared layout: A(i,k) at 0, A(j,k) at nb·nb.
        let bs = nb * nb;

        block.phase(&mut |t, lane| {
            if t < di {
                for p in 0..dk {
                    let v = lane.ld(gaddr(n, i * nb + t, kc0 + p));
                    lane.st_shared(t + p * nb, v);
                }
            }
            if t < dj {
                for p in 0..dk {
                    let v = lane.ld(gaddr(n, j * nb + t, kc0 + p));
                    lane.st_shared(bs + t + p * nb, v);
                }
            }
            lane.iops(2 * dk as u64 + ii as u64);
        });
        block.sync();

        block.phase(&mut |t, lane| {
            if t < di {
                let cols = if i == j { (t + 1).min(dj) } else { dj };
                for c in 0..cols {
                    let mut v = lane.ld(gaddr(n, i * nb + t, j * nb + c));
                    for p in 0..dk {
                        let aip = lane.ld_shared(t + p * nb);
                        let ajp = lane.ld_shared(bs + c + p * nb);
                        v = lane.fma(-aip, ajp, v);
                    }
                    lane.st(gaddr(n, i * nb + t, j * nb + c), v);
                    lane.iops(dk as u64);
                }
            }
        });
    }

    fn statics(&self) -> KernelStatics {
        KernelStatics {
            regs_per_thread: 32,
            static_instrs: 400,
            reg_reuse_capacity: 0,
            dead_store_elim: false,
            shared_bytes_per_block: (2 * self.g.nb * self.g.nb * 4) as u32,
        }
    }
}

/// One launch of the blocked schedule, with its grid.
enum Step {
    Potrf(BlockedPotrfStep),
    Trsm(BlockedTrsmStep, usize),
    Update(BlockedUpdateStep, usize),
}

impl Step {
    fn launch(&self, nb: usize) -> LaunchConfig {
        let threads = block_threads(nb);
        match self {
            Step::Potrf(_) => LaunchConfig::new(1, threads),
            Step::Trsm(_, grid) | Step::Update(_, grid) => LaunchConfig::new(*grid, threads),
        }
    }
}

impl BlockKernel for Step {
    fn run(&self, block: &mut dyn BlockCtx) {
        match self {
            Step::Potrf(k) => k.run(block),
            Step::Trsm(k, _) => k.run(block),
            Step::Update(k, _) => k.run(block),
        }
    }
    fn statics(&self) -> KernelStatics {
        match self {
            Step::Potrf(k) => k.statics(),
            Step::Trsm(k, _) => k.statics(),
            Step::Update(k, _) => k.statics(),
        }
    }
}

/// The right-looking launch schedule for an `n × n` matrix tiled by `nb`:
/// per step `k`, a POTRF launch, then (while a trailing submatrix remains)
/// a TRSM panel launch and an UPDATE launch.
fn steps(g: Geom) -> Vec<Step> {
    let mut out = Vec::with_capacity(3 * g.nt);
    for k in 0..g.nt {
        out.push(Step::Potrf(BlockedPotrfStep { g, k }));
        let m = g.nt - k - 1;
        if m > 0 {
            out.push(Step::Trsm(BlockedTrsmStep { g, k }, m));
            out.push(Step::Update(BlockedUpdateStep { g, k }, m * (m + 1) / 2));
        }
    }
    out
}

/// Number of kernel launches the blocked schedule issues: `3·nt − 2`.
pub fn blocked_launches(n: usize, nb: usize) -> usize {
    let nt = Geom::new(n, nb).nt;
    if nt == 1 {
        1
    } else {
        3 * nt - 2
    }
}

/// Factorizes one column-major `n × n` f32 matrix (leading dimension `n`)
/// in place on the simulator by running the blocked launch schedule
/// functionally. Only the lower triangle is read and written.
///
/// # Panics
/// If `data` is shorter than `n·n`, `n == 0`, `nb == 0`, or
/// `nb > MAX_BLOCKED_NB`.
pub fn factorize_blocked_device(n: usize, nb: usize, data: &mut [f32]) {
    let g = Geom::new(n, nb);
    assert!(data.len() >= n * n, "matrix buffer too short");
    for step in steps(g) {
        launch_block_functional(&step, step.launch(g.nb), data);
    }
}

/// Aggregate cost of the blocked launch schedule on the timing model.
#[derive(Debug, Clone, Copy)]
pub struct BlockedTiming {
    /// Total estimated wall time across all launches, seconds.
    pub time_s: f64,
    /// Number of kernel launches summed over.
    pub launches: usize,
}

impl BlockedTiming {
    /// Achieved Gflop/s given the factorization's flop count.
    pub fn gflops(&self, flops: f64) -> f64 {
        flops / self.time_s / 1e9
    }
}

/// Prices a blocked factorization of one `n × n` matrix tiled by `nb`:
/// sums [`time_block_kernel`] over the whole launch schedule. Each launch
/// is priced independently — the grid-wide barrier between launches is
/// exactly what the blocked algorithm pays and the batched kernels avoid,
/// which is what makes the small-`n` end of the crossover so lopsided.
pub fn time_blocked(n: usize, nb: usize, spec: &GpuSpec, opts: TimingOptions) -> BlockedTiming {
    let g = Geom::new(n, nb);
    let mut time_s = 0.0;
    let mut launches = 0;
    for step in steps(g) {
        time_s += time_block_kernel(&step, step.launch(g.nb), spec, opts).time_s;
        launches += 1;
    }
    BlockedTiming { time_s, launches }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibcf_core::spd::{fill_batch_spd, SpdKind};
    use ibcf_core::{potrf_unblocked, Looking};
    use ibcf_layout::{BatchLayout, Canonical};

    fn spd(n: usize, seed: u64) -> Vec<f32> {
        let layout = Canonical::new(n, 1);
        let mut data = vec![0.0f32; layout.len()];
        fill_batch_spd(&layout, &mut data, SpdKind::Wishart, seed);
        data
    }

    #[test]
    fn matches_host_oracle_closely() {
        for (n, nb) in [(8usize, 8usize), (24, 8), (33, 16), (64, 16), (40, 64)] {
            let a = spd(n, 100 + n as u64);
            let mut dev = a.clone();
            factorize_blocked_device(n, nb, &mut dev);
            let mut host = a.clone();
            potrf_unblocked(n, &mut host, n).unwrap();
            for c in 0..n {
                for r in c..n {
                    let x = host[r + c * n];
                    let y = dev[r + c * n];
                    let scale = x.abs().max(1.0);
                    assert!(
                        (x - y).abs() / scale < 1e-4,
                        "n={n} nb={nb} ({r},{c}): {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_host_blocked_shape() {
        // Same tiling as the host blocked path: agreement should be tight
        // since both do rank-nb updates in the same order.
        use ibcf_core::potrf_blocked;
        let (n, nb) = (48usize, 16usize);
        let a = spd(n, 7);
        let mut dev = a.clone();
        factorize_blocked_device(n, nb, &mut dev);
        let mut host = a.clone();
        potrf_blocked(&Canonical::new(n, 1), &mut host, 0, nb, Looking::Right).unwrap();
        for c in 0..n {
            for r in c..n {
                let x = host[r + c * n];
                let d = (x - dev[r + c * n]).abs();
                assert!(d / x.abs().max(1.0) < 1e-4, "({r},{c})");
            }
        }
    }

    #[test]
    fn launch_count_and_timing() {
        assert_eq!(blocked_launches(16, 16), 1);
        assert_eq!(blocked_launches(64, 16), 10);
        let spec = GpuSpec::p100();
        let t = time_blocked(256, 32, &spec, TimingOptions::default());
        assert_eq!(t.launches, blocked_launches(256, 32));
        assert!(t.time_s > 0.0);
        // More work must not be cheaper.
        let t2 = time_blocked(512, 32, &spec, TimingOptions::default());
        assert!(t2.time_s > t.time_s);
    }
}
