//! Property tests for the host pack path: `pack_batch_host` followed by
//! `unpack_batch_host` is a bitwise round trip for every (src, dst)
//! layout pair, every small dimension, and batch sizes that are *not*
//! multiples of any lane width — the exact staging contract the batch
//! former in the serving layer leans on.

use ibcf_kernels::{pack_batch_host, unpack_batch_host};
use ibcf_layout::{BatchLayout, Layout, LayoutKind};
use proptest::prelude::*;

fn layouts(n: usize, batch: usize, chunk: usize) -> Vec<Layout> {
    vec![
        Layout::build(LayoutKind::Canonical, n, batch, chunk),
        Layout::build(LayoutKind::Interleaved, n, batch, chunk),
        Layout::build(LayoutKind::Chunked, n, batch, chunk),
    ]
}

/// Fills the live matrices of a laid-out buffer with distinct, seedable
/// bit patterns (including negative zero and denormals, which a lossy
/// copy path could normalize away — hence the bitwise comparison below).
fn fill_live(layout: &Layout, data: &mut [f32], seed: u64) {
    let n = layout.n();
    for mat in 0..layout.batch() {
        for col in 0..n {
            for row in 0..n {
                let h = seed
                    ^ (mat as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(((row * n + col) as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
                let h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                // Keep a valid (possibly denormal) finite float; flush the
                // NaN/inf exponent range down into large finite values.
                let mut bits = (h >> 32) as u32;
                if bits & 0x7F80_0000 == 0x7F80_0000 {
                    bits &= !0x0080_0000;
                }
                data[layout.addr(mat, row, col)] = f32::from_bits(bits);
            }
        }
    }
}

/// (n, batch, chunk, seed): n covers 1..=33, batch deliberately includes
/// lane-width non-multiples (primes, lanes ± 1), chunk ∈ {32, 64, 128}.
fn params() -> impl Strategy<Value = (usize, usize, usize, u64)> {
    (
        1usize..=33,
        prop::sample::select(vec![1usize, 2, 7, 8, 9, 15, 17, 31, 33, 63, 65, 97, 130]),
        prop::sample::select(vec![32usize, 64, 128]),
        any::<u64>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn pack_unpack_round_trips_bitwise((n, batch, chunk, seed) in params()) {
        for src_layout in layouts(n, batch, chunk) {
            let mut src = vec![0.0f32; src_layout.len()];
            fill_live(&src_layout, &mut src, seed);
            let orig = src.clone();
            for dst_layout in layouts(n, batch, chunk) {
                let packed = pack_batch_host(&src_layout, &src, &dst_layout);
                // The packed buffer is aligned for the lane engine.
                prop_assert_eq!(
                    packed.as_ptr() as usize % ibcf_layout::BUFFER_ALIGN,
                    0
                );
                prop_assert_eq!(packed.len(), dst_layout.len());
                // Every live element crossed over bitwise.
                for mat in 0..batch {
                    for col in 0..n {
                        for row in col..n {
                            let a = src[src_layout.addr(mat, row, col)];
                            let b = packed[dst_layout.addr(mat, row, col)];
                            prop_assert_eq!(
                                a.to_bits(),
                                b.to_bits(),
                                "{:?}->{:?} mat {} ({},{})",
                                src_layout.kind(), dst_layout.kind(), mat, row, col
                            );
                        }
                    }
                }
                // Unpacking lands back on the original buffer bitwise,
                // padding slots of the destination untouched.
                let mut back = orig.clone();
                unpack_batch_host(&dst_layout, &packed, &src_layout, &mut back);
                for (i, (x, y)) in back.iter().zip(&orig).enumerate() {
                    prop_assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{:?}->{:?} elem {}",
                        src_layout.kind(), dst_layout.kind(), i
                    );
                }
            }
        }
    }
}
