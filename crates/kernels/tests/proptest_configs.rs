//! Property tests over the whole configuration space: the emitter, the
//! code-size model, and the resource estimator must agree for every
//! reachable configuration, not just the sampled sweep points.

use ibcf_core::Looking;
use ibcf_kernels::codesize::{static_instrs, statics};
use ibcf_kernels::{emit_cuda, CachePref, KernelConfig, Unroll};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = KernelConfig> {
    (
        1usize..=32,
        1usize..=8,
        0usize..3,
        any::<bool>(),
        prop::sample::select(vec![32usize, 64, 128, 256, 512]),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(n, nb, lk, chunked, chunk_size, full, fast_math, shared)| KernelConfig {
                n,
                nb,
                looking: Looking::ALL[lk],
                chunked,
                chunk_size,
                unroll: if full { Unroll::Full } else { Unroll::Partial },
                fast_math,
                cache_pref: if shared {
                    CachePref::Shared
                } else {
                    CachePref::L1
                },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Emitted CUDA is structurally sound for every configuration:
    /// balanced braces, a kernel signature, and (full unroll) exactly `n`
    /// square roots.
    #[test]
    fn emitter_is_structurally_sound(config in arb_config()) {
        let src = emit_cuda(&config);
        prop_assert_eq!(src.matches('{').count(), src.matches('}').count());
        prop_assert!(src.contains("__global__ void spotrf_batch_"));
        if config.unroll == Unroll::Full {
            prop_assert_eq!(src.matches("sqrtf(").count(), config.n);
            prop_assert!(!src.contains("for ("), "full unroll must be straight-line");
        } else {
            prop_assert!(src.contains("for (kk = 0;"));
        }
    }

    /// The resource estimator is internally consistent: code grows
    /// monotonically from partial to full unrolling, register demand covers
    /// the tile working set, and full unrolling past the register budget
    /// is flagged (no dead-store elimination).
    #[test]
    fn statics_are_consistent(config in arb_config()) {
        let s = statics(&config);
        let nb = config.nb_eff();
        match config.unroll {
            // Looped code must hold the three live tiles.
            Unroll::Partial => prop_assert!(s.regs_per_thread >= 3 * (nb * nb) as u32),
            // Straight-line code demands the whole lower triangle.
            Unroll::Full => prop_assert!(
                s.regs_per_thread >= (config.n * (config.n + 1) / 2) as u32
            ),
        }
        let full = KernelConfig { unroll: Unroll::Full, ..config };
        let partial = KernelConfig { unroll: Unroll::Partial, ..config };
        prop_assert!(
            static_instrs(&full) >= static_instrs(&partial).saturating_sub(64),
            "full unroll cannot be smaller than the deduplicated bodies"
        );
        let sf = statics(&full);
        let fits = config.n * (config.n + 1) / 2 + 24 <= 255;
        prop_assert_eq!(sf.dead_store_elim, fits);
        if !fits {
            prop_assert!(sf.regs_per_thread > 255, "over-budget demand must be visible");
        }
    }

    /// The launch covers every padded matrix exactly, for every chunking
    /// and block-size combination.
    #[test]
    fn launch_covers_padded_batch(config in arb_config(), batch in 1usize..4000) {
        use ibcf_layout::BatchLayout;
        let layout = config.layout(batch);
        let launch = config.launch(batch);
        prop_assert!(launch.total_threads() >= layout.padded_batch());
        prop_assert!(launch.total_threads() < layout.padded_batch() + config.chunk_size.max(32));
        prop_assert_eq!(launch.block, config.chunk_size);
    }
}
