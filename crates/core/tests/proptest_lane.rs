//! Property tests for the lane-vectorized batch engine: against the
//! sequential gather/scatter oracle on every layout, for every loop order
//! and lane width, including planted failures at arbitrary indices.

use ibcf_core::host_batch::{factorize_batch_seq, BatchReport};
use ibcf_core::lane_batch::{
    factorize_batch_auto_with, factorize_batch_lanes_backend, factorize_batch_lanes_with,
    LaneOrder, LaneWidth,
};
use ibcf_core::lane_simd::LaneBackend;
use ibcf_core::spd::{fill_batch_spd, SpdKind};
use ibcf_layout::{scatter_matrix, BatchLayout, Layout, LayoutKind};
use proptest::prelude::*;

/// Monotone map from f32 to an ordered integer, so ulp distance is plain
/// integer distance (the usual sign-flip trick).
fn ordered_bits(x: f32) -> i64 {
    let b = x.to_bits();
    if b & 0x8000_0000 != 0 {
        -((b & 0x7fff_ffff) as i64)
    } else {
        b as i64
    }
}

/// Distance in units-in-the-last-place between two finite f32 values.
fn ulp_dist(a: f32, b: f32) -> u64 {
    (ordered_bits(a) - ordered_bits(b)).unsigned_abs()
}

fn all_layouts(n: usize, batch: usize, chunk: usize) -> Vec<Layout> {
    vec![
        Layout::build(LayoutKind::Canonical, n, batch, chunk),
        Layout::build(LayoutKind::Interleaved, n, batch, chunk),
        Layout::build(LayoutKind::Chunked, n, batch, chunk),
    ]
}

fn order_of(pick: usize) -> LaneOrder {
    LaneOrder::ALL[pick % 2]
}

fn width_of(pick: usize) -> LaneWidth {
    [
        LaneWidth::Auto,
        LaneWidth::W8,
        LaneWidth::W16,
        LaneWidth::W32,
    ][pick % 4]
}

/// Strategy over (n, batch, chunk, order pick, width pick, seed).
fn params() -> impl Strategy<Value = (usize, usize, usize, usize, usize, u64)> {
    (
        1usize..=12,
        1usize..=150,
        1usize..=4,
        0usize..2,
        0usize..4,
        any::<u64>(),
    )
        .prop_map(|(n, batch, c, o, w, s)| (n, batch, c * 32, o, w, s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On every layout, the lane engine (any order, any width) agrees
    /// with the sequential gather/scatter oracle to within 4 ulp on
    /// every element of the buffer. (In practice the engines share the
    /// oracle's exact per-element operation sequence, so the distance is
    /// 0; the 4-ulp bound is the documented contract.)
    #[test]
    fn lane_matches_seq_within_4_ulp(
        (n, batch, chunk, o, w, seed) in params()
    ) {
        let order = order_of(o);
        let width = width_of(w);
        for layout in all_layouts(n, batch, chunk) {
            let mut a = vec![0.0f32; layout.len()];
            fill_batch_spd(&layout, &mut a, SpdKind::Wishart, seed);
            let mut b = a.clone();
            let r_seq = factorize_batch_seq(&layout, &mut a);
            let r_lane = factorize_batch_lanes_with(&layout, &mut b, order, width);
            prop_assert_eq!(&r_seq.failures, &r_lane.failures, "{:?}", layout.kind());
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                prop_assert!(
                    ulp_dist(*x, *y) <= 4,
                    "{:?} {:?} {:?} elem {}: {} vs {}",
                    layout.kind(), order, width, i, x, y
                );
            }
        }
    }

    /// A non-SPD matrix planted at an arbitrary index is reported at
    /// exactly that index with its data bitwise-unmodified, and its
    /// neighbors factorize exactly as they would without it.
    #[test]
    fn planted_failure_is_isolated(
        (n, batch, chunk, o, w, seed) in params(),
        bad_sel in any::<u32>(),
        indefinite in any::<bool>(),
    ) {
        let order = order_of(o);
        let width = width_of(w);
        let bad = bad_sel as usize % batch;
        // Either an indefinite matrix (fails the pivot sign test) or a
        // poisoned one (fails the finiteness test).
        let mut planted = vec![0.0f32; n * n];
        for i in 0..n {
            planted[i * n + i] = if indefinite { -1.0 } else { f32::NAN };
        }
        for layout in all_layouts(n, batch, chunk) {
            let mut data = vec![0.0f32; layout.len()];
            fill_batch_spd(&layout, &mut data, SpdKind::Wishart, seed);
            scatter_matrix(&layout, &mut data, bad, &planted, n);
            let mut expect = data.clone();
            let r_seq = factorize_batch_seq(&layout, &mut expect);
            prop_assert_eq!(r_seq.failures.len(), 1);
            prop_assert_eq!(r_seq.failures[0].0, bad);
            let report: BatchReport = if layout.kind() == LayoutKind::Canonical {
                // Exercise the pack path where the lane engine can't run
                // in place.
                factorize_batch_auto_with(&layout, &mut data, order, width)
            } else {
                factorize_batch_lanes_with(&layout, &mut data, order, width)
            };
            prop_assert_eq!(&report.failures, &r_seq.failures, "{:?}", layout.kind());
            // Bitwise: failed matrix restored, neighbors factored
            // identically to the oracle.
            for (i, (x, y)) in expect.iter().zip(&data).enumerate() {
                prop_assert!(
                    x.to_bits() == y.to_bits(),
                    "{:?} {:?} {:?} bad={} elem {}: {} vs {}",
                    layout.kind(), order, width, bad, i, x, y
                );
            }
        }
    }

    /// The explicit-SIMD lane kernel (whatever ISA runtime dispatch
    /// resolves to on this machine), the forced autovectorized path, and
    /// the scalar oracle agree **bitwise** on every element — including
    /// batches with a planted non-SPD lane, across every lane width
    /// (`LANES` ∈ {8,16,32}) and both loop orders.
    #[test]
    fn simd_matches_autovec_and_oracle_bitwise(
        (n, batch, chunk, o, w, seed) in params(),
        bad_sel in any::<u32>(),
        plant in any::<bool>(),
    ) {
        let order = order_of(o);
        let width = width_of(w);
        let bad = bad_sel as usize % batch;
        let mut planted = vec![0.0f32; n * n];
        for i in 0..n {
            planted[i * n + i] = -1.0;
        }
        for layout in all_layouts(n, batch, chunk) {
            if layout.kind() == LayoutKind::Canonical {
                continue; // no in-place lane plan; covered by the auto path tests
            }
            let mut seq = vec![0.0f32; layout.len()];
            fill_batch_spd(&layout, &mut seq, SpdKind::Wishart, seed);
            if plant {
                scatter_matrix(&layout, &mut seq, bad, &planted, n);
            }
            let mut autovec = seq.clone();
            let mut simd = seq.clone();
            let r_seq = factorize_batch_seq(&layout, &mut seq);
            let r_autovec = factorize_batch_lanes_backend(
                &layout, &mut autovec, order, width, LaneBackend::Autovec,
            );
            let r_simd = factorize_batch_lanes_backend(
                &layout, &mut simd, order, width, LaneBackend::Simd,
            );
            prop_assert_eq!(&r_seq.failures, &r_autovec.failures, "{:?}", layout.kind());
            prop_assert_eq!(&r_seq.failures, &r_simd.failures, "{:?}", layout.kind());
            for (i, ((x, y), z)) in seq.iter().zip(&autovec).zip(&simd).enumerate() {
                prop_assert!(
                    x.to_bits() == y.to_bits(),
                    "autovec {:?} {:?} {:?} elem {}: {} vs {}",
                    layout.kind(), order, width, i, x, y
                );
                prop_assert!(
                    x.to_bits() == z.to_bits(),
                    "simd {:?} {:?} {:?} elem {}: {} vs {}",
                    layout.kind(), order, width, i, x, z
                );
            }
        }
    }
}
