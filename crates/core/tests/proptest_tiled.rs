//! Property tests for the tiled task-graph runtime: for any dimension,
//! tile size, Looking order, precision, and worker count,
//!
//! * the parallel DAG execution must be **bitwise identical** to the
//!   sequential replay of the same graph (determinism is a scheduling
//!   invariant, not a tolerance), and
//! * both must stay within 4 ulp of the unblocked reference
//!   factorization column-by-column (the tile microkernels share the
//!   reference's reciprocal-multiply pivot scaling, so in practice the
//!   distance is 0 — the bound leaves room for future kernel swaps),
//! * a planted non-SPD pivot must surface the same *global* failing
//!   column from every execution mode, even when tiles factor out of
//!   order across workers.

use ibcf_core::spd::{random_spd, SpdKind};
use ibcf_core::{potrf_tiled_seq, potrf_tiled_threads, potrf_unblocked, CholeskyError, Looking};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Monotone map to ordered integers so ulp distance is integer distance.
fn ordered_bits_f32(x: f32) -> i64 {
    let b = x.to_bits();
    if b & 0x8000_0000 != 0 {
        -((b & 0x7fff_ffff) as i64)
    } else {
        b as i64
    }
}

fn ordered_bits_f64(x: f64) -> i128 {
    let b = x.to_bits();
    if b & 0x8000_0000_0000_0000 != 0 {
        -((b & 0x7fff_ffff_ffff_ffff) as i128)
    } else {
        b as i128
    }
}

fn ulp_f32(a: f32, b: f32) -> u64 {
    (ordered_bits_f32(a) - ordered_bits_f32(b)).unsigned_abs()
}

fn ulp_f64(a: f64, b: f64) -> u128 {
    (ordered_bits_f64(a) - ordered_bits_f64(b)).unsigned_abs()
}

fn looking_of(pick: usize) -> Looking {
    Looking::ALL[pick % 3]
}

/// (n, nb pick, looking pick, threads, seed). `n` deliberately crosses
/// tile boundaries: exact multiples of nb and ragged tails both occur.
fn params() -> impl Strategy<Value = (usize, usize, usize, usize, u64)> {
    (
        64usize..=192,
        0usize..3,
        0usize..3,
        2usize..=4,
        any::<u64>(),
    )
}

fn nb_of(pick: usize) -> usize {
    [8, 16, 32][pick % 3]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// f32: parallel ≡ sequential replay bitwise, both ≤ 4 ulp of the
    /// unblocked oracle.
    #[test]
    fn tiled_parallel_matches_seq_bitwise_and_oracle_f32(
        (n, nbp, lkp, threads, seed) in params()
    ) {
        let (nb, looking) = (nb_of(nbp), looking_of(lkp));
        let mut rng = StdRng::seed_from_u64(seed);
        let a0 = random_spd::<f32>(n, SpdKind::Wishart, &mut rng).into_vec();

        let mut oracle = a0.clone();
        potrf_unblocked(n, &mut oracle, n).expect("oracle must factor SPD input");
        let mut seq = a0.clone();
        potrf_tiled_seq(n, &mut seq, n, nb, looking).expect("seq tiled must factor");
        let mut par = a0.clone();
        potrf_tiled_threads(n, &mut par, n, nb, looking, threads)
            .expect("parallel tiled must factor");

        prop_assert!(
            par.iter().zip(&seq).all(|(x, y)| x.to_bits() == y.to_bits()),
            "parallel DAG must replay the sequential schedule bitwise \
             (n={n} nb={nb} {looking:?} threads={threads})"
        );
        // Only the lower triangle is the factor; the strict upper stays
        // input on both sides, so compare everything.
        for (i, (&t, &o)) in seq.iter().zip(&oracle).enumerate() {
            prop_assert!(
                ulp_f32(t, o) <= 4,
                "tiled[{i}]={t} vs oracle {o}: > 4 ulp (n={n} nb={nb} {looking:?})"
            );
        }
    }

    /// f64 twin of the above.
    #[test]
    fn tiled_parallel_matches_seq_bitwise_and_oracle_f64(
        (n, nbp, lkp, threads, seed) in params()
    ) {
        let (nb, looking) = (nb_of(nbp), looking_of(lkp));
        let mut rng = StdRng::seed_from_u64(seed);
        let a0 = random_spd::<f64>(n, SpdKind::Wishart, &mut rng).into_vec();

        let mut oracle = a0.clone();
        potrf_unblocked(n, &mut oracle, n).expect("oracle must factor SPD input");
        let mut seq = a0.clone();
        potrf_tiled_seq(n, &mut seq, n, nb, looking).expect("seq tiled must factor");
        let mut par = a0.clone();
        potrf_tiled_threads(n, &mut par, n, nb, looking, threads)
            .expect("parallel tiled must factor");

        prop_assert!(
            par.iter().zip(&seq).all(|(x, y)| x.to_bits() == y.to_bits()),
            "parallel DAG must replay the sequential schedule bitwise \
             (n={n} nb={nb} {looking:?} threads={threads})"
        );
        for (i, (&t, &o)) in seq.iter().zip(&oracle).enumerate() {
            prop_assert!(
                ulp_f64(t, o) <= 4,
                "tiled[{i}]={t} vs oracle {o}: > 4 ulp (n={n} nb={nb} {looking:?})"
            );
        }
    }

    /// A pivot poisoned at an arbitrary global column must fail with
    /// exactly that column from the oracle, the sequential DAG, and the
    /// parallel DAG — the total order on Potrf tasks makes the failure
    /// deterministic even under work stealing.
    #[test]
    fn planted_non_spd_reports_the_same_global_column_everywhere(
        (n, nbp, lkp, threads, seed) in params(),
        colp in 0usize..4096
    ) {
        let (nb, looking) = (nb_of(nbp), looking_of(lkp));
        let col = colp % n;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a0 = random_spd::<f64>(n, SpdKind::Wishart, &mut rng).into_vec();
        // Sink the diagonal entry far below anything elimination can
        // recover: the pivot at `col` must come out non-positive.
        a0[col * n + col] = -1e6;

        let mut oracle = a0.clone();
        let want = potrf_unblocked(n, &mut oracle, n).expect_err("poisoned pivot must fail");
        let CholeskyError::NotPositiveDefinite { column } = want else {
            panic!("expected NotPositiveDefinite, got {want:?}");
        };
        prop_assert!(column <= col, "failure can only surface at or before the poison");

        let mut seq = a0.clone();
        let got_seq = potrf_tiled_seq(n, &mut seq, n, nb, looking).expect_err("seq must fail");
        prop_assert_eq!(
            got_seq,
            CholeskyError::NotPositiveDefinite { column },
            "sequential DAG disagrees with the oracle on the failing column"
        );

        let mut par = a0;
        let got_par = potrf_tiled_threads(n, &mut par, n, nb, looking, threads)
            .expect_err("parallel must fail");
        prop_assert_eq!(
            got_par,
            CholeskyError::NotPositiveDefinite { column },
            "parallel DAG disagrees with the oracle on the failing column"
        );
    }
}

/// One deterministic large case at the top of the issue's range: n = 512
/// would take minutes under proptest's case count in debug builds, so it
/// runs once, not 12 times.
#[test]
fn tiled_matches_oracle_at_n512() {
    let n = 512;
    let mut rng = StdRng::seed_from_u64(0xD1A6);
    let a0 = random_spd::<f32>(n, SpdKind::Wishart, &mut rng).into_vec();
    let mut oracle = a0.clone();
    potrf_unblocked(n, &mut oracle, n).unwrap();
    for looking in Looking::ALL {
        let mut seq = a0.clone();
        potrf_tiled_seq(n, &mut seq, n, 32, looking).unwrap();
        let mut par = a0.clone();
        potrf_tiled_threads(n, &mut par, n, 32, looking, 4).unwrap();
        assert!(
            par.iter()
                .zip(&seq)
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "n=512 {looking:?}: parallel != sequential bitwise"
        );
        let worst = seq
            .iter()
            .zip(&oracle)
            .map(|(&t, &o)| ulp_f32(t, o))
            .max()
            .unwrap();
        assert!(worst <= 4, "n=512 {looking:?}: worst ulp {worst} > 4");
    }
}
