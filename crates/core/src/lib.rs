//! Host-side batch linear algebra for very small matrices.
//!
//! This crate provides the numerical foundation of the IPPS'17 interleaved
//! batch Cholesky reproduction:
//!
//! * [`scalar::Real`] — an `f32`/`f64` abstraction so every routine exists in
//!   both precisions (the paper works in single precision; double is the
//!   verification oracle).
//! * [`reference`] — the canonical unblocked right-looking Cholesky
//!   (Algorithm 1 of the paper), the correctness oracle for everything else.
//! * [`tile`] — the four tile microkernels of Figure 9 (`potrf_tile`,
//!   `trsm_tile`, `syrk_tile`, `gemm_tile`) in runtime-size and
//!   const-generic (fully inlined/unrolled) forms.
//! * [`blocked`] — right-, left-, and top-looking blocked factorizations
//!   (Figures 3–5 and 11) composed from the tile microkernels, with ragged
//!   last tiles when `n % nb != 0`.
//! * [`spd`] — symmetric positive definite test-matrix generators.
//! * [`solve`] — forward/backward substitution and batched solves (the ALS
//!   use case that motivated the paper).
//! * [`host_batch`] — a rayon-parallel, layout-aware batch factorization
//!   used both as a CPU baseline and as the oracle for the GPU-simulator
//!   kernels.
//! * [`lane_batch`] — the lane-vectorized in-place batch factorization:
//!   the host-side analogue of the paper's warp-coalesced interleaved
//!   kernels, several times faster than the gather/scatter baseline.
//! * [`lane_simd`] — explicit AVX2/AVX-512 implementations of the lane
//!   block primitives with runtime ISA dispatch (autovectorized fallback),
//!   bitwise-identical to the scalar oracle.
//! * [`tiled`] — task-graph blocked Cholesky for *one large* matrix: a
//!   dependency-counted POTRF/TRSM/SYRK/GEMM DAG over 128-byte-aligned
//!   tile slots, executed sequentially (per-Looking reference replays) or
//!   by a parallel ready-queue executor, bitwise identical to the
//!   unblocked oracle either way.
//! * [`verify`] — residual and reconstruction checks.

#![warn(missing_docs)]

pub mod blocked;
pub mod cond;
pub mod error;
pub mod flops;
pub mod host_batch;
pub mod lane_batch;
pub mod lane_simd;
pub mod matrix;
pub mod reference;
pub mod scalar;
pub mod solve;
pub mod spd;
pub mod sync_slice;
pub mod tile;
pub mod tiled;
pub mod uplo;
pub mod verify;

pub use blocked::{potrf_blocked, Looking};
pub use cond::{batch_cond_estimate, cond_estimate};
pub use error::CholeskyError;
pub use lane_batch::{
    factorize_batch_auto, factorize_batch_auto_backend, factorize_batch_lanes,
    factorize_batch_lanes_backend, factorize_batch_lanes_with, lane_compatible, preferred_lanes,
    LaneOrder, LaneWidth,
};
pub use lane_simd::{detect_isa, LaneBackend, SimdIsa};
pub use matrix::ColMatrix;
pub use reference::potrf_unblocked;
pub use scalar::Real;
pub use tiled::{potrf_tiled, potrf_tiled_seq, potrf_tiled_threads, TaskGraph, TileStore};
pub use uplo::{potrf_uplo, solve_cholesky_uplo, Uplo};
