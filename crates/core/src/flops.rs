//! Floating-point operation counts and rate helpers.

/// The paper's standard flop count for one Cholesky factorization,
/// `n³ / 3`, used for every Gflop/s figure. ("When computing the Gflop/s
/// value, the standard formula, 1/3 N³, is always used.")
pub fn cholesky_flops_std(n: usize) -> f64 {
    let n = n as f64;
    n * n * n / 3.0
}

/// The exact flop count of the unblocked lower Cholesky factorization:
/// `n³/3 + n²/2 + n/6` multiply/add/divide operations plus `n` square
/// roots (counted as one flop each here).
pub fn cholesky_flops_exact(n: usize) -> u64 {
    let mut flops = 0u64;
    for k in 0..n {
        let r = (n - k - 1) as u64;
        flops += 1; // sqrt
        flops += r; // column scaling divisions
        flops += r * (r + 1); // rank-1 update: tri(r) fused multiply-subtracts = 2 flops each
    }
    flops
}

/// Gflop/s for a batch of `batch` factorizations of dimension `n` completed
/// in `seconds`, using the paper's `n³/3` formula.
pub fn batch_gflops(n: usize, batch: usize, seconds: f64) -> f64 {
    assert!(seconds > 0.0, "elapsed time must be positive");
    cholesky_flops_std(n) * batch as f64 / seconds / 1e9
}

/// Bytes touched by a factorization that reads and writes the full square
/// matrix once (the compulsory traffic of an interleaved kernel that keeps
/// the matrix in registers), for element size `elem_bytes`.
pub fn compulsory_bytes(n: usize, elem_bytes: usize) -> u64 {
    // Read the lower triangle, write the lower triangle.
    2 * (n * (n + 1) / 2 * elem_bytes) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_formula() {
        assert_eq!(cholesky_flops_std(3), 9.0);
        assert_eq!(cholesky_flops_std(30), 9000.0);
    }

    #[test]
    fn exact_matches_closed_form() {
        // n³/3 + n²/2 + n/6 counts sqrt as 1 and fused ops as 2.
        for n in 1..64usize {
            let nf = n as u64;
            let closed = (2 * nf * nf * nf + 3 * nf * nf + nf) / 6;
            assert_eq!(cholesky_flops_exact(n), closed, "n = {n}");
        }
    }

    #[test]
    fn exact_close_to_std_for_large_n() {
        let n = 64;
        let ratio = cholesky_flops_exact(n) as f64 / cholesky_flops_std(n);
        assert!((ratio - 1.0).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn gflops_scale() {
        // 16384 matrices of n = 16 in 1 ms.
        let g = batch_gflops(16, 16384, 1e-3);
        let expect = (16.0f64.powi(3) / 3.0) * 16384.0 / 1e-3 / 1e9;
        assert!((g - expect).abs() < 1e-9);
    }

    #[test]
    fn compulsory_traffic() {
        assert_eq!(compulsory_bytes(4, 4), 2 * 10 * 4);
    }
}
