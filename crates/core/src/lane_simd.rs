//! Explicit-SIMD lane arithmetic with runtime ISA dispatch.
//!
//! The lane engine in [`crate::lane_batch`] expresses every arithmetic
//! step as an elementwise operation over contiguous `[T; LANES]` blocks
//! and *hopes* the compiler autovectorizes them. On a default `x86_64`
//! build the compiler may only assume SSE2 (4 × f32 per instruction), so
//! the generated code leaves most of an AVX2 or AVX-512 machine idle —
//! exactly the "last mile" gap between a correct kernel and the vector
//! ISA (Veras et al., arXiv 1611.08035). This module closes it: the
//! three hot block primitives (column scale, rank-1 update, pivot
//! sqrt/reciprocal) are implemented with explicit AVX2 and AVX-512
//! intrinsics, selected **at runtime** with
//! [`is_x86_feature_detected!`](std::arch::is_x86_feature_detected), so
//! one portable binary uses the widest vectors the machine has.
//!
//! Bitwise identity is non-negotiable: the SIMD paths must produce the
//! same bits as the autovectorized path and the scalar oracle
//! (`potrf_unblocked`). Three rules enforce it:
//!
//! * multiply-then-subtract is never contracted into an FMA (the scalar
//!   code performs two roundings, so the vector code issues `mul` + `sub`
//!   intrinsics, never `fmsub`);
//! * square roots use the correctly-rounded `sqrt` instructions, which
//!   match scalar `sqrt` bit for bit (IEEE 754 requires it);
//! * reciprocals are an exact division `1.0 / x`, never the approximate
//!   `rcp` instructions.
//!
//! Dispatch resolution order: the `simd` cargo feature gates whether the
//! intrinsic kernels are compiled at all; the `IBCF_SIMD` environment
//! variable (`off`/`autovec`, `avx2`, `avx512`, `auto`) can force a lower
//! tier at runtime (CI uses it to keep the fallback from rotting); and
//! feature detection picks the widest available ISA otherwise. On
//! non-x86 targets (and with the feature disabled) everything falls back
//! to the autovectorized path — on `aarch64` that path already emits
//! NEON, because NEON is part of the baseline ISA the compiler may
//! always assume, so there is no last-mile gap to close there.

use crate::scalar::Real;
use std::sync::OnceLock;

/// The instruction set a lane kernel was dispatched to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdIsa {
    /// 512-bit AVX-512F/VL kernels (16 × f32 / 8 × f64 per instruction).
    Avx512,
    /// 256-bit AVX2 kernels (8 × f32 / 4 × f64 per instruction).
    Avx2,
    /// The autovectorized `[T; LANES]` path (whatever the compiler's
    /// baseline target allows — SSE2 on default x86-64, NEON on aarch64).
    Fallback,
}

impl SimdIsa {
    /// Short lowercase name used in reports (`avx512`, `avx2`, `autovec`).
    pub fn name(self) -> &'static str {
        match self {
            SimdIsa::Avx512 => "avx512",
            SimdIsa::Avx2 => "avx2",
            SimdIsa::Fallback => "autovec",
        }
    }
}

impl std::fmt::Display for SimdIsa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which engine a lane factorization runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LaneBackend {
    /// Use the widest ISA the machine (and the `IBCF_SIMD` override)
    /// allows; fall back to the autovectorized path when none applies.
    #[default]
    Auto,
    /// Same resolution as [`LaneBackend::Auto`] — an explicit request for
    /// the SIMD path where the call site wants to document the intent
    /// (benches, the `host-bench` table).
    Simd,
    /// Force the autovectorized `[T; LANES]` path, ignoring detection.
    Autovec,
}

impl LaneBackend {
    /// The ISA this backend resolves to on this machine, right now.
    pub fn resolve(self) -> SimdIsa {
        match self {
            LaneBackend::Auto | LaneBackend::Simd => detect_isa(),
            LaneBackend::Autovec => SimdIsa::Fallback,
        }
    }

    /// Short lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            LaneBackend::Auto => "auto",
            LaneBackend::Simd => "simd",
            LaneBackend::Autovec => "autovec",
        }
    }
}

/// The ISA the [`LaneBackend::Auto`] path dispatches to on this machine:
/// feature detection, clipped by the `IBCF_SIMD` environment override and
/// the `simd` cargo feature. Detection runs once per process.
pub fn detect_isa() -> SimdIsa {
    static ISA: OnceLock<SimdIsa> = OnceLock::new();
    *ISA.get_or_init(|| {
        if !cfg!(feature = "simd") {
            return SimdIsa::Fallback;
        }
        let ceiling = match std::env::var("IBCF_SIMD").as_deref() {
            Ok("off") | Ok("autovec") | Ok("scalar") => return SimdIsa::Fallback,
            Ok("avx2") => SimdIsa::Avx2,
            _ => SimdIsa::Avx512, // `avx512`, `auto`, unset, or unknown
        };
        detect_hardware(ceiling)
    })
}

#[cfg(target_arch = "x86_64")]
fn detect_hardware(ceiling: SimdIsa) -> SimdIsa {
    if ceiling == SimdIsa::Avx512
        && std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512vl")
    {
        return SimdIsa::Avx512;
    }
    if std::arch::is_x86_feature_detected!("avx2") {
        return SimdIsa::Avx2;
    }
    SimdIsa::Fallback
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_hardware(_ceiling: SimdIsa) -> SimdIsa {
    SimdIsa::Fallback
}

/// The three elementwise block primitives of the lane-vectorized
/// Cholesky, over `[T; LANES]` blocks passed as slices. Every implementor
/// must produce bits identical to the [`Autovec`] reference.
///
/// # Safety
/// Implementations backed by intrinsics require their ISA to be present;
/// calling them on a machine without it is immediate undefined behavior.
/// Callers must only reach them through [`detect_isa`]-guarded dispatch.
pub(crate) trait LaneOps<T: Real> {
    /// `dst[l] *= scale[l]` for every lane of the block.
    ///
    /// # Safety
    /// See the trait-level contract. `dst.len() == scale.len()` and the
    /// length is a multiple of the widest vector the implementor splits
    /// the block into.
    unsafe fn scale(dst: &mut [T], scale: &[T]);

    /// `dst[l] -= a[l] * b[l]` — multiply then subtract, two roundings,
    /// never fused.
    ///
    /// # Safety
    /// See [`LaneOps::scale`].
    unsafe fn mulsub(dst: &mut [T], a: &[T], b: &[T]);

    /// `root[l] = sqrt(piv[l])` and `inv[l] = 1 / root[l]` (exact
    /// division).
    ///
    /// # Safety
    /// See [`LaneOps::scale`].
    unsafe fn sqrt_recip(piv: &[T], root: &mut [T], inv: &mut [T]);
}

/// The reference implementation: plain elementwise loops over the block,
/// compiled with whatever vector ISA the build's baseline target allows.
/// This is exactly the arithmetic the lane engine shipped with before the
/// explicit-SIMD backend existed.
pub(crate) struct Autovec;

impl<T: Real> LaneOps<T> for Autovec {
    #[inline(always)]
    unsafe fn scale(dst: &mut [T], scale: &[T]) {
        for l in 0..dst.len() {
            dst[l] *= scale[l];
        }
    }

    #[inline(always)]
    unsafe fn mulsub(dst: &mut [T], a: &[T], b: &[T]) {
        for l in 0..dst.len() {
            dst[l] -= a[l] * b[l];
        }
    }

    #[inline(always)]
    unsafe fn sqrt_recip(piv: &[T], root: &mut [T], inv: &mut [T]) {
        for l in 0..piv.len() {
            root[l] = piv[l].sqrt();
        }
        for l in 0..piv.len() {
            inv[l] = root[l].recip();
        }
    }
}

/// AVX2 / AVX-512 implementations of the block primitives.
///
/// Blocks are `LANES ∈ {8, 16, 32}` elements, so f32 blocks split evenly
/// into 256-bit registers and f64 blocks into 128-bit halves of them; the
/// AVX-512 kernels consume 512-bit chunks first and finish any 8-element
/// f32 (or 4-element f64) remainder with 256-bit instructions (AVX-512F
/// implies AVX2, so mixing widths is always legal once dispatched).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub(crate) mod x86 {
    use super::LaneOps;
    use std::arch::x86_64::*;

    /// 256-bit kernels. Safety: requires the `avx2` CPU feature.
    pub(crate) struct Avx2;
    /// 512-bit kernels. Safety: requires `avx512f` + `avx512vl`.
    pub(crate) struct Avx512;

    impl LaneOps<f32> for Avx2 {
        #[inline(always)]
        unsafe fn scale(dst: &mut [f32], scale: &[f32]) {
            debug_assert!(dst.len() == scale.len() && dst.len().is_multiple_of(8));
            unsafe {
                for l in (0..dst.len()).step_by(8) {
                    let d = _mm256_loadu_ps(dst.as_ptr().add(l));
                    let s = _mm256_loadu_ps(scale.as_ptr().add(l));
                    _mm256_storeu_ps(dst.as_mut_ptr().add(l), _mm256_mul_ps(d, s));
                }
            }
        }

        #[inline(always)]
        unsafe fn mulsub(dst: &mut [f32], a: &[f32], b: &[f32]) {
            debug_assert!(dst.len().is_multiple_of(8));
            unsafe {
                for l in (0..dst.len()).step_by(8) {
                    let d = _mm256_loadu_ps(dst.as_ptr().add(l));
                    let x = _mm256_loadu_ps(a.as_ptr().add(l));
                    let y = _mm256_loadu_ps(b.as_ptr().add(l));
                    // mul + sub, two roundings: bitwise-identical to the
                    // scalar `d -= x * y`, never contracted to an FMA.
                    let prod = _mm256_mul_ps(x, y);
                    _mm256_storeu_ps(dst.as_mut_ptr().add(l), _mm256_sub_ps(d, prod));
                }
            }
        }

        #[inline(always)]
        unsafe fn sqrt_recip(piv: &[f32], root: &mut [f32], inv: &mut [f32]) {
            debug_assert!(piv.len().is_multiple_of(8));
            unsafe {
                let one = _mm256_set1_ps(1.0);
                for l in (0..piv.len()).step_by(8) {
                    let r = _mm256_sqrt_ps(_mm256_loadu_ps(piv.as_ptr().add(l)));
                    _mm256_storeu_ps(root.as_mut_ptr().add(l), r);
                    // Exact division, not the approximate `rcp` lane op.
                    _mm256_storeu_ps(inv.as_mut_ptr().add(l), _mm256_div_ps(one, r));
                }
            }
        }
    }

    impl LaneOps<f64> for Avx2 {
        #[inline(always)]
        unsafe fn scale(dst: &mut [f64], scale: &[f64]) {
            debug_assert!(dst.len() == scale.len() && dst.len().is_multiple_of(4));
            unsafe {
                for l in (0..dst.len()).step_by(4) {
                    let d = _mm256_loadu_pd(dst.as_ptr().add(l));
                    let s = _mm256_loadu_pd(scale.as_ptr().add(l));
                    _mm256_storeu_pd(dst.as_mut_ptr().add(l), _mm256_mul_pd(d, s));
                }
            }
        }

        #[inline(always)]
        unsafe fn mulsub(dst: &mut [f64], a: &[f64], b: &[f64]) {
            debug_assert!(dst.len().is_multiple_of(4));
            unsafe {
                for l in (0..dst.len()).step_by(4) {
                    let d = _mm256_loadu_pd(dst.as_ptr().add(l));
                    let x = _mm256_loadu_pd(a.as_ptr().add(l));
                    let y = _mm256_loadu_pd(b.as_ptr().add(l));
                    let prod = _mm256_mul_pd(x, y);
                    _mm256_storeu_pd(dst.as_mut_ptr().add(l), _mm256_sub_pd(d, prod));
                }
            }
        }

        #[inline(always)]
        unsafe fn sqrt_recip(piv: &[f64], root: &mut [f64], inv: &mut [f64]) {
            debug_assert!(piv.len().is_multiple_of(4));
            unsafe {
                let one = _mm256_set1_pd(1.0);
                for l in (0..piv.len()).step_by(4) {
                    let r = _mm256_sqrt_pd(_mm256_loadu_pd(piv.as_ptr().add(l)));
                    _mm256_storeu_pd(root.as_mut_ptr().add(l), r);
                    _mm256_storeu_pd(inv.as_mut_ptr().add(l), _mm256_div_pd(one, r));
                }
            }
        }
    }

    impl LaneOps<f32> for Avx512 {
        #[inline(always)]
        unsafe fn scale(dst: &mut [f32], scale: &[f32]) {
            debug_assert!(dst.len() == scale.len() && dst.len().is_multiple_of(8));
            unsafe {
                let mut l = 0;
                while l + 16 <= dst.len() {
                    let d = _mm512_loadu_ps(dst.as_ptr().add(l));
                    let s = _mm512_loadu_ps(scale.as_ptr().add(l));
                    _mm512_storeu_ps(dst.as_mut_ptr().add(l), _mm512_mul_ps(d, s));
                    l += 16;
                }
                while l < dst.len() {
                    let d = _mm256_loadu_ps(dst.as_ptr().add(l));
                    let s = _mm256_loadu_ps(scale.as_ptr().add(l));
                    _mm256_storeu_ps(dst.as_mut_ptr().add(l), _mm256_mul_ps(d, s));
                    l += 8;
                }
            }
        }

        #[inline(always)]
        unsafe fn mulsub(dst: &mut [f32], a: &[f32], b: &[f32]) {
            debug_assert!(dst.len().is_multiple_of(8));
            unsafe {
                let mut l = 0;
                while l + 16 <= dst.len() {
                    let d = _mm512_loadu_ps(dst.as_ptr().add(l));
                    let x = _mm512_loadu_ps(a.as_ptr().add(l));
                    let y = _mm512_loadu_ps(b.as_ptr().add(l));
                    let prod = _mm512_mul_ps(x, y);
                    _mm512_storeu_ps(dst.as_mut_ptr().add(l), _mm512_sub_ps(d, prod));
                    l += 16;
                }
                while l < dst.len() {
                    let d = _mm256_loadu_ps(dst.as_ptr().add(l));
                    let x = _mm256_loadu_ps(a.as_ptr().add(l));
                    let y = _mm256_loadu_ps(b.as_ptr().add(l));
                    let prod = _mm256_mul_ps(x, y);
                    _mm256_storeu_ps(dst.as_mut_ptr().add(l), _mm256_sub_ps(d, prod));
                    l += 8;
                }
            }
        }

        #[inline(always)]
        unsafe fn sqrt_recip(piv: &[f32], root: &mut [f32], inv: &mut [f32]) {
            debug_assert!(piv.len().is_multiple_of(8));
            unsafe {
                let mut l = 0;
                while l + 16 <= piv.len() {
                    let r = _mm512_sqrt_ps(_mm512_loadu_ps(piv.as_ptr().add(l)));
                    _mm512_storeu_ps(root.as_mut_ptr().add(l), r);
                    _mm512_storeu_ps(
                        inv.as_mut_ptr().add(l),
                        _mm512_div_ps(_mm512_set1_ps(1.0), r),
                    );
                    l += 16;
                }
                while l < piv.len() {
                    let r = _mm256_sqrt_ps(_mm256_loadu_ps(piv.as_ptr().add(l)));
                    _mm256_storeu_ps(root.as_mut_ptr().add(l), r);
                    _mm256_storeu_ps(
                        inv.as_mut_ptr().add(l),
                        _mm256_div_ps(_mm256_set1_ps(1.0), r),
                    );
                    l += 8;
                }
            }
        }
    }

    impl LaneOps<f64> for Avx512 {
        #[inline(always)]
        unsafe fn scale(dst: &mut [f64], scale: &[f64]) {
            debug_assert!(dst.len() == scale.len() && dst.len().is_multiple_of(4));
            unsafe {
                let mut l = 0;
                while l + 8 <= dst.len() {
                    let d = _mm512_loadu_pd(dst.as_ptr().add(l));
                    let s = _mm512_loadu_pd(scale.as_ptr().add(l));
                    _mm512_storeu_pd(dst.as_mut_ptr().add(l), _mm512_mul_pd(d, s));
                    l += 8;
                }
                while l < dst.len() {
                    let d = _mm256_loadu_pd(dst.as_ptr().add(l));
                    let s = _mm256_loadu_pd(scale.as_ptr().add(l));
                    _mm256_storeu_pd(dst.as_mut_ptr().add(l), _mm256_mul_pd(d, s));
                    l += 4;
                }
            }
        }

        #[inline(always)]
        unsafe fn mulsub(dst: &mut [f64], a: &[f64], b: &[f64]) {
            debug_assert!(dst.len().is_multiple_of(4));
            unsafe {
                let mut l = 0;
                while l + 8 <= dst.len() {
                    let d = _mm512_loadu_pd(dst.as_ptr().add(l));
                    let x = _mm512_loadu_pd(a.as_ptr().add(l));
                    let y = _mm512_loadu_pd(b.as_ptr().add(l));
                    let prod = _mm512_mul_pd(x, y);
                    _mm512_storeu_pd(dst.as_mut_ptr().add(l), _mm512_sub_pd(d, prod));
                    l += 8;
                }
                while l < dst.len() {
                    let d = _mm256_loadu_pd(dst.as_ptr().add(l));
                    let x = _mm256_loadu_pd(a.as_ptr().add(l));
                    let y = _mm256_loadu_pd(b.as_ptr().add(l));
                    let prod = _mm256_mul_pd(x, y);
                    _mm256_storeu_pd(dst.as_mut_ptr().add(l), _mm256_sub_pd(d, prod));
                    l += 4;
                }
            }
        }

        #[inline(always)]
        unsafe fn sqrt_recip(piv: &[f64], root: &mut [f64], inv: &mut [f64]) {
            debug_assert!(piv.len().is_multiple_of(4));
            unsafe {
                let mut l = 0;
                while l + 8 <= piv.len() {
                    let r = _mm512_sqrt_pd(_mm512_loadu_pd(piv.as_ptr().add(l)));
                    _mm512_storeu_pd(root.as_mut_ptr().add(l), r);
                    _mm512_storeu_pd(
                        inv.as_mut_ptr().add(l),
                        _mm512_div_pd(_mm512_set1_pd(1.0), r),
                    );
                    l += 8;
                }
                while l < piv.len() {
                    let r = _mm256_sqrt_pd(_mm256_loadu_pd(piv.as_ptr().add(l)));
                    _mm256_storeu_pd(root.as_mut_ptr().add(l), r);
                    _mm256_storeu_pd(
                        inv.as_mut_ptr().add(l),
                        _mm256_div_pd(_mm256_set1_pd(1.0), r),
                    );
                    l += 4;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_resolution_is_consistent() {
        // Detection is cached: two resolutions agree, and Autovec always
        // forces the fallback regardless of hardware.
        assert_eq!(LaneBackend::Auto.resolve(), LaneBackend::Simd.resolve());
        assert_eq!(LaneBackend::Autovec.resolve(), SimdIsa::Fallback);
        assert_eq!(detect_isa(), detect_isa());
    }

    #[test]
    fn isa_names_are_stable() {
        assert_eq!(SimdIsa::Avx512.name(), "avx512");
        assert_eq!(SimdIsa::Avx2.name(), "avx2");
        assert_eq!(SimdIsa::Fallback.name(), "autovec");
        assert_eq!(LaneBackend::Auto.name(), "auto");
        assert_eq!(LaneBackend::Autovec.name(), "autovec");
        assert_eq!(format!("{}", SimdIsa::Fallback), "autovec");
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[test]
    fn intrinsic_ops_match_autovec_bitwise() {
        // Direct unit check of the three primitives against the reference
        // on this machine's detected ISA (skips quietly on pre-AVX2 CPUs).
        fn check<O: LaneOps<f32>>() {
            for lanes in [8usize, 16, 32] {
                let a: Vec<f32> = (0..lanes).map(|i| 0.5 + i as f32 * 1.25).collect();
                let b: Vec<f32> = (0..lanes).map(|i| 1.0 / (1.0 + i as f32)).collect();
                let mut d_ref: Vec<f32> = (0..lanes).map(|i| (i as f32).sin()).collect();
                let mut d_simd = d_ref.clone();
                unsafe {
                    Autovec::scale(&mut d_ref, &a);
                    O::scale(&mut d_simd, &a);
                }
                assert_eq!(d_ref, d_simd, "scale lanes={lanes}");
                unsafe {
                    Autovec::mulsub(&mut d_ref, &a, &b);
                    O::mulsub(&mut d_simd, &a, &b);
                }
                assert_eq!(d_ref, d_simd, "mulsub lanes={lanes}");
                let mut root_ref = vec![0.0f32; lanes];
                let mut inv_ref = vec![0.0f32; lanes];
                let mut root_simd = vec![0.0f32; lanes];
                let mut inv_simd = vec![0.0f32; lanes];
                unsafe {
                    Autovec::sqrt_recip(&a, &mut root_ref, &mut inv_ref);
                    O::sqrt_recip(&a, &mut root_simd, &mut inv_simd);
                }
                assert_eq!(root_ref, root_simd, "sqrt lanes={lanes}");
                assert_eq!(inv_ref, inv_simd, "recip lanes={lanes}");
            }
        }
        match detect_isa() {
            SimdIsa::Avx512 => check::<x86::Avx512>(),
            SimdIsa::Avx2 => check::<x86::Avx2>(),
            SimdIsa::Fallback => {}
        }
    }
}
