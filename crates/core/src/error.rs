//! Error types for the factorization routines.

use serde::{Deserialize, Serialize};

/// Failure of a Cholesky factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CholeskyError {
    /// A non-positive pivot was encountered at the given (zero-based)
    /// column: the matrix is not (numerically) positive definite.
    NotPositiveDefinite {
        /// Zero-based column at which the pivot failed.
        column: usize,
    },
    /// A NaN or infinity appeared during the factorization (e.g. from an
    /// already-corrupt input).
    NonFinite {
        /// Zero-based column at which the non-finite value was detected.
        column: usize,
    },
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CholeskyError::NotPositiveDefinite { column } => {
                write!(
                    f,
                    "matrix is not positive definite (pivot at column {column})"
                )
            }
            CholeskyError::NonFinite { column } => {
                write!(f, "non-finite value encountered at column {column}")
            }
        }
    }
}

impl std::error::Error for CholeskyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_column() {
        let e = CholeskyError::NotPositiveDefinite { column: 3 };
        assert!(e.to_string().contains("column 3"));
        let e = CholeskyError::NonFinite { column: 7 };
        assert!(e.to_string().contains("column 7"));
    }

    #[test]
    fn equality_and_copy() {
        let e = CholeskyError::NotPositiveDefinite { column: 2 };
        let f = e;
        assert_eq!(e, f);
        assert_ne!(e, CholeskyError::NonFinite { column: 2 });
    }
}
