//! Layout-aware batch factorization on the host CPU.
//!
//! This serves two roles in the reproduction:
//!
//! 1. the **oracle**: an independently-tested result to compare every
//!    simulated device kernel against, and
//! 2. the **CPU baseline**: a rayon-parallel batch factorization in the
//!    spirit of MKL's compact/batch routines.

use crate::blocked::{potrf_blocked, Looking};
use crate::error::CholeskyError;
use crate::reference::potrf_unblocked;
use crate::scalar::Real;
use crate::sync_slice::SyncSlice;
use ibcf_layout::BatchLayout;
use rayon::prelude::*;

/// Outcome of a batch factorization: per-matrix failures, if any.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// `(matrix index, error)` for every matrix that failed.
    pub failures: Vec<(usize, CholeskyError)>,
}

impl BatchReport {
    /// `true` if every matrix factorized successfully.
    pub fn all_ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Factorizes every live matrix of the batch in place using the unblocked
/// reference algorithm, sequentially.
///
/// Cholesky never reads or writes above the diagonal, so only the lower
/// triangle is gathered and scattered — half the copy traffic of a full
/// square round trip.
pub fn factorize_batch_seq<T: Real, L: BatchLayout>(layout: &L, data: &mut [T]) -> BatchReport {
    let n = layout.n();
    let mut scratch = vec![T::ZERO; n * n];
    let mut report = BatchReport::default();
    for mat in 0..layout.batch() {
        ibcf_layout::gather_lower(layout, data, mat, &mut scratch, n);
        match potrf_unblocked(n, &mut scratch, n) {
            Ok(()) => ibcf_layout::scatter_lower(layout, data, mat, &scratch, n),
            Err(e) => report.failures.push((mat, e)),
        }
    }
    report
}

/// Factorizes every live matrix of the batch in place using the unblocked
/// reference algorithm, in parallel over matrices with rayon.
///
/// Matrices whose factorization fails are left **unmodified** (the gather /
/// factor / scatter structure only writes back on success), and reported.
pub fn factorize_batch<T: Real, L: BatchLayout + Sync>(layout: &L, data: &mut [T]) -> BatchReport {
    let n = layout.n();
    let batch = layout.batch();
    assert!(data.len() >= layout.len(), "batch buffer too short");
    let shared = SyncSlice::new(data);
    let mut failures: Vec<(usize, CholeskyError)> = (0..batch)
        .into_par_iter()
        .filter_map(|mat| {
            let mut scratch = vec![T::ZERO; n * n];
            // Lower triangle only: the factorization never touches the
            // strictly-upper part, so copying it would be wasted traffic.
            for col in 0..n {
                for row in col..n {
                    // SAFETY: layout addresses are injective per (mat, row,
                    // col) and each `mat` is owned by exactly one worker.
                    scratch[row + col * n] = unsafe { shared.read(layout.addr(mat, row, col)) };
                }
            }
            match potrf_unblocked(n, &mut scratch, n) {
                Ok(()) => {
                    for col in 0..n {
                        for row in col..n {
                            // SAFETY: as above — disjoint per matrix.
                            unsafe {
                                shared.write(layout.addr(mat, row, col), scratch[row + col * n]);
                            }
                        }
                    }
                    None
                }
                Err(e) => Some((mat, e)),
            }
        })
        .collect();
    failures.sort_by_key(|&(mat, _)| mat);
    BatchReport { failures }
}

/// Factorizes every live matrix with the blocked algorithm (tile size `nb`,
/// given looking order), in parallel over matrices. This is the host mirror
/// of the tiled device kernels.
pub fn factorize_batch_blocked<T: Real, L: BatchLayout + Sync>(
    layout: &L,
    data: &mut [T],
    nb: usize,
    looking: Looking,
) -> BatchReport {
    let n = layout.n();
    let batch = layout.batch();
    assert!(data.len() >= layout.len(), "batch buffer too short");
    // The blocked routine writes through the layout directly; give each
    // worker an independent gather/scatter copy to keep the parallel path
    // safe, then write back.
    let shared = SyncSlice::new(data);
    let mut failures: Vec<(usize, CholeskyError)> = (0..batch)
        .into_par_iter()
        .filter_map(|mat| {
            // Local single-matrix canonical layout and buffer.
            let local = ibcf_layout::Canonical::new(n, 1);
            let mut buf = vec![T::ZERO; local.len()];
            // The tile kernels only ever read and write at or below the
            // diagonal, so the round trip copies the lower triangle only.
            for col in 0..n {
                for row in col..n {
                    // SAFETY: disjoint per matrix (injective layout).
                    buf[local.addr(0, row, col)] =
                        unsafe { shared.read(layout.addr(mat, row, col)) };
                }
            }
            match potrf_blocked(&local, &mut buf, 0, nb, looking) {
                Ok(()) => {
                    for col in 0..n {
                        for row in col..n {
                            // SAFETY: as above.
                            unsafe {
                                shared.write(
                                    layout.addr(mat, row, col),
                                    buf[local.addr(0, row, col)],
                                );
                            }
                        }
                    }
                    None
                }
                Err(e) => Some((mat, e)),
            }
        })
        .collect();
    failures.sort_by_key(|&(mat, _)| mat);
    BatchReport { failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spd::{fill_batch_spd, SpdKind};
    use crate::verify::batch_reconstruction_error;
    use ibcf_layout::{Canonical, Chunked, Interleaved, Layout};

    fn layouts(n: usize, batch: usize) -> Vec<Layout> {
        vec![
            Layout::Canonical(Canonical::new(n, batch)),
            Layout::Interleaved(Interleaved::new(n, batch)),
            Layout::Chunked(Chunked::new(n, batch, 32)),
        ]
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 9;
        let batch = 100;
        for layout in layouts(n, batch) {
            let mut a = vec![0.0f32; layout.len()];
            fill_batch_spd(&layout, &mut a, SpdKind::Wishart, 21);
            let mut b = a.clone();
            let r1 = factorize_batch_seq(&layout, &mut a);
            let r2 = factorize_batch(&layout, &mut b);
            assert!(r1.all_ok() && r2.all_ok());
            assert_eq!(a, b, "{:?}", layout.kind());
        }
    }

    #[test]
    fn batch_residuals_are_small() {
        let n = 12;
        let batch = 64;
        for layout in layouts(n, batch) {
            let mut data = vec![0.0f64; layout.len()];
            fill_batch_spd(&layout, &mut data, SpdKind::Wishart, 5);
            let orig = data.clone();
            assert!(factorize_batch(&layout, &mut data).all_ok());
            let err = batch_reconstruction_error(&layout, &orig, &data);
            assert!(err < 1e-13, "{:?}: {err}", layout.kind());
        }
    }

    #[test]
    fn blocked_batch_matches_unblocked_batch() {
        let n = 11;
        let batch = 40;
        let layout = Chunked::new(n, batch, 32);
        let mut a = vec![0.0f64; layout.len()];
        fill_batch_spd(&layout, &mut a, SpdKind::DiagDominant, 8);
        let mut b = a.clone();
        assert!(factorize_batch(&layout, &mut a).all_ok());
        for looking in Looking::ALL {
            let mut c = b.clone();
            assert!(factorize_batch_blocked(&layout, &mut c, 4, looking).all_ok());
            for (x, y) in a.iter().zip(&c) {
                assert!((x - y).abs() < 1e-9, "{looking:?}");
            }
        }
        // b itself untouched (we cloned); silence the unused warning.
        let _ = &mut b;
    }

    #[test]
    fn failures_reported_and_matrix_left_intact() {
        let n = 4;
        let batch = 10;
        let layout = Interleaved::new(n, batch);
        let mut data = vec![0.0f32; layout.len()];
        fill_batch_spd(&layout, &mut data, SpdKind::Wishart, 1);
        // Corrupt matrix 3: make it -I.
        let neg_eye: Vec<f32> = (0..n * n)
            .map(|i| if i % (n + 1) == 0 { -1.0 } else { 0.0 })
            .collect();
        ibcf_layout::scatter_matrix(&layout, &mut data, 3, &neg_eye, n);
        let before = data.clone();
        let report = factorize_batch(&layout, &mut data);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].0, 3);
        // Matrix 3 untouched, others factored.
        let mut m3 = vec![0.0f32; n * n];
        ibcf_layout::gather_matrix(&layout, &data, 3, &mut m3, n);
        let mut m3_before = vec![0.0f32; n * n];
        ibcf_layout::gather_matrix(&layout, &before, 3, &mut m3_before, n);
        assert_eq!(m3, m3_before);
    }
}
