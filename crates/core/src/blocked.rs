//! Blocked Cholesky factorizations — right-, left-, and top-looking — built
//! from the tile microkernels, operating on one matrix of a laid-out batch.
//!
//! These are exact host-side mirrors of the device kernels (Figures 3–5 and
//! 11 of the paper): the same tile operations in the same order with the
//! same load/store pattern, so the kernels crate can validate its traced
//! instruction streams against an independently-tested implementation.
//!
//! Each looking order below is also a *schedule* — one particular
//! topological order of the POTRF/TRSM/SYRK/GEMM dependency DAG that
//! [`crate::tiled`] builds explicitly for large single matrices. The
//! loops here gather every tile through the batch layout on each use;
//! the task-graph runtime packs once into tile-major storage and lets a
//! work-stealing pool pick any topological order, with a per-tile update
//! chain that keeps the result bitwise identical to these sequential
//! mirrors (see `TaskGraph::sequential_order`, which reproduces exactly
//! the orders written out longhand below).

use crate::error::CholeskyError;
use crate::scalar::Real;
use crate::tile::{
    gemm_tile, load_full, load_lower, potrf_tile, store_full, store_lower, syrk_tile, trsm_tile,
};
use ibcf_layout::BatchLayout;
use serde::{Deserialize, Serialize};

/// Order of evaluation of the tile operations (the paper's "Looking"
/// parameter): aggressive (right), lazy (left), or laziest (top).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Looking {
    /// Aggressive: update the whole trailing submatrix after each panel.
    Right,
    /// Lazy: apply pending updates to the current panel just before
    /// factoring it (the LAPACK order).
    Left,
    /// Laziest: only the diagonal tile is factored per step; updates to the
    /// stripe left of it are deferred until the stripe is needed.
    Top,
}

impl Looking {
    /// All three variants, in the paper's presentation order.
    pub const ALL: [Looking; 3] = [Looking::Right, Looking::Left, Looking::Top];

    /// Short lowercase name used in reports and datasets.
    pub fn name(self) -> &'static str {
        match self {
            Looking::Right => "right",
            Looking::Left => "left",
            Looking::Top => "top",
        }
    }
}

impl std::fmt::Display for Looking {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Dimension of tile-block `b` for a matrix of size `n` tiled by `nb`.
#[inline]
fn blk_dim(n: usize, nb: usize, b: usize) -> usize {
    nb.min(n - b * nb)
}

/// Number of tile blocks covering dimension `n` with tile size `nb`.
#[inline]
pub fn num_blocks(n: usize, nb: usize) -> usize {
    n.div_ceil(nb)
}

/// Blocked lower Cholesky factorization of matrix `mat` within a laid-out
/// batch, with tile size `nb` and the given looking order. Handles
/// `n % nb != 0` with ragged corner tiles.
///
/// # Errors
/// [`CholeskyError::NotPositiveDefinite`] with the global failing column.
pub fn potrf_blocked<T: Real, L: BatchLayout>(
    layout: &L,
    data: &mut [T],
    mat: usize,
    nb: usize,
    looking: Looking,
) -> Result<(), CholeskyError> {
    assert!(nb > 0, "tile size must be positive");
    let n = layout.n();
    match looking {
        Looking::Right => right_looking(layout, data, mat, n, nb),
        Looking::Left => left_looking(layout, data, mat, n, nb),
        Looking::Top => top_looking(layout, data, mat, n, nb),
    }
}

/// Scratch tiles. `ts == nb` always; ragged tiles use a leading sub-block.
struct Tiles<T> {
    a1: Vec<T>,
    a2: Vec<T>,
    a3: Vec<T>,
}

impl<T: Real> Tiles<T> {
    fn new(nb: usize) -> Self {
        Tiles {
            a1: vec![T::ZERO; nb * nb],
            a2: vec![T::ZERO; nb * nb],
            a3: vec![T::ZERO; nb * nb],
        }
    }
}

fn pivot_err(nb: usize, bk: usize, col_in_tile: usize) -> CholeskyError {
    CholeskyError::NotPositiveDefinite {
        column: bk * nb + col_in_tile,
    }
}

/// Right-looking (Figure 3): factor panel, then update the entire trailing
/// submatrix with rank-`nb` updates.
///
/// In DAG terms ([`crate::tiled::TaskGraph`]) this is the *eager*
/// schedule: every SYRK/GEMM update runs as soon as its step-`kk` inputs
/// exist, so it exposes the most ready tasks at once — the order the
/// parallel executor's ready queue naturally approximates.
fn right_looking<T: Real, L: BatchLayout>(
    layout: &L,
    data: &mut [T],
    mat: usize,
    n: usize,
    nb: usize,
) -> Result<(), CholeskyError> {
    let nt = num_blocks(n, nb);
    let mut t = Tiles::<T>::new(nb);
    for kk in 0..nt {
        let dk = blk_dim(n, nb, kk);
        // Factor the diagonal tile.
        load_lower(layout, data, mat, nb, kk, dk, &mut t.a1, nb);
        potrf_tile(dk, &mut t.a1, nb).map_err(|c| pivot_err(nb, kk, c))?;
        store_lower(layout, data, mat, nb, kk, dk, &t.a1, nb);
        // Panel: solve each tile below the diagonal.
        for mm in kk + 1..nt {
            let dm = blk_dim(n, nb, mm);
            load_full(layout, data, mat, nb, mm, kk, dm, dk, &mut t.a2, nb);
            trsm_tile(dm, dk, &t.a1, nb, &mut t.a2, nb);
            store_full(layout, data, mat, nb, mm, kk, dm, dk, &t.a2, nb);
        }
        // Trailing submatrix update.
        for nn in kk + 1..nt {
            let dn = blk_dim(n, nb, nn);
            load_full(layout, data, mat, nb, nn, kk, dn, dk, &mut t.a1, nb);
            // Diagonal tile of the trailing submatrix: SYRK.
            load_lower(layout, data, mat, nb, nn, dn, &mut t.a3, nb);
            syrk_tile(dn, dk, &t.a1, nb, &mut t.a3, nb);
            store_lower(layout, data, mat, nb, nn, dn, &t.a3, nb);
            // Tiles below it: GEMM.
            for mm in nn + 1..nt {
                let dm = blk_dim(n, nb, mm);
                load_full(layout, data, mat, nb, mm, kk, dm, dk, &mut t.a2, nb);
                load_full(layout, data, mat, nb, mm, nn, dm, dn, &mut t.a3, nb);
                gemm_tile(dm, dn, dk, &t.a2, nb, &t.a1, nb, &mut t.a3, nb);
                store_full(layout, data, mat, nb, mm, nn, dm, dn, &t.a3, nb);
            }
        }
    }
    Ok(())
}

/// Left-looking (Figure 4, the LAPACK order): apply all pending updates to
/// the current panel, then factor it.
///
/// The *lazy* schedule of the same DAG: updates from all earlier steps
/// are deferred until the panel that consumes them is touched. Same task
/// set, same per-tile update chain, different topological order — which
/// is why [`crate::tiled`] can replay it bitwise from one graph.
fn left_looking<T: Real, L: BatchLayout>(
    layout: &L,
    data: &mut [T],
    mat: usize,
    n: usize,
    nb: usize,
) -> Result<(), CholeskyError> {
    let nt = num_blocks(n, nb);
    let mut t = Tiles::<T>::new(nb);
    for kk in 0..nt {
        let dk = blk_dim(n, nb, kk);
        // Update the diagonal tile with all tiles to its left.
        load_lower(layout, data, mat, nb, kk, dk, &mut t.a1, nb);
        for mm in 0..kk {
            let dm = blk_dim(n, nb, mm);
            load_full(layout, data, mat, nb, kk, mm, dk, dm, &mut t.a2, nb);
            syrk_tile(dk, dm, &t.a2, nb, &mut t.a1, nb);
        }
        potrf_tile(dk, &mut t.a1, nb).map_err(|c| pivot_err(nb, kk, c))?;
        store_lower(layout, data, mat, nb, kk, dk, &t.a1, nb);
        // Update and solve each panel tile below the diagonal.
        for ii in kk + 1..nt {
            let di = blk_dim(n, nb, ii);
            load_full(layout, data, mat, nb, ii, kk, di, dk, &mut t.a3, nb);
            for mm in 0..kk {
                let dm = blk_dim(n, nb, mm);
                load_full(layout, data, mat, nb, ii, mm, di, dm, &mut t.a2, nb);
                // rA2 holds A[ii][mm]; reuse a scratch for A[kk][mm].
                let mut akm = vec![T::ZERO; nb * nb];
                load_full(layout, data, mat, nb, kk, mm, dk, dm, &mut akm, nb);
                gemm_tile(di, dk, dm, &t.a2, nb, &akm, nb, &mut t.a3, nb);
            }
            trsm_tile(di, dk, &t.a1, nb, &mut t.a3, nb);
            store_full(layout, data, mat, nb, ii, kk, di, dk, &t.a3, nb);
        }
    }
    Ok(())
}

/// Top-looking (Figures 5 and 11, the paper's laziest order): before
/// factoring diagonal tile `kk`, first bring the stripe to its left up to
/// date, then update and factor the diagonal tile.
///
/// The laziest topological order of the DAG: nothing left of the current
/// stripe is touched until the stripe itself is needed. Smallest working
/// set (best for the device kernels this mirrors), longest dependency
/// chains — the schedule with the least parallelism for
/// [`crate::tiled`]'s executor to exploit.
fn top_looking<T: Real, L: BatchLayout>(
    layout: &L,
    data: &mut [T],
    mat: usize,
    n: usize,
    nb: usize,
) -> Result<(), CholeskyError> {
    let nt = num_blocks(n, nb);
    let mut t = Tiles::<T>::new(nb);
    for kk in 0..nt {
        let dk = blk_dim(n, nb, kk);
        // Update the stripe left of the diagonal tile (row kk, cols < kk).
        for nn in 0..kk {
            let dn = blk_dim(n, nb, nn);
            load_full(layout, data, mat, nb, kk, nn, dk, dn, &mut t.a3, nb);
            for mm in 0..nn {
                let dm = blk_dim(n, nb, mm);
                load_full(layout, data, mat, nb, kk, mm, dk, dm, &mut t.a1, nb);
                load_full(layout, data, mat, nb, nn, mm, dn, dm, &mut t.a2, nb);
                gemm_tile(dk, dn, dm, &t.a1, nb, &t.a2, nb, &mut t.a3, nb);
            }
            load_lower(layout, data, mat, nb, nn, dn, &mut t.a1, nb);
            trsm_tile(dk, dn, &t.a1, nb, &mut t.a3, nb);
            store_full(layout, data, mat, nb, kk, nn, dk, dn, &t.a3, nb);
        }
        // Update the diagonal tile with the (now current) stripe, factor it.
        load_lower(layout, data, mat, nb, kk, dk, &mut t.a1, nb);
        for nn in 0..kk {
            let dn = blk_dim(n, nb, nn);
            load_full(layout, data, mat, nb, kk, nn, dk, dn, &mut t.a2, nb);
            syrk_tile(dk, dn, &t.a2, nb, &mut t.a1, nb);
        }
        potrf_tile(dk, &mut t.a1, nb).map_err(|c| pivot_err(nb, kk, c))?;
        store_lower(layout, data, mat, nb, kk, dk, &t.a1, nb);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::potrf;
    use crate::spd::{random_spd, SpdKind};
    use crate::verify::max_lower_diff;
    use ibcf_layout::{scatter_matrix, Canonical, Chunked, Interleaved, Layout, LayoutKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_against_reference(n: usize, nb: usize, looking: Looking, layout: Layout) {
        let mut rng = StdRng::seed_from_u64((n * 1000 + nb * 10) as u64);
        let a = random_spd::<f64>(n, SpdKind::Wishart, &mut rng);
        let mut reference = a.clone().into_vec();
        potrf(n, &mut reference).unwrap();

        let mut data = vec![0.0f64; layout.len()];
        let mat = layout.batch() - 1;
        scatter_matrix(&layout, &mut data, mat, a.as_slice(), n);
        potrf_blocked(&layout, &mut data, mat, nb, looking).unwrap();

        let mut out = vec![0.0f64; n * n];
        ibcf_layout::gather_matrix(&layout, &data, mat, &mut out, n);
        let diff = max_lower_diff(n, &out, &reference, n);
        assert!(
            diff < 1e-9,
            "n={n} nb={nb} {looking:?} {:?}: diff {diff}",
            layout.kind()
        );
    }

    #[test]
    fn all_lookings_match_reference_divisible() {
        for looking in Looking::ALL {
            for (n, nb) in [(4, 2), (8, 4), (12, 3), (16, 8), (24, 4)] {
                check_against_reference(
                    n,
                    nb,
                    looking,
                    Layout::build(LayoutKind::Canonical, n, 3, 32),
                );
            }
        }
    }

    #[test]
    fn all_lookings_match_reference_ragged() {
        for looking in Looking::ALL {
            for (n, nb) in [(5, 2), (7, 3), (13, 4), (23, 8), (9, 5), (11, 8)] {
                check_against_reference(
                    n,
                    nb,
                    looking,
                    Layout::build(LayoutKind::Canonical, n, 2, 32),
                );
            }
        }
    }

    #[test]
    fn works_on_interleaved_and_chunked_layouts() {
        for looking in Looking::ALL {
            let n = 10;
            let nb = 3;
            check_against_reference(n, nb, looking, Layout::Interleaved(Interleaved::new(n, 40)));
            check_against_reference(n, nb, looking, Layout::Chunked(Chunked::new(n, 70, 32)));
        }
    }

    #[test]
    fn nb_larger_than_n_degenerates_to_single_tile() {
        check_against_reference(5, 8, Looking::Top, Layout::Canonical(Canonical::new(5, 1)));
        check_against_reference(
            3,
            8,
            Looking::Right,
            Layout::Canonical(Canonical::new(3, 1)),
        );
    }

    #[test]
    fn nb_one_is_unblocked() {
        for looking in Looking::ALL {
            check_against_reference(6, 1, looking, Layout::Canonical(Canonical::new(6, 1)));
        }
    }

    #[test]
    fn reports_global_failing_column() {
        // SPD leading 4x4 block, then break positive-definiteness at col 5.
        let n = 6;
        let mut rng = StdRng::seed_from_u64(99);
        let a = random_spd::<f64>(n, SpdKind::DiagDominant, &mut rng);
        let mut bad = a.clone();
        bad[(5, 5)] = -1000.0;
        let layout = Canonical::new(n, 1);
        for looking in Looking::ALL {
            let mut data = vec![0.0f64; layout.len()];
            scatter_matrix(&layout, &mut data, 0, bad.as_slice(), n);
            let err = potrf_blocked(&layout, &mut data, 0, 2, looking).unwrap_err();
            assert_eq!(
                err,
                CholeskyError::NotPositiveDefinite { column: 5 },
                "{looking:?}"
            );
        }
    }

    #[test]
    fn lookings_agree_bitwise_is_not_required_but_close() {
        // Different evaluation orders round differently in f32; they must
        // agree to a few ulps of the result scale.
        let n = 17;
        let nb = 4;
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_spd::<f32>(n, SpdKind::Wishart, &mut rng);
        let layout = Canonical::new(n, 1);
        let mut results = Vec::new();
        for looking in Looking::ALL {
            let mut data = vec![0.0f32; layout.len()];
            scatter_matrix(&layout, &mut data, 0, a.as_slice(), n);
            potrf_blocked(&layout, &mut data, 0, nb, looking).unwrap();
            results.push(data);
        }
        let d01 = max_lower_diff(n, &results[0], &results[1], n);
        let d02 = max_lower_diff(n, &results[0], &results[2], n);
        assert!(d01 < 1e-3 && d02 < 1e-3, "d01={d01} d02={d02}");
    }
}
