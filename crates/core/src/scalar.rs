//! The [`Real`] scalar abstraction over `f32` and `f64`.

use std::fmt::{Debug, Display};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real floating-point scalar.
///
/// Every numerical routine in the workspace is generic over this trait so it
/// exists in both single precision (the paper's working precision) and
/// double precision (the verification oracle).
pub trait Real:
    Copy
    + PartialOrd
    + Debug
    + Display
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Machine epsilon for this precision.
    fn epsilon() -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Reciprocal `1 / self`.
    fn recip(self) -> Self;
    /// Fused (or contracted) multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Lossy conversion from `f64`.
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// `true` iff the value is neither NaN nor infinite.
    fn is_finite(self) -> bool;
    /// The larger of two values (NaN-propagating like `f64::max` is not
    /// required; used on finite data).
    fn maximum(self, other: Self) -> Self {
        if self > other {
            self
        } else {
            other
        }
    }
}

macro_rules! impl_real {
    ($t:ty) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;

            fn epsilon() -> Self {
                <$t>::EPSILON
            }
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            fn abs(self) -> Self {
                self.abs()
            }
            fn recip(self) -> Self {
                self.recip()
            }
            fn mul_add(self, a: Self, b: Self) -> Self {
                self.mul_add(a, b)
            }
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            fn to_f64(self) -> f64 {
                self as f64
            }
            fn is_finite(self) -> bool {
                self.is_finite()
            }
        }
    };
}

impl_real!(f32);
impl_real!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_smoke<T: Real>() {
        assert_eq!(T::ZERO + T::ONE, T::ONE);
        assert!(T::ONE.sqrt().to_f64() - 1.0 == 0.0);
        assert!((T::from_f64(4.0).sqrt().to_f64() - 2.0).abs() < 1e-6);
        assert!((T::from_f64(2.0).recip().to_f64() - 0.5).abs() < 1e-6);
        let fma = T::from_f64(3.0).mul_add(T::from_f64(4.0), T::from_f64(5.0));
        assert!((fma.to_f64() - 17.0).abs() < 1e-6);
        assert!(T::ONE.is_finite());
        assert!(!(T::ONE / T::ZERO).is_finite());
        assert_eq!(T::ONE.maximum(T::ZERO), T::ONE);
        assert_eq!(T::ZERO.maximum(T::ONE), T::ONE);
    }

    #[test]
    fn f32_impl() {
        generic_smoke::<f32>();
        assert_eq!(f32::epsilon(), f32::EPSILON);
    }

    #[test]
    fn f64_impl() {
        generic_smoke::<f64>();
        assert_eq!(f64::epsilon(), f64::EPSILON);
    }
}
