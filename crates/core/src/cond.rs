//! Condition-number estimation from a Cholesky factor — the LAPACK
//! `potcon` companion every production Cholesky library ships, so users
//! can judge how much accuracy to expect from an f32 batch solve.
//!
//! Uses Hager–Higham 1-norm estimation: ‖A⁻¹‖₁ is estimated from a few
//! solves against the factor (no explicit inverse), and
//! `cond₁(A) ≈ ‖A‖₁ · ‖A⁻¹‖₁`.

use crate::scalar::Real;
use crate::solve::solve_cholesky;
use ibcf_layout::BatchLayout;

/// 1-norm of a symmetric matrix given by its lower triangle (column-major
/// `n × n`, leading dimension `lda`).
pub fn sym_one_norm<T: Real>(n: usize, a: &[T], lda: usize) -> f64 {
    let mut worst = 0.0f64;
    for j in 0..n {
        let mut col = 0.0f64;
        for i in 0..n {
            let (r, c) = if i >= j { (i, j) } else { (j, i) };
            col += a[r + c * lda].to_f64().abs();
        }
        worst = worst.max(col);
    }
    worst
}

/// Estimates `‖A⁻¹‖₁` from the Cholesky factor `l` (lower, column-major,
/// leading dimension `lda`) with the Hager power method on the dual
/// norm; at most `max_iter` iterations (2–5 suffice in practice).
pub fn inv_one_norm_estimate<T: Real>(n: usize, l: &[T], lda: usize, max_iter: usize) -> f64 {
    assert!(n > 0);
    // x = e / n.
    let mut x: Vec<T> = vec![T::from_f64(1.0 / n as f64); n];
    let mut best = 0.0f64;
    for _ in 0..max_iter.max(1) {
        // y = A⁻¹ x.
        solve_cholesky(n, l, lda, &mut x);
        let est: f64 = x.iter().map(|v| v.to_f64().abs()).sum();
        // ξ = sign(y); z = A⁻¹ ξ (A symmetric, so Aᵀ = A).
        let mut z: Vec<T> = x
            .iter()
            .map(|v| if v.to_f64() >= 0.0 { T::ONE } else { -T::ONE })
            .collect();
        solve_cholesky(n, l, lda, &mut z);
        // Pick the coordinate with the largest |z_j|.
        let (jmax, zmax) = z
            .iter()
            .enumerate()
            .map(|(j, v)| (j, v.to_f64().abs()))
            .fold((0, 0.0), |acc, cur| if cur.1 > acc.1 { cur } else { acc });
        if est >= best {
            best = est;
        }
        // Converged when the dual step stops growing the estimate.
        let xsum: f64 = x.iter().map(|v| v.to_f64().abs()).sum();
        if zmax <= xsum / n as f64 + 1e-30 {
            break;
        }
        // Restart from the sharpest unit vector.
        x = (0..n)
            .map(|j| if j == jmax { T::ONE } else { T::ZERO })
            .collect();
    }
    best
}

/// Estimated 1-norm condition number of the matrix whose factor is `l`
/// and whose (original) lower triangle is `a`.
pub fn cond_estimate<T: Real>(n: usize, a: &[T], l: &[T], lda: usize) -> f64 {
    sym_one_norm(n, a, lda) * inv_one_norm_estimate(n, l, lda, 5)
}

/// Per-matrix condition estimates for a factored batch: `orig` holds the
/// original matrices, `fact` the factors, both in `layout`.
pub fn batch_cond_estimate<T: Real, L: BatchLayout>(
    layout: &L,
    orig: &[T],
    fact: &[T],
) -> Vec<f64> {
    let n = layout.n();
    let mut a = vec![T::ZERO; n * n];
    let mut l = vec![T::ZERO; n * n];
    (0..layout.batch())
        .map(|mat| {
            ibcf_layout::gather_matrix(layout, orig, mat, &mut a, n);
            ibcf_layout::gather_matrix(layout, fact, mat, &mut l, n);
            cond_estimate(n, &a, &l, n)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::potrf;
    use crate::spd::{random_spd, SpdKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_has_condition_one() {
        let n = 8;
        let eye: Vec<f64> = (0..n * n)
            .map(|i| if i % (n + 1) == 0 { 1.0 } else { 0.0 })
            .collect();
        let mut l = eye.clone();
        potrf(n, &mut l).unwrap();
        let c = cond_estimate(n, &eye, &l, n);
        assert!((c - 1.0).abs() < 1e-12, "cond(I) = {c}");
    }

    #[test]
    fn diagonal_condition_is_exact() {
        // diag(1, 10, 100): cond_1 = 100.
        let n = 3;
        let mut a = vec![0.0f64; 9];
        a[0] = 1.0;
        a[4] = 10.0;
        a[8] = 100.0;
        let mut l = a.clone();
        potrf(n, &mut l).unwrap();
        let c = cond_estimate(n, &a, &l, n);
        assert!((c - 100.0).abs() < 1e-9, "cond = {c}");
    }

    #[test]
    fn tracks_planted_condition_number() {
        let mut rng = StdRng::seed_from_u64(31);
        for target in [1e2f64, 1e4, 1e6] {
            let n = 12;
            let a = random_spd::<f64>(n, SpdKind::Conditioned(target), &mut rng);
            let mut l = a.clone().into_vec();
            potrf(n, &mut l).unwrap();
            let c = cond_estimate(n, a.as_slice(), &l, n);
            // The planted value is a 2-norm condition number; the 1-norm
            // estimate agrees within a factor of ~n.
            assert!(
                c > target / 15.0 && c < target * 15.0,
                "target {target:.0e}: estimate {c:.3e}"
            );
        }
    }

    #[test]
    fn estimate_never_exceeds_reality_by_construction() {
        // Hager's method is a lower bound on ‖A⁻¹‖₁; against the explicit
        // inverse of a small matrix it must be <= the true norm (within
        // rounding).
        let n = 4;
        let mut rng = StdRng::seed_from_u64(9);
        let a = random_spd::<f64>(n, SpdKind::Wishart, &mut rng);
        let mut l = a.clone().into_vec();
        potrf(n, &mut l).unwrap();
        // True ‖A⁻¹‖₁ by solving for each basis vector.
        let mut true_norm = 0.0f64;
        for j in 0..n {
            let mut e = vec![0.0f64; n];
            e[j] = 1.0;
            solve_cholesky(n, &l, n, &mut e);
            true_norm = true_norm.max(e.iter().map(|v| v.abs()).sum());
        }
        let est = inv_one_norm_estimate(n, &l, n, 5);
        assert!(
            est <= true_norm * (1.0 + 1e-10),
            "est {est} > true {true_norm}"
        );
        assert!(
            est >= 0.3 * true_norm,
            "est {est} far below true {true_norm}"
        );
    }

    #[test]
    fn batch_estimates_cover_every_matrix() {
        use crate::host_batch::factorize_batch;
        use crate::spd::fill_batch_spd;
        use ibcf_layout::Chunked;
        let n = 6;
        let batch = 40;
        let layout = Chunked::new(n, batch, 32);
        let mut data = vec![0.0f64; layout.len()];
        fill_batch_spd(&layout, &mut data, SpdKind::Wishart, 3);
        let orig = data.clone();
        assert!(factorize_batch(&layout, &mut data).all_ok());
        let conds = batch_cond_estimate(&layout, &orig, &data);
        assert_eq!(conds.len(), batch);
        assert!(conds.iter().all(|&c| (1.0..1e4).contains(&c)), "{conds:?}");
    }
}
