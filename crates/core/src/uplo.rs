//! Upper-triangular factorization support.
//!
//! The paper's kernels handle lower-triangular matrices and note that
//! "upper triangular matrices can be supported in the same manner". This
//! module supplies the upper-triangular host routines: `A = Uᵀ·U` with
//! `U` upper triangular, plus the matching solves — so a caller whose
//! data convention is upper (e.g. ported LAPACK `'U'` code) can use the
//! library directly.

use crate::error::CholeskyError;
use crate::scalar::Real;
use serde::{Deserialize, Serialize};

/// Which triangle a routine reads/writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Uplo {
    /// Lower triangle: `A = L·Lᵀ`.
    Lower,
    /// Upper triangle: `A = Uᵀ·U`.
    Upper,
}

impl Uplo {
    /// Both triangles.
    pub const ALL: [Uplo; 2] = [Uplo::Lower, Uplo::Upper];

    /// LAPACK-style character code.
    pub fn lapack_char(self) -> char {
        match self {
            Uplo::Lower => 'L',
            Uplo::Upper => 'U',
        }
    }
}

/// Unblocked upper Cholesky: factorizes the upper triangle of a
/// column-major `n × n` matrix in place into `U` with `A = Uᵀ·U`,
/// leaving the strictly-lower triangle untouched (LAPACK `potf2('U')`).
pub fn potrf_unblocked_upper<T: Real>(
    n: usize,
    a: &mut [T],
    lda: usize,
) -> Result<(), CholeskyError> {
    assert!(lda >= n, "leading dimension must be >= n");
    for k in 0..n {
        let akk = a[k + k * lda];
        if !akk.is_finite() {
            return Err(CholeskyError::NonFinite { column: k });
        }
        if akk <= T::ZERO {
            return Err(CholeskyError::NotPositiveDefinite { column: k });
        }
        let pivot = akk.sqrt();
        a[k + k * lda] = pivot;
        let inv = pivot.recip();
        for j in k + 1..n {
            a[k + j * lda] *= inv;
        }
        for j in k + 1..n {
            let akj = a[k + j * lda];
            for i in k + 1..=j {
                let aki = a[k + i * lda];
                a[i + j * lda] -= aki * akj;
            }
        }
    }
    Ok(())
}

/// Factorizes the selected triangle in place: `L·Lᵀ` for
/// [`Uplo::Lower`], `Uᵀ·U` for [`Uplo::Upper`].
pub fn potrf_uplo<T: Real>(
    uplo: Uplo,
    n: usize,
    a: &mut [T],
    lda: usize,
) -> Result<(), CholeskyError> {
    match uplo {
        Uplo::Lower => crate::reference::potrf_unblocked(n, a, lda),
        Uplo::Upper => potrf_unblocked_upper(n, a, lda),
    }
}

/// Solves `A·x = b` in place given the factor of the selected triangle.
pub fn solve_cholesky_uplo<T: Real>(uplo: Uplo, n: usize, f: &[T], lda: usize, b: &mut [T]) {
    match uplo {
        Uplo::Lower => crate::solve::solve_cholesky(n, f, lda, b),
        Uplo::Upper => {
            // Uᵀ·y = b (forward over columns of U read as rows of Uᵀ).
            for i in 0..n {
                let mut acc = b[i];
                for k in 0..i {
                    acc -= f[k + i * lda] * b[k];
                }
                b[i] = acc / f[i + i * lda];
            }
            // U·x = y (backward).
            for i in (0..n).rev() {
                let mut acc = b[i];
                for k in i + 1..n {
                    acc -= f[i + k * lda] * b[k];
                }
                b[i] = acc / f[i + i * lda];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::ColMatrix;
    use crate::reference::potrf;
    use crate::spd::{random_spd, SpdKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn upper_factor_is_transpose_of_lower_factor() {
        let mut rng = StdRng::seed_from_u64(12);
        for n in [1usize, 2, 5, 11, 24] {
            let a = random_spd::<f64>(n, SpdKind::Wishart, &mut rng);
            let mut lower = a.clone().into_vec();
            potrf(n, &mut lower).unwrap();
            let mut upper = a.into_vec();
            potrf_unblocked_upper(n, &mut upper, n).unwrap();
            for c in 0..n {
                for r in c..n {
                    let l = lower[r + c * n];
                    let u = upper[c + r * n]; // U[c][r] = L[r][c]
                    assert!((l - u).abs() < 1e-10, "n={n} ({r},{c}): {l} vs {u}");
                }
            }
        }
    }

    #[test]
    fn upper_leaves_lower_triangle_untouched() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 6;
        let a = random_spd::<f64>(n, SpdKind::Wishart, &mut rng);
        let mut buf = a.into_vec();
        for c in 0..n {
            for r in c + 1..n {
                buf[r + c * n] = 333.25; // sentinel in the strict lower part
            }
        }
        potrf_unblocked_upper(n, &mut buf, n).unwrap();
        for c in 0..n {
            for r in c + 1..n {
                assert_eq!(buf[r + c * n], 333.25);
            }
        }
    }

    #[test]
    fn uplo_dispatch_and_solve_agree() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 9;
        let a = random_spd::<f64>(n, SpdKind::Wishart, &mut rng);
        // b = A · (1..=n).
        let x_true: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        let mut b0 = vec![0.0f64; n];
        for j in 0..n {
            for i in 0..n {
                b0[i] += a[(i, j)] * x_true[j];
            }
        }
        for uplo in Uplo::ALL {
            let mut f = a.clone().into_vec();
            potrf_uplo(uplo, n, &mut f, n).unwrap();
            let mut b = b0.clone();
            solve_cholesky_uplo(uplo, n, &f, n, &mut b);
            for i in 0..n {
                assert!(
                    (b[i] - x_true[i]).abs() < 1e-9,
                    "{uplo:?} x[{i}] = {}, want {}",
                    b[i],
                    x_true[i]
                );
            }
        }
    }

    #[test]
    fn upper_reconstruction() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 7;
        let a = random_spd::<f64>(n, SpdKind::DiagDominant, &mut rng);
        let mut u = a.clone().into_vec();
        potrf_unblocked_upper(n, &mut u, n).unwrap();
        // Rebuild Uᵀ·U and compare the upper triangle of A.
        let um = ColMatrix::from_fn(n, n, |r, c| if r <= c { u[r + c * n] } else { 0.0 });
        let utu = um.transpose().matmul(&um);
        for c in 0..n {
            for r in 0..=c {
                assert!((utu[(r, c)] - a[(r, c)]).abs() < 1e-10, "({r},{c})");
            }
        }
    }

    #[test]
    fn upper_detects_indefinite() {
        let mut a = vec![1.0f32, 2.0, 2.0, 1.0];
        assert_eq!(
            potrf_unblocked_upper(2, &mut a, 2),
            Err(CholeskyError::NotPositiveDefinite { column: 1 })
        );
    }

    #[test]
    fn lapack_chars() {
        assert_eq!(Uplo::Lower.lapack_char(), 'L');
        assert_eq!(Uplo::Upper.lapack_char(), 'U');
    }
}
