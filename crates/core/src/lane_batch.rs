//! Lane-vectorized batch Cholesky: the host-side analogue of the paper's
//! warp-coalesced interleaved kernels.
//!
//! On the GPU, the interleaved layouts make 32 consecutive matrices
//! occupy 32 consecutive addresses for any fixed element, so one warp
//! factorizes 32 matrices in lockstep with perfectly coalesced accesses.
//! The exact same property serves SIMD units on the host: a group of
//! `LANES` consecutive matrices forms contiguous `[T; LANES]` blocks per
//! element, so the unblocked Cholesky recurrence — run once per *group*
//! with every arithmetic operation lifted to a block — autovectorizes
//! into full-width SIMD with unit-stride loads. No gather, no scatter,
//! no per-matrix scratch: the factorization happens **in place** in the
//! batch buffer, which is why this engine is several times faster than
//! the gather/factor/scatter baseline in [`crate::host_batch`].
//!
//! Failure handling mirrors the SIMT model too: a non-SPD matrix cannot
//! branch out of the lockstep loop, so its lane is *masked* — the pivot
//! is substituted with `1` (branch-free select) and the lane keeps
//! computing garbage that never escapes. On completion, masked lanes are
//! restored bitwise from a pre-factorization snapshot of their lower
//! triangle, and reported exactly like
//! [`factorize_batch`](crate::host_batch::factorize_batch) reports
//! failures.
//!
//! Lane groups are independent, so groups are distributed over rayon
//! workers; each worker owns a disjoint set of `[T; LANES]` blocks of the
//! shared buffer (the layout address map is injective, property-tested in
//! `ibcf-layout`).

use crate::error::CholeskyError;
use crate::host_batch::{factorize_batch, BatchReport};
use crate::lane_simd::{Autovec, LaneBackend, LaneOps, SimdIsa};
use crate::scalar::Real;
use crate::sync_slice::SyncSlice;
use ibcf_layout::{alloc_batch, transcode_into, tri, BatchLayout, Chunked};
use rayon::prelude::*;
use std::any::TypeId;

/// Loop order of the lane-vectorized unblocked factorization — the
/// unblocked counterparts of [`crate::blocked::Looking`]'s right- and
/// left-looking tile orders. Both produce bitwise-identical factors (each
/// element sees the same operations in the same order); they differ in
/// how the group's working set moves through the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LaneOrder {
    /// Aggressive: after each pivot column, update the whole trailing
    /// submatrix (the order of [`crate::reference::potrf_unblocked`]).
    #[default]
    Right,
    /// Lazy: bring each column up to date with all previous columns just
    /// before factoring it (the LAPACK order).
    Left,
}

impl LaneOrder {
    /// Both orders, for sweeps.
    pub const ALL: [LaneOrder; 2] = [LaneOrder::Right, LaneOrder::Left];

    /// Short lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            LaneOrder::Right => "right",
            LaneOrder::Left => "left",
        }
    }
}

/// Number of matrices factorized in lockstep per lane group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LaneWidth {
    /// [`preferred_lanes`] for the element type: 16 for `f32`, 8 for
    /// `f64` (one 64-byte cache line per block either way).
    #[default]
    Auto,
    /// 8 matrices per group.
    W8,
    /// 16 matrices per group.
    W16,
    /// 32 matrices per group (a full warp, the GPU's granularity).
    W32,
}

impl LaneWidth {
    /// All concrete widths, for sweeps.
    pub const ALL: [LaneWidth; 3] = [LaneWidth::W8, LaneWidth::W16, LaneWidth::W32];

    /// The concrete lane count for element type `T`.
    pub fn lanes<T: Real>(self) -> usize {
        match self {
            LaneWidth::Auto => preferred_lanes::<T>(),
            LaneWidth::W8 => 8,
            LaneWidth::W16 => 16,
            LaneWidth::W32 => 32,
        }
    }
}

/// The default lane count for element type `T`: one 64-byte cache line
/// per `[T; LANES]` block (16 × f32 or 8 × f64), which benches fastest on
/// both AVX2 and AVX-512 class hardware.
pub fn preferred_lanes<T: Real>() -> usize {
    if std::mem::size_of::<T>() <= 4 {
        16
    } else {
        8
    }
}

/// The affine address structure of a lane-group-friendly layout:
/// `addr(m0 + l, i, j) = bases[m0 / lanes] + i·rs + j·cs + l` over the
/// lower triangle. Validated against the layout's `addr` map at build
/// time, then trusted by the hot loop.
struct LanePlan {
    rs: usize,
    cs: usize,
    bases: Vec<usize>,
}

/// Probes `layout` for the affine lane-group structure at `lanes`
/// matrices per group. Returns `None` when the layout cannot host
/// in-place lane vectorization (e.g. `Canonical`, whose lanes are a full
/// matrix apart).
fn lane_plan<L: BatchLayout>(layout: &L, lanes: usize) -> Option<LanePlan> {
    let n = layout.n();
    let padded = layout.padded_batch();
    if n == 0 || padded == 0 || !matches!(lanes, 8 | 16 | 32) {
        return None;
    }
    if layout.lane_stride() != 1 || !padded.is_multiple_of(lanes) {
        return None;
    }
    let base0 = layout.addr(0, 0, 0);
    let (rs, cs) = if n > 1 {
        (
            layout.addr(0, 1, 0).checked_sub(base0)?,
            layout.addr(0, 0, 1).checked_sub(base0)?,
        )
    } else {
        (0, 0)
    };
    let groups = padded / lanes;
    // Full lower-triangle validation on the first and last groups...
    for g in [0, groups - 1] {
        let m0 = g * lanes;
        let b = layout.addr(m0, 0, 0);
        for j in 0..n {
            for i in j..n {
                let expect = b + i * rs + j * cs;
                if layout.addr(m0, i, j) != expect
                    || layout.addr(m0 + lanes - 1, i, j) != expect + lanes - 1
                {
                    return None;
                }
            }
        }
    }
    // ...and corner probes on every group in between.
    let mut bases = Vec::with_capacity(groups);
    for g in 0..groups {
        let m0 = g * lanes;
        let b = layout.addr(m0, 0, 0);
        let far = b + (n - 1) * (rs + cs);
        if layout.addr(m0 + lanes - 1, 0, 0) != b + lanes - 1
            || layout.addr(m0, n - 1, n - 1) != far
            || layout.addr(m0 + lanes - 1, n - 1, n - 1) != far + lanes - 1
            || far + lanes > layout.len()
        {
            return None;
        }
        bases.push(b);
    }
    Some(LanePlan { rs, cs, bases })
}

/// `true` if `layout` supports in-place lane vectorization at `width`
/// for element type `T` — both interleaved families qualify; `Canonical`
/// does not (use [`factorize_batch_auto`], which packs it first).
pub fn lane_compatible<T: Real, L: BatchLayout>(layout: &L, width: LaneWidth) -> bool {
    lane_plan(layout, width.lanes::<T>()).is_some()
}

/// Reads the `[T; LANES]` block at `off` into a register-friendly array.
///
/// # Safety
/// See [`SyncSlice::block`].
#[inline(always)]
unsafe fn read_block<T: Real, const LANES: usize>(shared: &SyncSlice<T>, off: usize) -> [T; LANES] {
    let mut out = [T::ZERO; LANES];
    out.copy_from_slice(unsafe { shared.block(off, LANES) });
    out
}

/// The masked pivot step shared by both loop orders: classify each live
/// lane's diagonal element, fold failures into the mask, substitute a
/// harmless pivot of `1` for dead lanes (branch-free select), store the
/// square root, and return the reciprocal block for the column scale.
///
/// The classification and select stay scalar (cheap, once per column);
/// the sqrt/reciprocal block goes through the [`LaneOps`] backend, which
/// is required to be bitwise-identical to the scalar `sqrt`/`recip`.
///
/// # Safety
/// The caller must own the group's blocks (see [`factor_group`]) and, if
/// `O` is an intrinsic backend, guarantee its ISA is present (see
/// [`LaneOps`]).
#[inline(always)]
unsafe fn pivot_step<T: Real, O: LaneOps<T>, const LANES: usize>(
    shared: &SyncSlice<T>,
    off_kk: usize,
    k: usize,
    alive: &mut [bool; LANES],
    fail: &mut [Option<CholeskyError>; LANES],
) -> [T; LANES] {
    let akk: [T; LANES] = unsafe { read_block(shared, off_kk) };
    let mut ok = [false; LANES];
    for l in 0..LANES {
        ok[l] = alive[l] && akk[l] > T::ZERO && akk[l].is_finite();
    }
    if ok != *alive {
        // Rare slow path: a lane just died — record the failing column.
        for l in 0..LANES {
            if alive[l] && !ok[l] {
                fail[l] = Some(if akk[l].is_finite() {
                    CholeskyError::NotPositiveDefinite { column: k }
                } else {
                    CholeskyError::NonFinite { column: k }
                });
            }
        }
        *alive = ok;
    }
    let mut piv = [T::ONE; LANES];
    for l in 0..LANES {
        if alive[l] {
            piv[l] = akk[l];
        }
    }
    let mut root = [T::ZERO; LANES];
    let mut inv = [T::ZERO; LANES];
    unsafe { O::sqrt_recip(&piv, &mut root, &mut inv) };
    unsafe { shared.block_mut(off_kk, LANES) }.copy_from_slice(&root);
    inv
}

/// Factorizes one lane group of `LANES` matrices in place. Lane `l` owns
/// matrix `first_mat + l`; lanes `>= live` are padding slots, seeded with
/// identity matrices (which factorize exactly to themselves, so the tail
/// group runs at full width with no dead-lane masking and no arithmetic
/// on garbage data — NaN or denormal residue in padding slots would
/// otherwise drag the whole group through slow FP paths), restored
/// bitwise on completion, and never reported. Returns the failures of
/// live lanes, in lane order.
///
/// The per-element operation sequence (and therefore the rounding) is
/// identical to [`crate::reference::potrf_unblocked`] for both orders, so
/// results match the scalar oracle **bitwise**.
///
/// # Safety
/// The group's blocks (`base + i·rs + j·cs .. + LANES` for every lower
/// `(i, j)`) must be in bounds and not concurrently accessed by any other
/// thread. If `O` is an intrinsic backend its ISA must be present (see
/// [`LaneOps`]).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
unsafe fn factor_group_ops<T: Real, O: LaneOps<T>, const LANES: usize>(
    n: usize,
    shared: &SyncSlice<T>,
    base: usize,
    rs: usize,
    cs: usize,
    order: LaneOrder,
    first_mat: usize,
    live: usize,
    snap: &mut [T],
) -> Vec<(usize, CholeskyError)> {
    let off = |i: usize, j: usize| base + i * rs + j * cs;
    // Snapshot the lower triangle so masked lanes can be restored bitwise.
    debug_assert!(snap.len() >= tri(n) * LANES);
    let mut idx = 0;
    for j in 0..n {
        for i in j..n {
            let block = unsafe { shared.block_mut(off(i, j), LANES) };
            snap[idx..idx + LANES].copy_from_slice(block);
            // Identity-pad the tail: padding lanes factor I = I·Iᵀ.
            if live < LANES {
                let fill = if i == j { T::ONE } else { T::ZERO };
                for x in &mut block[live..] {
                    *x = fill;
                }
            }
            idx += LANES;
        }
    }
    let mut alive = [true; LANES];
    let mut fail: [Option<CholeskyError>; LANES] = [None; LANES];
    match order {
        LaneOrder::Right => {
            for k in 0..n {
                let inv = unsafe {
                    pivot_step::<T, O, LANES>(shared, off(k, k), k, &mut alive, &mut fail)
                };
                for m in k + 1..n {
                    let amk = unsafe { shared.block_mut(off(m, k), LANES) };
                    unsafe { O::scale(amk, &inv) };
                }
                for j in k + 1..n {
                    let ajk: [T; LANES] = unsafe { read_block(shared, off(j, k)) };
                    for m in j..n {
                        let amk: [T; LANES] = unsafe { read_block(shared, off(m, k)) };
                        let amj = unsafe { shared.block_mut(off(m, j), LANES) };
                        unsafe { O::mulsub(amj, &amk, &ajk) };
                    }
                }
            }
        }
        LaneOrder::Left => {
            for j in 0..n {
                for k in 0..j {
                    let ajk: [T; LANES] = unsafe { read_block(shared, off(j, k)) };
                    for i in j..n {
                        let aik: [T; LANES] = unsafe { read_block(shared, off(i, k)) };
                        let aij = unsafe { shared.block_mut(off(i, j), LANES) };
                        unsafe { O::mulsub(aij, &aik, &ajk) };
                    }
                }
                let inv = unsafe {
                    pivot_step::<T, O, LANES>(shared, off(j, j), j, &mut alive, &mut fail)
                };
                for i in j + 1..n {
                    let aij = unsafe { shared.block_mut(off(i, j), LANES) };
                    unsafe { O::scale(aij, &inv) };
                }
            }
        }
    }
    let mut out = Vec::new();
    if alive.iter().any(|&a| !a) || live < LANES {
        // Restore every failed lane and every padding slot bitwise from
        // the snapshot — padding never escapes, failures report untouched.
        let mut idx = 0;
        for j in 0..n {
            for i in j..n {
                let block = unsafe { shared.block_mut(off(i, j), LANES) };
                for l in 0..LANES {
                    if !alive[l] || l >= live {
                        block[l] = snap[idx + l];
                    }
                }
                idx += LANES;
            }
        }
        for (l, f) in fail.iter().enumerate().take(live) {
            if let Some(e) = f {
                out.push((first_mat + l, *e));
            }
        }
    }
    out
}

/// Monomorphic `#[target_feature]` shells around [`factor_group_ops`].
///
/// Intrinsics only inline into callers whose target-feature set is a
/// superset of their own, so the generic `#[inline(always)]` kernel body
/// is instantiated *inside* one wrapper per (ISA, element type); the
/// whole group factorization then compiles as a single AVX2/AVX-512
/// function with every block primitive inlined.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod isa_kernels {
    use super::*;
    use crate::lane_simd::x86::{Avx2, Avx512};

    macro_rules! isa_wrapper {
        ($name:ident, $ty:ty, $ops:ty, $feat:literal) => {
            /// # Safety
            /// Same contract as [`factor_group_ops`]; additionally the
            /// CPU must support the wrapper's target features.
            #[allow(clippy::too_many_arguments)]
            #[target_feature(enable = $feat)]
            pub(super) unsafe fn $name<const LANES: usize>(
                n: usize,
                shared: &SyncSlice<$ty>,
                base: usize,
                rs: usize,
                cs: usize,
                order: LaneOrder,
                first_mat: usize,
                live: usize,
                snap: &mut [$ty],
            ) -> Vec<(usize, CholeskyError)> {
                unsafe {
                    factor_group_ops::<$ty, $ops, LANES>(
                        n, shared, base, rs, cs, order, first_mat, live, snap,
                    )
                }
            }
        };
    }

    isa_wrapper!(avx2_f32, f32, Avx2, "avx2");
    isa_wrapper!(avx2_f64, f64, Avx2, "avx2");
    isa_wrapper!(avx512_f32, f32, Avx512, "avx512f,avx512vl");
    isa_wrapper!(avx512_f64, f64, Avx512, "avx512f,avx512vl");
}

/// Routes one group to the kernel for `isa`, falling back to the
/// autovectorized body for element types without an intrinsic kernel.
///
/// The public API is generic over `T: Real` but the intrinsic kernels are
/// monomorphic, so the bridge is a `TypeId` check plus a same-type
/// pointer cast (sound: the branch is only taken when `T` *is* the
/// concrete type, and `Real: 'static` makes the check exact).
///
/// # Safety
/// Same contract as [`factor_group_ops`]; `isa` must have been obtained
/// from [`crate::lane_simd::detect_isa`]-guarded resolution so the ISA is
/// actually present.
#[allow(clippy::too_many_arguments)]
unsafe fn dispatch_group<T: Real, const LANES: usize>(
    isa: SimdIsa,
    n: usize,
    shared: &SyncSlice<T>,
    base: usize,
    rs: usize,
    cs: usize,
    order: LaneOrder,
    first_mat: usize,
    live: usize,
    snap: &mut [T],
) -> Vec<(usize, CholeskyError)> {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if isa != SimdIsa::Fallback {
        if TypeId::of::<T>() == TypeId::of::<f32>() {
            let shared = unsafe { &*(shared as *const SyncSlice<T> as *const SyncSlice<f32>) };
            let snap = unsafe { &mut *(snap as *mut [T] as *mut [f32]) };
            return match isa {
                SimdIsa::Avx512 => unsafe {
                    isa_kernels::avx512_f32::<LANES>(
                        n, shared, base, rs, cs, order, first_mat, live, snap,
                    )
                },
                _ => unsafe {
                    isa_kernels::avx2_f32::<LANES>(
                        n, shared, base, rs, cs, order, first_mat, live, snap,
                    )
                },
            };
        }
        if TypeId::of::<T>() == TypeId::of::<f64>() {
            let shared = unsafe { &*(shared as *const SyncSlice<T> as *const SyncSlice<f64>) };
            let snap = unsafe { &mut *(snap as *mut [T] as *mut [f64]) };
            return match isa {
                SimdIsa::Avx512 => unsafe {
                    isa_kernels::avx512_f64::<LANES>(
                        n, shared, base, rs, cs, order, first_mat, live, snap,
                    )
                },
                _ => unsafe {
                    isa_kernels::avx2_f64::<LANES>(
                        n, shared, base, rs, cs, order, first_mat, live, snap,
                    )
                },
            };
        }
    }
    let _ = isa;
    unsafe {
        factor_group_ops::<T, Autovec, LANES>(n, shared, base, rs, cs, order, first_mat, live, snap)
    }
}

fn run_groups<T: Real, L: BatchLayout + Sync, const LANES: usize>(
    layout: &L,
    data: &mut [T],
    plan: &LanePlan,
    order: LaneOrder,
    isa: SimdIsa,
) -> BatchReport {
    let n = layout.n();
    let batch = layout.batch();
    assert!(data.len() >= layout.len(), "batch buffer too short");
    // Groups made only of padding slots need no work at all.
    let live_groups = batch.div_ceil(LANES);
    let tri_len = tri(n) * LANES;
    let shared = SyncSlice::new(data);
    let nested: Vec<Vec<(usize, CholeskyError)>> = (0..live_groups)
        .into_par_iter()
        .filter_map(|g| {
            let first = g * LANES;
            let live = LANES.min(batch - first);
            let mut snap = vec![T::ZERO; tri_len];
            // SAFETY: the plan validated that group `g` owns the blocks
            // `bases[g] + i·rs + j·cs .. + LANES` in bounds; the layout
            // address map is injective, so groups are pairwise disjoint,
            // and each group is processed by exactly one worker. `isa`
            // comes from detect_isa-guarded resolution.
            let fails = unsafe {
                dispatch_group::<T, LANES>(
                    isa,
                    n,
                    &shared,
                    plan.bases[g],
                    plan.rs,
                    plan.cs,
                    order,
                    first,
                    live,
                    &mut snap,
                )
            };
            if fails.is_empty() {
                None
            } else {
                Some(fails)
            }
        })
        .collect();
    let mut failures: Vec<(usize, CholeskyError)> = nested.into_iter().flatten().collect();
    failures.sort_by_key(|&(mat, _)| mat);
    BatchReport { failures }
}

/// Factorizes every live matrix of the batch **in place** with the
/// lane-vectorized engine (right-looking order, [`preferred_lanes`]
/// width), in parallel over lane groups.
///
/// Requires an interleaved-family layout; on layouts without the lane
/// property (e.g. `Canonical`) it falls back to the gather/scatter
/// [`factorize_batch`] so the call always succeeds. Use
/// [`factorize_batch_auto`] to route canonical batches through the pack
/// path instead.
///
/// Failed (non-SPD / non-finite) matrices are reported with their
/// original data restored, exactly like [`factorize_batch`].
pub fn factorize_batch_lanes<T: Real, L: BatchLayout + Sync>(
    layout: &L,
    data: &mut [T],
) -> BatchReport {
    factorize_batch_lanes_with(layout, data, LaneOrder::default(), LaneWidth::Auto)
}

/// [`factorize_batch_lanes`] with an explicit loop order and lane width.
/// Uses the [`LaneBackend::Auto`] engine (SIMD where detected).
pub fn factorize_batch_lanes_with<T: Real, L: BatchLayout + Sync>(
    layout: &L,
    data: &mut [T],
    order: LaneOrder,
    width: LaneWidth,
) -> BatchReport {
    factorize_batch_lanes_backend(layout, data, order, width, LaneBackend::Auto)
}

/// [`factorize_batch_lanes_with`] with an explicit [`LaneBackend`]: force
/// the autovectorized path, force SIMD resolution, or let detection pick.
/// Every backend produces bitwise-identical results — the choice only
/// affects speed.
pub fn factorize_batch_lanes_backend<T: Real, L: BatchLayout + Sync>(
    layout: &L,
    data: &mut [T],
    order: LaneOrder,
    width: LaneWidth,
    backend: LaneBackend,
) -> BatchReport {
    let lanes = width.lanes::<T>();
    let Some(plan) = lane_plan(layout, lanes) else {
        return factorize_batch(layout, data);
    };
    let isa = backend.resolve();
    match lanes {
        8 => run_groups::<T, L, 8>(layout, data, &plan, order, isa),
        16 => run_groups::<T, L, 16>(layout, data, &plan, order, isa),
        32 => run_groups::<T, L, 32>(layout, data, &plan, order, isa),
        _ => unreachable!("lane_plan only accepts 8/16/32"),
    }
}

/// Factorizes any layout through the fastest available host path:
/// interleaved-family layouts run the lane engine in place; other layouts
/// (canonical) are **packed** into an aligned chunk-interleaved scratch
/// (the host mirror of the device pack kernel in `ibcf-kernels`),
/// lane-factorized there, and unpacked back. Failure semantics are
/// unchanged: failed matrices come back bitwise-untouched.
pub fn factorize_batch_auto<T: Real, L: BatchLayout + Sync>(
    layout: &L,
    data: &mut [T],
) -> BatchReport {
    factorize_batch_auto_with(layout, data, LaneOrder::default(), LaneWidth::Auto)
}

/// [`factorize_batch_auto`] with an explicit loop order and lane width.
/// Uses the [`LaneBackend::Auto`] engine (SIMD where detected).
pub fn factorize_batch_auto_with<T: Real, L: BatchLayout + Sync>(
    layout: &L,
    data: &mut [T],
    order: LaneOrder,
    width: LaneWidth,
) -> BatchReport {
    factorize_batch_auto_backend(layout, data, order, width, LaneBackend::Auto)
}

/// [`factorize_batch_auto_with`] with an explicit [`LaneBackend`].
pub fn factorize_batch_auto_backend<T: Real, L: BatchLayout + Sync>(
    layout: &L,
    data: &mut [T],
    order: LaneOrder,
    width: LaneWidth,
    backend: LaneBackend,
) -> BatchReport {
    let lanes = width.lanes::<T>();
    if lane_plan(layout, lanes).is_some() {
        return factorize_batch_lanes_backend(layout, data, order, width, backend);
    }
    // Pack path: chunk 64 is a multiple of every lane width and keeps a
    // group's working set within one contiguous chunk window.
    let scratch_layout = Chunked::new(layout.n(), layout.batch(), 64);
    let mut scratch = alloc_batch::<T, _>(&scratch_layout);
    transcode_into(layout, data, &scratch_layout, &mut scratch);
    let report =
        factorize_batch_lanes_backend(&scratch_layout, &mut scratch, order, width, backend);
    transcode_into(&scratch_layout, &scratch, layout, data);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host_batch::factorize_batch_seq;
    use crate::spd::{fill_batch_spd, SpdKind};
    use ibcf_layout::{scatter_matrix, Canonical, Interleaved, Layout};

    fn lane_layouts(n: usize, batch: usize) -> Vec<Layout> {
        vec![
            Layout::Interleaved(Interleaved::new(n, batch)),
            Layout::Chunked(Chunked::new(n, batch, 32)),
            Layout::Chunked(Chunked::new(n, batch, 64)),
        ]
    }

    fn check_matches_seq<T: Real>(n: usize, batch: usize, order: LaneOrder, width: LaneWidth) {
        for layout in lane_layouts(n, batch) {
            let mut a: Vec<T> = vec![T::ZERO; layout.len()];
            fill_batch_spd(&layout, &mut a, SpdKind::Wishart, 11);
            let mut b = a.clone();
            let r_seq = factorize_batch_seq(&layout, &mut a);
            let r_lane = factorize_batch_lanes_with(&layout, &mut b, order, width);
            assert!(r_seq.all_ok() && r_lane.all_ok());
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                assert!(
                    x.to_f64() == y.to_f64() || (x.to_f64().is_nan() && y.to_f64().is_nan()),
                    "{:?} {order:?} {width:?} elem {i}: {x} vs {y}",
                    layout.kind()
                );
            }
        }
    }

    #[test]
    fn lane_engine_matches_sequential_oracle_bitwise_f32() {
        for order in LaneOrder::ALL {
            for width in LaneWidth::ALL {
                check_matches_seq::<f32>(9, 100, order, width);
            }
        }
        check_matches_seq::<f32>(1, 40, LaneOrder::Right, LaneWidth::Auto);
        check_matches_seq::<f32>(16, 64, LaneOrder::Left, LaneWidth::Auto);
    }

    #[test]
    fn lane_engine_matches_sequential_oracle_bitwise_f64() {
        for order in LaneOrder::ALL {
            check_matches_seq::<f64>(12, 70, order, LaneWidth::Auto);
        }
        check_matches_seq::<f64>(5, 33, LaneOrder::Right, LaneWidth::W32);
    }

    #[test]
    fn failed_matrix_is_isolated_restored_and_reported() {
        let n = 6;
        let batch = 100;
        for layout in lane_layouts(n, batch) {
            for bad in [0usize, 17, 31, 32, 63, 99] {
                let mut data = vec![0.0f32; layout.len()];
                fill_batch_spd(&layout, &mut data, SpdKind::Wishart, 3);
                // Plant an indefinite matrix: -I fails at column 0.
                let neg_eye: Vec<f32> = (0..n * n)
                    .map(|i| if i % (n + 1) == 0 { -1.0 } else { 0.0 })
                    .collect();
                scatter_matrix(&layout, &mut data, bad, &neg_eye, n);
                let mut expect = data.clone();
                let r_seq = factorize_batch_seq(&layout, &mut expect);
                let report = factorize_batch_lanes(&layout, &mut data);
                assert_eq!(report.failures, r_seq.failures, "bad={bad}");
                assert_eq!(report.failures.len(), 1);
                assert_eq!(
                    report.failures[0],
                    (bad, CholeskyError::NotPositiveDefinite { column: 0 })
                );
                // Whole buffer identical to the oracle: neighbors factored,
                // the failed matrix restored bitwise.
                assert_eq!(data, expect, "{:?} bad={bad}", layout.kind());
            }
        }
    }

    #[test]
    fn non_finite_matrix_reports_nonfinite() {
        let n = 4;
        let layout = Interleaved::new(n, 40);
        let mut data = vec![0.0f32; layout.len()];
        fill_batch_spd(&layout, &mut data, SpdKind::Wishart, 5);
        let mut bad = vec![0.0f32; n * n];
        bad[0] = f32::NAN;
        scatter_matrix(&layout, &mut data, 7, &bad, n);
        let report = factorize_batch_lanes(&layout, &mut data);
        assert_eq!(
            report.failures,
            vec![(7, CholeskyError::NonFinite { column: 0 })]
        );
    }

    #[test]
    fn canonical_falls_back_and_auto_packs() {
        let n = 8;
        let batch = 50;
        let layout = Canonical::new(n, batch);
        assert!(!lane_compatible::<f32, _>(&layout, LaneWidth::Auto));
        let mut a = vec![0.0f32; layout.len()];
        fill_batch_spd(&layout, &mut a, SpdKind::Wishart, 2);
        let mut b = a.clone();
        let mut c = a.clone();
        let r1 = factorize_batch_seq(&layout, &mut a);
        let r2 = factorize_batch_lanes(&layout, &mut b); // gather fallback
        let r3 = factorize_batch_auto(&layout, &mut c); // pack path
        assert!(r1.all_ok() && r2.all_ok() && r3.all_ok());
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn auto_pack_path_preserves_failed_matrices() {
        let n = 5;
        let batch = 20;
        let layout = Canonical::new(n, batch);
        let mut data = vec![0.0f32; layout.len()];
        fill_batch_spd(&layout, &mut data, SpdKind::Wishart, 8);
        let neg_eye: Vec<f32> = (0..n * n)
            .map(|i| if i % (n + 1) == 0 { -2.0 } else { 0.0 })
            .collect();
        scatter_matrix(&layout, &mut data, 13, &neg_eye, n);
        let before = data.clone();
        let report = factorize_batch_auto(&layout, &mut data);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].0, 13);
        let mut got = vec![0.0f32; n * n];
        let mut want = vec![0.0f32; n * n];
        ibcf_layout::gather_matrix(&layout, &data, 13, &mut got, n);
        ibcf_layout::gather_matrix(&layout, &before, 13, &mut want, n);
        assert_eq!(got, want);
    }

    #[test]
    fn interleaved_and_chunked_are_lane_compatible() {
        for layout in lane_layouts(7, 200) {
            for width in LaneWidth::ALL {
                assert!(
                    lane_compatible::<f32, _>(&layout, width),
                    "{:?} {width:?}",
                    layout.kind()
                );
            }
        }
    }

    #[test]
    fn preferred_lane_widths_per_type() {
        assert_eq!(preferred_lanes::<f32>(), 16);
        assert_eq!(preferred_lanes::<f64>(), 8);
        assert_eq!(LaneWidth::Auto.lanes::<f32>(), 16);
        assert_eq!(LaneWidth::W32.lanes::<f64>(), 32);
    }

    #[test]
    fn tail_group_pads_with_identity_at_lanes_plus_one() {
        // batch = LANES + 1: the final group holds exactly one live matrix
        // and LANES - 1 padding slots. The tail must still run the lane
        // engine (no scalar fallback), stay bitwise-exact, report a
        // planted failure on the lone tail matrix (and never a padding
        // index), and leave padding slots bitwise untouched — even when
        // they hold NaN garbage, which must not poison the live lane.
        let n = 7;
        for width in LaneWidth::ALL {
            let lanes = width.lanes::<f32>();
            let batch = lanes + 1;
            for layout in lane_layouts(n, batch) {
                assert!(lane_compatible::<f32, _>(&layout, width));
                let mut data = vec![0.0f32; layout.len()];
                fill_batch_spd(&layout, &mut data, SpdKind::Wishart, 21);
                // Poison every padding slot with NaN garbage.
                let nan = vec![f32::NAN; n * n];
                for pad in batch..layout.padded_batch() {
                    scatter_matrix(&layout, &mut data, pad, &nan, n);
                }
                // Plant a failure on the tail group's only live matrix.
                let neg_eye: Vec<f32> = (0..n * n)
                    .map(|i| if i % (n + 1) == 0 { -1.0 } else { 0.0 })
                    .collect();
                scatter_matrix(&layout, &mut data, lanes, &neg_eye, n);
                let mut expect = data.clone();
                let r_seq = factorize_batch_seq(&layout, &mut expect);
                let report =
                    factorize_batch_lanes_with(&layout, &mut data, LaneOrder::Right, width);
                assert_eq!(
                    report.failures,
                    r_seq.failures,
                    "{:?} lanes={lanes}",
                    layout.kind()
                );
                assert_eq!(
                    report.failures,
                    vec![(lanes, CholeskyError::NotPositiveDefinite { column: 0 })]
                );
                assert!(report.failures.iter().all(|&(m, _)| m < batch));
                // Bitwise comparison (NaN-safe): live matrices match the
                // oracle, padding slots keep their exact NaN payloads.
                for (i, (x, y)) in data.iter().zip(&expect).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{:?} lanes={lanes} elem {i}: {x} vs {y}",
                        layout.kind()
                    );
                }
            }
        }
    }

    #[test]
    fn simd_backend_matches_autovec_and_oracle_bitwise() {
        // Whatever ISA detection resolves to on this machine, the forced
        // autovec path, the auto path, and the scalar oracle must agree
        // bitwise — including a planted non-SPD matrix that must be
        // restored identically by all three.
        let n = 10;
        for width in LaneWidth::ALL {
            let lanes = width.lanes::<f32>();
            let batch = 3 * lanes + 5;
            for layout in lane_layouts(n, batch) {
                for order in LaneOrder::ALL {
                    let mut seq = vec![0.0f32; layout.len()];
                    fill_batch_spd(&layout, &mut seq, SpdKind::Wishart, 77);
                    let neg_eye: Vec<f32> = (0..n * n)
                        .map(|i| if i % (n + 1) == 0 { -1.0 } else { 0.0 })
                        .collect();
                    scatter_matrix(&layout, &mut seq, lanes + 1, &neg_eye, n);
                    let mut autovec = seq.clone();
                    let mut simd = seq.clone();
                    let r_seq = factorize_batch_seq(&layout, &mut seq);
                    let r_autovec = factorize_batch_lanes_backend(
                        &layout,
                        &mut autovec,
                        order,
                        width,
                        LaneBackend::Autovec,
                    );
                    let r_simd = factorize_batch_lanes_backend(
                        &layout,
                        &mut simd,
                        order,
                        width,
                        LaneBackend::Simd,
                    );
                    assert_eq!(r_seq.failures, r_autovec.failures);
                    assert_eq!(r_seq.failures, r_simd.failures);
                    for (i, ((x, y), z)) in seq.iter().zip(&autovec).zip(&simd).enumerate() {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "autovec {:?} {order:?} lanes={lanes} elem {i}",
                            layout.kind()
                        );
                        assert_eq!(
                            x.to_bits(),
                            z.to_bits(),
                            "simd {:?} {order:?} lanes={lanes} elem {i}",
                            layout.kind()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn simd_backend_matches_oracle_bitwise_f64() {
        let n = 9;
        let layout = Interleaved::new(n, 45);
        let mut seq = vec![0.0f64; layout.len()];
        fill_batch_spd(&layout, &mut seq, SpdKind::Wishart, 13);
        let mut simd = seq.clone();
        let r_seq = factorize_batch_seq(&layout, &mut seq);
        let r_simd = factorize_batch_lanes_backend(
            &layout,
            &mut simd,
            LaneOrder::Right,
            LaneWidth::Auto,
            LaneBackend::Simd,
        );
        assert!(r_seq.all_ok() && r_simd.all_ok());
        for (x, y) in seq.iter().zip(&simd) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn tiny_batches_pad_and_work() {
        // batch 1 pads to a full warp of padding lanes; the engine must
        // factor matrix 0 and leave every padding slot bitwise intact.
        let n = 3;
        let layout = Interleaved::new(n, 1);
        let mut data = vec![0.0f32; layout.len()];
        fill_batch_spd(&layout, &mut data, SpdKind::DiagDominant, 4);
        let mut expect = data.clone();
        let r1 = factorize_batch_seq(&layout, &mut expect);
        let r2 = factorize_batch_lanes(&layout, &mut data);
        assert!(r1.all_ok() && r2.all_ok());
        assert_eq!(data, expect);
    }
}
