//! Triangular solves and batched Cholesky solves.
//!
//! The paper factors; its motivating application (Alternating Least
//! Squares for recommender systems) then solves. These routines complete
//! the story: forward/backward substitution against a computed factor,
//! single-matrix and batched, with the right-hand sides stored either
//! canonically or interleaved like the matrices.

use crate::scalar::Real;
use crate::sync_slice::SyncSlice;
use ibcf_layout::{align_up, BatchLayout, WARP_SIZE};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Forward substitution: solves `L · y = b` in place (`b` becomes `y`),
/// with `L` lower triangular, column-major, leading dimension `lda`.
pub fn solve_lower<T: Real>(n: usize, l: &[T], lda: usize, b: &mut [T]) {
    debug_assert!(lda >= n && b.len() >= n);
    for i in 0..n {
        let mut acc = b[i];
        for k in 0..i {
            acc -= l[i + k * lda] * b[k];
        }
        b[i] = acc / l[i + i * lda];
    }
}

/// Backward substitution: solves `Lᵀ · x = y` in place (`y` becomes `x`).
pub fn solve_lower_transposed<T: Real>(n: usize, l: &[T], lda: usize, b: &mut [T]) {
    debug_assert!(lda >= n && b.len() >= n);
    for i in (0..n).rev() {
        let mut acc = b[i];
        for k in i + 1..n {
            acc -= l[k + i * lda] * b[k];
        }
        b[i] = acc / l[i + i * lda];
    }
}

/// Solves `A · x = b` given the Cholesky factor `L` of `A` (`A = L·Lᵀ`),
/// in place.
///
/// # Examples
///
/// ```
/// use ibcf_core::reference::potrf;
/// use ibcf_core::solve::solve_cholesky;
///
/// // A = [[4, 2], [2, 3]], b = A·[1, 1] = [6, 5].
/// let mut a = vec![4.0f64, 2.0, 2.0, 3.0];
/// potrf(2, &mut a).unwrap();
/// let mut b = vec![6.0, 5.0];
/// solve_cholesky(2, &a, 2, &mut b);
/// assert!((b[0] - 1.0).abs() < 1e-12 && (b[1] - 1.0).abs() < 1e-12);
/// ```
pub fn solve_cholesky<T: Real>(n: usize, l: &[T], lda: usize, b: &mut [T]) {
    solve_lower(n, l, lda, b);
    solve_lower_transposed(n, l, lda, b);
}

/// Storage layout for a batch of length-`n` vectors (right-hand sides).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorBatch {
    n: usize,
    batch: usize,
    padded: usize,
    interleaved: bool,
}

impl VectorBatch {
    /// Canonical storage: vector `m` occupies elements `[m*n, (m+1)*n)`.
    pub fn canonical(n: usize, batch: usize) -> Self {
        assert!(n > 0 && batch > 0);
        Self {
            n,
            batch,
            padded: batch,
            interleaved: false,
        }
    }

    /// Interleaved storage: element `i` of vector `m` is at
    /// `i * padded_batch + m`, the vector analogue of the interleaved
    /// matrix layout.
    pub fn interleaved(n: usize, batch: usize) -> Self {
        assert!(n > 0 && batch > 0);
        Self {
            n,
            batch,
            padded: align_up(batch, WARP_SIZE),
            interleaved: true,
        }
    }

    /// Vector length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Logical batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Required buffer length in elements.
    pub fn len(&self) -> usize {
        self.n * self.padded
    }

    /// `true` if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element offset of element `i` of vector `mat`.
    #[inline]
    pub fn addr(&self, mat: usize, i: usize) -> usize {
        debug_assert!(mat < self.padded && i < self.n);
        if self.interleaved {
            i * self.padded + mat
        } else {
            mat * self.n + i
        }
    }
}

/// Batched Cholesky solve: for every matrix `m`, solves
/// `L_m · L_mᵀ · x_m = b_m` in place, where the factors live in `factors`
/// (laid out by `layout`) and the right-hand sides in `rhs` (laid out by
/// `vb`). Parallel over matrices.
///
/// # Panics
/// If the two layouts disagree on `n` or `batch`, or a buffer is short.
pub fn solve_batch<T: Real, L: BatchLayout + Sync>(
    layout: &L,
    factors: &[T],
    vb: &VectorBatch,
    rhs: &mut [T],
) {
    let n = layout.n();
    assert_eq!(n, vb.n(), "layouts disagree on n");
    assert_eq!(layout.batch(), vb.batch(), "layouts disagree on batch");
    assert!(factors.len() >= layout.len(), "factor buffer too short");
    assert!(rhs.len() >= vb.len(), "rhs buffer too short");
    let shared = SyncSlice::new(rhs);
    #[allow(clippy::needless_range_loop)] // indices address two buffers via layout maps
    (0..layout.batch()).into_par_iter().for_each(|mat| {
        let mut l = vec![T::ZERO; n * n];
        let mut x = vec![T::ZERO; n];
        // Gather only the lower triangle of the factor.
        for col in 0..n {
            for row in col..n {
                l[row + col * n] = factors[layout.addr(mat, row, col)];
            }
        }
        for i in 0..n {
            // SAFETY: vector addresses are injective per (mat, i) and each
            // mat is owned by one worker.
            x[i] = unsafe { shared.read(vb.addr(mat, i)) };
        }
        solve_cholesky(n, &l, n, &mut x);
        for i in 0..n {
            // SAFETY: as above.
            unsafe { shared.write(vb.addr(mat, i), x[i]) };
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host_batch::factorize_batch;
    use crate::matrix::ColMatrix;
    use crate::reference::potrf;
    use crate::spd::{fill_batch_spd, random_spd, SpdKind};
    use ibcf_layout::{Chunked, Interleaved};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn solve_recovers_known_solution() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [1usize, 3, 8, 20] {
            let a = random_spd::<f64>(n, SpdKind::Wishart, &mut rng);
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
            // b = A x.
            let mut b = vec![0.0f64; n];
            for j in 0..n {
                for i in 0..n {
                    b[i] += a[(i, j)] * x_true[j];
                }
            }
            let mut l = a.into_vec();
            potrf(n, &mut l).unwrap();
            solve_cholesky(n, &l, n, &mut b);
            for i in 0..n {
                assert!((b[i] - x_true[i]).abs() < 1e-9, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn forward_backward_are_inverses_of_l_and_lt() {
        let n = 6;
        let l = ColMatrix::<f64>::from_fn(n, n, |r, c| {
            if r > c {
                0.3 * (r + c) as f64
            } else if r == c {
                2.0 + r as f64
            } else {
                0.0
            }
        });
        let y: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        // b = L y, then solve_lower must recover y.
        let mut b = vec![0.0f64; n];
        for j in 0..n {
            for i in 0..n {
                b[i] += l[(i, j)] * y[j];
            }
        }
        solve_lower(n, l.as_slice(), n, &mut b);
        for i in 0..n {
            assert!((b[i] - y[i]).abs() < 1e-10);
        }
        // c = Lᵀ y, then solve_lower_transposed must recover y.
        let mut c = vec![0.0f64; n];
        for j in 0..n {
            for i in 0..n {
                c[i] += l[(j, i)] * y[j];
            }
        }
        solve_lower_transposed(n, l.as_slice(), n, &mut c);
        for i in 0..n {
            assert!((c[i] - y[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn vector_batch_addressing() {
        let c = VectorBatch::canonical(4, 3);
        assert_eq!(c.addr(2, 1), 9);
        assert_eq!(c.len(), 12);
        let i = VectorBatch::interleaved(4, 33);
        assert_eq!(i.addr(0, 0), 0);
        assert_eq!(i.addr(32, 0), 32);
        assert_eq!(i.addr(0, 1), 64); // padded to 64
        assert_eq!(i.len(), 256);
    }

    #[test]
    fn batch_solve_both_vector_layouts() {
        let n = 7;
        let batch = 50;
        let layout = Chunked::new(n, batch, 32);
        let mut mats = vec![0.0f64; layout.len()];
        fill_batch_spd(&layout, &mut mats, SpdKind::Wishart, 77);
        let orig = mats.clone();
        assert!(factorize_batch(&layout, &mut mats).all_ok());

        let mut rng = StdRng::seed_from_u64(4);
        for vb in [
            VectorBatch::canonical(n, batch),
            VectorBatch::interleaved(n, batch),
        ] {
            // Random true solutions; construct b = A x per matrix.
            let mut rhs = vec![0.0f64; vb.len()];
            let mut truth = vec![vec![0.0f64; n]; batch];
            for (mat, t) in truth.iter_mut().enumerate() {
                for v in t.iter_mut() {
                    *v = rng.random::<f64>() * 2.0 - 1.0;
                }
                let mut a = vec![0.0f64; n * n];
                ibcf_layout::gather_matrix(&layout, &orig, mat, &mut a, n);
                for i in 0..n {
                    let mut acc = 0.0;
                    for (j, tj) in t.iter().enumerate() {
                        let (r, c) = if i >= j { (i, j) } else { (j, i) };
                        acc += a[r + c * n] * tj;
                    }
                    rhs[vb.addr(mat, i)] = acc;
                }
            }
            solve_batch(&layout, &mats, &vb, &mut rhs);
            for (mat, t) in truth.iter().enumerate() {
                for i in 0..n {
                    let got = rhs[vb.addr(mat, i)];
                    assert!(
                        (got - t[i]).abs() < 1e-8,
                        "mat={mat} i={i}: {got} vs {}",
                        t[i]
                    );
                }
            }
        }
    }

    #[test]
    fn interleaved_vectors_match_canonical_results() {
        let n = 5;
        let batch = 20;
        let layout = Interleaved::new(n, batch);
        let mut mats = vec![0.0f32; layout.len()];
        fill_batch_spd(&layout, &mut mats, SpdKind::DiagDominant, 31);
        assert!(factorize_batch(&layout, &mut mats).all_ok());

        let vb_c = VectorBatch::canonical(n, batch);
        let vb_i = VectorBatch::interleaved(n, batch);
        let mut rhs_c = vec![0.0f32; vb_c.len()];
        let mut rhs_i = vec![0.0f32; vb_i.len()];
        for mat in 0..batch {
            for i in 0..n {
                let v = ((mat * n + i) as f32).sin();
                rhs_c[vb_c.addr(mat, i)] = v;
                rhs_i[vb_i.addr(mat, i)] = v;
            }
        }
        solve_batch(&layout, &mats, &vb_c, &mut rhs_c);
        solve_batch(&layout, &mats, &vb_i, &mut rhs_i);
        for mat in 0..batch {
            for i in 0..n {
                assert_eq!(rhs_c[vb_c.addr(mat, i)], rhs_i[vb_i.addr(mat, i)]);
            }
        }
    }
}
