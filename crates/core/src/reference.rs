//! The canonical unblocked Cholesky factorization — Algorithm 1 of the
//! paper — used as the correctness oracle for every optimized variant.

use crate::error::CholeskyError;
use crate::scalar::Real;

/// Unblocked, right-looking, lower-triangular Cholesky factorization of a
/// column-major `n × n` matrix with leading dimension `lda`.
///
/// Only the lower triangle is read and written; the strictly-upper triangle
/// is left untouched, exactly like LAPACK's `potf2('L', ...)`.
///
/// On success `a` holds `L` (lower triangle) with `A = L·Lᵀ`.
///
/// # Errors
/// [`CholeskyError::NotPositiveDefinite`] if a pivot is not strictly
/// positive, [`CholeskyError::NonFinite`] if a pivot is NaN/∞.
///
/// # Panics
/// If `lda < n` or the buffer is too short.
pub fn potrf_unblocked<T: Real>(n: usize, a: &mut [T], lda: usize) -> Result<(), CholeskyError> {
    assert!(lda >= n, "leading dimension must be >= n");
    assert!(
        a.len() >= lda.saturating_mul(n.saturating_sub(1)) + n,
        "buffer too short"
    );
    for k in 0..n {
        let akk = a[k + k * lda];
        if !akk.is_finite() {
            return Err(CholeskyError::NonFinite { column: k });
        }
        if akk <= T::ZERO {
            return Err(CholeskyError::NotPositiveDefinite { column: k });
        }
        let pivot = akk.sqrt();
        a[k + k * lda] = pivot;
        let inv = pivot.recip();
        for m in k + 1..n {
            a[m + k * lda] *= inv;
        }
        for j in k + 1..n {
            let ajk = a[j + k * lda];
            for m in j..n {
                let amk = a[m + k * lda];
                a[m + j * lda] -= amk * ajk;
            }
        }
    }
    Ok(())
}

/// Convenience wrapper: factorizes a dense `n × n` buffer (`lda == n`).
pub fn potrf<T: Real>(n: usize, a: &mut [T]) -> Result<(), CholeskyError> {
    potrf_unblocked(n, a, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::ColMatrix;
    use crate::verify::reconstruction_error;

    /// 3×3 SPD with a known factor: L = [[2,0,0],[6,1,0],[-8,5,3]].
    fn known_case() -> (Vec<f64>, Vec<f64>) {
        let l = vec![2.0, 6.0, -8.0, 0.0, 1.0, 5.0, 0.0, 0.0, 3.0];
        // A = L * L^T
        let lm = ColMatrix::from_col_major(3, 3, l.clone());
        let a = lm.matmul(&lm.transpose()).into_vec();
        (a, l)
    }

    #[test]
    fn factors_known_matrix() {
        let (mut a, l) = known_case();
        potrf(3, &mut a).unwrap();
        for c in 0..3 {
            for r in c..3 {
                assert!((a[r + c * 3] - l[r + c * 3]).abs() < 1e-12, "({r},{c})");
            }
        }
    }

    #[test]
    fn leaves_upper_triangle_untouched() {
        let (mut a, _) = known_case();
        let sentinel = 1234.5;
        a[3] = sentinel;
        a[2 * 3] = sentinel;
        a[1 + 2 * 3] = sentinel;
        potrf(3, &mut a).unwrap();
        assert_eq!(a[3], sentinel);
        assert_eq!(a[2 * 3], sentinel);
        assert_eq!(a[1 + 2 * 3], sentinel);
    }

    #[test]
    fn reconstructs_random_spd() {
        use crate::spd::{random_spd, SpdKind};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 5, 13, 32, 64] {
            let a = random_spd::<f64>(n, SpdKind::Wishart, &mut rng);
            let mut f = a.clone();
            potrf(n, f.as_mut_slice()).unwrap();
            let err = reconstruction_error(n, a.as_slice(), f.as_slice(), n);
            assert!(err < 1e-12, "n = {n}, err = {err}");
        }
    }

    #[test]
    fn detects_indefinite() {
        // -I is as far from SPD as it gets.
        let mut a = vec![-1.0f32, 0.0, 0.0, -1.0];
        assert_eq!(
            potrf(2, &mut a),
            Err(CholeskyError::NotPositiveDefinite { column: 0 })
        );
        // Fails at column 1: [[1, 2], [2, 1]] has a negative Schur complement.
        let mut a = vec![1.0f32, 2.0, 2.0, 1.0];
        assert_eq!(
            potrf(2, &mut a),
            Err(CholeskyError::NotPositiveDefinite { column: 1 })
        );
    }

    #[test]
    fn detects_non_finite() {
        let mut a = vec![f32::NAN, 0.0, 0.0, 1.0];
        assert_eq!(
            potrf(2, &mut a),
            Err(CholeskyError::NonFinite { column: 0 })
        );
    }

    #[test]
    fn respects_lda() {
        let (a3, l) = known_case();
        // Embed in a 5-row leading dimension.
        let lda = 5;
        let mut a = vec![0.0f64; lda * 3];
        for c in 0..3 {
            for r in 0..3 {
                a[r + c * lda] = a3[r + c * 3];
            }
        }
        potrf_unblocked(3, &mut a, lda).unwrap();
        for c in 0..3 {
            for r in c..3 {
                assert!((a[r + c * lda] - l[r + c * 3]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn n_one() {
        let mut a = vec![9.0f64];
        potrf(1, &mut a).unwrap();
        assert_eq!(a[0], 3.0);
    }
}
