//! Symmetric positive definite test-matrix generators.

use crate::matrix::ColMatrix;
use crate::scalar::Real;
use ibcf_layout::BatchLayout;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Families of SPD matrices with different spectra, used to exercise the
/// factorizations across conditioning regimes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpdKind {
    /// `G·Gᵀ + n·I` for Gaussian `G` — well conditioned, the workhorse.
    Wishart,
    /// Random symmetric matrix made strictly diagonally dominant.
    DiagDominant,
    /// `Q·diag(λ)·Qᵀ` with a geometric spectrum spanning the requested
    /// condition number, `Q` built from random Givens rotations.
    Conditioned(
        /// Target 2-norm condition number (>= 1).
        f64,
    ),
    /// The Hilbert matrix `H[i][j] = 1 / (i + j + 1)` — notoriously
    /// ill-conditioned, SPD in exact arithmetic.
    Hilbert,
}

/// Generates one `n × n` SPD matrix of the given kind.
pub fn random_spd<T: Real>(n: usize, kind: SpdKind, rng: &mut impl Rng) -> ColMatrix<T> {
    assert!(n > 0, "matrix dimension must be positive");
    match kind {
        SpdKind::Wishart => wishart(n, rng),
        SpdKind::DiagDominant => diag_dominant(n, rng),
        SpdKind::Conditioned(cond) => conditioned(n, cond, rng),
        SpdKind::Hilbert => hilbert(n),
    }
}

fn unit_uniform<T: Real>(rng: &mut impl Rng) -> T {
    T::from_f64(rng.random::<f64>() * 2.0 - 1.0)
}

fn wishart<T: Real>(n: usize, rng: &mut impl Rng) -> ColMatrix<T> {
    let g = ColMatrix::<T>::from_fn(n, n, |_, _| unit_uniform(rng));
    let mut a = g.matmul(&g.transpose());
    for i in 0..n {
        a[(i, i)] += T::from_f64(n as f64);
    }
    a
}

fn diag_dominant<T: Real>(n: usize, rng: &mut impl Rng) -> ColMatrix<T> {
    let mut a = ColMatrix::<T>::zeros(n, n);
    for c in 0..n {
        for r in 0..c {
            let v: T = unit_uniform(rng);
            a[(r, c)] = v;
            a[(c, r)] = v;
        }
    }
    for i in 0..n {
        let row_sum: f64 = (0..n)
            .filter(|&j| j != i)
            .map(|j| a[(i, j)].to_f64().abs())
            .sum();
        a[(i, i)] = T::from_f64(row_sum + 1.0);
    }
    a
}

fn conditioned<T: Real>(n: usize, cond: f64, rng: &mut impl Rng) -> ColMatrix<T> {
    assert!(cond >= 1.0, "condition number must be >= 1");
    // Geometric eigenvalue spectrum from 1 down to 1/cond.
    let mut a = ColMatrix::<T>::zeros(n, n);
    for i in 0..n {
        let t = if n == 1 {
            0.0
        } else {
            i as f64 / (n - 1) as f64
        };
        a[(i, i)] = T::from_f64(cond.powf(-t));
    }
    // Conjugate by random Givens rotations: Q·Λ·Qᵀ applied as a sequence of
    // two-sided rotations, preserving symmetry and the spectrum.
    let sweeps = 3 * n;
    for _ in 0..sweeps {
        let i = rng.random_range(0..n);
        let mut j = rng.random_range(0..n);
        if i == j {
            j = (j + 1) % n;
            if i == j {
                continue;
            }
        }
        let theta = rng.random::<f64>() * std::f64::consts::TAU;
        let (s, c) = theta.sin_cos();
        let (c, s) = (T::from_f64(c), T::from_f64(s));
        // A := G A Gᵀ with G a rotation in the (i, j) plane.
        for k in 0..n {
            let aik = a[(i, k)];
            let ajk = a[(j, k)];
            a[(i, k)] = c * aik + s * ajk;
            a[(j, k)] = -s * aik + c * ajk;
        }
        for k in 0..n {
            let aki = a[(k, i)];
            let akj = a[(k, j)];
            a[(k, i)] = c * aki + s * akj;
            a[(k, j)] = -s * aki + c * akj;
        }
    }
    // Clean up rounding asymmetry.
    for cix in 0..n {
        for r in cix + 1..n {
            let m = T::from_f64((a[(r, cix)].to_f64() + a[(cix, r)].to_f64()) / 2.0);
            a[(r, cix)] = m;
            a[(cix, r)] = m;
        }
    }
    a
}

/// The `n × n` Hilbert matrix.
pub fn hilbert<T: Real>(n: usize) -> ColMatrix<T> {
    ColMatrix::from_fn(n, n, |r, c| T::from_f64(1.0 / (r + c + 1) as f64))
}

/// Fills every matrix of a laid-out batch buffer with an independent SPD
/// matrix. Matrix `m` is generated from a deterministic per-matrix RNG
/// seeded with `(seed, m)`, so any slice of the batch can be regenerated
/// independently (and padding slots get well-defined identity matrices so
/// kernels can factor them harmlessly).
pub fn fill_batch_spd<T: Real, L: BatchLayout>(
    layout: &L,
    data: &mut [T],
    kind: SpdKind,
    seed: u64,
) {
    assert!(data.len() >= layout.len(), "batch buffer too short");
    let n = layout.n();
    for mat in 0..layout.padded_batch() {
        if mat < layout.batch() {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (mat as u64).wrapping_mul(0x9E3779B97F4A7C15));
            let a = random_spd::<T>(n, kind, &mut rng);
            ibcf_layout::scatter_matrix(layout, data, mat, a.as_slice(), n);
        } else {
            let eye = ColMatrix::<T>::identity(n);
            ibcf_layout::scatter_matrix(layout, data, mat, eye.as_slice(), n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::potrf;
    use ibcf_layout::{gather_matrix, Interleaved};

    fn is_symmetric<T: Real>(a: &ColMatrix<T>) -> bool {
        let n = a.rows();
        (0..n).all(|i| (0..n).all(|j| (a[(i, j)].to_f64() - a[(j, i)].to_f64()).abs() < 1e-9))
    }

    #[test]
    fn all_kinds_are_spd() {
        let mut rng = StdRng::seed_from_u64(42);
        for kind in [
            SpdKind::Wishart,
            SpdKind::DiagDominant,
            SpdKind::Conditioned(100.0),
            SpdKind::Hilbert,
        ] {
            // The Hilbert matrix's condition number grows like (1+√2)^(4n):
            // beyond n ≈ 12 it is numerically indefinite even in f64.
            let sizes: &[usize] = if kind == SpdKind::Hilbert {
                &[1, 2, 7, 10]
            } else {
                &[1, 2, 7, 16]
            };
            for &n in sizes {
                let a = random_spd::<f64>(n, kind, &mut rng);
                assert!(is_symmetric(&a), "{kind:?} n={n} not symmetric");
                let mut f = a.clone().into_vec();
                potrf(n, &mut f).unwrap_or_else(|e| panic!("{kind:?} n={n}: {e}"));
            }
        }
    }

    #[test]
    fn conditioned_spectrum_spans_condition_number() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 12;
        let cond = 1e4;
        let a = random_spd::<f64>(n, SpdKind::Conditioned(cond), &mut rng);
        // Rotations preserve the trace: sum of the geometric spectrum.
        let trace: f64 = (0..n).map(|i| a[(i, i)].to_f64()).sum();
        let expect: f64 = (0..n)
            .map(|i| cond.powf(-(i as f64) / (n - 1) as f64))
            .sum();
        assert!((trace - expect).abs() < 1e-8, "trace {trace} vs {expect}");
    }

    #[test]
    fn batch_fill_is_deterministic_and_padded_with_identity() {
        let n = 4;
        let layout = Interleaved::new(n, 33); // pads to 64
        let mut a = vec![0.0f32; layout.len()];
        let mut b = vec![0.0f32; layout.len()];
        fill_batch_spd(&layout, &mut a, SpdKind::Wishart, 9);
        fill_batch_spd(&layout, &mut b, SpdKind::Wishart, 9);
        assert_eq!(a, b);

        let mut m = vec![0.0f32; n * n];
        gather_matrix(&layout, &a, 40, &mut m, n); // padding slot
        let eye = ColMatrix::<f32>::identity(n);
        assert_eq!(&m, eye.as_slice());

        // Different matrices differ.
        let mut m0 = vec![0.0f32; n * n];
        let mut m1 = vec![0.0f32; n * n];
        gather_matrix(&layout, &a, 0, &mut m0, n);
        gather_matrix(&layout, &a, 1, &mut m1, n);
        assert_ne!(m0, m1);
    }
}
