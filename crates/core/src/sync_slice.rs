//! A shared-slice wrapper for provably disjoint parallel writes.
//!
//! Batch layouts interleave the elements of different matrices, so a batch
//! buffer cannot be `split_at_mut` into per-matrix sub-slices. Every layout
//! address map is injective (property-tested in `ibcf-layout`), so writes
//! for different matrix indices never alias — which is exactly the
//! disjointness contract [`SyncSlice`] encodes.

use std::cell::UnsafeCell;

/// A `&mut [T]` that can be written from multiple rayon workers, provided
/// the callers guarantee that no element is accessed concurrently by more
/// than one worker.
///
/// This is the standard `UnsafeCell`-slice idiom: the wrapper is `Sync`
/// because disjointness is promised by the caller of the `unsafe` methods.
pub struct SyncSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
}

// SAFETY: all access goes through `unsafe` methods whose contract forbids
// concurrent access to the same element.
unsafe impl<T: Send + Sync> Sync for SyncSlice<'_, T> {}
unsafe impl<T: Send + Sync> Send for SyncSlice<'_, T> {}

impl<'a, T> SyncSlice<'a, T> {
    /// Wraps a mutable slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: `UnsafeCell<T>` has the same layout as `T`, and we hold
        // the unique borrow of the slice for 'a.
        let data = unsafe { &*(slice as *mut [T] as *const [UnsafeCell<T>]) };
        Self { data }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads element `idx`.
    ///
    /// # Safety
    /// No other thread may be concurrently writing element `idx`.
    #[inline]
    pub unsafe fn read(&self, idx: usize) -> T
    where
        T: Copy,
    {
        unsafe { *self.data[idx].get() }
    }

    /// Writes element `idx`.
    ///
    /// # Safety
    /// No other thread may be concurrently reading or writing element
    /// `idx`.
    #[inline]
    pub unsafe fn write(&self, idx: usize, value: T) {
        unsafe { *self.data[idx].get() = value };
    }

    /// A shared view of the `len` contiguous elements starting at `idx` —
    /// the lane-block read primitive of the vectorized batch engine.
    ///
    /// # Panics
    /// If `idx + len` exceeds the slice.
    ///
    /// # Safety
    /// No other thread may concurrently write any element of the range,
    /// and the caller must not hold an overlapping `block_mut` while the
    /// returned reference is live.
    #[inline]
    pub unsafe fn block(&self, idx: usize, len: usize) -> &[T] {
        assert!(idx + len <= self.data.len(), "block out of bounds");
        // SAFETY: bounds checked above; aliasing discipline is the
        // caller's contract. `UnsafeCell<T>` has the layout of `T`, so
        // consecutive cells are consecutive `T`s.
        unsafe { std::slice::from_raw_parts(self.data[idx].get() as *const T, len) }
    }

    /// A mutable view of the `len` contiguous elements starting at `idx` —
    /// the lane-block write primitive of the vectorized batch engine.
    ///
    /// # Panics
    /// If `idx + len` exceeds the slice.
    ///
    /// # Safety
    /// No other thread may concurrently access any element of the range,
    /// and the caller must not hold any other reference overlapping it
    /// while the returned reference is live.
    #[inline]
    #[allow(clippy::mut_from_ref)] // the whole point of SyncSlice
    pub unsafe fn block_mut(&self, idx: usize, len: usize) -> &mut [T] {
        assert!(idx + len <= self.data.len(), "block out of bounds");
        // SAFETY: as in `block`, with exclusivity promised by the caller.
        unsafe { std::slice::from_raw_parts_mut(self.data[idx].get(), len) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn disjoint_parallel_writes() {
        let mut buf = vec![0u64; 4096];
        {
            let s = SyncSlice::new(&mut buf);
            // Each worker writes a disjoint stripe (stride partition).
            (0..8u64).into_par_iter().for_each(|w| {
                let mut i = w as usize;
                while i < s.len() {
                    // SAFETY: index stripes are disjoint by construction.
                    unsafe { s.write(i, w + 1) };
                    i += 8;
                }
            });
        }
        for (i, &v) in buf.iter().enumerate() {
            assert_eq!(v, (i % 8) as u64 + 1);
        }
    }

    #[test]
    fn blocks_read_and_write_ranges() {
        let mut buf: Vec<f32> = (0..16).map(|x| x as f32).collect();
        {
            let s = SyncSlice::new(&mut buf);
            unsafe {
                assert_eq!(s.block(4, 4), &[4.0, 5.0, 6.0, 7.0]);
                let b = s.block_mut(8, 4);
                for x in b.iter_mut() {
                    *x += 100.0;
                }
            }
        }
        assert_eq!(&buf[8..12], &[108.0, 109.0, 110.0, 111.0]);
    }

    #[test]
    #[should_panic(expected = "block out of bounds")]
    fn block_bounds_checked() {
        let mut buf = vec![0.0f32; 4];
        let s = SyncSlice::new(&mut buf);
        let _ = unsafe { s.block(2, 3) };
    }

    #[test]
    fn read_back() {
        let mut buf = vec![1.5f32, 2.5];
        let s = SyncSlice::new(&mut buf);
        unsafe {
            assert_eq!(s.read(0), 1.5);
            s.write(1, 9.0);
            assert_eq!(s.read(1), 9.0);
        }
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }
}
