//! A shared-slice wrapper for provably disjoint parallel writes.
//!
//! Batch layouts interleave the elements of different matrices, so a batch
//! buffer cannot be `split_at_mut` into per-matrix sub-slices. Every layout
//! address map is injective (property-tested in `ibcf-layout`), so writes
//! for different matrix indices never alias — which is exactly the
//! disjointness contract [`SyncSlice`] encodes.

use std::cell::UnsafeCell;

/// A `&mut [T]` that can be written from multiple rayon workers, provided
/// the callers guarantee that no element is accessed concurrently by more
/// than one worker.
///
/// This is the standard `UnsafeCell`-slice idiom: the wrapper is `Sync`
/// because disjointness is promised by the caller of the `unsafe` methods.
pub struct SyncSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
}

// SAFETY: all access goes through `unsafe` methods whose contract forbids
// concurrent access to the same element.
unsafe impl<T: Send + Sync> Sync for SyncSlice<'_, T> {}
unsafe impl<T: Send + Sync> Send for SyncSlice<'_, T> {}

impl<'a, T> SyncSlice<'a, T> {
    /// Wraps a mutable slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: `UnsafeCell<T>` has the same layout as `T`, and we hold
        // the unique borrow of the slice for 'a.
        let data = unsafe { &*(slice as *mut [T] as *const [UnsafeCell<T>]) };
        Self { data }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads element `idx`.
    ///
    /// # Safety
    /// No other thread may be concurrently writing element `idx`.
    #[inline]
    pub unsafe fn read(&self, idx: usize) -> T
    where
        T: Copy,
    {
        unsafe { *self.data[idx].get() }
    }

    /// Writes element `idx`.
    ///
    /// # Safety
    /// No other thread may be concurrently reading or writing element
    /// `idx`.
    #[inline]
    pub unsafe fn write(&self, idx: usize, value: T) {
        unsafe { *self.data[idx].get() = value };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn disjoint_parallel_writes() {
        let mut buf = vec![0u64; 4096];
        {
            let s = SyncSlice::new(&mut buf);
            // Each worker writes a disjoint stripe (stride partition).
            (0..8u64).into_par_iter().for_each(|w| {
                let mut i = w as usize;
                while i < s.len() {
                    // SAFETY: index stripes are disjoint by construction.
                    unsafe { s.write(i, w + 1) };
                    i += 8;
                }
            });
        }
        for (i, &v) in buf.iter().enumerate() {
            assert_eq!(v, (i % 8) as u64 + 1);
        }
    }

    #[test]
    fn read_back() {
        let mut buf = vec![1.5f32, 2.5];
        let s = SyncSlice::new(&mut buf);
        unsafe {
            assert_eq!(s.read(0), 1.5);
            s.write(1, 9.0);
            assert_eq!(s.read(1), 9.0);
        }
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }
}
