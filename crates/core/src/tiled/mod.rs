//! Task-graph blocked Cholesky for large matrices.
//!
//! Everything else in this crate factors *many tiny* matrices per call;
//! this module factors *one large* matrix by tiling it and executing the
//! classic POTRF/TRSM/SYRK/GEMM dependency DAG — the regime where batching
//! stops winning and scheduling takes over (the crossover the paper only
//! gestures at; EXPERIMENTS.md measures it).
//!
//! Three layers:
//!
//! * [`store`] — [`TileStore`]: the matrix packed as 128-byte-aligned
//!   lower-triangle tile slots through the existing `ibcf-layout` batch
//!   machinery (each tile one matrix of a `Canonical` batch);
//! * [`graph`] — [`TaskGraph`]: the dependency-counted DAG generated from
//!   `(n, nb, Looking)`, with a per-tile update serialization chain that
//!   makes *every* topological execution bitwise identical;
//! * [`exec`] — a sequential reference replay per
//!   [`Looking`](crate::blocked::Looking) order and a dependency-counted
//!   parallel executor on the rayon pool, both driving the
//!   `core::tile` microkernels (the stride-1 `colvec` forms) as leaves.
//!
//! Entry points: [`potrf_tiled`] (parallel), [`potrf_tiled_seq`] (the
//! bitwise-identical sequential replay), and the store-level functions
//! for callers that keep matrices packed.
//!
//! Determinism contract (property-tested in `tests/proptest_tiled.rs`):
//! parallel ≡ sequential replay ≡ `potrf_unblocked` **bitwise**, for all
//! three Looking orders, both precisions, any thread count, and ragged
//! tiles; non-SPD pivots report the same global column with the oracle's
//! NonFinite-before-NotPositiveDefinite classification.

pub mod exec;
pub mod graph;
pub mod store;

pub use exec::{
    default_threads, factor_store_par, factor_store_seq, potrf_tiled, potrf_tiled_seq,
    potrf_tiled_threads,
};
pub use graph::{Task, TaskGraph};
pub use store::TileStore;
