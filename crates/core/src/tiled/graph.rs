//! The POTRF/TRSM/SYRK/GEMM dependency DAG of a tiled Cholesky
//! factorization.
//!
//! For `nt` tile rows the task set is the same for every
//! [`Looking`](crate::blocked::Looking) order:
//!
//! * `Potrf(k)` — factor diagonal tile `(k, k)`, for `k < nt`;
//! * `Trsm(i, k)` — solve panel tile `(i, k)` against `(k, k)`, `i > k`;
//! * `Update(i, j, k)` — apply `A[i][j] −= A[i][k]·A[j][k]ᵀ` for
//!   `k < j ≤ i` (SYRK when `i == j`, GEMM otherwise).
//!
//! Edges:
//!
//! * `Potrf(k)` waits on `Update(k, k, k−1)` (the chain below makes that
//!   transitively *all* updates to the diagonal tile);
//! * `Trsm(i, k)` waits on `Potrf(k)` and `Update(i, k, k−1)`;
//! * `Update(i, j, k)` waits on `Trsm(i, k)`, `Trsm(j, k)`, **and
//!   `Update(i, j, k−1)`** — the per-tile serialization chain.
//!
//! The chain is the determinism linchpin: each `(i, j)` tile receives its
//! rank-`nb` subtractions in ascending `k` no matter which topological
//! order the executor realizes, so *every* execution of this DAG —
//! sequential in any Looking order, or parallel under work stealing — is
//! bitwise identical (see [`exec`](super::exec)). The Looking orders of
//! the paper's Figures 3–5 survive as [`TaskGraph::sequential_order`]:
//! three different topological sorts of one DAG, used as the sequential
//! reference replays and as the parallel executor's priority ranks.
//!
//! Critical path: `Potrf(k) → Trsm(k+1, k) → Update(k+1, k+1, k) →
//! Potrf(k+1)` links consecutive diagonal factorizations, so the DAG depth
//! is `3·(nt−1) + 1` tasks while the task count is Θ(nt³/6) — the
//! parallelism the executor can exploit grows quadratically with `nt`.
//! A corollary of the chain `Potrf(k+1) ← Update ← Trsm ← Potrf(k)`:
//! diagonal factorizations are *totally ordered*, so at most one `Potrf`
//! is ever in flight and a non-SPD failure reports a deterministic global
//! column even under parallel execution.

use crate::blocked::Looking;

/// One node of the tiled-Cholesky DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Factor diagonal tile `(k, k)`.
    Potrf {
        /// Diagonal tile index.
        k: usize,
    },
    /// Solve panel tile `(i, k)` against factored `(k, k)`.
    Trsm {
        /// Tile row (`i > k`).
        i: usize,
        /// Panel column.
        k: usize,
    },
    /// `A[i][j] −= A[i][k]·A[j][k]ᵀ` (SYRK when `i == j`).
    Update {
        /// Tile row.
        i: usize,
        /// Tile column (`k < j ≤ i`).
        j: usize,
        /// Source panel column.
        k: usize,
    },
}

/// Dependency-counted task graph for an `nt × nt` tile grid.
pub struct TaskGraph {
    nt: usize,
    tasks: Vec<Task>,
    /// `id → ids unblocked when it completes`.
    succs: Vec<Vec<u32>>,
    /// `id → number of predecessors`.
    indeg: Vec<u32>,
    /// `update_base[i][j]` = id of `Update(i, j, 0)` (tasks for higher `k`
    /// follow consecutively). Empty inner entries for `j == 0`.
    update_base: Vec<Vec<u32>>,
    trsm_base: u32,
}

impl TaskGraph {
    /// Builds the DAG for `nt` tile rows.
    ///
    /// # Panics
    /// If `nt == 0`.
    pub fn build(nt: usize) -> Self {
        assert!(nt > 0, "need at least one tile");
        let n_potrf = nt;
        let n_trsm = nt * (nt - 1) / 2;
        let trsm_base = n_potrf as u32;
        // Update(i, j, k) for k < j ≤ i: j tasks per (i, j) pair.
        let mut update_base = vec![Vec::new(); nt];
        let mut next = trsm_base + n_trsm as u32;
        for (i, row) in update_base.iter_mut().enumerate() {
            row.reserve(i + 1);
            for j in 0..=i {
                row.push(next);
                next += j as u32;
            }
        }
        let total = next as usize;

        let mut tasks = vec![Task::Potrf { k: 0 }; total];
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); total];
        let mut indeg = vec![0u32; total];
        let mut graph = TaskGraph {
            nt,
            tasks: Vec::new(),
            succs: Vec::new(),
            indeg: Vec::new(),
            update_base,
            trsm_base,
        };

        let edge = |succs: &mut Vec<Vec<u32>>, indeg: &mut Vec<u32>, from: u32, to: u32| {
            succs[from as usize].push(to);
            indeg[to as usize] += 1;
        };

        for k in 0..nt {
            let p = graph.potrf_id(k);
            tasks[p as usize] = Task::Potrf { k };
            if k > 0 {
                edge(&mut succs, &mut indeg, graph.update_id(k, k, k - 1), p);
            }
        }
        for i in 0..nt {
            for k in 0..i {
                let t = graph.trsm_id(i, k);
                tasks[t as usize] = Task::Trsm { i, k };
                edge(&mut succs, &mut indeg, graph.potrf_id(k), t);
                if k > 0 {
                    edge(&mut succs, &mut indeg, graph.update_id(i, k, k - 1), t);
                }
            }
        }
        for i in 0..nt {
            for j in 1..=i {
                for k in 0..j {
                    let u = graph.update_id(i, j, k);
                    tasks[u as usize] = Task::Update { i, j, k };
                    edge(&mut succs, &mut indeg, graph.trsm_id(i, k), u);
                    if i != j {
                        edge(&mut succs, &mut indeg, graph.trsm_id(j, k), u);
                    }
                    if k > 0 {
                        edge(&mut succs, &mut indeg, graph.update_id(i, j, k - 1), u);
                    }
                }
            }
        }

        graph.tasks = tasks;
        graph.succs = succs;
        graph.indeg = indeg;
        graph
    }

    /// Total number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` for a degenerate empty graph (never built here: `nt ≥ 1`).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Tile rows.
    pub fn num_tile_rows(&self) -> usize {
        self.nt
    }

    /// The task with dense id `id`.
    pub fn task(&self, id: u32) -> Task {
        self.tasks[id as usize]
    }

    /// Tasks unblocked when `id` completes.
    pub fn successors(&self, id: u32) -> &[u32] {
        &self.succs[id as usize]
    }

    /// Predecessor count per task (the executor's starting in-degrees).
    pub fn in_degrees(&self) -> Vec<u32> {
        self.indeg.clone()
    }

    #[inline]
    fn potrf_id(&self, k: usize) -> u32 {
        k as u32
    }

    #[inline]
    fn trsm_id(&self, i: usize, k: usize) -> u32 {
        debug_assert!(k < i);
        self.trsm_base + (i * (i - 1) / 2 + k) as u32
    }

    #[inline]
    fn update_id(&self, i: usize, j: usize, k: usize) -> u32 {
        debug_assert!(k < j && j <= i);
        self.update_base[i][j] + k as u32
    }

    /// The sequential reference order for a Looking variant — a
    /// topological sort of this DAG matching the evaluation order of the
    /// paper's Figure 3 (right), 4 (left), or 5/11 (top), lifted from
    /// per-tile-op loops to task ids. All three visit the same task set;
    /// executing tasks in any of these orders produces bitwise-identical
    /// results (module docs).
    pub fn sequential_order(&self, looking: Looking) -> Vec<u32> {
        let nt = self.nt;
        let mut order = Vec::with_capacity(self.len());
        match looking {
            // Figure 3: factor the panel, then update the whole trailing
            // submatrix with rank-nb updates.
            Looking::Right => {
                for k in 0..nt {
                    order.push(self.potrf_id(k));
                    for i in k + 1..nt {
                        order.push(self.trsm_id(i, k));
                    }
                    for i in k + 1..nt {
                        for j in k + 1..=i {
                            order.push(self.update_id(i, j, k));
                        }
                    }
                }
            }
            // Figure 4 (LAPACK): bring the current panel up to date just
            // before factoring/solving it.
            Looking::Left => {
                for k in 0..nt {
                    for p in 0..k {
                        order.push(self.update_id(k, k, p));
                    }
                    order.push(self.potrf_id(k));
                    for i in k + 1..nt {
                        for p in 0..k {
                            order.push(self.update_id(i, k, p));
                        }
                        order.push(self.trsm_id(i, k));
                    }
                }
            }
            // Figures 5/11 (laziest): walk tile rows; bring each tile of
            // the row up to date only when it is reached.
            Looking::Top => {
                for i in 0..nt {
                    for j in 0..=i {
                        for p in 0..j {
                            order.push(self.update_id(i, j, p));
                        }
                        if j < i {
                            order.push(self.trsm_id(i, j));
                        } else {
                            order.push(self.potrf_id(i));
                        }
                    }
                }
            }
        }
        debug_assert_eq!(order.len(), self.len());
        order
    }

    /// Length of the critical path in tasks: `3·(nt−1) + 1`.
    pub fn critical_path_len(&self) -> usize {
        3 * (self.nt - 1) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_topological(graph: &TaskGraph, order: &[u32]) {
        assert_eq!(order.len(), graph.len());
        let mut pos = vec![usize::MAX; graph.len()];
        for (p, &id) in order.iter().enumerate() {
            assert_eq!(pos[id as usize], usize::MAX, "duplicate task {id}");
            pos[id as usize] = p;
        }
        for id in 0..graph.len() as u32 {
            for &s in graph.successors(id) {
                assert!(pos[id as usize] < pos[s as usize], "edge {id}→{s} violated");
            }
        }
    }

    #[test]
    fn all_looking_orders_are_topological() {
        for nt in [1usize, 2, 3, 5, 8] {
            let g = TaskGraph::build(nt);
            for looking in Looking::ALL {
                check_topological(&g, &g.sequential_order(looking));
            }
        }
    }

    #[test]
    fn task_counts() {
        let g = TaskGraph::build(4);
        // 4 potrf + 6 trsm + updates: (i,j) pairs j<=i contribute j each:
        // rows: i=1: j=1 →1; i=2: 1+2=3; i=3: 1+2+3=6. Total 10.
        assert_eq!(g.len(), 4 + 6 + 10);
        assert_eq!(g.critical_path_len(), 10);
    }

    #[test]
    fn in_degrees_match_edges() {
        let g = TaskGraph::build(5);
        let mut indeg = vec![0u32; g.len()];
        for id in 0..g.len() as u32 {
            for &s in g.successors(id) {
                indeg[s as usize] += 1;
            }
        }
        assert_eq!(indeg, g.in_degrees());
        // Exactly one source: Potrf(0).
        let sources: Vec<_> = (0..g.len()).filter(|&i| g.in_degrees()[i] == 0).collect();
        assert_eq!(sources, vec![0]);
        assert_eq!(g.task(0), Task::Potrf { k: 0 });
    }

    #[test]
    fn single_tile_graph_is_one_potrf() {
        let g = TaskGraph::build(1);
        assert_eq!(g.len(), 1);
        assert!(!g.is_empty());
        assert_eq!(g.task(0), Task::Potrf { k: 0 });
        assert!(g.successors(0).is_empty());
        assert_eq!(g.critical_path_len(), 1);
    }
}
