//! The tiled matrix store: one large symmetric matrix packed as a batch of
//! lower-triangle tiles.
//!
//! A matrix of dimension `n` tiled by `nb` has `nt = ⌈n/nb⌉` tile rows and
//! `nt·(nt+1)/2` lower-triangle tiles `(i, j)` with `j ≤ i`. Each tile is a
//! contiguous `nb × nb` column-major slot — exactly one matrix of a
//! [`Canonical`] batch layout of dimension `nb` — so the whole store is
//! allocated 128-byte-aligned through [`alloc_batch`] and addressed through
//! the same [`BatchLayout`] machinery as every other batch in the
//! workspace. Ragged edge tiles (`n % nb != 0`) occupy the leading
//! `di × dj` sub-block of their slot with tile stride `nb`.
//!
//! Packing tiles contiguously (rather than interleaving their elements
//! across tiles) is deliberate: the coalescing argument for interleaving
//! is a *warp reading one element of 32 matrices*; a task-graph leaf is
//! *one core reading all of one tile*, and there contiguity — whole cache
//! lines per tile column, SIMD-loadable stride-1 columns — is what the
//! [`colvec`](crate::tile) leaves need. The batched and tiled regimes want
//! opposite layouts, which is the crossover the experiments measure.

use crate::scalar::Real;
use ibcf_layout::{alloc_batch, AlignedVec, Canonical};

/// A symmetric matrix packed as 128-byte-aligned lower-triangle tiles.
pub struct TileStore<T> {
    n: usize,
    nb: usize,
    nt: usize,
    /// Element offset between consecutive tile slots (`nb·nb`).
    tile_stride: usize,
    data: AlignedVec<T>,
}

impl<T: Real> TileStore<T> {
    /// An all-zero store for an `n × n` matrix tiled by `nb`.
    ///
    /// # Panics
    /// If `n == 0` or `nb == 0`.
    pub fn new(n: usize, nb: usize) -> Self {
        assert!(n > 0, "matrix dimension must be positive");
        assert!(nb > 0, "tile size must be positive");
        let nt = n.div_ceil(nb);
        let ntiles = nt * (nt + 1) / 2;
        let layout = Canonical::new(nb, ntiles);
        let data = alloc_batch(&layout);
        TileStore {
            n,
            nb,
            nt,
            tile_stride: layout.stride(),
            data,
        }
    }

    /// Packs the lower triangle of a column-major `n × n` matrix (leading
    /// dimension `lda`) into tiles. Strictly-upper elements are ignored.
    pub fn pack(n: usize, nb: usize, a: &[T], lda: usize) -> Self {
        assert!(lda >= n, "leading dimension must be >= n");
        let mut store = Self::new(n, nb);
        let nt = store.nt;
        let ts = store.tile_stride;
        for i in 0..nt {
            let di = store.dim(i);
            for j in 0..=i {
                let dj = store.dim(j);
                let off = store.offset(i, j);
                let tile = &mut store.data[off..off + ts];
                for c in 0..dj {
                    let gc = j * nb + c;
                    // Diagonal tiles carry only their lower triangle.
                    let r0 = if i == j { c } else { 0 };
                    for r in r0..di {
                        tile[r + c * nb] = a[(i * nb + r) + gc * lda];
                    }
                }
            }
        }
        store
    }

    /// Scatters the lower triangle back into a column-major `n × n` buffer
    /// with leading dimension `lda`. Strictly-upper elements of `a` are
    /// left untouched (like `potrf_unblocked`).
    pub fn unpack_into(&self, a: &mut [T], lda: usize) {
        assert!(lda >= self.n, "leading dimension must be >= n");
        for i in 0..self.nt {
            let di = self.dim(i);
            for j in 0..=i {
                let dj = self.dim(j);
                let off = self.offset(i, j);
                let tile = &self.data[off..off + self.tile_stride];
                for c in 0..dj {
                    let gc = j * self.nb + c;
                    let r0 = if i == j { c } else { 0 };
                    for r in r0..di {
                        a[(i * self.nb + r) + gc * lda] = tile[r + c * self.nb];
                    }
                }
            }
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Tile edge.
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// Number of tile rows (`⌈n/nb⌉`).
    pub fn num_tile_rows(&self) -> usize {
        self.nt
    }

    /// Edge of tile block `b` (ragged last block is smaller).
    #[inline]
    pub fn dim(&self, b: usize) -> usize {
        self.nb.min(self.n - b * self.nb)
    }

    /// Element offset of tile `(i, j)`, `j ≤ i`, in the packed buffer.
    #[inline]
    pub fn offset(&self, i: usize, j: usize) -> usize {
        debug_assert!(j <= i && i < self.nt);
        (i * (i + 1) / 2 + j) * self.tile_stride
    }

    /// Elements per tile slot (`nb·nb`).
    #[inline]
    pub fn tile_len(&self) -> usize {
        self.tile_stride
    }

    /// The tile `(i, j)` as an `nb × nb` column-major slice.
    pub fn tile(&self, i: usize, j: usize) -> &[T] {
        let off = self.offset(i, j);
        &self.data[off..off + self.tile_stride]
    }

    /// The tile `(i, j)` as a mutable `nb × nb` column-major slice.
    pub fn tile_mut(&mut self, i: usize, j: usize) -> &mut [T] {
        let off = self.offset(i, j);
        &mut self.data[off..off + self.tile_stride]
    }

    /// The whole packed buffer (tile slots in row-major `(i, j ≤ i)`
    /// order), mutable — the executor wraps this in a
    /// [`SyncSlice`](crate::sync_slice::SyncSlice) for disjoint tile
    /// writes.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibcf_layout::BUFFER_ALIGN;

    #[test]
    fn pack_unpack_round_trips_lower_triangle() {
        for (n, nb) in [(4usize, 2usize), (5, 2), (16, 8), (17, 8), (9, 16)] {
            let a: Vec<f64> = (0..n * n).map(|x| x as f64 + 0.5).collect();
            let store = TileStore::pack(n, nb, &a, n);
            let mut out = vec![-1.0f64; n * n];
            store.unpack_into(&mut out, n);
            for c in 0..n {
                for r in 0..n {
                    if r >= c {
                        assert_eq!(out[r + c * n], a[r + c * n], "({r},{c})");
                    } else {
                        assert_eq!(out[r + c * n], -1.0, "upper ({r},{c})");
                    }
                }
            }
        }
    }

    #[test]
    fn base_is_transaction_aligned() {
        let store = TileStore::<f32>::new(64, 16);
        let addr = store.tile(0, 0).as_ptr() as usize;
        assert_eq!(addr % BUFFER_ALIGN, 0);
    }

    #[test]
    fn tile_offsets_are_disjoint_slots() {
        let store = TileStore::<f32>::new(48, 16);
        let nt = store.num_tile_rows();
        let mut seen = std::collections::HashSet::new();
        for i in 0..nt {
            for j in 0..=i {
                assert!(seen.insert(store.offset(i, j)));
                assert_eq!(store.offset(i, j) % store.tile_len(), 0);
            }
        }
        assert_eq!(seen.len(), nt * (nt + 1) / 2);
    }

    #[test]
    fn ragged_dims() {
        let store = TileStore::<f32>::new(37, 16);
        assert_eq!(store.num_tile_rows(), 3);
        assert_eq!(store.dim(0), 16);
        assert_eq!(store.dim(2), 5);
    }
}
