//! Sequential and work-stealing executors for the tiled-Cholesky DAG.
//!
//! Both run the same leaves on the same [`TileStore`]:
//!
//! * `Potrf` — [`potrf_tile`](crate::tile::potrf_tile) (stride-1 column
//!   ops already);
//! * `Trsm` — [`trsm_tile_colvec`](crate::tile::trsm_tile_colvec);
//! * `Update` — [`syrk_tile_colvec`](crate::tile::syrk_tile_colvec) /
//!   [`gemm_tile_colvec`](crate::tile::gemm_tile_colvec).
//!
//! Because every `(i, j)` tile receives its updates in ascending `k`
//! (the serialization chain in [`graph`](super::graph)) and each leaf
//! applies identical per-element operation sequences, **any** execution —
//! sequential in any Looking order, or parallel — produces bitwise
//! identical factors; moreover the per-element sequence equals
//! [`potrf_unblocked`](crate::reference::potrf_unblocked)'s, so the tiled
//! factor is bitwise equal to the unblocked oracle as well (property
//! tested in `tests/proptest_tiled.rs`).
//!
//! The parallel executor is dependency-counted: a `Mutex`-guarded binary
//! heap of ready tasks (prioritized by the task's rank in the chosen
//! Looking order, so workers chase the critical path in the order the
//! paper's figures prescribe), per-task atomic-free in-degrees drained
//! under the same lock, and a `Condvar` parking idle workers. Worker
//! loops are hosted on the rayon pool (`into_par_iter().for_each`), which
//! the vendored shim maps to one scoped thread per worker; leaves write
//! disjoint tiles through a [`SyncSlice`]. Explicit-SIMD (`lane_simd`)
//! leaves are deliberately *not* dispatched here: its `LaneOps` vectorize
//! one element across 8–32 *matrices* with per-lane operands, while a
//! tile leaf needs scalar-broadcast column AXPYs — the stride-1 `colvec`
//! loops already autovectorize to exactly those.
//!
//! On a non-SPD or non-finite pivot the scheduler is poisoned: in-flight
//! tasks finish, waiting workers wake and exit, and the error reports the
//! failing **global** column `k·nb + col_in_tile`. Diagonal
//! factorizations are totally ordered (see `graph`), so the reported
//! column is deterministic even under parallel execution.

use super::graph::{Task, TaskGraph};
use super::store::TileStore;
use crate::blocked::Looking;
use crate::error::CholeskyError;
use crate::scalar::Real;
use crate::sync_slice::SyncSlice;
use crate::tile::{gemm_tile_colvec, potrf_tile, syrk_tile_colvec, trsm_tile_colvec};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};

/// Geometry the leaves need, copied out of the store so the tile buffer
/// can be wrapped in a [`SyncSlice`] independently.
#[derive(Clone, Copy)]
struct Geom {
    n: usize,
    nb: usize,
    tile_stride: usize,
}

impl Geom {
    #[inline]
    fn dim(&self, b: usize) -> usize {
        self.nb.min(self.n - b * self.nb)
    }

    #[inline]
    fn offset(&self, i: usize, j: usize) -> usize {
        (i * (i + 1) / 2 + j) * self.tile_stride
    }
}

/// Classifies a failed pivot the way the oracle does: non-finite wins
/// over non-positive, and the column is global.
fn pivot_error<T: Real>(pivot: T, nb: usize, k: usize, col_in_tile: usize) -> CholeskyError {
    let column = k * nb + col_in_tile;
    if !pivot.is_finite() {
        CholeskyError::NonFinite { column }
    } else {
        CholeskyError::NotPositiveDefinite { column }
    }
}

/// Runs one task's leaf on the shared tile buffer.
///
/// # Safety
/// The caller must guarantee DAG discipline: no concurrently-running task
/// touches any tile this task reads or writes. The graph provides exactly
/// that — a tile is written by one task at a time and only read after its
/// final writer completed.
unsafe fn run_task<T: Real>(
    task: Task,
    tiles: &SyncSlice<T>,
    g: Geom,
) -> Result<(), CholeskyError> {
    match task {
        Task::Potrf { k } => {
            let d = g.dim(k);
            // SAFETY: sole accessor of tile (k, k) per the DAG contract.
            let a = unsafe { tiles.block_mut(g.offset(k, k), g.tile_stride) };
            if let Err(c) = potrf_tile(d, a, g.nb) {
                return Err(pivot_error(a[c + c * g.nb], g.nb, k, c));
            }
            Ok(())
        }
        Task::Trsm { i, k } => {
            let (di, dk) = (g.dim(i), g.dim(k));
            // SAFETY: (k, k) is final (Potrf(k) done); (i, k) is
            // exclusively ours.
            let l = unsafe { tiles.block(g.offset(k, k), g.tile_stride) };
            let b = unsafe { tiles.block_mut(g.offset(i, k), g.tile_stride) };
            trsm_tile_colvec(di, dk, l, g.nb, b, g.nb);
            Ok(())
        }
        Task::Update { i, j, k } => {
            let (di, dj, dk) = (g.dim(i), g.dim(j), g.dim(k));
            // SAFETY: (i, k) and (j, k) are final (their Trsm tasks are
            // predecessors); (i, j) is exclusively ours.
            let a = unsafe { tiles.block(g.offset(i, k), g.tile_stride) };
            let c = unsafe { tiles.block_mut(g.offset(i, j), g.tile_stride) };
            if i == j {
                syrk_tile_colvec(dj, dk, a, g.nb, c, g.nb);
            } else {
                let b = unsafe { tiles.block(g.offset(j, k), g.tile_stride) };
                gemm_tile_colvec(di, dj, dk, a, g.nb, b, g.nb, c, g.nb);
            }
            Ok(())
        }
    }
}

/// Executes the DAG sequentially in the exact task order of the given
/// Looking variant — the bitwise reference replay.
pub fn factor_store_seq<T: Real>(
    store: &mut TileStore<T>,
    graph: &TaskGraph,
    looking: Looking,
) -> Result<(), CholeskyError> {
    let g = Geom {
        n: store.n(),
        nb: store.nb(),
        tile_stride: store.tile_len(),
    };
    let order = graph.sequential_order(looking);
    let tiles = SyncSlice::new(store.data_mut());
    for id in order {
        // SAFETY: single-threaded — no concurrent access at all.
        unsafe { run_task(graph.task(id), &tiles, g)? };
    }
    Ok(())
}

/// Scheduler state shared by the worker loops.
struct Sched {
    /// Min-heap of `(rank-in-looking-order, task id)`.
    ready: BinaryHeap<Reverse<(u32, u32)>>,
    indeg: Vec<u32>,
    /// Tasks not yet completed (or abandoned to poisoning).
    remaining: usize,
    error: Option<CholeskyError>,
}

/// Executes the DAG with `threads` cooperating workers, firing tasks as
/// their in-degrees drain. Results are bitwise identical to
/// [`factor_store_seq`] for every Looking order and thread count.
pub fn factor_store_par<T: Real>(
    store: &mut TileStore<T>,
    graph: &TaskGraph,
    looking: Looking,
    threads: usize,
) -> Result<(), CholeskyError> {
    let threads = threads.max(1);
    let g = Geom {
        n: store.n(),
        nb: store.nb(),
        tile_stride: store.tile_len(),
    };
    let order = graph.sequential_order(looking);
    let mut rank = vec![0u32; graph.len()];
    for (r, &id) in order.iter().enumerate() {
        rank[id as usize] = r as u32;
    }
    let indeg = graph.in_degrees();
    let mut ready = BinaryHeap::new();
    for (id, &d) in indeg.iter().enumerate() {
        if d == 0 {
            ready.push(Reverse((rank[id], id as u32)));
        }
    }
    let sched = Mutex::new(Sched {
        ready,
        indeg,
        remaining: graph.len(),
        error: None,
    });
    let idle = Condvar::new();
    let tiles = SyncSlice::new(store.data_mut());

    (0..threads).into_par_iter().for_each(|_| {
        loop {
            let id = {
                let mut s = sched.lock().unwrap();
                loop {
                    if s.error.is_some() || s.remaining == 0 {
                        return;
                    }
                    if let Some(Reverse((_, id))) = s.ready.pop() {
                        break id;
                    }
                    // Acyclicity guarantees some task is in flight; wait
                    // for its completion to refill the ready heap.
                    s = idle.wait(s).unwrap();
                }
            };
            // SAFETY: the DAG hands each tile to one task at a time and
            // orders readers after final writers (see `run_task`).
            let result = unsafe { run_task(graph.task(id), &tiles, g) };
            let mut s = sched.lock().unwrap();
            s.remaining -= 1;
            match result {
                Err(e) => {
                    s.error = Some(e);
                    idle.notify_all();
                    return;
                }
                Ok(()) => {
                    let mut woke = 0;
                    for &succ in graph.successors(id) {
                        let d = &mut s.indeg[succ as usize];
                        *d -= 1;
                        if *d == 0 {
                            s.ready.push(Reverse((rank[succ as usize], succ)));
                            woke += 1;
                        }
                    }
                    if s.remaining == 0 {
                        idle.notify_all();
                    } else {
                        for _ in 0..woke {
                            idle.notify_one();
                        }
                    }
                }
            }
        }
    });

    match sched.into_inner().unwrap().error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Worker count for [`potrf_tiled`]: the machine's available parallelism,
/// capped — the DAG's width rarely feeds more productively on one host.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(16)
}

/// Task-graph blocked Cholesky of a column-major `n × n` matrix (leading
/// dimension `lda`), parallel over [`default_threads`] workers.
///
/// Packs the lower triangle into a [`TileStore`], executes the DAG, and
/// scatters the factor back; the strictly-upper triangle is left
/// untouched, exactly like `potrf_unblocked` — to which the result is
/// bitwise identical.
///
/// # Errors
/// [`CholeskyError`] with the failing global column, non-finite pivots
/// classified before non-positive ones (oracle order).
pub fn potrf_tiled<T: Real>(
    n: usize,
    a: &mut [T],
    lda: usize,
    nb: usize,
    looking: Looking,
) -> Result<(), CholeskyError> {
    potrf_tiled_threads(n, a, lda, nb, looking, default_threads())
}

/// [`potrf_tiled`] with an explicit worker count.
pub fn potrf_tiled_threads<T: Real>(
    n: usize,
    a: &mut [T],
    lda: usize,
    nb: usize,
    looking: Looking,
    threads: usize,
) -> Result<(), CholeskyError> {
    let mut store = TileStore::pack(n, nb, a, lda);
    let graph = TaskGraph::build(store.num_tile_rows());
    factor_store_par(&mut store, &graph, looking, threads)?;
    store.unpack_into(a, lda);
    Ok(())
}

/// Sequential DAG replay of [`potrf_tiled`] — same pack/unpack, tasks run
/// one at a time in the Looking order's topological sort. The bitwise
/// reference for the parallel path.
pub fn potrf_tiled_seq<T: Real>(
    n: usize,
    a: &mut [T],
    lda: usize,
    nb: usize,
    looking: Looking,
) -> Result<(), CholeskyError> {
    let mut store = TileStore::pack(n, nb, a, lda);
    let graph = TaskGraph::build(store.num_tile_rows());
    factor_store_seq(&mut store, &graph, looking)?;
    store.unpack_into(a, lda);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::potrf_unblocked;
    use crate::spd::{random_spd, SpdKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bits<T: Real>(v: &[T]) -> Vec<u64> {
        v.iter().map(|x| x.to_f64().to_bits()).collect()
    }

    #[test]
    fn tiled_matches_oracle_bitwise_f64() {
        let mut rng = StdRng::seed_from_u64(21);
        for (n, nb) in [(8usize, 4usize), (24, 8), (33, 8), (40, 16)] {
            let a0 = random_spd::<f64>(n, SpdKind::Wishart, &mut rng).into_vec();
            let mut oracle = a0.clone();
            potrf_unblocked(n, &mut oracle, n).unwrap();
            for looking in Looking::ALL {
                let mut seq = a0.clone();
                potrf_tiled_seq(n, &mut seq, n, nb, looking).unwrap();
                assert_eq!(bits(&seq), bits(&oracle), "seq n={n} nb={nb} {looking}");
                let mut par = a0.clone();
                potrf_tiled_threads(n, &mut par, n, nb, looking, 4).unwrap();
                assert_eq!(bits(&par), bits(&oracle), "par n={n} nb={nb} {looking}");
            }
        }
    }

    #[test]
    fn tiled_matches_oracle_bitwise_f32() {
        let mut rng = StdRng::seed_from_u64(22);
        let n = 37;
        let a0 = random_spd::<f32>(n, SpdKind::Wishart, &mut rng).into_vec();
        let mut oracle = a0.clone();
        potrf_unblocked(n, &mut oracle, n).unwrap();
        for looking in Looking::ALL {
            let mut par = a0.clone();
            potrf_tiled_threads(n, &mut par, n, 8, looking, 3).unwrap();
            assert_eq!(bits(&par), bits(&oracle), "{looking}");
        }
    }

    #[test]
    fn upper_triangle_untouched() {
        let mut rng = StdRng::seed_from_u64(23);
        let n = 12;
        let mut a = random_spd::<f64>(n, SpdKind::DiagDominant, &mut rng).into_vec();
        for c in 1..n {
            for r in 0..c {
                a[r + c * n] = 777.0 + (r * n + c) as f64;
            }
        }
        potrf_tiled(n, &mut a, n, 5, Looking::Right).unwrap();
        for c in 1..n {
            for r in 0..c {
                assert_eq!(a[r + c * n], 777.0 + (r * n + c) as f64);
            }
        }
    }

    #[test]
    fn reports_global_failing_column_and_kind() {
        let mut rng = StdRng::seed_from_u64(24);
        let n = 20;
        let nb = 8;
        let base = random_spd::<f64>(n, SpdKind::DiagDominant, &mut rng);
        // Plant a non-SPD pivot in the second diagonal tile.
        let mut bad = base.clone();
        bad[(13, 13)] = -5.0e6;
        for looking in Looking::ALL {
            let mut a = bad.clone().into_vec();
            let err = potrf_tiled_threads(n, &mut a, n, nb, looking, 4).unwrap_err();
            assert_eq!(
                err,
                CholeskyError::NotPositiveDefinite { column: 13 },
                "{looking}"
            );
        }
        // A NaN pivot classifies as NonFinite (oracle precedence).
        let mut nan = base.into_vec();
        nan[13 + 13 * n] = f64::NAN;
        let err = potrf_tiled(n, &mut nan, n, nb, Looking::Left).unwrap_err();
        assert_eq!(err, CholeskyError::NonFinite { column: 13 });
    }

    #[test]
    fn single_thread_parallel_path_works() {
        let mut rng = StdRng::seed_from_u64(25);
        let n = 16;
        let a0 = random_spd::<f32>(n, SpdKind::Wishart, &mut rng).into_vec();
        let mut one = a0.clone();
        potrf_tiled_threads(n, &mut one, n, 4, Looking::Top, 1).unwrap();
        let mut many = a0;
        potrf_tiled_threads(n, &mut many, n, 4, Looking::Top, 8).unwrap();
        assert_eq!(bits(&one), bits(&many));
    }

    #[test]
    fn nb_larger_than_n_is_one_potrf_task() {
        let mut rng = StdRng::seed_from_u64(26);
        let n = 5;
        let a0 = random_spd::<f64>(n, SpdKind::Wishart, &mut rng).into_vec();
        let mut oracle = a0.clone();
        potrf_unblocked(n, &mut oracle, n).unwrap();
        let mut tiled = a0;
        potrf_tiled(n, &mut tiled, n, 32, Looking::Right).unwrap();
        assert_eq!(bits(&tiled), bits(&oracle));
    }
}
