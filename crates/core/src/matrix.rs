//! A small owned column-major matrix used by tests, examples, and the
//! verification helpers.

use crate::scalar::Real;

/// An owned column-major matrix.
///
/// This is deliberately a minimal convenience type — the hot paths all work
/// on flat slices — but it makes tests, oracles, and examples readable.
#[derive(Debug, Clone, PartialEq)]
pub struct ColMatrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Real> ColMatrix<T> {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Builds a matrix from an element function `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut m = Self::zeros(rows, cols);
        for c in 0..cols {
            for r in 0..rows {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Wraps an existing column-major buffer (`data.len() == rows * cols`).
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying column-major buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The underlying column-major buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// The transpose.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Dense matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Self) -> Self {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Self::zeros(self.rows, rhs.cols);
        for j in 0..rhs.cols {
            for k in 0..self.cols {
                let b = rhs[(k, j)];
                for i in 0..self.rows {
                    out[(i, j)] += self[(i, k)] * b;
                }
            }
        }
        out
    }

    /// Elementwise difference `self - rhs`.
    pub fn sub(&self, rhs: &Self) -> Self {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&rhs.data) {
            *a -= *b;
        }
        out
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|x| x.to_f64() * x.to_f64())
            .sum::<f64>()
            .sqrt()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data
            .iter()
            .map(|x| x.to_f64().abs())
            .fold(0.0, f64::max)
    }

    /// Zeroes the strictly-upper triangle, keeping the lower factor — what a
    /// lower Cholesky routine leaves meaningful.
    pub fn lower_triangle(&self) -> Self {
        Self::from_fn(self.rows, self.cols, |r, c| {
            if r >= c {
                self[(r, c)]
            } else {
                T::ZERO
            }
        })
    }

    /// Symmetrizes from the lower triangle: `out[i][j] = lower[max(i,j)][min(i,j)]`.
    pub fn symmetrize_from_lower(&self) -> Self {
        assert_eq!(self.rows, self.cols);
        Self::from_fn(self.rows, self.cols, |r, c| {
            if r >= c {
                self[(r, c)]
            } else {
                self[(c, r)]
            }
        })
    }
}

impl<T: Real> std::ops::Index<(usize, usize)> for ColMatrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[c * self.rows + r]
    }
}

impl<T: Real> std::ops::IndexMut<(usize, usize)> for ColMatrix<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[c * self.rows + r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_identity_op() {
        let a = ColMatrix::<f64>::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        let i = ColMatrix::<f64>::identity(3);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = ColMatrix::<f32>::from_fn(2, 4, |r, c| (r + 10 * c) as f32);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(3, 1)], a[(1, 3)]);
    }

    #[test]
    fn frobenius() {
        let a = ColMatrix::<f64>::from_fn(2, 2, |_, _| 2.0);
        assert!((a.frob_norm() - 4.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 2.0);
    }

    #[test]
    fn lower_and_symmetrize() {
        let a = ColMatrix::<f64>::from_fn(3, 3, |r, c| (1 + r + 3 * c) as f64);
        let l = a.lower_triangle();
        assert_eq!(l[(0, 2)], 0.0);
        assert_eq!(l[(2, 0)], a[(2, 0)]);
        let s = a.symmetrize_from_lower();
        assert_eq!(s[(0, 2)], a[(2, 0)]);
        assert_eq!(s[(2, 0)], a[(2, 0)]);
    }

    #[test]
    fn matmul_known_product() {
        let a = ColMatrix::<f64>::from_col_major(2, 2, vec![1.0, 3.0, 2.0, 4.0]);
        // a = [[1, 2], [3, 4]]
        let b = a.matmul(&a);
        assert_eq!(b[(0, 0)], 7.0);
        assert_eq!(b[(0, 1)], 10.0);
        assert_eq!(b[(1, 0)], 15.0);
        assert_eq!(b[(1, 1)], 22.0);
    }
}
