//! Tile load/store through a batch layout — the host analogue of the
//! paper's Figure 10 (`load_full`, `store_full`, `load_lower`,
//! `store_lower`).
//!
//! A tile at block coordinates `(bi, bj)` of matrix `mat` covers global
//! elements `(bi*nb + r, bj*nb + c)`. Ragged tiles (at the bottom/right
//! edge when `n % nb != 0`) pass `rows`/`cols` smaller than `nb`; the
//! untouched part of the tile buffer is left as-is, and the microkernels
//! are called with the reduced dimensions.

// Tile load/store signatures mirror BLAS conventions (layout, indices,
// dims, strides) — argument count is intrinsic to the interface.
#![allow(clippy::too_many_arguments)]

use crate::scalar::Real;
use ibcf_layout::BatchLayout;

/// Loads a full (rectangular) `rows × cols` tile at block `(bi, bj)` of
/// matrix `mat` into a column-major tile buffer with stride `ts`.
pub fn load_full<T: Real, L: BatchLayout>(
    layout: &L,
    data: &[T],
    mat: usize,
    nb: usize,
    bi: usize,
    bj: usize,
    rows: usize,
    cols: usize,
    tile: &mut [T],
    ts: usize,
) {
    debug_assert!(ts >= rows);
    for c in 0..cols {
        for r in 0..rows {
            tile[r + c * ts] = data[layout.addr(mat, bi * nb + r, bj * nb + c)];
        }
    }
}

/// Stores a full `rows × cols` tile back to block `(bi, bj)` of matrix `mat`.
pub fn store_full<T: Real, L: BatchLayout>(
    layout: &L,
    data: &mut [T],
    mat: usize,
    nb: usize,
    bi: usize,
    bj: usize,
    rows: usize,
    cols: usize,
    tile: &[T],
    ts: usize,
) {
    debug_assert!(ts >= rows);
    for c in 0..cols {
        for r in 0..rows {
            data[layout.addr(mat, bi * nb + r, bj * nb + c)] = tile[r + c * ts];
        }
    }
}

/// Loads only the lower triangle (diagonal included) of a `d × d` diagonal
/// tile at block `(bk, bk)`.
pub fn load_lower<T: Real, L: BatchLayout>(
    layout: &L,
    data: &[T],
    mat: usize,
    nb: usize,
    bk: usize,
    d: usize,
    tile: &mut [T],
    ts: usize,
) {
    debug_assert!(ts >= d);
    for c in 0..d {
        for r in c..d {
            tile[r + c * ts] = data[layout.addr(mat, bk * nb + r, bk * nb + c)];
        }
    }
}

/// Stores only the lower triangle of a `d × d` diagonal tile back to block
/// `(bk, bk)`.
pub fn store_lower<T: Real, L: BatchLayout>(
    layout: &L,
    data: &mut [T],
    mat: usize,
    nb: usize,
    bk: usize,
    d: usize,
    tile: &[T],
    ts: usize,
) {
    debug_assert!(ts >= d);
    for c in 0..d {
        for r in c..d {
            data[layout.addr(mat, bk * nb + r, bk * nb + c)] = tile[r + c * ts];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibcf_layout::{Canonical, Chunked};

    #[test]
    fn full_round_trip_through_chunked_layout() {
        let n = 6;
        let nb = 2;
        let layout = Chunked::new(n, 64, 32);
        let mut data: Vec<f32> = (0..layout.len()).map(|x| x as f32).collect();
        let original = data.clone();
        let mut tile = vec![0.0f32; nb * nb];
        for bi in 0..n / nb {
            for bj in 0..n / nb {
                load_full(&layout, &data, 40, nb, bi, bj, nb, nb, &mut tile, nb);
                store_full(&layout, &mut data, 40, nb, bi, bj, nb, nb, &tile, nb);
            }
        }
        assert_eq!(data, original);
    }

    #[test]
    fn lower_leaves_upper_part_of_tile_buffer() {
        let n = 4;
        let layout = Canonical::new(n, 2);
        let data: Vec<f64> = (0..layout.len()).map(|x| x as f64).collect();
        let mut tile = vec![-1.0f64; 16];
        load_lower(&layout, &data, 1, 4, 0, 4, &mut tile, 4);
        // Strictly-upper entries of the tile are untouched sentinels.
        assert_eq!(tile[4], -1.0);
        assert_eq!(tile[2 + 3 * 4], -1.0);
        // Lower entries match the source.
        assert_eq!(tile[3], data[layout.addr(1, 3, 0)]);
        assert_eq!(tile[3 + 3 * 4], data[layout.addr(1, 3, 3)]);
    }

    #[test]
    fn ragged_tile_load() {
        // n = 5, nb = 2: the last block row/col is 1 wide.
        let n = 5;
        let nb = 2;
        let layout = Canonical::new(n, 1);
        let data: Vec<f64> = (0..layout.len()).map(|x| x as f64).collect();
        let mut tile = vec![-9.0f64; nb * nb];
        load_full(&layout, &data, 0, nb, 2, 0, 1, 2, &mut tile, nb);
        assert_eq!(tile[0], data[layout.addr(0, 4, 0)]);
        assert_eq!(tile[nb], data[layout.addr(0, 4, 1)]);
        // Rows beyond the ragged edge untouched.
        assert_eq!(tile[1], -9.0);
        assert_eq!(tile[1 + nb], -9.0);
    }

    #[test]
    fn store_lower_does_not_touch_upper_elements() {
        let n = 3;
        let layout = Canonical::new(n, 1);
        let mut data = vec![0.0f64; layout.len()];
        let tile = vec![5.0f64; 9];
        store_lower(&layout, &mut data, 0, 3, 0, 3, &tile, 3);
        assert_eq!(data[layout.addr(0, 0, 1)], 0.0);
        assert_eq!(data[layout.addr(0, 0, 2)], 0.0);
        assert_eq!(data[layout.addr(0, 1, 2)], 0.0);
        assert_eq!(data[layout.addr(0, 1, 0)], 5.0);
        assert_eq!(data[layout.addr(0, 2, 2)], 5.0);
    }
}
