//! Const-generic tile microkernels — the compile-time-unrolled analogue of
//! the paper's pyexpander-generated straight-line code.
//!
//! With `NB` a compile-time constant the optimizer fully unrolls every loop
//! and keeps the whole tile in registers, exactly the effect the paper gets
//! from textual macro expansion. A dispatch macro covers `NB` in
//! `1..=MAX_NB`.

use crate::scalar::Real;

/// Largest tile edge with a const-generic specialization. The paper sweeps
/// `nb` through 1..=8 (Figure 15 levels off around 8; Figure 20 bins go to
/// 9 including the full-register path).
pub const MAX_NB: usize = 8;

/// Const-generic `spotrf_tile`: factorizes the `NB × NB` lower triangle of
/// a tile stored in a flat column-major buffer of length `>= NB * NB`.
#[inline(always)]
pub fn potrf_tile_unrolled<T: Real, const NB: usize>(a: &mut [T]) -> Result<(), usize> {
    debug_assert!(a.len() >= NB * NB);
    for k in 0..NB {
        let akk = a[k + k * NB];
        // `!(akk > 0)` is deliberate: it also catches NaN pivots.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(akk > T::ZERO) || !akk.is_finite() {
            return Err(k);
        }
        let pivot = akk.sqrt();
        a[k + k * NB] = pivot;
        let inv = pivot.recip();
        for m in k + 1..NB {
            a[m + k * NB] *= inv;
        }
        for j in k + 1..NB {
            let ajk = a[j + k * NB];
            for m in j..NB {
                let amk = a[m + k * NB];
                a[m + j * NB] -= amk * ajk;
            }
        }
    }
    Ok(())
}

/// Const-generic `strsm_tile`: `B := B · L⁻ᵀ` for an `NB × NB` panel tile
/// against a factored diagonal tile.
#[inline(always)]
pub fn trsm_tile_unrolled<T: Real, const NB: usize>(l: &[T], b: &mut [T]) {
    debug_assert!(l.len() >= NB * NB && b.len() >= NB * NB);
    for row in 0..NB {
        for k in 0..NB {
            let x = b[row + k * NB] / l[k + k * NB];
            b[row + k * NB] = x;
            for j in k + 1..NB {
                let ljk = l[j + k * NB];
                b[row + j * NB] -= x * ljk;
            }
        }
    }
}

/// Const-generic `ssyrk_tile`: `C := C − A·Aᵀ` (lower part), all tiles
/// `NB × NB`.
#[inline(always)]
pub fn syrk_tile_unrolled<T: Real, const NB: usize>(a: &[T], c: &mut [T]) {
    debug_assert!(a.len() >= NB * NB && c.len() >= NB * NB);
    for col in 0..NB {
        for row in col..NB {
            let mut acc = c[row + col * NB];
            for p in 0..NB {
                acc -= a[row + p * NB] * a[col + p * NB];
            }
            c[row + col * NB] = acc;
        }
    }
}

/// Const-generic `sgemm_tile`: `C := C − A·Bᵀ`, all tiles `NB × NB`.
#[inline(always)]
pub fn gemm_tile_unrolled<T: Real, const NB: usize>(a: &[T], b: &[T], c: &mut [T]) {
    debug_assert!(a.len() >= NB * NB && b.len() >= NB * NB && c.len() >= NB * NB);
    for col in 0..NB {
        for row in 0..NB {
            let mut acc = c[row + col * NB];
            for p in 0..NB {
                acc -= a[row + p * NB] * b[col + p * NB];
            }
            c[row + col * NB] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::ops;

    fn seq(len: usize, scale: f64, off: f64) -> Vec<f64> {
        (0..len).map(|i| (i as f64) * scale + off).collect()
    }

    fn spd_tile<const NB: usize>() -> Vec<f64> {
        // Diagonally dominant symmetric tile: guaranteed SPD.
        let mut a = vec![0.0f64; NB * NB];
        for c in 0..NB {
            for r in 0..NB {
                a[r + c * NB] = 1.0 / (1.0 + (r as f64 - c as f64).abs());
            }
        }
        for i in 0..NB {
            a[i + i * NB] += NB as f64;
        }
        a
    }

    macro_rules! check_all_ops {
        ($nb:literal) => {{
            const NB: usize = $nb;
            // potrf
            let mut u = spd_tile::<NB>();
            let mut r = u.clone();
            potrf_tile_unrolled::<f64, NB>(&mut u).unwrap();
            ops::potrf_tile(NB, &mut r, NB).unwrap();
            for c in 0..NB {
                for row in c..NB {
                    assert!(
                        (u[row + c * NB] - r[row + c * NB]).abs() < 1e-13,
                        "potrf nb={}",
                        NB
                    );
                }
            }
            // trsm (l = factored diag tile from above)
            let l = u.clone();
            let mut bu = seq(NB * NB, 0.25, 1.0);
            let mut br = bu.clone();
            trsm_tile_unrolled::<f64, NB>(&l, &mut bu);
            ops::trsm_tile(NB, NB, &l, NB, &mut br, NB);
            assert_eq!(bu, br, "trsm nb={}", NB);
            // syrk
            let a = seq(NB * NB, 0.5, -1.0);
            let mut cu = seq(NB * NB, 1.0, 3.0);
            let mut cr = cu.clone();
            syrk_tile_unrolled::<f64, NB>(&a, &mut cu);
            ops::syrk_tile(NB, NB, &a, NB, &mut cr, NB);
            assert_eq!(cu, cr, "syrk nb={}", NB);
            // gemm
            let b = seq(NB * NB, -0.75, 2.0);
            let mut gu = seq(NB * NB, 2.0, 0.0);
            let mut gr = gu.clone();
            gemm_tile_unrolled::<f64, NB>(&a, &b, &mut gu);
            ops::gemm_tile(NB, NB, NB, &a, NB, &b, NB, &mut gr, NB);
            assert_eq!(gu, gr, "gemm nb={}", NB);
        }};
    }

    #[test]
    fn unrolled_matches_runtime_for_every_nb() {
        check_all_ops!(1);
        check_all_ops!(2);
        check_all_ops!(3);
        check_all_ops!(4);
        check_all_ops!(5);
        check_all_ops!(6);
        check_all_ops!(7);
        check_all_ops!(8);
    }

    #[test]
    fn potrf_unrolled_error_reporting() {
        let mut bad = vec![0.0f64; 4]; // zero pivot
        assert_eq!(potrf_tile_unrolled::<f64, 2>(&mut bad), Err(0));
    }
}
