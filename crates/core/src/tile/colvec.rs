//! Column-vectorized tile microkernels — the large-tile leaves of the
//! task-graph factorization (`core::tiled`).
//!
//! The runtime-size kernels in [`ops`](super::ops) mirror the paper's
//! generated device code: their innermost loops walk tile *rows*, which in
//! a column-major tile means stride-`ts` accesses the autovectorizer cannot
//! turn into SIMD. That is fine for the `nb ≤ 8` tiles the batched paths
//! use (the `unrolled` forms dominate there), but the task-graph runtime
//! works on `nb ∈ {8..32}` tiles where the update kernels are the hot path.
//!
//! These variants compute the same operations with the loops interchanged
//! so every innermost loop runs down one tile *column* with stride 1 — the
//! shape the autovectorizer reliably turns into packed FMAs. Loop
//! interchange only reorders *independent* element updates; the per-element
//! sequence of operations is unchanged, so:
//!
//! * [`syrk_tile_colvec`] and [`gemm_tile_colvec`] are **bitwise
//!   identical** to [`syrk_tile`](super::syrk_tile) /
//!   [`gemm_tile`](super::gemm_tile) (pinned by tests below);
//! * [`trsm_tile_colvec`] additionally scales by the *reciprocal* of the
//!   pivot (one `recip` per column, then multiplies) instead of dividing
//!   every element — exactly how [`potrf_unblocked`]
//!   (crate::reference::potrf_unblocked) and
//!   [`potrf_tile`](super::potrf_tile) scale their pivot columns. It is
//!   therefore bitwise identical to the *unblocked oracle's* panel
//!   updates, and differs from [`trsm_tile`](super::trsm_tile) (which
//!   divides) by ≤ 1 ulp per element.
//!
//! The combination of `potrf_tile`, `trsm_tile_colvec`, `syrk_tile_colvec`
//! and `gemm_tile_colvec`, applied in any topological order of the tiled
//! dependency DAG with ascending-`k` accumulation, reproduces
//! `potrf_unblocked` bit for bit — the property `core::tiled` builds on.

// BLAS-shaped signatures: explicit dims and strides per operand.
#![allow(clippy::too_many_arguments)]

use crate::scalar::Real;

/// Triangular solve of an `m × d` panel tile against a factored `d × d`
/// diagonal tile: `B := B · L⁻ᵀ`, column-vectorized.
///
/// Scales by `recip(l[k][k])` like the unblocked oracle (see module docs);
/// innermost loops are stride-1 over panel columns.
pub fn trsm_tile_colvec<T: Real>(
    m: usize,
    d: usize,
    l: &[T],
    ts_l: usize,
    b: &mut [T],
    ts_b: usize,
) {
    debug_assert!(ts_l >= d && ts_b >= m);
    for k in 0..d {
        let inv = l[k + k * ts_l].recip();
        let rest = &mut b[k * ts_b..];
        let head_len = ts_b.min(rest.len());
        let (head, tail) = rest.split_at_mut(head_len);
        let col_k = &mut head[..m];
        for x in col_k.iter_mut() {
            *x *= inv;
        }
        let col_k = &head[..m];
        for j in k + 1..d {
            let ljk = l[j + k * ts_l];
            let col_j = &mut tail[(j - k - 1) * ts_b..(j - k - 1) * ts_b + m];
            for (x, &xk) in col_j.iter_mut().zip(col_k) {
                *x -= xk * ljk;
            }
        }
    }
}

/// Symmetric rank-k update of a `d × d` diagonal tile's lower triangle:
/// `C := C − A·Aᵀ` where `A` is `d × k`, column-vectorized.
///
/// Bitwise identical to [`syrk_tile`](super::syrk_tile).
pub fn syrk_tile_colvec<T: Real>(
    d: usize,
    k: usize,
    a: &[T],
    ts_a: usize,
    c: &mut [T],
    ts_c: usize,
) {
    debug_assert!(ts_a >= d && ts_c >= d);
    for col in 0..d {
        let c_col = &mut c[col + col * ts_c..col * ts_c + d];
        for p in 0..k {
            let acp = a[col + p * ts_a];
            let a_col = &a[col + p * ts_a..p * ts_a + d];
            for (x, &arp) in c_col.iter_mut().zip(a_col) {
                *x -= arp * acp;
            }
        }
    }
}

/// General update `C := C − A·Bᵀ` where `A` is `m × k`, `B` is `n × k`,
/// and `C` is `m × n`, column-vectorized.
///
/// Bitwise identical to [`gemm_tile`](super::gemm_tile).
pub fn gemm_tile_colvec<T: Real>(
    m: usize,
    n: usize,
    k: usize,
    a: &[T],
    ts_a: usize,
    b: &[T],
    ts_b: usize,
    c: &mut [T],
    ts_c: usize,
) {
    debug_assert!(ts_a >= m && ts_b >= n && ts_c >= m);
    for col in 0..n {
        let c_col = &mut c[col * ts_c..col * ts_c + m];
        for p in 0..k {
            let bcp = b[col + p * ts_b];
            let a_col = &a[p * ts_a..p * ts_a + m];
            for (x, &arp) in c_col.iter_mut().zip(a_col) {
                *x -= arp * bcp;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::{gemm_tile, syrk_tile, trsm_tile};

    fn pseudo(seed: u64, len: usize) -> Vec<f32> {
        let mut s = seed;
        (0..len)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn syrk_colvec_bitwise_matches_naive() {
        for (d, k, ts) in [(3, 2, 3), (8, 8, 8), (16, 8, 16), (5, 7, 8)] {
            let a = pseudo(1, ts * k);
            let c0 = pseudo(2, ts * d);
            let mut c_naive = c0.clone();
            let mut c_vec = c0;
            syrk_tile(d, k, &a, ts, &mut c_naive, ts);
            syrk_tile_colvec(d, k, &a, ts, &mut c_vec, ts);
            assert_eq!(
                c_naive.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                c_vec.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "d={d} k={k}"
            );
        }
    }

    #[test]
    fn gemm_colvec_bitwise_matches_naive() {
        for (m, n, k, ts) in [(3, 4, 2, 4), (8, 8, 8, 8), (16, 16, 16, 16), (7, 3, 5, 8)] {
            let a = pseudo(3, ts * k);
            let b = pseudo(4, ts * k);
            let c0 = pseudo(5, ts * n);
            let mut c_naive = c0.clone();
            let mut c_vec = c0;
            gemm_tile(m, n, k, &a, ts, &b, ts, &mut c_naive, ts);
            gemm_tile_colvec(m, n, k, &a, ts, &b, ts, &mut c_vec, ts);
            assert_eq!(
                c_naive.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                c_vec.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "m={m} n={n} k={k}"
            );
        }
    }

    #[test]
    fn trsm_colvec_matches_naive_to_a_ulp() {
        // The colvec variant multiplies by recip(pivot) (oracle style); the
        // naive variant divides: ≤ 1 ulp per scale, accumulating over the
        // d back-substitution steps — bound the drift generously.
        for (m, d, ts) in [(3, 3, 3), (8, 8, 8), (16, 16, 16), (5, 7, 8)] {
            // A well-conditioned lower-triangular L: diag-dominant.
            let mut l = pseudo(6, ts * d);
            for i in 0..d {
                l[i + i * ts] = 2.0 + i as f32 * 0.25;
            }
            let b0 = pseudo(7, ts * d);
            let mut b_naive = b0.clone();
            let mut b_vec = b0;
            trsm_tile(m, d, &l, ts, &mut b_naive, ts);
            trsm_tile_colvec(m, d, &l, ts, &mut b_vec, ts);
            for col in 0..d {
                for row in 0..m {
                    let x = b_naive[row + col * ts];
                    let y = b_vec[row + col * ts];
                    let scale = x.abs().max(y.abs()).max(f32::MIN_POSITIVE);
                    assert!(
                        (x - y).abs() <= 64.0 * f32::EPSILON * scale,
                        "({row},{col}): {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn trsm_colvec_matches_oracle_panel_bitwise() {
        // Scaling a panel column by recip(pivot) then applying ascending-k
        // updates is exactly what potrf_unblocked does to rows below the
        // diagonal block. Reproduce its op sequence by hand and compare
        // bitwise.
        let d = 4usize;
        let m = 3usize;
        let mut l = pseudo(8, d * d);
        for i in 0..d {
            l[i + i * d] = 1.5 + i as f32;
        }
        let b0 = pseudo(9, m * d);
        let mut b = b0.clone();
        trsm_tile_colvec(m, d, &l, d, &mut b, m);
        // Oracle-order replay: for k ascending, scale col k by recip, then
        // subtract x_k * l[j][k] from cols j > k.
        let mut want = b0;
        for k in 0..d {
            let inv = l[k + k * d].recip();
            for r in 0..m {
                want[r + k * m] *= inv;
            }
            for j in k + 1..d {
                let ljk = l[j + k * d];
                for r in 0..m {
                    let t = want[r + k * m] * ljk;
                    want[r + j * m] -= t;
                }
            }
        }
        assert_eq!(
            b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }
}
