//! Tile microkernels — the building blocks of Figure 9 in the paper.
//!
//! The factorizations operate on `nb × nb` tiles held in small contiguous
//! buffers ("register tiles"). Four operations suffice:
//!
//! * [`potrf_tile`] — Cholesky factorization of a diagonal tile,
//! * [`trsm_tile`] — triangular solve `B := B · L⁻ᵀ` against a factored
//!   diagonal tile,
//! * [`syrk_tile`] — symmetric rank-k update `C := C − A·Aᵀ` (lower part),
//! * [`gemm_tile`] — general update `C := C − A·Bᵀ`.
//!
//! All are provided in two forms: runtime-size (`ops`), taking explicit
//! dimensions so ragged last tiles (`n % nb != 0`) use the same code, and
//! const-generic (`unrolled`), where the loop bounds are compile-time
//! constants so the compiler fully unrolls them — the Rust analogue of the
//! paper's pyexpander-generated straight-line code. A third form
//! (`colvec`) interchanges the loops so every innermost loop is stride-1
//! down a tile column — the large-tile leaves of the task-graph runtime
//! ([`tiled`](crate::tiled)), bitwise-compatible with the others (see the
//! `colvec` module docs for the exact equivalences).
//!
//! Tiles are column-major with an explicit tile stride (`ts`), normally the
//! tile's allocated edge `nb`.

mod colvec;
mod loadstore;
mod ops;
mod unrolled;

pub use colvec::{gemm_tile_colvec, syrk_tile_colvec, trsm_tile_colvec};
pub use loadstore::{load_full, load_lower, store_full, store_lower};
pub use ops::{gemm_tile, potrf_tile, syrk_tile, trsm_tile};
pub use unrolled::{
    gemm_tile_unrolled, potrf_tile_unrolled, syrk_tile_unrolled, trsm_tile_unrolled, MAX_NB,
};
