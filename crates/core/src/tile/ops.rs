//! Runtime-size tile microkernels.
//!
//! Dimensions are explicit so the ragged last tile of a factorization with
//! `n % nb != 0` reuses the same code with smaller bounds — the "corner
//! case kernels" the paper mentions but does not list.

// BLAS-shaped signatures: explicit dims and strides per operand.
#![allow(clippy::too_many_arguments)]

use crate::scalar::Real;

/// Cholesky-factorizes the `d × d` lower triangle of a column-major tile
/// with tile stride `ts` (the paper's `spotrf_tile`). Returns the failing
/// column on a non-positive or non-finite pivot.
pub fn potrf_tile<T: Real>(d: usize, a: &mut [T], ts: usize) -> Result<(), usize> {
    debug_assert!(ts >= d);
    for k in 0..d {
        let akk = a[k + k * ts];
        // `!(akk > 0)` is deliberate: it also catches NaN pivots.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(akk > T::ZERO) || !akk.is_finite() {
            return Err(k);
        }
        let pivot = akk.sqrt();
        a[k + k * ts] = pivot;
        let inv = pivot.recip();
        for m in k + 1..d {
            a[m + k * ts] *= inv;
        }
        for j in k + 1..d {
            let ajk = a[j + k * ts];
            for m in j..d {
                let amk = a[m + k * ts];
                a[m + j * ts] -= amk * ajk;
            }
        }
    }
    Ok(())
}

/// Triangular solve of an `m × d` panel tile against a factored `d × d`
/// diagonal tile: `B := B · L⁻ᵀ` (the paper's `strsm_tile`).
///
/// `l` is the lower-triangular factor (tile stride `ts_l`), `b` the panel
/// being solved in place (tile stride `ts_b`).
pub fn trsm_tile<T: Real>(m: usize, d: usize, l: &[T], ts_l: usize, b: &mut [T], ts_b: usize) {
    debug_assert!(ts_l >= d && ts_b >= m);
    for row in 0..m {
        for k in 0..d {
            let x = b[row + k * ts_b] / l[k + k * ts_l];
            b[row + k * ts_b] = x;
            for j in k + 1..d {
                let ljk = l[j + k * ts_l];
                b[row + j * ts_b] -= x * ljk;
            }
        }
    }
}

/// Symmetric rank-k update of a `d × d` diagonal tile's lower triangle:
/// `C := C − A·Aᵀ` where `A` is `d × k` (the paper's `ssyrk_tile`).
pub fn syrk_tile<T: Real>(d: usize, k: usize, a: &[T], ts_a: usize, c: &mut [T], ts_c: usize) {
    debug_assert!(ts_a >= d && ts_c >= d);
    for col in 0..d {
        for row in col..d {
            let mut acc = c[row + col * ts_c];
            for p in 0..k {
                acc -= a[row + p * ts_a] * a[col + p * ts_a];
            }
            c[row + col * ts_c] = acc;
        }
    }
}

/// General update `C := C − A·Bᵀ` where `A` is `m × k`, `B` is `n × k`, and
/// `C` is `m × n` (the paper's `sgemm_tile`).
pub fn gemm_tile<T: Real>(
    m: usize,
    n: usize,
    k: usize,
    a: &[T],
    ts_a: usize,
    b: &[T],
    ts_b: usize,
    c: &mut [T],
    ts_c: usize,
) {
    debug_assert!(ts_a >= m && ts_b >= n && ts_c >= m);
    for col in 0..n {
        for row in 0..m {
            let mut acc = c[row + col * ts_c];
            for p in 0..k {
                acc -= a[row + p * ts_a] * b[col + p * ts_b];
            }
            c[row + col * ts_c] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::ColMatrix;
    use crate::reference::potrf;
    use crate::spd::{random_spd, SpdKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn potrf_tile_matches_reference() {
        let mut rng = StdRng::seed_from_u64(11);
        for d in 1..=8usize {
            let a = random_spd::<f64>(d, SpdKind::Wishart, &mut rng);
            let mut tile = a.clone().into_vec();
            let mut reference = a.into_vec();
            potrf_tile(d, &mut tile, d).unwrap();
            potrf(d, &mut reference).unwrap();
            for c in 0..d {
                for r in c..d {
                    assert!((tile[r + c * d] - reference[r + c * d]).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn potrf_tile_reports_failing_column() {
        let mut tile = vec![1.0f64, 2.0, 2.0, 1.0];
        assert_eq!(potrf_tile(2, &mut tile, 2), Err(1));
    }

    #[test]
    fn trsm_solves_xlt_eq_b() {
        let mut rng = StdRng::seed_from_u64(13);
        let d = 5;
        let m = 3;
        let spd = random_spd::<f64>(d, SpdKind::Wishart, &mut rng);
        let mut l = spd.into_vec();
        potrf(d, &mut l).unwrap();
        let b0 = ColMatrix::<f64>::from_fn(m, d, |r, c| (r + 2 * c) as f64 + 0.5);
        let mut b = b0.clone().into_vec();
        trsm_tile(m, d, &l, d, &mut b, m);
        // Check X · Lᵀ == B: B0[row][col] = Σ_k X[row][k] · L[col][k].
        for col in 0..d {
            for row in 0..m {
                let mut s = 0.0;
                for k in 0..=col {
                    s += b[row + k * m] * l[col + k * d];
                }
                assert!((s - b0[(row, col)]).abs() < 1e-10, "({row},{col})");
            }
        }
    }

    #[test]
    fn syrk_matches_explicit_product() {
        let d = 4;
        let k = 3;
        let a = ColMatrix::<f64>::from_fn(d, k, |r, c| (r as f64) - (c as f64) * 0.5);
        let c0 = ColMatrix::<f64>::from_fn(d, d, |r, c| (r * d + c) as f64);
        let mut c = c0.clone().into_vec();
        syrk_tile(d, k, a.as_slice(), d, &mut c, d);
        let aat = a.matmul(&a.transpose());
        for col in 0..d {
            for row in col..d {
                let want = c0[(row, col)] - aat[(row, col)];
                assert!((c[row + col * d] - want).abs() < 1e-12);
            }
        }
        // Upper triangle untouched.
        for col in 1..d {
            for row in 0..col {
                assert_eq!(c[row + col * d], c0[(row, col)]);
            }
        }
    }

    #[test]
    fn gemm_matches_explicit_product() {
        let (m, n, k) = (3usize, 4usize, 2usize);
        let a = ColMatrix::<f64>::from_fn(m, k, |r, c| (r + c) as f64 + 1.0);
        let b = ColMatrix::<f64>::from_fn(n, k, |r, c| (r as f64) * 2.0 - c as f64);
        let c0 = ColMatrix::<f64>::from_fn(m, n, |r, c| (r * 7 + c) as f64);
        let mut c = c0.clone().into_vec();
        gemm_tile(m, n, k, a.as_slice(), m, b.as_slice(), n, &mut c, m);
        let abt = a.matmul(&b.transpose());
        for col in 0..n {
            for row in 0..m {
                let want = c0[(row, col)] - abt[(row, col)];
                assert!((c[row + col * m] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn zero_k_updates_are_noops() {
        let d = 3;
        let c0: Vec<f64> = (0..9).map(|x| x as f64).collect();
        let mut c = c0.clone();
        syrk_tile(d, 0, &[], d, &mut c, d);
        assert_eq!(c, c0);
        gemm_tile(d, d, 0, &[], d, &[], d, &mut c, d);
        assert_eq!(c, c0);
    }

    #[test]
    fn composed_tiles_factor_a_two_tile_matrix() {
        // Factor a 2nb × 2nb SPD matrix manually with the four microkernels
        // (right-looking) and compare with the reference.
        let nb = 3;
        let n = 2 * nb;
        let mut rng = StdRng::seed_from_u64(17);
        let a0 = random_spd::<f64>(n, SpdKind::Wishart, &mut rng);
        let mut reference = a0.clone().into_vec();
        potrf(n, &mut reference).unwrap();

        // Extract tiles (column-major n, tiles at (bi, bj)).
        let get = |src: &[f64], bi: usize, bj: usize| {
            let mut t = vec![0.0f64; nb * nb];
            for c in 0..nb {
                for r in 0..nb {
                    t[r + c * nb] = src[(bi * nb + r) + (bj * nb + c) * n];
                }
            }
            t
        };
        let a = a0.into_vec();
        let mut t00 = get(&a, 0, 0);
        let mut t10 = get(&a, 1, 0);
        let mut t11 = get(&a, 1, 1);

        potrf_tile(nb, &mut t00, nb).unwrap();
        trsm_tile(nb, nb, &t00, nb, &mut t10, nb);
        syrk_tile(nb, nb, &t10, nb, &mut t11, nb);
        potrf_tile(nb, &mut t11, nb).unwrap();

        let ref00 = get(&reference, 0, 0);
        let ref10 = get(&reference, 1, 0);
        let ref11 = get(&reference, 1, 1);
        for i in 0..nb * nb {
            assert!((t10[i] - ref10[i]).abs() < 1e-10);
        }
        for c in 0..nb {
            for r in c..nb {
                assert!((t00[r + c * nb] - ref00[r + c * nb]).abs() < 1e-10);
                assert!((t11[r + c * nb] - ref11[r + c * nb]).abs() < 1e-10);
            }
        }
    }
}
