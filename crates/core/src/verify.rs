//! Residual and reconstruction checks for factorization results.

use crate::scalar::Real;
use ibcf_layout::BatchLayout;

/// Relative reconstruction error `‖A − L·Lᵀ‖_F / ‖A‖_F` where `a` is the
/// original matrix and `l` the computed factor, both column-major `n × n`
/// with leading dimension `lda`. Only the lower triangles are consulted:
/// `A` is symmetrized from its lower triangle and `L`'s strictly-upper
/// entries are ignored, matching what the factorization routines touch.
pub fn reconstruction_error<T: Real>(n: usize, a: &[T], l: &[T], lda: usize) -> f64 {
    assert!(lda >= n);
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for j in 0..n {
        for i in 0..n {
            let (r, c) = if i >= j { (i, j) } else { (j, i) };
            let aij = a[r + c * lda].to_f64();
            // (L·Lᵀ)[i][j] = Σ_k L[i][k]·L[j][k] for k <= min(i, j).
            let mut llt = 0.0f64;
            for k in 0..=i.min(j) {
                llt += l[i + k * lda].to_f64() * l[j + k * lda].to_f64();
            }
            num += (aij - llt) * (aij - llt);
            den += aij * aij;
        }
    }
    if den == 0.0 {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

/// Largest absolute elementwise difference between the lower triangles of
/// two column-major `n × n` buffers.
pub fn max_lower_diff<T: Real>(n: usize, a: &[T], b: &[T], lda: usize) -> f64 {
    let mut worst = 0.0f64;
    for c in 0..n {
        for r in c..n {
            let d = (a[r + c * lda].to_f64() - b[r + c * lda].to_f64()).abs();
            worst = worst.max(d);
        }
    }
    worst
}

/// `true` iff every lower-triangle entry is finite.
pub fn lower_is_finite<T: Real>(n: usize, a: &[T], lda: usize) -> bool {
    (0..n).all(|c| (c..n).all(|r| a[r + c * lda].is_finite()))
}

/// Verifies a whole factored batch against the original batch: returns the
/// worst per-matrix relative reconstruction error. `orig` and `fact` must
/// use the same layout.
pub fn batch_reconstruction_error<T: Real, L: BatchLayout>(
    layout: &L,
    orig: &[T],
    fact: &[T],
) -> f64 {
    let n = layout.n();
    let mut a = vec![T::ZERO; n * n];
    let mut l = vec![T::ZERO; n * n];
    let mut worst = 0.0f64;
    for mat in 0..layout.batch() {
        ibcf_layout::gather_matrix(layout, orig, mat, &mut a, n);
        ibcf_layout::gather_matrix(layout, fact, mat, &mut l, n);
        worst = worst.max(reconstruction_error(n, &a, &l, n));
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::ColMatrix;
    use crate::reference::potrf;
    use crate::spd::{random_spd, SpdKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_error_for_exact_factor() {
        let l = ColMatrix::from_col_major(2, 2, vec![3.0f64, 4.0, 0.0, 5.0]);
        let a = l.matmul(&l.transpose());
        let err = reconstruction_error(2, a.as_slice(), l.as_slice(), 2);
        assert!(err < 1e-15, "err = {err}");
    }

    #[test]
    fn detects_wrong_factor() {
        let l = ColMatrix::from_col_major(2, 2, vec![3.0f64, 4.0, 0.0, 5.0]);
        let a = l.matmul(&l.transpose());
        let mut bad = l.clone();
        bad[(1, 0)] += 1.0;
        let err = reconstruction_error(2, a.as_slice(), bad.as_slice(), 2);
        assert!(err > 1e-2, "err = {err}");
    }

    #[test]
    fn ignores_upper_garbage() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = random_spd::<f64>(5, SpdKind::Wishart, &mut rng);
        let mut f = a.clone();
        potrf(5, f.as_mut_slice()).unwrap();
        // Poison the strictly-upper triangle of both.
        let mut a2 = a.clone();
        for c in 0..5 {
            for r in 0..c {
                a2[(r, c)] = 777.0;
                f[(r, c)] = -777.0;
            }
        }
        let err = reconstruction_error(5, a2.as_slice(), f.as_slice(), 5);
        assert!(err < 1e-12, "err = {err}");
    }

    #[test]
    fn finiteness_check() {
        let mut a = vec![1.0f32; 9];
        assert!(lower_is_finite(3, &a, 3));
        a[2 * 3] = f32::INFINITY; // upper entry: ignored
        assert!(lower_is_finite(3, &a, 3));
        a[2] = f32::NAN; // lower entry: caught
        assert!(!lower_is_finite(3, &a, 3));
    }

    #[test]
    fn max_lower_diff_ignores_upper() {
        let a = vec![1.0f64, 2.0, 3.0, 9.0, 4.0, 5.0, 9.0, 9.0, 6.0];
        let mut b = a.clone();
        b[3] = -100.0; // upper
        assert_eq!(max_lower_diff(3, &a, &b, 3), 0.0);
        b[2 + 3] += 0.5; // lower
        assert!((max_lower_diff(3, &a, &b, 3) - 0.5).abs() < 1e-15);
    }
}
