//! Criterion benches for the batch layouts: address computation and
//! whole-batch transcoding between layouts.

use criterion::{criterion_group, criterion_main, Criterion};
use ibcf_layout::{transcode, BatchLayout, Canonical, Chunked, Interleaved, Layout};
use std::hint::black_box;

fn bench_addr(c: &mut Criterion) {
    let n = 16;
    let batch = 4096;
    let layouts: Vec<(&str, Layout)> = vec![
        ("canonical", Layout::Canonical(Canonical::new(n, batch))),
        (
            "interleaved",
            Layout::Interleaved(Interleaved::new(n, batch)),
        ),
        ("chunked64", Layout::Chunked(Chunked::new(n, batch, 64))),
    ];
    let mut g = c.benchmark_group("addr_sweep_16x16x4096");
    g.sample_size(30);
    for (name, layout) in layouts {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for mat in (0..batch).step_by(37) {
                    for col in 0..n {
                        for row in col..n {
                            acc = acc.wrapping_add(layout.addr(mat, row, col));
                        }
                    }
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_transcode(c: &mut Criterion) {
    let n = 24;
    let batch = 2048;
    let canon = Canonical::new(n, batch);
    let data: Vec<f32> = (0..canon.len()).map(|i| i as f32).collect();
    let mut g = c.benchmark_group("transcode_24x24x2048");
    g.sample_size(20);
    g.bench_function("canonical_to_interleaved", |b| {
        let dst = Interleaved::new(n, batch);
        b.iter(|| black_box(transcode(&canon, &data, &dst)))
    });
    g.bench_function("canonical_to_chunked64", |b| {
        let dst = Chunked::new(n, batch, 64);
        b.iter(|| black_box(transcode(&canon, &data, &dst)))
    });
    let inter = Interleaved::new(n, batch);
    let inter_data = transcode(&canon, &data, &inter);
    g.bench_function("interleaved_to_canonical", |b| {
        b.iter(|| black_box(transcode(&inter, &inter_data, &canon)))
    });
    g.finish();
}

criterion_group!(benches, bench_addr, bench_transcode);
criterion_main!(benches);
