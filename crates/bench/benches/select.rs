//! Selector-strategy bench: configs evaluated and tuning wall-time vs
//! regret, per strategy. The exhaustive sweep is the reference (zero
//! regret by construction); the analytic and hill selectors trade a
//! bounded regret for measuring a small fraction of the grid. The
//! summary printed at the end is the table EXPERIMENTS.md quotes.

use criterion::{criterion_group, criterion_main, Criterion};
use ibcf_autotune::{run_sizes, BestTable, ParamSpace, SelectorKind, SilentProgress, SweepOptions};
use ibcf_gpu_sim::GpuSpec;

const SIZES: &[usize] = &[8, 16, 24, 32];
const BATCH: usize = 4096;

fn opts() -> SweepOptions {
    SweepOptions {
        batch: BATCH,
        progress_every: 0,
        ..Default::default()
    }
}

fn run(kind: SelectorKind) -> (usize, f64) {
    let report = run_sizes(
        kind,
        &ParamSpace::quick(),
        SIZES,
        &GpuSpec::p100(),
        &opts(),
        &SilentProgress,
    );
    (report.evaluated(), report.wall_s)
}

fn bench_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("select");
    group.sample_size(10);
    for kind in [
        SelectorKind::Exhaustive,
        SelectorKind::Analytic,
        SelectorKind::Hill,
    ] {
        group.bench_function(kind.name(), |b| b.iter(|| run(kind)));
    }
    group.finish();

    // Headline table: evaluations, wall time, and true regret per
    // strategy against the exhaustive winner.
    let space = ParamSpace::quick();
    let spec = GpuSpec::p100();
    let exhaustive = run_sizes(
        SelectorKind::Exhaustive,
        &space,
        SIZES,
        &spec,
        &opts(),
        &SilentProgress,
    );
    let exhaustive_ds = exhaustive.dataset(&space);
    let truth = BestTable::new(&exhaustive_ds);
    println!("selector     configs      wall_s   worst_regret");
    for kind in [
        SelectorKind::Exhaustive,
        SelectorKind::Analytic,
        SelectorKind::Hill,
    ] {
        let report = run_sizes(kind, &space, SIZES, &spec, &opts(), &SilentProgress);
        let worst = report
            .outcomes
            .iter()
            .map(|o| {
                let best = truth.best(o.n).expect("exhaustive covers every size");
                o.best.time_s / best.time_s - 1.0
            })
            .fold(0.0f64, f64::max);
        println!(
            "{:<12} {:>4}/{:<6} {:>8.3}s {:>12.2}%",
            kind.name(),
            report.evaluated(),
            report.grid_total(),
            report.wall_s,
            worst * 100.0
        );
    }
}

criterion_group!(benches, bench_select);
criterion_main!(benches);
