//! Criterion benches for the random-forest substrate: fitting, prediction,
//! and permutation importance on a synthetic regression task.

use criterion::{criterion_group, criterion_main, Criterion};
use ibcf_forest::{permutation_importance, Forest, ForestConfig, TableData};
use std::hint::black_box;

fn synth(n: usize) -> TableData {
    let mut rows = Vec::new();
    let mut targets = Vec::new();
    let mut state = 42u64;
    let mut unit = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 40) as f64 / (1u64 << 24) as f64
    };
    for _ in 0..n {
        let x: Vec<f64> = (0..7).map(|_| unit()).collect();
        let y = 5.0 * x[0] - 3.0 * x[1] * x[1] + x[2] + 0.1 * (unit() - 0.5);
        rows.push(x);
        targets.push(y);
    }
    TableData::new((0..7).map(|i| format!("x{i}")).collect(), rows, targets)
}

fn bench_fit(c: &mut Criterion) {
    let data = synth(2000);
    let mut g = c.benchmark_group("forest");
    g.sample_size(10);
    g.bench_function("fit_100_trees_2000_rows", |b| {
        b.iter(|| {
            let f = Forest::fit(
                &data,
                ForestConfig {
                    num_trees: 100,
                    ..ForestConfig::default()
                },
            );
            black_box(f.trees().len())
        })
    });
    let forest = Forest::fit(
        &data,
        ForestConfig {
            num_trees: 100,
            ..ForestConfig::default()
        },
    );
    g.bench_function("predict_2000_rows", |b| {
        b.iter(|| {
            let s: f64 = data.rows.iter().map(|r| forest.predict(r)).sum();
            black_box(s)
        })
    });
    g.bench_function("permutation_importance", |b| {
        b.iter(|| black_box(permutation_importance(&forest, &data, 1).inc_mse[0]))
    });
    g.finish();
}

criterion_group!(benches, bench_fit);
criterion_main!(benches);
