//! Criterion benches for the large-matrix task-graph runtime: the
//! sequential blocked factorization (per-op gather through the batch
//! layout) against the `core::tiled` DAG — packed once into tile-major
//! storage, executed sequentially or by the work-stealing pool. This is
//! the batched-vs-blocked crossover machinery behind the EXPERIMENTS.md
//! table and the `ibcf tiled-bench` CLI command.

use criterion::{criterion_group, criterion_main, Criterion};
use ibcf_core::spd::{fill_batch_spd, SpdKind};
use ibcf_core::{potrf_blocked, potrf_tiled_seq, potrf_tiled_threads, Looking};
use ibcf_layout::{alloc_batch, Canonical};
use std::hint::black_box;

fn spd(n: usize) -> Vec<f32> {
    let layout = Canonical::new(n, 1);
    let mut batch = alloc_batch::<f32, _>(&layout);
    fill_batch_spd(&layout, &mut batch, SpdKind::DiagDominant, 42);
    batch[..n * n].to_vec()
}

fn bench_large_factor(c: &mut Criterion) {
    let nb = 32usize;
    for n in [128usize, 256] {
        let mut g = c.benchmark_group(format!("large_factor_n{n}"));
        g.sample_size(10);
        let pristine = spd(n);

        g.bench_function("blocked_seq", |b| {
            b.iter(|| {
                let layout = Canonical::new(n, 1);
                let mut a = pristine.clone();
                potrf_blocked(&layout, &mut a, 0, nb, Looking::Right).unwrap();
                black_box(a[0])
            })
        });
        g.bench_function("dag_seq", |b| {
            b.iter(|| {
                let mut a = pristine.clone();
                potrf_tiled_seq(n, &mut a, n, nb, Looking::Right).unwrap();
                black_box(a[0])
            })
        });
        g.bench_function("dag_par", |b| {
            let threads = std::thread::available_parallelism()
                .map_or(2, usize::from)
                .max(2);
            b.iter(|| {
                let mut a = pristine.clone();
                potrf_tiled_threads(n, &mut a, n, nb, Looking::Right, threads).unwrap();
                black_box(a[0])
            })
        });
        g.finish();
    }
}

fn bench_looking_orders(c: &mut Criterion) {
    let (n, nb) = (192usize, 32usize);
    let mut g = c.benchmark_group(format!("dag_looking_n{n}"));
    g.sample_size(10);
    let pristine = spd(n);
    for looking in Looking::ALL {
        g.bench_function(looking.name(), |b| {
            b.iter(|| {
                let mut a = pristine.clone();
                potrf_tiled_seq(n, &mut a, n, nb, looking).unwrap();
                black_box(a[0])
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_large_factor, bench_looking_orders);
criterion_main!(benches);
