//! Criterion benches for the dynamic-batching service's hot path.
//!
//! Two tiers:
//! * `former_pack` — the batch former alone, in both ingest modes:
//!   `fused` scatters each payload once straight into the aligned
//!   interleaved group buffer (identity tail written in place), while
//!   `staged` is the legacy canonical-stage-then-`pack_batch_host`
//!   round trip kept for A/B reference;
//! * `service_end_to_end` — submit/factorize/reply through a running
//!   in-process service with one worker, measuring sustained
//!   matrices/second including queueing, forming, and reply routing.
//!   Variants cross the fault hook (disabled vs enabled-but-inert, so
//!   a regression in the "zero-cost when disabled" claim shows up as a
//!   gap) with the engine/ingest pairing: `simd_fused` is the default
//!   fast path, `autovec_staged` the pre-SIMD pre-fusion baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use ibcf_core::spd::{random_spd, SpdKind};
use ibcf_core::LaneBackend;
use ibcf_service::former::form_batch_mode;
use ibcf_service::request::{Payload, Pending, ReplySink};
use ibcf_service::{
    Dtype, EngineSelector, FaultHook, FaultPlan, IngestMode, Service, ServiceConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const N: usize = 16;
const BATCH: usize = 1024;

fn spd_f32(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    random_spd::<f32>(n, SpdKind::Wishart, &mut rng).into_vec()
}

fn pending_batch(n: usize, count: usize, pool: &[Vec<f32>]) -> Vec<Pending> {
    (0..count)
        .map(|i| Pending {
            id: i as u64,
            n,
            payload: Payload::F32(pool[i % pool.len()].clone()),
            enqueued: Instant::now(),
            deadline: None,
            sink: ReplySink::boxed(|_| {}),
        })
        .collect()
}

fn bench_former(c: &mut Criterion) {
    let selector = EngineSelector::heuristic();
    let plan = selector.plan(N);
    let pool: Vec<Vec<f32>> = (0..16).map(|i| spd_f32(N, 100 + i)).collect();
    let mut g = c.benchmark_group(format!("former_pack_n{N}"));
    g.sample_size(10);
    // Non-lane-multiple count exercises the identity-padding tail too.
    for count in [BATCH, BATCH + 7] {
        for mode in [IngestMode::Fused, IngestMode::Staged] {
            g.bench_function(format!("batch{count}_{}", mode.name()), |b| {
                b.iter_with_setup(
                    || pending_batch(N, count, &pool),
                    |reqs| black_box(form_batch_mode(N, Dtype::F32, reqs, plan, mode)),
                )
            });
        }
    }
    g.finish();
}

fn bench_service(c: &mut Criterion) {
    let mut g = c.benchmark_group(format!("service_end_to_end_n{N}"));
    g.sample_size(10);
    let pool: Vec<Payload> = (0..16).map(|i| Payload::F32(spd_f32(N, 200 + i))).collect();
    // The inert plan's rules never fire: any measurable gap versus the
    // disabled hook is pure per-check overhead on the hot path.
    #[allow(clippy::type_complexity)]
    let variants: [(&str, fn() -> FaultHook, LaneBackend, IngestMode); 3] = [
        (
            "hook_disabled_simd_fused",
            FaultHook::disabled,
            LaneBackend::Simd,
            IngestMode::Fused,
        ),
        (
            "hook_disabled_autovec_staged",
            FaultHook::disabled,
            LaneBackend::Autovec,
            IngestMode::Staged,
        ),
        (
            "hook_inert_simd_fused",
            || FaultHook::from_plan(FaultPlan::inert(1)),
            LaneBackend::Simd,
            IngestMode::Fused,
        ),
    ];
    for (label, hook, backend, ingest) in variants {
        g.bench_function(format!("submit{BATCH}_w1_{label}"), |b| {
            let service = Service::start(
                ServiceConfig {
                    workers: 1,
                    max_batch: BATCH,
                    max_delay: Duration::from_micros(200),
                    queue_cap: 4 * BATCH,
                    fault: hook(),
                    ingest,
                    ..ServiceConfig::default()
                },
                EngineSelector::heuristic().with_backend(backend),
            );
            let client = service.client();
            b.iter(|| {
                // Count replies with a condvar so an iteration is a full
                // submit → batch → factorize → reply round trip.
                let done = Arc::new((Mutex::new(0usize), Condvar::new()));
                let failures = Arc::new(AtomicU64::new(0));
                for i in 0..BATCH {
                    let done = done.clone();
                    let failures = failures.clone();
                    client.submit_sink(
                        i as u64,
                        N,
                        pool[i % pool.len()].clone(),
                        None,
                        ReplySink::boxed(move |reply| {
                            if !reply.outcome.is_ok() {
                                failures.fetch_add(1, Ordering::Relaxed);
                            }
                            let (lock, cvar) = &*done;
                            *lock.lock().unwrap() += 1;
                            cvar.notify_one();
                        }),
                        true,
                    );
                }
                let (lock, cvar) = &*done;
                let mut n = lock.lock().unwrap();
                while *n < BATCH {
                    n = cvar.wait(n).unwrap();
                }
                assert_eq!(failures.load(Ordering::Relaxed), 0);
            });
            service.shutdown();
        });
    }
    g.finish();
}

criterion_group!(benches, bench_former, bench_service);
criterion_main!(benches);
