//! Criterion benches for the dynamic-batching service's hot path.
//!
//! Two tiers:
//! * `former_pack` — the batch former alone: stage requests into the
//!   canonical buffer, identity-pad to a full lane group, and pack into
//!   the plan's interleave (the per-batch CPU cost the service adds on
//!   top of factorization);
//! * `service_end_to_end` — submit/factorize/reply through a running
//!   in-process service with one worker, measuring sustained
//!   matrices/second including queueing, forming, and reply routing.
//!   Run twice — fault hook disabled vs an enabled-but-inert plan — so
//!   a regression in the "zero-cost when disabled" claim (or a hook
//!   check that got expensive) shows up as a gap between the two.

use criterion::{criterion_group, criterion_main, Criterion};
use ibcf_core::spd::{random_spd, SpdKind};
use ibcf_service::former::form_batch;
use ibcf_service::request::{Payload, Pending};
use ibcf_service::{Dtype, EngineSelector, FaultHook, FaultPlan, Service, ServiceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const N: usize = 16;
const BATCH: usize = 1024;

fn spd_f32(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    random_spd::<f32>(n, SpdKind::Wishart, &mut rng).into_vec()
}

fn pending_batch(n: usize, count: usize, pool: &[Vec<f32>]) -> Vec<Pending> {
    (0..count)
        .map(|i| Pending {
            id: i as u64,
            n,
            payload: Payload::F32(pool[i % pool.len()].clone()),
            enqueued: Instant::now(),
            deadline: None,
            sink: Box::new(|_| {}),
        })
        .collect()
}

fn bench_former(c: &mut Criterion) {
    let selector = EngineSelector::heuristic();
    let plan = selector.plan(N);
    let pool: Vec<Vec<f32>> = (0..16).map(|i| spd_f32(N, 100 + i)).collect();
    let mut g = c.benchmark_group(format!("former_pack_n{N}"));
    g.sample_size(10);
    // Non-lane-multiple count exercises the identity-padding tail too.
    for count in [BATCH, BATCH + 7] {
        g.bench_function(format!("batch{count}"), |b| {
            b.iter_with_setup(
                || pending_batch(N, count, &pool),
                |reqs| black_box(form_batch(N, Dtype::F32, reqs, plan)),
            )
        });
    }
    g.finish();
}

fn bench_service(c: &mut Criterion) {
    let mut g = c.benchmark_group(format!("service_end_to_end_n{N}"));
    g.sample_size(10);
    let pool: Vec<Payload> = (0..16).map(|i| Payload::F32(spd_f32(N, 200 + i))).collect();
    // The inert plan's rules never fire: any measurable gap versus the
    // disabled hook is pure per-check overhead on the hot path.
    #[allow(clippy::type_complexity)]
    let variants: [(&str, fn() -> FaultHook); 2] = [
        ("hook_disabled", FaultHook::disabled),
        ("hook_inert", || FaultHook::from_plan(FaultPlan::inert(1))),
    ];
    for (label, hook) in variants {
        g.bench_function(format!("submit{BATCH}_w1_{label}"), |b| {
            let service = Service::start(
                ServiceConfig {
                    workers: 1,
                    max_batch: BATCH,
                    max_delay: Duration::from_micros(200),
                    queue_cap: 4 * BATCH,
                    fault: hook(),
                    ..ServiceConfig::default()
                },
                EngineSelector::heuristic(),
            );
            let client = service.client();
            b.iter(|| {
                // Count replies with a condvar so an iteration is a full
                // submit → batch → factorize → reply round trip.
                let done = Arc::new((Mutex::new(0usize), Condvar::new()));
                let failures = Arc::new(AtomicU64::new(0));
                for i in 0..BATCH {
                    let done = done.clone();
                    let failures = failures.clone();
                    client.submit_sink(
                        i as u64,
                        N,
                        pool[i % pool.len()].clone(),
                        None,
                        Box::new(move |reply| {
                            if !reply.outcome.is_ok() {
                                failures.fetch_add(1, Ordering::Relaxed);
                            }
                            let (lock, cvar) = &*done;
                            *lock.lock().unwrap() += 1;
                            cvar.notify_one();
                        }),
                        true,
                    );
                }
                let (lock, cvar) = &*done;
                let mut n = lock.lock().unwrap();
                while *n < BATCH {
                    n = cvar.wait(n).unwrap();
                }
                assert_eq!(failures.load(Ordering::Relaxed), 0);
            });
            service.shutdown();
        });
    }
    g.finish();
}

criterion_group!(benches, bench_former, bench_service);
criterion_main!(benches);
