//! Sweep-throughput bench: the payoff of the two-phase trace/price
//! pipeline. Runs the same multi-size quick-space sweep with the shared
//! plan cache on and off and reports configs/sec for both, plus their
//! ratio — the number the tentpole promises to be ≥ 2×.

use criterion::{criterion_group, criterion_main, Criterion};
use ibcf_autotune::{sweep_sizes_with, ParamSpace, SilentProgress, SweepOptions};
use ibcf_gpu_sim::GpuSpec;

const SIZES: &[usize] = &[8, 16, 32];

fn run_sweep(share_plans: bool) -> f64 {
    let report = sweep_sizes_with(
        &ParamSpace::quick(),
        SIZES,
        &GpuSpec::p100(),
        &SweepOptions {
            batch: 4096,
            share_plans,
            ..Default::default()
        },
        &SilentProgress,
    );
    report.configs_per_sec()
}

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("multi_size_quick_cache_shared", |b| {
        b.iter(|| run_sweep(true))
    });
    group.bench_function("multi_size_quick_cache_disabled", |b| {
        b.iter(|| run_sweep(false))
    });
    group.finish();

    // Direct throughput comparison (criterion medians above time one whole
    // sweep; this prints the headline configs/sec ratio).
    let cached = run_sweep(true);
    let uncached = run_sweep(false);
    println!(
        "sweep throughput: {cached:.0} configs/s shared cache vs {uncached:.0} disabled ({:.2}x)",
        cached / uncached
    );
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
