//! Criterion benches for the simulated device kernels: functional
//! execution throughput and the cost of one timing-model evaluation (the
//! unit of work of the autotuning sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use ibcf_core::spd::{fill_batch_spd, SpdKind};
use ibcf_gpu_sim::{launch_functional, trace_warp, ExecOptions, GpuSpec};
use ibcf_kernels::{time_config, time_traditional, InterleavedCholesky, KernelConfig, Unroll};
use std::hint::black_box;

fn bench_functional(c: &mut Criterion) {
    let mut g = c.benchmark_group("functional_execution");
    g.sample_size(10);
    for n in [8usize, 24] {
        let batch = 2048;
        let config = KernelConfig::baseline(n);
        let kernel = InterleavedCholesky::new(config, batch);
        let layout = *kernel.layout();
        let mut base = vec![0.0f32; ibcf_layout::BatchLayout::len(&layout)];
        fill_batch_spd(&layout, &mut base, SpdKind::Wishart, 3);
        g.bench_function(format!("interleaved_n{n}_batch{batch}"), |b| {
            b.iter(|| {
                let mut data = base.clone();
                launch_functional(
                    &kernel,
                    config.launch(batch),
                    &mut data,
                    ExecOptions::default(),
                );
                black_box(data[0])
            })
        });
    }
    g.finish();
}

fn bench_timing_model(c: &mut Criterion) {
    let spec = GpuSpec::p100();
    let mut g = c.benchmark_group("timing_model_eval");
    g.sample_size(20);
    for (n, unroll) in [(16usize, Unroll::Full), (48, Unroll::Partial)] {
        let config = KernelConfig {
            unroll,
            ..KernelConfig::baseline(n)
        };
        g.bench_function(format!("interleaved_n{n}_{}", unroll.name()), |b| {
            b.iter(|| black_box(time_config(&config, 16384, &spec).time_s))
        });
    }
    g.bench_function("traditional_n32", |b| {
        b.iter(|| black_box(time_traditional(32, 16384, &spec, false).time_s))
    });
    g.finish();
}

fn bench_trace(c: &mut Criterion) {
    let mut g = c.benchmark_group("warp_trace");
    g.sample_size(20);
    let config = KernelConfig::baseline(32);
    let kernel = InterleavedCholesky::new(config, 16384);
    g.bench_function("trace_warp_n32", |b| {
        b.iter(|| {
            black_box(
                trace_warp(&kernel, config.launch(16384), 0, 0)
                    .accesses
                    .len(),
            )
        })
    });
    g.finish();
}

fn bench_extension_kernels(c: &mut Criterion) {
    use ibcf_kernels::{time_blas, time_pack, time_solve, InterleavedGemm};
    use ibcf_layout::{Canonical, Layout, LayoutKind};
    let spec = GpuSpec::p100();
    let n = 16;
    let batch = 16384;
    let lay = Layout::build(LayoutKind::Chunked, n, batch, 64);
    let mut g = c.benchmark_group("extension_kernel_models");
    g.sample_size(20);
    g.bench_function("gemm_batch_n16", |b| {
        let k = InterleavedGemm {
            layout: lay,
            a_offset: 0,
            b_offset: ibcf_layout::BatchLayout::len(&lay),
            c_offset: 2 * ibcf_layout::BatchLayout::len(&lay),
            nb: 8,
        };
        b.iter(|| black_box(time_blas(&k, &lay, 64, &spec).time_s))
    });
    g.bench_function("solve_batch_n16", |b| {
        b.iter(|| black_box(time_solve(&lay, batch, &spec, 64).time_s))
    });
    g.bench_function("pack_batch_n16", |b| {
        let canon = Canonical::new(n, batch);
        b.iter(|| black_box(time_pack(canon, lay, &spec).time_s))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_functional,
    bench_timing_model,
    bench_trace,
    bench_extension_kernels
);
criterion_main!(benches);
