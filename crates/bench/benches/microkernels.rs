//! Criterion benches for the tile microkernels: fully-inlined
//! const-generic bodies vs runtime-size loops — the Rust analogue of the
//! paper's "inner loops of tile operations are always unrolled" choice.

use criterion::{criterion_group, criterion_main, Criterion};
use ibcf_core::tile::{
    gemm_tile, gemm_tile_unrolled, potrf_tile, potrf_tile_unrolled, syrk_tile, syrk_tile_unrolled,
    trsm_tile, trsm_tile_unrolled,
};
use std::hint::black_box;

fn spd_tile(nb: usize) -> Vec<f32> {
    let mut a = vec![0.0f32; nb * nb];
    for c in 0..nb {
        for r in 0..nb {
            a[r + c * nb] = 1.0 / (1.0 + (r as f32 - c as f32).abs());
        }
    }
    for i in 0..nb {
        a[i + i * nb] += nb as f32;
    }
    a
}

fn seq(len: usize) -> Vec<f32> {
    (0..len).map(|i| (i as f32) * 0.37 - 1.0).collect()
}

fn bench_potrf(c: &mut Criterion) {
    let mut g = c.benchmark_group("potrf_tile");
    g.sample_size(40);
    for nb in [4usize, 8] {
        let base = spd_tile(nb);
        g.bench_function(format!("runtime_nb{nb}"), |b| {
            b.iter(|| {
                let mut t = base.clone();
                potrf_tile(black_box(nb), &mut t, nb).unwrap();
                black_box(t[0])
            })
        });
    }
    let base4 = spd_tile(4);
    g.bench_function("unrolled_nb4", |b| {
        b.iter(|| {
            let mut t = base4.clone();
            potrf_tile_unrolled::<f32, 4>(&mut t).unwrap();
            black_box(t[0])
        })
    });
    let base8 = spd_tile(8);
    g.bench_function("unrolled_nb8", |b| {
        b.iter(|| {
            let mut t = base8.clone();
            potrf_tile_unrolled::<f32, 8>(&mut t).unwrap();
            black_box(t[0])
        })
    });
    g.finish();
}

fn bench_gemm_syrk_trsm(c: &mut Criterion) {
    let mut g = c.benchmark_group("update_tiles");
    g.sample_size(40);
    const NB: usize = 8;
    let a = seq(NB * NB);
    let bm = seq(NB * NB);
    let mut l = spd_tile(NB);
    potrf_tile(NB, &mut l, NB).unwrap();

    g.bench_function("gemm_runtime_nb8", |b| {
        b.iter(|| {
            let mut cbuf = seq(NB * NB);
            gemm_tile(NB, NB, NB, &a, NB, &bm, NB, &mut cbuf, NB);
            black_box(cbuf[0])
        })
    });
    g.bench_function("gemm_unrolled_nb8", |b| {
        b.iter(|| {
            let mut cbuf = seq(NB * NB);
            gemm_tile_unrolled::<f32, NB>(&a, &bm, &mut cbuf);
            black_box(cbuf[0])
        })
    });
    g.bench_function("syrk_runtime_nb8", |b| {
        b.iter(|| {
            let mut cbuf = seq(NB * NB);
            syrk_tile(NB, NB, &a, NB, &mut cbuf, NB);
            black_box(cbuf[0])
        })
    });
    g.bench_function("syrk_unrolled_nb8", |b| {
        b.iter(|| {
            let mut cbuf = seq(NB * NB);
            syrk_tile_unrolled::<f32, NB>(&a, &mut cbuf);
            black_box(cbuf[0])
        })
    });
    g.bench_function("trsm_runtime_nb8", |b| {
        b.iter(|| {
            let mut cbuf = seq(NB * NB);
            trsm_tile(NB, NB, &l, NB, &mut cbuf, NB);
            black_box(cbuf[0])
        })
    });
    g.bench_function("trsm_unrolled_nb8", |b| {
        b.iter(|| {
            let mut cbuf = seq(NB * NB);
            trsm_tile_unrolled::<f32, NB>(&l, &mut cbuf);
            black_box(cbuf[0])
        })
    });
    g.finish();
}

criterion_group!(benches, bench_potrf, bench_gemm_syrk_trsm);
criterion_main!(benches);
