//! Criterion benches for the host (CPU) batch factorization, across the
//! axes of the paper translated to the host: layout × engine × size ×
//! precision at the paper's batch of 16384.
//!
//! Engines per layout:
//! * `seq`          — gather / `potrf_unblocked` / scatter, one thread;
//! * `gather_rayon` — same round trip, rayon-parallel over matrices;
//! * `lane`         — the in-place lane-vectorized engine pinned to the
//!   autovectorized kernels (for the canonical layout this is the auto
//!   path: pack + lane + unpack);
//! * `simd`         — the same engine under explicit-SIMD dispatch
//!   (AVX-512/AVX2 where the CPU has them; identical to `lane` on
//!   hardware without either, or under `IBCF_SIMD=off`).
//!
//! Pristine input buffers are rebuilt outside the timed region
//! (`iter_with_setup`), so the numbers measure factorization only.

use criterion::{criterion_group, criterion_main, Criterion};
use ibcf_core::host_batch::{factorize_batch, factorize_batch_blocked, factorize_batch_seq};
use ibcf_core::lane_batch::{LaneOrder, LaneWidth};
use ibcf_core::spd::{fill_batch_spd, SpdKind};
use ibcf_core::{factorize_batch_auto_backend, LaneBackend, Looking, Real};
use ibcf_layout::{alloc_batch, AlignedVec, Canonical, Chunked, Interleaved, Layout};
use std::hint::black_box;

/// The paper's batch size.
const BATCH: usize = 16384;
/// Sizes spanning the paper's n ∈ [4, 32] range.
const SIZES: [usize; 5] = [4, 8, 16, 24, 32];

fn layouts(n: usize, batch: usize) -> Vec<(&'static str, Layout)> {
    vec![
        ("canonical", Layout::Canonical(Canonical::new(n, batch))),
        (
            "interleaved",
            Layout::Interleaved(Interleaved::new(n, batch)),
        ),
        ("chunked64", Layout::Chunked(Chunked::new(n, batch, 64))),
    ]
}

fn bench_engines<T: Real>(c: &mut Criterion, ty: &str) {
    for n in SIZES {
        let mut g = c.benchmark_group(format!("host_{ty}_n{n}_b{BATCH}"));
        g.sample_size(10);
        for (lname, layout) in layouts(n, BATCH) {
            let mut base: AlignedVec<T> = alloc_batch(&layout);
            fill_batch_spd(&layout, &mut base, SpdKind::DiagDominant, 7);
            g.bench_function(format!("{lname}_seq"), |b| {
                b.iter_with_setup(
                    || base.clone(),
                    |mut data| {
                        black_box(factorize_batch_seq(&layout, &mut data));
                        data
                    },
                )
            });
            g.bench_function(format!("{lname}_gather_rayon"), |b| {
                b.iter_with_setup(
                    || base.clone(),
                    |mut data| {
                        black_box(factorize_batch(&layout, &mut data));
                        data
                    },
                )
            });
            g.bench_function(format!("{lname}_lane"), |b| {
                b.iter_with_setup(
                    || base.clone(),
                    |mut data| {
                        black_box(factorize_batch_auto_backend(
                            &layout,
                            &mut data,
                            LaneOrder::default(),
                            LaneWidth::Auto,
                            LaneBackend::Autovec,
                        ));
                        data
                    },
                )
            });
            g.bench_function(format!("{lname}_simd"), |b| {
                b.iter_with_setup(
                    || base.clone(),
                    |mut data| {
                        black_box(factorize_batch_auto_backend(
                            &layout,
                            &mut data,
                            LaneOrder::default(),
                            LaneWidth::Auto,
                            LaneBackend::Simd,
                        ));
                        data
                    },
                )
            });
        }
        g.finish();
    }
}

fn bench_host_batch_f32(c: &mut Criterion) {
    bench_engines::<f32>(c, "f32");
}

fn bench_host_batch_f64(c: &mut Criterion) {
    bench_engines::<f64>(c, "f64");
}

fn bench_blocked_lookings(c: &mut Criterion) {
    let n = 32;
    let batch = 512;
    let layout = Layout::Chunked(Chunked::new(n, batch, 64));
    let mut base: AlignedVec<f32> = alloc_batch(&layout);
    fill_batch_spd(&layout, &mut base, SpdKind::Wishart, 11);
    let mut g = c.benchmark_group(format!("host_blocked_{n}x{n}x{batch}"));
    g.sample_size(20);
    for looking in Looking::ALL {
        g.bench_function(looking.name(), |b| {
            b.iter_with_setup(
                || base.clone(),
                |mut data| {
                    black_box(factorize_batch_blocked(&layout, &mut data, 8, looking));
                    data
                },
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_host_batch_f32,
    bench_host_batch_f64,
    bench_blocked_lookings
);
criterion_main!(benches);
