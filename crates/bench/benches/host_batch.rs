//! Criterion benches for the host (CPU) batch factorization — the oracle
//! and CPU baseline — sequential vs rayon-parallel across layouts.

use criterion::{criterion_group, criterion_main, Criterion};
use ibcf_core::host_batch::{factorize_batch, factorize_batch_blocked, factorize_batch_seq};
use ibcf_core::spd::{fill_batch_spd, SpdKind};
use ibcf_core::Looking;
use ibcf_layout::{BatchLayout, Canonical, Chunked, Interleaved, Layout};
use std::hint::black_box;

fn layouts(n: usize, batch: usize) -> Vec<(&'static str, Layout)> {
    vec![
        ("canonical", Layout::Canonical(Canonical::new(n, batch))),
        (
            "interleaved",
            Layout::Interleaved(Interleaved::new(n, batch)),
        ),
        ("chunked64", Layout::Chunked(Chunked::new(n, batch, 64))),
    ]
}

fn bench_host_batch(c: &mut Criterion) {
    let n = 16;
    let batch = 1024;
    let mut g = c.benchmark_group(format!("host_batch_{n}x{n}x{batch}"));
    g.sample_size(20);
    for (name, layout) in layouts(n, batch) {
        let mut base = vec![0.0f32; layout.len()];
        fill_batch_spd(&layout, &mut base, SpdKind::Wishart, 7);
        g.bench_function(format!("{name}_seq"), |b| {
            b.iter(|| {
                let mut data = base.clone();
                black_box(factorize_batch_seq(&layout, &mut data))
            })
        });
        g.bench_function(format!("{name}_parallel"), |b| {
            b.iter(|| {
                let mut data = base.clone();
                black_box(factorize_batch(&layout, &mut data))
            })
        });
    }
    g.finish();
}

fn bench_blocked_lookings(c: &mut Criterion) {
    let n = 32;
    let batch = 512;
    let layout = Layout::Chunked(Chunked::new(n, batch, 64));
    let mut base = vec![0.0f32; layout.len()];
    fill_batch_spd(&layout, &mut base, SpdKind::Wishart, 11);
    let mut g = c.benchmark_group(format!("host_blocked_{n}x{n}x{batch}"));
    g.sample_size(20);
    for looking in Looking::ALL {
        g.bench_function(looking.name(), |b| {
            b.iter(|| {
                let mut data = base.clone();
                black_box(factorize_batch_blocked(&layout, &mut data, 8, looking))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_host_batch, bench_blocked_lookings);
criterion_main!(benches);
