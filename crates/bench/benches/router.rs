//! Criterion benches for the shard router's hot path.
//!
//! Two tiers:
//! * `routing_overhead` — the per-submit cost the router adds on top of
//!   a shard's own admission: rendezvous vs least-loaded ranking over
//!   instant-reply backends, against calling one backend directly. This
//!   is the number the `(n, dtype)`-keyed tier must keep negligible
//!   next to a ~ms factorization round trip;
//! * `fleet_end_to_end` — a 3-shard in-process fleet vs a single
//!   service of equal total worker count, full submit → batch →
//!   factorize → reply round trips, so rehoming traffic across formers
//!   (smaller per-shard batches) shows its real cost.

use criterion::{criterion_group, criterion_main, Criterion};
use ibcf_core::spd::{random_spd, SpdKind};
use ibcf_service::router::SubmitRefusal;
use ibcf_service::{
    EngineSelector, InProcessShard, Payload, ReplySink, RoutePolicy, Router, RouterConfig, Service,
    ServiceConfig, ShardBackend, StatsSnapshot,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const N: usize = 16;

fn spd_f32(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    random_spd::<f32>(n, SpdKind::Wishart, &mut rng).into_vec()
}

/// A shard that answers instantly: what's left to measure is the
/// router's ranking and dispatch, not factorization. With `lossy`
/// set it advertises `can_lose_inflight`, which makes the router arm
/// its in-flight loss guard (one payload clone + a sink wrap per
/// fresh submit) exactly as it does for real shard processes.
struct InstantShard {
    name: String,
    lossy: bool,
}

impl ShardBackend for InstantShard {
    fn name(&self) -> &str {
        &self.name
    }

    fn try_submit(
        &self,
        id: u64,
        _n: usize,
        payload: Payload,
        _deadline: Option<Instant>,
        sink: ReplySink,
    ) -> Result<(), SubmitRefusal> {
        sink.send(ibcf_service::FactorReply {
            id,
            outcome: ibcf_service::Outcome::Factor(payload),
        });
        Ok(())
    }

    fn try_submit_large(
        &self,
        id: u64,
        n: usize,
        payload: Payload,
        deadline: Option<Instant>,
        sink: ReplySink,
    ) -> Result<(), SubmitRefusal> {
        self.try_submit(id, n, payload, deadline, sink)
    }

    fn probe(&self) -> bool {
        true
    }

    fn load(&self) -> usize {
        0
    }

    fn stats(&self) -> StatsSnapshot {
        StatsSnapshot::default()
    }

    fn kill(&self) {}

    fn drained(&self) -> bool {
        true
    }

    fn shutdown(&self) {}

    fn can_lose_inflight(&self) -> bool {
        self.lossy
    }
}

fn bench_routing_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing_overhead");
    g.sample_size(10);
    let payload = || Payload::F32(spd_f32(N, 7));

    // Baseline: one backend called directly, no router in the path.
    g.bench_function("direct_backend", |b| {
        let shard = InstantShard {
            name: "solo".into(),
            lossy: false,
        };
        b.iter(|| {
            let ok = shard
                .try_submit(1, N, black_box(payload()), None, ReplySink::boxed(drop))
                .is_ok();
            assert!(ok);
        });
    });

    for policy in [RoutePolicy::ConsistentHash, RoutePolicy::LeastLoaded] {
        for shard_count in [3usize, 8] {
            let label = format!("{policy:?}_{shard_count}shards").to_lowercase();
            g.bench_function(label, |b| {
                let backends: Vec<Arc<dyn ShardBackend>> = (0..shard_count)
                    .map(|i| {
                        Arc::new(InstantShard {
                            name: format!("s{i}"),
                            lossy: false,
                        }) as Arc<dyn ShardBackend>
                    })
                    .collect();
                let router = Router::start(
                    backends,
                    RouterConfig {
                        policy,
                        ..RouterConfig::default()
                    },
                );
                let client = router.client();
                let mut id = 0u64;
                b.iter(|| {
                    id += 1;
                    // Vary n so rendezvous can't cache a single key.
                    let n = 2 + (id % 14) as usize;
                    client.submit_sink(
                        id,
                        n,
                        black_box(Payload::F32(vec![1.0; n * n])),
                        None,
                        ReplySink::boxed(drop),
                    );
                });
                router.shutdown();
            });
        }
    }

    // The robustness tax: what arming the process-fleet machinery costs
    // per submit over the same instant backends. `lossguard` pays one
    // payload clone + a boxed sink wrap (in-flight failover); `hedged`
    // additionally clones for, enqueues, and later discards a hedge
    // entry per request.
    for (label, hedge) in [
        ("consistenthash_3shards_lossguard", None),
        (
            "consistenthash_3shards_hedged",
            Some(Duration::from_micros(200)),
        ),
    ] {
        g.bench_function(label, |b| {
            let backends: Vec<Arc<dyn ShardBackend>> = (0..3)
                .map(|i| {
                    Arc::new(InstantShard {
                        name: format!("s{i}"),
                        lossy: true,
                    }) as Arc<dyn ShardBackend>
                })
                .collect();
            let router = Router::start(
                backends,
                RouterConfig {
                    policy: RoutePolicy::ConsistentHash,
                    hedge_after: hedge,
                    ..RouterConfig::default()
                },
            );
            let client = router.client();
            let mut id = 0u64;
            b.iter(|| {
                id += 1;
                let n = 2 + (id % 14) as usize;
                client.submit_sink(
                    id,
                    n,
                    black_box(Payload::F32(vec![1.0; n * n])),
                    None,
                    ReplySink::boxed(drop),
                );
            });
            router.shutdown();
        });
    }
    g.finish();
}

fn bench_fleet_end_to_end(c: &mut Criterion) {
    const BATCH: usize = 512;
    let mut g = c.benchmark_group(format!("fleet_end_to_end_n{N}"));
    g.sample_size(10);
    let pool: Vec<Payload> = (0..16).map(|i| Payload::F32(spd_f32(N, 300 + i))).collect();
    let service_config = || ServiceConfig {
        workers: 1,
        max_batch: BATCH,
        max_delay: Duration::from_micros(200),
        queue_cap: 4 * BATCH,
        ..ServiceConfig::default()
    };

    let run_round = |submit: &dyn Fn(u64, Payload, ReplySink)| {
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        for i in 0..BATCH {
            let done = done.clone();
            submit(
                i as u64,
                pool[i % pool.len()].clone(),
                ReplySink::boxed(move |reply| {
                    assert!(reply.outcome.is_ok());
                    let (lock, cvar) = &*done;
                    *lock.lock().unwrap() += 1;
                    cvar.notify_one();
                }),
            );
        }
        let (lock, cvar) = &*done;
        let mut n = lock.lock().unwrap();
        while *n < BATCH {
            n = cvar.wait(n).unwrap();
        }
    };

    g.bench_function(format!("single_service_submit{BATCH}"), |b| {
        let service = Service::start(service_config(), EngineSelector::heuristic());
        let client = service.client();
        b.iter(|| run_round(&|id, p, sink| client.submit_sink(id, N, p, None, sink, true)));
        service.shutdown();
    });

    g.bench_function(format!("routed_3shards_submit{BATCH}"), |b| {
        let backends: Vec<Arc<dyn ShardBackend>> = (0..3)
            .map(|i| {
                let service = Service::start(service_config(), EngineSelector::heuristic());
                Arc::new(InProcessShard::new(format!("shard-{i}"), service))
                    as Arc<dyn ShardBackend>
            })
            .collect();
        let router = Router::start(backends, RouterConfig::default());
        let client = router.client();
        b.iter(|| run_round(&|id, p, sink| client.submit_sink(id, N, p, None, sink)));
        router.shutdown();
    });

    g.finish();
}

criterion_group!(benches, bench_routing_overhead, bench_fleet_end_to_end);
criterion_main!(benches);
