//! `cargo bench` entry point that regenerates every table and figure of
//! the paper at reduced (quick) scale, printing the same rows the paper
//! reports and the shape-check outcomes. The full-scale generators are the
//! `fig*`/`table1`/`all_figures` binaries.

use ibcf_bench::{results_dir, FigOpts};

fn main() {
    // Criterion-style CLI flags (e.g. `--bench`) are accepted and ignored.
    let opts = FigOpts::quick();
    println!(
        "regenerating all paper tables/figures (quick mode, batch {})",
        opts.batch
    );
    let figs = ibcf_bench::figures::all(&opts);
    let mut pass = 0usize;
    let mut total = 0usize;
    for fig in &figs {
        fig.print();
        if let Ok(p) = fig.save_csv(&results_dir()) {
            println!("saved {}\n", p.display());
        }
        pass += fig.checks.iter().filter(|c| c.pass).count();
        total += fig.checks.len();
    }
    println!("=== shape checks: {pass}/{total} passed ===");
    assert!(
        pass * 10 >= total * 8,
        "too many figure shape checks failed: {pass}/{total}"
    );
}
