//! Resume-overhead bench: what the crash-safe sweep log costs.
//!
//! Three paths over the same multi-size quick-space grid:
//! * `plain` — in-memory sweep, no log (the PR-1 baseline)
//! * `logged_fresh` — full sweep streaming fsync-free appends
//! * `resume_complete` — load a finished log, skip everything: pure
//!   log-parse + dedup overhead
//!
//! plus a headline print comparing fsync'd vs buffered append
//! throughput, since per-line fsync is the durability knob.

use criterion::{criterion_group, criterion_main, Criterion};
use ibcf_autotune::{
    sweep_sizes_logged, sweep_sizes_with, ParamSpace, ShardSpec, SilentProgress, SweepOptions,
};
use ibcf_gpu_sim::GpuSpec;
use std::path::{Path, PathBuf};

const SIZES: &[usize] = &[8, 16, 32];

fn opts(log_fsync: bool) -> SweepOptions {
    SweepOptions {
        batch: 4096,
        log_fsync,
        ..Default::default()
    }
}

fn bench_dir() -> PathBuf {
    let d = std::env::temp_dir().join(format!("ibcf_resume_bench_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn logged_sweep(log: &Path, fsync: bool) -> f64 {
    let report = sweep_sizes_logged(
        &ParamSpace::quick(),
        SIZES,
        &GpuSpec::p100(),
        &opts(fsync),
        &SilentProgress,
        log,
        ShardSpec::whole(),
    )
    .unwrap();
    report.report.configs_per_sec()
}

fn bench_resume(c: &mut Criterion) {
    let dir = bench_dir();
    let mut group = c.benchmark_group("resume");
    group.sample_size(10);

    group.bench_function("plain_no_log", |b| {
        b.iter(|| {
            sweep_sizes_with(
                &ParamSpace::quick(),
                SIZES,
                &GpuSpec::p100(),
                &opts(false),
                &SilentProgress,
            )
            .dataset
            .measurements
            .len()
        })
    });

    group.bench_function("logged_fresh", |b| {
        b.iter(|| {
            let log = dir.join("fresh.log");
            std::fs::remove_file(&log).ok();
            logged_sweep(&log, false)
        })
    });

    let complete = dir.join("complete.log");
    std::fs::remove_file(&complete).ok();
    logged_sweep(&complete, false);
    group.bench_function("resume_complete_log", |b| {
        b.iter(|| logged_sweep(&complete, false))
    });
    group.finish();

    // Headline: the price of per-line durability.
    let log = dir.join("fsync.log");
    std::fs::remove_file(&log).ok();
    let durable = logged_sweep(&log, true);
    std::fs::remove_file(&log).ok();
    let buffered = logged_sweep(&log, false);
    println!(
        "logged sweep throughput: {durable:.0} configs/s fsync'd vs {buffered:.0} buffered \
         ({:.2}x overhead)",
        buffered / durable
    );
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_resume);
criterion_main!(benches);
