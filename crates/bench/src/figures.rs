//! One generator per table/figure of the paper's evaluation.

use crate::ascii;
use crate::common::{ensure_dataset, Check, FigOpts, Figure};
use ibcf_autotune::Measurement;
use ibcf_autotune::{sweep_sizes, BestTable, Dataset, ParamSpace, SweepOptions};
use ibcf_core::flops::cholesky_flops_std;
use ibcf_core::Looking;
use ibcf_forest::{pearson, permutation_importance, Forest, ForestConfig, TableData};
use ibcf_kernels::{time_traditional, CachePref, Unroll};

/// The dense size grid of Figures 13/14.
fn fig13_sizes(opts: &FigOpts) -> Vec<usize> {
    if opts.quick {
        vec![4, 8, 16, 32, 64]
    } else {
        (1..=48).map(|i| 2 * i).collect()
    }
}

/// Reduced space for the dense Figure 13/14 sweep: top-looking chunked
/// kernels (the winners) across tile sizes and unrolling, both arithmetic
/// modes.
fn fig13_space() -> ParamSpace {
    ParamSpace {
        nb: vec![1, 2, 4, 6, 8],
        looking: vec![Looking::Top],
        chunked: vec![true],
        chunk_size: vec![32, 64],
        unroll: Unroll::ALL.to_vec(),
        fast_math: vec![false, true],
        cache_pref: vec![CachePref::L1],
    }
}

fn fig13_dataset(opts: &FigOpts) -> Dataset {
    // fig13 and fig14 need the same dense sweep; share it per process so
    // `all_figures` pays the multi-minute cost once.
    use std::sync::{Mutex, OnceLock};
    /// (batch, quick, gpu name) the cached dataset was swept under.
    type CacheKey = (usize, bool, String);
    static CACHE: OnceLock<Mutex<Option<(CacheKey, Dataset)>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(None));
    let key = (opts.batch, opts.quick, opts.spec.name.clone());
    {
        let guard = cache.lock().expect("fig13 cache poisoned");
        if let Some((k, ds)) = guard.as_ref() {
            if *k == key {
                return ds.clone();
            }
        }
    }
    let sizes = fig13_sizes(opts);
    let ds = sweep_sizes(
        &fig13_space(),
        &sizes,
        &opts.spec,
        &SweepOptions {
            batch: opts.batch,
            progress_every: 0,
            ..Default::default()
        },
    );
    *cache.lock().expect("fig13 cache poisoned") = Some((key, ds.clone()));
    ds
}

/// Figure 13: top performance of the interleaved implementation with IEEE
/// and fast-math arithmetic, against the traditional baseline.
pub fn fig13(opts: &FigOpts) -> Figure {
    let sizes = fig13_sizes(opts);
    let ds = fig13_dataset(opts);
    let table = BestTable::new(&ds);
    let mut rows = Vec::new();
    let (mut ieee, mut fast, mut trad) = (Vec::new(), Vec::new(), Vec::new());
    for &n in &sizes {
        let gi = table.best_by_arith(n, false).map_or(0.0, |m| m.gflops);
        let gf = table.best_by_arith(n, true).map_or(0.0, |m| m.gflops);
        let gt = time_traditional(n, opts.batch, &opts.spec, false)
            .gflops(cholesky_flops_std(n) * opts.batch as f64);
        rows.push(vec![n as f64, gi, gf, gt]);
        ieee.push(gi);
        fast.push(gf);
        trad.push(gt);
    }
    let xs: Vec<f64> = sizes.iter().map(|&n| n as f64).collect();
    let rendering = ascii::line_chart(
        "Figure 13: interleaved (IEEE, fast-math) vs traditional [GFLOP/s vs n]",
        &xs,
        &[
            ("ieee", ieee.clone()),
            ("fast", fast.clone()),
            ("traditional", trad.clone()),
        ],
        72,
        18,
    );
    let small = sizes.iter().position(|&n| n >= 16).unwrap_or(0);
    // The 600-vs-800 plateau split is a *small-matrix* phenomenon; at
    // large n both arithmetic modes are memory bound and converge.
    let small_range: Vec<usize> = (0..sizes.len()).filter(|&i| sizes[i] <= 32).collect();
    let peak_fast = small_range.iter().map(|&i| fast[i]).fold(0.0, f64::max);
    let peak_ieee = small_range.iter().map(|&i| ieee[i]).fold(0.0, f64::max);
    // The IEEE handicap shows where the divide/sqrt sequences bind, i.e.
    // at compute-bound small sizes — take the best per-size ratio.
    let best_gap = small_range
        .iter()
        .map(|&i| fast[i] / ieee[i])
        .fold(0.0, f64::max);
    let checks = vec![
        Check {
            claim: "IEEE peaks near 600 GFLOP/s for small matrices (within 2x)".into(),
            pass: peak_ieee > 300.0 && peak_ieee < 1200.0,
        },
        Check {
            claim: "fast-math approaches 800 GFLOP/s (within 2x) and clearly beats IEEE at small n"
                .into(),
            pass: peak_fast > 400.0 && best_gap > 1.15,
        },
        Check {
            claim: "interleaved substantially outperforms traditional at small n".into(),
            pass: ieee[small] > 3.0 * trad[small],
        },
        Check {
            claim: "traditional closes the gap at the largest sizes".into(),
            pass: trad.last().unwrap() / ieee.last().unwrap() > 3.0 * (trad[small] / ieee[small]),
        },
    ];
    Figure {
        id: "fig13",
        title: "Top performance of the interleaved implementation (IEEE vs fast-math) and the traditional baseline".into(),
        columns: vec!["n".into(), "ieee_gflops".into(), "fast_gflops".into(), "traditional_gflops".into()],
        rows,
        rendering,
        checks,
    }
}

/// Figure 14: speedup of the interleaved implementation over the
/// traditional implementation.
pub fn fig14(opts: &FigOpts) -> Figure {
    let sizes = fig13_sizes(opts);
    let ds = fig13_dataset(opts);
    let table = BestTable::new(&ds);
    let mut rows = Vec::new();
    let mut speedup = Vec::new();
    for &n in &sizes {
        let gi = table.best_by_arith(n, false).map_or(0.0, |m| m.gflops);
        let gt = time_traditional(n, opts.batch, &opts.spec, false)
            .gflops(cholesky_flops_std(n) * opts.batch as f64);
        let s = if gt > 0.0 { gi / gt } else { f64::NAN };
        rows.push(vec![n as f64, s]);
        speedup.push(s);
    }
    let xs: Vec<f64> = sizes.iter().map(|&n| n as f64).collect();
    let rendering = ascii::line_chart(
        "Figure 14: speedup of interleaved over traditional [x vs n]",
        &xs,
        &[("speedup", speedup.clone())],
        72,
        16,
    );
    let first = speedup.first().copied().unwrap_or(0.0);
    let last = speedup.last().copied().unwrap_or(0.0);
    let peak = speedup.iter().copied().fold(0.0, f64::max);
    let checks = vec![
        Check {
            claim: "large speedup (>4x) for the smallest matrices".into(),
            pass: first > 4.0 || peak > 4.0,
        },
        Check {
            claim: "speedup declines toward 1x as n grows (traditional overtakes eventually)"
                .into(),
            pass: last < first / 3.0,
        },
        Check {
            claim: "speedup at the largest size is below 2.5x".into(),
            pass: last < 2.5,
        },
    ];
    Figure {
        id: "fig14",
        title: "Speedup of the interleaved implementation over the traditional implementation"
            .into(),
        columns: vec!["n".into(), "speedup".into()],
        rows,
        rendering,
        checks,
    }
}

fn ds_sizes(ds: &Dataset) -> Vec<usize> {
    ds.sizes()
}

/// Figure 15: best performance per tiling factor `nb`.
pub fn fig15(opts: &FigOpts) -> Figure {
    let ds = ensure_dataset(opts);
    let table = BestTable::new(&ds);
    let sizes = ds_sizes(&ds);
    let nbs: Vec<usize> = {
        let mut v: Vec<usize> = ds.measurements.iter().map(|m| m.config.nb).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut rows = Vec::new();
    let mut series: Vec<(String, Vec<f64>)> = nbs
        .iter()
        .map(|nb| (format!("nb={nb}"), Vec::new()))
        .collect();
    for &n in &sizes {
        let mut row = vec![n as f64];
        for (i, &nb) in nbs.iter().enumerate() {
            let g = table.best_by_nb(n, nb).map_or(f64::NAN, |m| m.gflops);
            row.push(g);
            series[i].1.push(g);
        }
        rows.push(row);
    }
    let xs: Vec<f64> = sizes.iter().map(|&n| n as f64).collect();
    let named: Vec<(&str, Vec<f64>)> = series
        .iter()
        .map(|(n, v)| (n.as_str(), v.clone()))
        .collect();
    let rendering = ascii::line_chart(
        "Figure 15: best performance per tiling factor nb [GFLOP/s vs n]",
        &xs,
        &named,
        72,
        18,
    );

    // Shape checks.
    let small_i = 0usize; // smallest size in the dataset
    let small_vals: Vec<f64> = series.iter().map(|(_, v)| v[small_i]).collect();
    let small_spread = (small_vals.iter().copied().fold(0.0, f64::max)
        - small_vals.iter().copied().fold(f64::INFINITY, f64::min))
        / small_vals.iter().copied().fold(0.0, f64::max);
    let last = sizes.len() - 1;
    let g_at = |nb: usize, i: usize| {
        nbs.iter()
            .position(|&x| x == nb)
            .map(|p| series[p].1[i])
            .unwrap_or(f64::NAN)
    };
    let biggest_nb = *nbs.last().unwrap();
    let checks = vec![
        Check {
            claim: "below n=20 tiling makes no difference (spread < 15%)".into(),
            pass: small_spread < 0.15,
        },
        Check {
            claim: "past n=40, nb=1 is memory bound and far behind".into(),
            pass: g_at(1, last) < 0.55 * g_at(biggest_nb, last),
        },
        Check {
            claim: "performance grows with nb and levels off near nb=8".into(),
            pass: {
                let g4 = g_at(4.min(biggest_nb), last);
                let g8 = g_at(biggest_nb, last);
                g8 >= g4 * 0.95 && (g8 - g4).abs() / g8 < 0.5
            },
        },
    ];
    let mut columns = vec!["n".to_string()];
    columns.extend(nbs.iter().map(|nb| format!("nb{nb}_gflops")));
    Figure {
        id: "fig15",
        title: "Best performance of the interleaved implementation for different tiling factors"
            .into(),
        columns,
        rows,
        rendering,
        checks,
    }
}

/// Figure 16: best performance per looking order.
pub fn fig16(opts: &FigOpts) -> Figure {
    let ds = ensure_dataset(opts);
    let table = BestTable::new(&ds);
    let sizes = ds_sizes(&ds);
    let mut rows = Vec::new();
    let mut series: Vec<(String, Vec<f64>)> = Looking::ALL
        .iter()
        .map(|l| (l.name().to_string(), Vec::new()))
        .collect();
    for &n in &sizes {
        let mut row = vec![n as f64];
        for (i, &l) in Looking::ALL.iter().enumerate() {
            let g = table.best_by_looking(n, l).map_or(f64::NAN, |m| m.gflops);
            row.push(g);
            series[i].1.push(g);
        }
        rows.push(row);
    }
    let xs: Vec<f64> = sizes.iter().map(|&n| n as f64).collect();
    let named: Vec<(&str, Vec<f64>)> = series
        .iter()
        .map(|(n, v)| (n.as_str(), v.clone()))
        .collect();
    let rendering = ascii::line_chart(
        "Figure 16: best performance per looking order [GFLOP/s vs n]",
        &xs,
        &named,
        72,
        18,
    );
    let right = &series[0].1;
    let left = &series[1].1;
    let top = &series[2].1;
    let last = sizes.len() - 1;
    let spread0 = {
        let v = [right[0], left[0], top[0]];
        (v.iter().copied().fold(0.0, f64::max) - v.iter().copied().fold(f64::INFINITY, f64::min))
            / v.iter().copied().fold(0.0, f64::max)
    };
    let checks = vec![
        Check {
            claim: "no difference below n=20 (spread < 15%)".into(),
            pass: spread0 < 0.15,
        },
        Check {
            claim: "past n=20, top-looking (laziest) is fastest".into(),
            pass: top[last] >= left[last] && top[last] >= right[last],
        },
        Check {
            claim: "right-looking (most writes) is slowest at large n".into(),
            pass: right[last] <= left[last],
        },
    ];
    Figure {
        id: "fig16",
        title:
            "Best performance of the interleaved implementation for different orders of evaluation"
                .into(),
        columns: vec![
            "n".into(),
            "right_gflops".into(),
            "left_gflops".into(),
            "top_gflops".into(),
        ],
        rows,
        rendering,
        checks,
    }
}

/// Figure 17: chunked vs non-chunked.
pub fn fig17(opts: &FigOpts) -> Figure {
    let ds = ensure_dataset(opts);
    let table = BestTable::new(&ds);
    let sizes = ds_sizes(&ds);
    let mut rows = Vec::new();
    let (mut chunked, mut simple) = (Vec::new(), Vec::new());
    for &n in &sizes {
        let gc = table
            .best_by_chunking(n, true)
            .map_or(f64::NAN, |m| m.gflops);
        let gs = table
            .best_by_chunking(n, false)
            .map_or(f64::NAN, |m| m.gflops);
        rows.push(vec![n as f64, gc, gs]);
        chunked.push(gc);
        simple.push(gs);
    }
    let xs: Vec<f64> = sizes.iter().map(|&n| n as f64).collect();
    let rendering = ascii::line_chart(
        "Figure 17: chunked vs non-chunked [GFLOP/s vs n]",
        &xs,
        &[("chunked", chunked.clone()), ("simple", simple.clone())],
        72,
        16,
    );
    let never_worse = chunked.iter().zip(&simple).all(|(c, s)| c >= &(s * 0.999));
    let max_gain = chunked
        .iter()
        .zip(&simple)
        .map(|(c, s)| c / s)
        .fold(0.0, f64::max);
    let checks = vec![
        Check {
            claim: "chunking never hurts".into(),
            pass: never_worse,
        },
        Check {
            claim: "chunking is clearly beneficial somewhere (>1.3x)".into(),
            pass: max_gain > 1.3,
        },
    ];
    Figure {
        id: "fig17",
        title: "Best performance of the interleaved implementation with and without chunking"
            .into(),
        columns: vec!["n".into(), "chunked_gflops".into(), "simple_gflops".into()],
        rows,
        rendering,
        checks,
    }
}

/// Figure 18: chunk sizes 32–512.
pub fn fig18(opts: &FigOpts) -> Figure {
    let ds = ensure_dataset(opts);
    let table = BestTable::new(&ds);
    let sizes = ds_sizes(&ds);
    let chunk_sizes: Vec<usize> = {
        let mut v: Vec<usize> = ds
            .measurements
            .iter()
            .filter(|m| m.config.chunked)
            .map(|m| m.config.chunk_size)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut rows = Vec::new();
    let mut series: Vec<(String, Vec<f64>)> = chunk_sizes
        .iter()
        .map(|c| (c.to_string(), Vec::new()))
        .collect();
    for &n in &sizes {
        let mut row = vec![n as f64];
        for (i, &cs) in chunk_sizes.iter().enumerate() {
            let g = table
                .best_by_chunk_size(n, cs)
                .map_or(f64::NAN, |m| m.gflops);
            row.push(g);
            series[i].1.push(g);
        }
        rows.push(row);
    }
    let xs: Vec<f64> = sizes.iter().map(|&n| n as f64).collect();
    let named: Vec<(&str, Vec<f64>)> = series
        .iter()
        .map(|(n, v)| (n.as_str(), v.clone()))
        .collect();
    let rendering = ascii::line_chart(
        "Figure 18: best performance per chunk size [GFLOP/s vs n]",
        &xs,
        &named,
        72,
        18,
    );
    let avg = |cs: usize| {
        chunk_sizes
            .iter()
            .position(|&x| x == cs)
            .map(|p| series[p].1.iter().sum::<f64>() / series[p].1.len() as f64)
            .unwrap_or(f64::NAN)
    };
    let biggest = *chunk_sizes.last().unwrap();
    let checks = vec![
        Check {
            claim: "chunk 32 is (near-)best on average".into(),
            pass: avg(32) >= 0.95 * chunk_sizes.iter().map(|&c| avg(c)).fold(0.0, f64::max),
        },
        Check {
            claim: "64 performs almost equally well (within 10% of 32)".into(),
            pass: chunk_sizes.contains(&64) && avg(64) > 0.9 * avg(32),
        },
        Check {
            claim: format!("the largest chunk ({biggest}) drops significantly (<80% of 32)"),
            pass: avg(biggest) < 0.8 * avg(32),
        },
    ];
    let mut columns = vec!["n".to_string()];
    columns.extend(chunk_sizes.iter().map(|c| format!("chunk{c}_gflops")));
    Figure {
        id: "fig18",
        title: "Best performance of the interleaved implementation with chunking, for different chunk sizes".into(),
        columns,
        rows,
        rendering,
        checks,
    }
}

/// Figure 19: partial vs full unrolling.
pub fn fig19(opts: &FigOpts) -> Figure {
    let ds = ensure_dataset(opts);
    let table = BestTable::new(&ds);
    let sizes = ds_sizes(&ds);
    let mut rows = Vec::new();
    let (mut partial, mut full) = (Vec::new(), Vec::new());
    for &n in &sizes {
        let gp = table
            .best_by_unroll(n, Unroll::Partial)
            .map_or(f64::NAN, |m| m.gflops);
        let gf = table
            .best_by_unroll(n, Unroll::Full)
            .map_or(f64::NAN, |m| m.gflops);
        rows.push(vec![n as f64, gp, gf]);
        partial.push(gp);
        full.push(gf);
    }
    let xs: Vec<f64> = sizes.iter().map(|&n| n as f64).collect();
    let rendering = ascii::line_chart(
        "Figure 19: partial vs full unrolling [GFLOP/s vs n]",
        &xs,
        &[("partial", partial.clone()), ("full", full.clone())],
        72,
        16,
    );
    let small_i = sizes.iter().position(|&n| n >= 16).unwrap_or(0);
    let large_i = sizes
        .iter()
        .position(|&n| n >= 32)
        .unwrap_or(sizes.len() - 1);
    let checks = vec![
        Check {
            claim: "full unrolling pays off up to n=20".into(),
            pass: full[small_i] >= partial[small_i] * 0.99,
        },
        Check {
            claim: "past the register capacity, partial unrolling takes over (n>=32)".into(),
            pass: partial[large_i] >= full[large_i],
        },
        Check {
            claim: "partial wins at the largest size".into(),
            pass: partial.last().unwrap() >= full.last().unwrap(),
        },
    ];
    Figure {
        id: "fig19",
        title: "Best performance with partial unrolling (tile operations only) and full unrolling (whole factorization)".into(),
        columns: vec!["n".into(), "partial_gflops".into(), "full_gflops".into()],
        rows,
        rendering,
        checks,
    }
}

/// Figure 20: every kernel at n = 24 and n = 48 with chunk size 64,
/// binned by `nb`.
pub fn fig20(opts: &FigOpts) -> Figure {
    let ds = ensure_dataset(opts);
    let table = BestTable::new(&ds);
    let sizes = ds_sizes(&ds);
    let (n_a, n_b) = if sizes.contains(&24) && sizes.contains(&48) {
        (24usize, 48usize)
    } else {
        (sizes[sizes.len() / 2], *sizes.last().unwrap())
    };
    let mut rows = Vec::new();
    let mut rendering = String::new();
    let mut winners = Vec::new();
    let mut check_chunked_beats_simple = true;
    let mut worst_is_simple_full = true;
    for &n in &[n_a, n_b] {
        let kernels: Vec<&Measurement> = table
            .kernels_at(n, 64)
            .into_iter()
            .filter(|m| !m.config.fast_math)
            .collect();
        if kernels.is_empty() {
            continue;
        }
        rendering.push_str(&format!(
            "n = {n} (chunk 64, IEEE): {} kernels\n",
            kernels.len()
        ));
        let best = kernels
            .iter()
            .max_by(|a, b| a.gflops.total_cmp(&b.gflops))
            .unwrap();
        let worst = kernels
            .iter()
            .min_by(|a, b| a.gflops.total_cmp(&b.gflops))
            .unwrap();
        rendering.push_str(&format!(
            "  best : {}  {:.0} GFLOP/s\n",
            best.config, best.gflops
        ));
        rendering.push_str(&format!(
            "  worst: {}  {:.0} GFLOP/s\n",
            worst.config, worst.gflops
        ));
        winners.push((n, (*best).clone()));
        worst_is_simple_full &= !worst.config.chunked;
        // Pairwise: chunked vs its non-chunked twin.
        for m in &kernels {
            if m.config.chunked {
                if let Some(twin) = kernels.iter().find(|t| {
                    !t.config.chunked
                        && t.config.nb == m.config.nb
                        && t.config.looking == m.config.looking
                        && t.config.unroll == m.config.unroll
                }) {
                    if m.gflops < twin.gflops * 0.98 {
                        check_chunked_beats_simple = false;
                    }
                }
            }
            rows.push(vec![
                n as f64,
                m.config.nb as f64,
                match m.config.looking {
                    Looking::Right => 0.0,
                    Looking::Left => 1.0,
                    Looking::Top => 2.0,
                },
                m.config.chunked as u8 as f64,
                (m.config.unroll == Unroll::Full) as u8 as f64,
                m.gflops,
            ]);
        }
        // Bin summary by nb.
        let nbs: Vec<usize> = {
            let mut v: Vec<usize> = kernels.iter().map(|m| m.config.nb).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        for nb in nbs {
            let bin: Vec<f64> = kernels
                .iter()
                .filter(|m| m.config.nb == nb)
                .map(|m| m.gflops)
                .collect();
            let max = bin.iter().copied().fold(0.0, f64::max);
            let min = bin.iter().copied().fold(f64::INFINITY, f64::min);
            rendering.push_str(&format!(
                "  nb={nb}: {:2} kernels, {min:7.0} .. {max:7.0} GFLOP/s\n",
                bin.len()
            ));
        }
        rendering.push('\n');
    }
    let w48_partial = winners
        .iter()
        .find(|(n, _)| *n == n_b)
        .map(|(_, m)| m.config.unroll == Unroll::Partial && m.config.looking == Looking::Top)
        .unwrap_or(false);
    let checks = vec![
        Check {
            claim: "chunked kernels beat their non-chunked twins (in general)".into(),
            pass: check_chunked_beats_simple,
        },
        Check {
            claim: "non-chunked fully-unrolled kernels are the worst performers".into(),
            pass: worst_is_simple_full,
        },
        Check {
            claim: format!("at n={n_b} the winner is a top-looking partially-unrolled kernel"),
            pass: w48_partial,
        },
    ];
    Figure {
        id: "fig20",
        title: format!("All kernels for n = {n_a} and n = {n_b} with chunk size 64"),
        columns: vec![
            "n".into(),
            "nb".into(),
            "looking(0=r,1=l,2=t)".into(),
            "chunked".into(),
            "full_unroll".into(),
            "gflops".into(),
        ],
        rows,
        rendering,
        checks,
    }
}

/// Builds the Section-IV analysis table from the sweep dataset
/// (IEEE-arithmetic rows; the Table I variables only).
pub fn analysis_table(ds: &Dataset) -> TableData {
    let rows: Vec<Vec<f64>> = ds
        .measurements
        .iter()
        .filter(|m| !m.config.fast_math)
        .map(|m| m.features())
        .collect();
    let targets: Vec<f64> = ds
        .measurements
        .iter()
        .filter(|m| !m.config.fast_math)
        .map(|m| m.gflops)
        .collect();
    let names = Measurement::feature_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    TableData::new(names, rows, targets)
}

fn forest_config(opts: &FigOpts) -> ForestConfig {
    ForestConfig {
        num_trees: if opts.quick { 60 } else { 500 },
        ..ForestConfig::default()
    }
}

/// Table I: predictive power (permutation importance, `%IncMSE`) of the
/// tuning parameters.
pub fn table1(opts: &FigOpts) -> Figure {
    let ds = ensure_dataset(opts);
    let data = analysis_table(&ds);
    let forest = Forest::fit(&data, forest_config(opts));
    let imp = permutation_importance(&forest, &data, 0xAB1E);
    let mut rendering = String::from("Table I: predictive power of tuning parameters (%IncMSE)\n");
    let mut rows = Vec::new();
    for (i, name) in imp.names.iter().enumerate() {
        rendering.push_str(&format!("  {name:<12} {:>8.1}\n", imp.inc_mse[i]));
        rows.push(vec![i as f64, imp.inc_mse[i], imp.raw_increase[i]]);
    }
    rendering.push_str(&format!(
        "  (forest: {} trees, average depth {:.1}, OOB MSE {:.1})\n",
        forest.trees().len(),
        forest.average_depth(),
        forest.oob_mse(&data)
    ));
    let idx = |n: &str| imp.names.iter().position(|x| x == n).unwrap();
    let cache = imp.inc_mse[idx("cache")];
    let chunking = imp.inc_mse[idx("chunking")];
    let nb = imp.inc_mse[idx("nb")];
    let looking = imp.inc_mse[idx("looking")];
    let weakest = imp.inc_mse.iter().copied().fold(f64::INFINITY, f64::min);
    let checks = vec![
        Check {
            claim: "tile size nb and chunking have the strongest effects".into(),
            pass: {
                let mut sorted = imp.inc_mse.clone();
                sorted.sort_by(|a, b| b.total_cmp(a));
                nb >= sorted[3] && chunking >= sorted[3]
            },
        },
        Check {
            claim: "cache preference is the weakest predictor (near zero or negative)".into(),
            pass: cache <= weakest + 1e-9 && cache < 0.2 * nb.abs().max(1.0),
        },
        Check {
            claim: "looking order carries real predictive power".into(),
            pass: looking > cache,
        },
    ];
    Figure {
        id: "table1",
        title: "Predictive power of tuning parameters on performance (permutation importance)"
            .into(),
        columns: vec![
            "feature_index".into(),
            "inc_mse".into(),
            "raw_increase".into(),
        ],
        rows,
        rendering,
        checks,
    }
}

/// Figure 21: random-forest predicted vs observed performance.
pub fn fig21(opts: &FigOpts) -> Figure {
    let ds = ensure_dataset(opts);
    let data = analysis_table(&ds);
    let forest = Forest::fit(&data, forest_config(opts));
    let oob = forest.oob_predictions(&data);
    let mut pts = Vec::new();
    let (mut pred, mut truth) = (Vec::new(), Vec::new());
    for (i, p) in oob.iter().enumerate() {
        if let Some(p) = p {
            pts.push((data.targets[i], *p));
            pred.push(*p);
            truth.push(data.targets[i]);
        }
    }
    let r = pearson(&pred, &truth);
    // Subsample for the ASCII cloud.
    let step = (pts.len() / 1500).max(1);
    let cloud: Vec<(f64, f64)> = pts.iter().step_by(step).copied().collect();
    let mut rendering = ascii::scatter(
        &format!("Figure 21: RF OOB predicted vs observed GFLOP/s (r = {r:.3})"),
        &cloud,
        64,
        22,
    );
    rendering.push_str(&format!(
        "forest: {} trees, average depth {:.1}\n",
        forest.trees().len(),
        forest.average_depth()
    ));
    let rows = pts.iter().map(|&(t, p)| vec![t, p]).collect();
    let depth = forest.average_depth();
    let checks = vec![
        Check {
            claim: "predictions correlate tightly with measurements (r > 0.9)".into(),
            pass: r > 0.9,
        },
        Check {
            claim: "average tree depth in the paper's regime (~11, accept 6..=20)".into(),
            pass: (6.0..=20.0).contains(&depth),
        },
    ];
    Figure {
        id: "fig21",
        title: "Accuracy of the random-forest model: predicted vs observed performance".into(),
        columns: vec!["observed_gflops".into(), "predicted_gflops".into()],
        rows,
        rendering,
        checks,
    }
}

/// Runs every generator in paper order.
pub fn all(opts: &FigOpts) -> Vec<Figure> {
    vec![
        fig13(opts),
        fig14(opts),
        fig15(opts),
        fig16(opts),
        fig17(opts),
        fig18(opts),
        fig19(opts),
        fig20(opts),
        table1(opts),
        fig21(opts),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> FigOpts {
        let mut o = FigOpts::quick();
        // Isolate test datasets from user runs.
        std::env::set_var(
            "IBCF_RESULTS_DIR",
            std::env::temp_dir().join("ibcf_fig_tests"),
        );
        o.batch = 4096;
        o
    }

    #[test]
    fn fig13_has_all_columns_and_positive_numbers() {
        let f = fig13(&opts());
        assert_eq!(f.columns.len(), 4);
        assert!(!f.rows.is_empty());
        for row in &f.rows {
            assert!(row[1] > 0.0 && row[2] > 0.0 && row[3] > 0.0);
        }
    }

    #[test]
    fn dataset_figures_run_in_quick_mode() {
        let o = opts();
        for fig in [fig15(&o), fig16(&o), fig17(&o), fig19(&o)] {
            assert!(!fig.rows.is_empty(), "{} empty", fig.id);
            assert!(!fig.rendering.is_empty());
        }
    }
}
