//! Figure and table generators reproducing the paper's evaluation, plus
//! shared harness utilities (ASCII charts, CSV output, dataset caching).
//!
//! Every experiment of the paper has a generator here, callable from the
//! `figure` binary (`figure <id> [--quick]`) or from the `figures` bench
//! target:
//!
//! | id | paper | what |
//! |----|-------|------|
//! | fig13 | Figure 13 | top interleaved perf, IEEE vs fast-math, vs traditional |
//! | fig14 | Figure 14 | speedup of interleaved over traditional |
//! | fig15 | Figure 15 | best perf per tiling factor `nb` |
//! | fig16 | Figure 16 | best perf per looking order |
//! | fig17 | Figure 17 | chunked vs non-chunked |
//! | fig18 | Figure 18 | chunk sizes 32–512 |
//! | fig19 | Figure 19 | partial vs full unrolling |
//! | fig20 | Figure 20 | all kernels at n = 24 and n = 48, chunk 64 |
//! | table1 | Table I | permutation importance of the tuning parameters |
//! | fig21 | Figure 21 | random-forest predicted vs observed correlation |

#![warn(missing_docs)]

pub mod ascii;
pub mod common;
pub mod figures;

pub use common::{ensure_dataset, results_dir, FigOpts, Figure};
