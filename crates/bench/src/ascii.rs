//! Minimal ASCII charts for terminal figure rendering.

/// Renders multiple named series over a shared x axis as an ASCII line
/// chart. Each series is drawn with its own glyph; points round to the
/// nearest cell.
pub fn line_chart(
    title: &str,
    xs: &[f64],
    series: &[(&str, Vec<f64>)],
    width: usize,
    height: usize,
) -> String {
    assert!(width >= 16 && height >= 4, "chart too small");
    let glyphs = ['*', 'o', '+', 'x', '#', '@', '%', '&', '~'];
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if xs.is_empty() || series.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let xmin = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let xmax = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let ymin = 0.0f64;
    let ymax = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .filter(|y| y.is_finite())
        .fold(f64::NEG_INFINITY, f64::max)
        .max(1e-9);

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, ys)) in series.iter().enumerate() {
        let g = glyphs[si % glyphs.len()];
        for (x, y) in xs.iter().zip(ys) {
            if !y.is_finite() {
                continue;
            }
            let cx = if xmax > xmin {
                ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize
            } else {
                0
            };
            let cy = ((y - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = g;
        }
    }
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{ymax:>8.0} |")
        } else if i == height - 1 {
            format!("{ymin:>8.0} |")
        } else {
            "         |".to_string()
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("          {}{}\n", "-".repeat(width), ""));
    out.push_str(&format!(
        "          x: {xmin:.0} .. {xmax:.0}   legend: {}\n",
        series
            .iter()
            .enumerate()
            .map(|(i, (name, _))| format!("{}={}", glyphs[i % glyphs.len()], name))
            .collect::<Vec<_>>()
            .join("  ")
    ));
    out
}

/// Renders a y-vs-x scatter (e.g. predicted vs observed) with an identity
/// reference diagonal.
pub fn scatter(title: &str, points: &[(f64, f64)], width: usize, height: usize) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if points.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let min = points
        .iter()
        .flat_map(|&(x, y)| [x, y])
        .fold(f64::INFINITY, f64::min);
    let max = points
        .iter()
        .flat_map(|&(x, y)| [x, y])
        .fold(f64::NEG_INFINITY, f64::max)
        .max(min + 1e-9);
    let mut grid = vec![vec![' '; width]; height];
    // Identity diagonal first, so data overwrites it.
    for i in 0..width.min(height * 2) {
        let fx = i as f64 / (width - 1) as f64;
        let row = height - 1 - (fx * (height - 1) as f64).round() as usize;
        if let Some(cell) = grid[row].get_mut(i) {
            *cell = '.';
        }
    }
    for &(x, y) in points {
        let cx = ((x - min) / (max - min) * (width - 1) as f64).round() as usize;
        let cy = ((y - min) / (max - min) * (height - 1) as f64).round() as usize;
        grid[height - 1 - cy.min(height - 1)][cx.min(width - 1)] = '*';
    }
    for row in &grid {
        out.push_str("  |");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "   axes: {min:.0} .. {max:.0} (x = observed, y = predicted)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_contains_series_glyphs_and_legend() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let a: Vec<f64> = xs.iter().map(|x| x * 10.0).collect();
        let b: Vec<f64> = xs.iter().map(|x| 100.0 - x * 5.0).collect();
        let s = line_chart("test", &xs, &[("up", a), ("down", b)], 40, 10);
        assert!(s.contains('*') && s.contains('o'));
        assert!(s.contains("*=up") && s.contains("o=down"));
        assert!(s.contains("x: 0 .. 9"));
    }

    #[test]
    fn empty_series_say_no_data() {
        let s = line_chart("t", &[], &[], 40, 10);
        assert!(s.contains("no data"));
    }

    #[test]
    fn scatter_draws_points_and_diagonal() {
        let pts = vec![(0.0, 0.0), (50.0, 40.0), (100.0, 100.0)];
        let s = scatter("sc", &pts, 40, 12);
        assert!(s.contains('*'));
        assert!(s.contains('.'));
    }

    #[test]
    fn non_finite_values_are_skipped() {
        let xs = vec![0.0, 1.0];
        let ys = vec![f64::NAN, 5.0];
        let s = line_chart("t", &xs, &[("a", ys)], 30, 6);
        assert!(s.contains('*'));
    }
}
