//! Regenerates one (or all) of the paper's figures and tables, selected by
//! id: `figure fig13`, `figure table1`, `figure all`. Pass `--quick` for a
//! reduced run.
//!
//! Replaces the former per-figure binaries (`fig13` … `fig21`, `table1`),
//! which were nine copies of the same sixteen lines.

use ibcf_bench::figures;
use ibcf_bench::{results_dir, FigOpts, Figure};

const IDS: &[&str] = &[
    "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "table1", "fig21",
];

fn generate(id: &str, opts: &FigOpts) -> Option<Vec<Figure>> {
    let one = |f: Figure| Some(vec![f]);
    match id {
        "fig13" => one(figures::fig13(opts)),
        "fig14" => one(figures::fig14(opts)),
        "fig15" => one(figures::fig15(opts)),
        "fig16" => one(figures::fig16(opts)),
        "fig17" => one(figures::fig17(opts)),
        "fig18" => one(figures::fig18(opts)),
        "fig19" => one(figures::fig19(opts)),
        "fig20" => one(figures::fig20(opts)),
        "table1" => one(figures::table1(opts)),
        "fig21" => one(figures::fig21(opts)),
        "all" => Some(figures::all(opts)),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if ids.is_empty() {
        eprintln!("usage: figure <id>... [--quick]");
        eprintln!("ids: {} all", IDS.join(" "));
        std::process::exit(2);
    }
    let opts = if quick {
        FigOpts::quick()
    } else {
        FigOpts::default()
    };
    let mut pass = 0usize;
    let mut total = 0usize;
    for id in &ids {
        let Some(figs) = generate(id, &opts) else {
            eprintln!("unknown figure id `{id}`; ids: {} all", IDS.join(" "));
            std::process::exit(2);
        };
        for fig in &figs {
            fig.print();
            match fig.save_csv(&results_dir()) {
                Ok(p) => println!("saved {}\n", p.display()),
                Err(e) => eprintln!("could not save CSV: {e}"),
            }
            pass += fig.checks.iter().filter(|c| c.pass).count();
            total += fig.checks.len();
        }
    }
    if total > 0 {
        println!("=== shape checks: {pass}/{total} passed ===");
    }
}
