//! Quick calibration probe: prints model GFLOP/s across n for a few
//! representative configurations. Not part of the figure set; a
//! development aid for checking the model's shape against the paper.

use ibcf_core::flops::cholesky_flops_std;
use ibcf_gpu_sim::GpuSpec;
use ibcf_kernels::{gflops_of_config, time_traditional, KernelConfig, Unroll};

fn main() {
    let spec = GpuSpec::p100();
    let batch = 16384;
    println!(
        "{:>4} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "n", "full-ieee", "full-fast", "part-ieee", "part-fast", "nochunk", "trad", "bottleneck"
    );
    for n in [4, 8, 12, 16, 20, 24, 28, 32, 40, 48, 56, 64] {
        let full = KernelConfig {
            unroll: Unroll::Full,
            ..KernelConfig::baseline(n)
        };
        let fullf = KernelConfig {
            fast_math: true,
            ..full
        };
        let best_part = |fast: bool| {
            let mut best: f64 = 0.0;
            for nb in 1..=8 {
                let c = KernelConfig {
                    nb,
                    unroll: Unroll::Partial,
                    fast_math: fast,
                    ..KernelConfig::baseline(n)
                };
                best = best.max(gflops_of_config(&c, batch, &spec));
            }
            best
        };
        let nochunk = KernelConfig {
            chunked: false,
            fast_math: true,
            ..full
        };
        let g_full = gflops_of_config(&full, batch, &spec);
        let g_fullf = gflops_of_config(&fullf, batch, &spec);
        let g_part = best_part(false);
        let g_partf = best_part(true);
        let g_nochunk = gflops_of_config(&nochunk, batch, &spec);
        let t = time_traditional(n, batch, &spec, false);
        let g_trad = t.gflops(cholesky_flops_std(n) * batch as f64);
        let timing = ibcf_kernels::time_config(&fullf, batch, &spec);
        println!(
            "{:>4} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>10?}",
            n, g_full, g_fullf, g_part, g_partf, g_nochunk, g_trad, timing.bottleneck
        );
    }
}
