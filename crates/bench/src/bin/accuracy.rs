//! Numerical accuracy study: how far do the f32 device kernels drift from
//! an f64 oracle, across matrix size, conditioning, and arithmetic mode?
//!
//! The paper works in single precision with optional `--use_fast_math`
//! (which "relaxes the IEEE compliance for the square root and division
//! operations"). This study quantifies what that costs numerically on the
//! functional simulator — context the paper leaves implicit.

use ibcf_core::reference::potrf;
use ibcf_core::spd::{random_spd, SpdKind};
use ibcf_core::verify::reconstruction_error;
use ibcf_gpu_sim::{launch_functional_seq, ExecOptions};
use ibcf_kernels::{InterleavedCholesky, KernelConfig};
use ibcf_layout::{scatter_matrix, BatchLayout};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Worst relative reconstruction error of the device kernel over `reps`
/// random SPD matrices of the given kind.
fn device_error(n: usize, kind: SpdKind, fast_math: bool, reps: usize) -> f64 {
    let config = KernelConfig {
        fast_math,
        ..KernelConfig::baseline(n)
    };
    let layout = config.layout(32);
    let kernel = InterleavedCholesky::new(config, 32);
    let mut rng = StdRng::seed_from_u64(7);
    let mut worst = 0.0f64;
    for _ in 0..reps {
        let a = random_spd::<f32>(n, kind, &mut rng);
        let mut mem = vec![0.0f32; layout.len()];
        for m in 0..layout.padded_batch() {
            scatter_matrix(&layout, &mut mem, m, a.as_slice(), n);
        }
        launch_functional_seq(
            &kernel,
            config.launch(32),
            &mut mem,
            ExecOptions { fast_math },
        );
        let mut l = vec![0.0f32; n * n];
        ibcf_layout::gather_matrix(&layout, &mem, 0, &mut l, n);
        worst = worst.max(reconstruction_error(n, a.as_slice(), &l, n));
    }
    worst
}

/// f64 oracle error for the same matrix family.
fn oracle_error(n: usize, kind: SpdKind, reps: usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(7);
    let mut worst = 0.0f64;
    for _ in 0..reps {
        let a = random_spd::<f64>(n, kind, &mut rng);
        let mut l = a.clone().into_vec();
        potrf(n, &mut l).expect("oracle factorization");
        worst = worst.max(reconstruction_error(n, a.as_slice(), &l, n));
    }
    worst
}

fn main() {
    println!("== Accuracy study: worst relative reconstruction error ‖A−LLᵀ‖/‖A‖ ==\n");
    println!(
        "{:<6} {:<18} {:>12} {:>12} {:>12}",
        "n", "matrix family", "f64 oracle", "f32 IEEE", "f32 fast"
    );
    let reps = 10;
    for &n in &[4usize, 8, 16, 32, 64] {
        for (name, kind) in [
            ("wishart", SpdKind::Wishart),
            ("cond=1e4", SpdKind::Conditioned(1e4)),
        ] {
            let o = oracle_error(n, kind, reps);
            let i = device_error(n, kind, false, reps);
            let f = device_error(n, kind, true, reps);
            println!("{n:<6} {name:<18} {o:>12.2e} {i:>12.2e} {f:>12.2e}");
            assert!(i < 1e-4, "IEEE device error too large: {i}");
            assert!(f < 1e-2, "fast-math device error too large: {f}");
            assert!(
                f >= i * 0.5,
                "fast-math should not be more accurate than IEEE"
            );
        }
    }
    println!(
        "\nfast-math costs ~2 mantissa bits on divide/sqrt results \
         (bounded, condition-independent overhead), matching the\n\
         --use_fast_math contract: relaxed rounding, flush-to-zero."
    );
}
