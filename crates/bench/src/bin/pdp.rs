//! Partial-dependence curves over the autotuning dataset: *how* each
//! tuning parameter moves performance, according to the random-forest
//! model — the actionable complement to Table I's importance ranking.
//!
//! Pass `--quick` for the reduced dataset.

use ibcf_autotune::Measurement;
use ibcf_bench::{ensure_dataset, FigOpts};
use ibcf_forest::{partial_dependence, Forest, ForestConfig, TableData};

fn main() {
    let opts = if std::env::args().any(|a| a == "--quick") {
        FigOpts::quick()
    } else {
        FigOpts::default()
    };
    let ds = ensure_dataset(&opts);
    let ieee: Vec<&Measurement> = ds
        .measurements
        .iter()
        .filter(|m| !m.config.fast_math)
        .collect();
    let data = TableData::new(
        Measurement::feature_names()
            .iter()
            .map(|s| s.to_string())
            .collect(),
        ieee.iter().map(|m| m.features()).collect(),
        ieee.iter().map(|m| m.gflops).collect(),
    );
    eprintln!("fitting forest on {} rows...", data.len());
    let trees = if opts.quick { 60 } else { 300 };
    let forest = Forest::fit(
        &data,
        ForestConfig {
            num_trees: trees,
            ..Default::default()
        },
    );

    println!("partial dependence of predicted GFLOP/s on each tuning parameter");
    println!("(marginalized over the rest of the dataset)\n");
    for (f, name) in Measurement::feature_names().iter().enumerate() {
        let pdp = partial_dependence(&forest, &data, f, None, 800);
        print!("{name:<12}");
        for (g, r) in pdp.grid.iter().zip(&pdp.response) {
            print!("  {g:.0}->{r:.0}");
        }
        println!("   [effect {:.0}]", pdp.effect_size());
    }
    println!(
        "\nreading guide: chunking 0->1 should jump, nb should climb, cache\n\
         0->1 should be flat — the same story as Table I, but quantified."
    );
}
