//! Regenerates the paper's fig14. Pass `--quick` for a reduced run.

use ibcf_bench::{results_dir, FigOpts};

fn main() {
    let opts = if std::env::args().any(|a| a == "--quick") {
        FigOpts::quick()
    } else {
        FigOpts::default()
    };
    let fig = ibcf_bench::figures::fig14(&opts);
    fig.print();
    match fig.save_csv(&results_dir()) {
        Ok(p) => println!("saved {}", p.display()),
        Err(e) => eprintln!("could not save CSV: {e}"),
    }
}
