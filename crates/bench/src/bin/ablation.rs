//! Ablation study of the simulator's architectural mechanisms.
//!
//! DESIGN.md claims each of the paper's phenomena is produced by a
//! specific modeled mechanism, not by curve fitting. This binary proves it
//! by switching mechanisms off one at a time and showing exactly which
//! figure's signal disappears — and that the others survive:
//!
//! * DRAM row-buffer penalty off  → the chunking gap (Fig 17) collapses;
//! * IEEE special-function costs off → the IEEE/fast-math gap (Fig 13)
//!   collapses;
//! * instruction-cache penalty off → full unrolling stops losing at
//!   large n (Fig 19, right half);
//! * register-reuse window off → full unrolling stops *winning* at
//!   small n (Fig 19, left half).

use ibcf_core::flops::cholesky_flops_std;
use ibcf_gpu_sim::{time_thread_kernel, GpuSpec, TimingOptions};
use ibcf_kernels::{InterleavedCholesky, KernelConfig, Unroll};

fn gflops(config: &KernelConfig, spec: &GpuSpec, opts: TimingOptions) -> f64 {
    let batch = 16_384;
    let kernel = InterleavedCholesky::new(*config, batch);
    let t = time_thread_kernel(&kernel, config.launch(batch), spec, opts);
    cholesky_flops_std(config.n) * batch as f64 / t.time_s / 1e9
}

fn main() {
    let base_spec = GpuSpec::p100();
    println!("== Ablation: which mechanism produces which figure? ==\n");

    // ---- Figure 17 signal: chunked vs simple at a memory-bound size ----
    let n = 32;
    let chunked = KernelConfig {
        fast_math: true,
        ..KernelConfig::baseline(n)
    };
    let simple = KernelConfig {
        chunked: false,
        ..chunked
    };
    let opts = TimingOptions {
        fast_math: true,
        ..Default::default()
    };
    let with = gflops(&chunked, &base_spec, opts) / gflops(&simple, &base_spec, opts);
    let mut flat = base_spec.clone();
    flat.dram_row_miss_penalty = 1.0; // rows are free: no spatial locality
    let without = gflops(&chunked, &flat, opts) / gflops(&simple, &flat, opts);
    println!("chunking advantage at n={n} (Fig 17):");
    println!("  row-buffer model ON : {with:.2}x");
    println!("  row-buffer model OFF: {without:.2}x   <- signal gone");
    assert!(with > 1.5 && without < 1.15);

    // ---- Figure 13 signal: IEEE vs fast-math at a compute-bound size ----
    let n = 16;
    let cfg = KernelConfig {
        unroll: Unroll::Full,
        ..KernelConfig::baseline(n)
    };
    let ieee = TimingOptions::default();
    let fast = TimingOptions {
        fast_math: true,
        ..Default::default()
    };
    let gap = gflops(&cfg, &base_spec, fast) / gflops(&cfg, &base_spec, ieee);
    let mut cheap = base_spec.clone();
    cheap.costs.div_ieee = cheap.costs.div_fast;
    cheap.costs.sqrt_ieee = cheap.costs.sqrt_fast;
    cheap.costs.rcp_ieee = cheap.costs.rcp_fast;
    let gap_off = gflops(&cfg, &cheap, fast) / gflops(&cfg, &cheap, ieee);
    println!("\nfast-math advantage at n={n} (Fig 13):");
    println!("  IEEE refinement costs ON : {gap:.2}x");
    println!("  IEEE refinement costs OFF: {gap_off:.2}x   <- signal gone");
    assert!(gap > 1.15 && (gap_off - 1.0).abs() < 0.05);

    // ---- Figure 19 right half: full unrolling losing at large n ----
    let n = 48;
    let partial = KernelConfig {
        unroll: Unroll::Partial,
        fast_math: true,
        nb: 8,
        ..KernelConfig::baseline(n)
    };
    let full = KernelConfig {
        unroll: Unroll::Full,
        ..partial
    };
    let opts = TimingOptions {
        fast_math: true,
        ..Default::default()
    };
    let ratio = gflops(&partial, &base_spec, opts) / gflops(&full, &base_spec, opts);
    let mut no_icache = base_spec.clone();
    no_icache.icache_beta = 0.0;
    no_icache.spill_reuse_factor = 0.0; // and free spills
    let ratio_off = gflops(&partial, &no_icache, opts) / gflops(&full, &no_icache, opts);
    println!("\npartial-over-full advantage at n={n} (Fig 19, large n):");
    println!("  i-cache + spill penalties ON : {ratio:.2}x");
    println!("  i-cache + spill penalties OFF: {ratio_off:.2}x   <- much weaker");
    assert!(ratio > ratio_off, "penalties must explain part of the gap");

    // ---- Figure 19 left half: full unrolling winning at small n ----
    let n = 16;
    let partial = KernelConfig {
        unroll: Unroll::Partial,
        fast_math: true,
        ..KernelConfig::baseline(n)
    };
    let full = KernelConfig {
        unroll: Unroll::Full,
        ..partial
    };
    let win = gflops(&full, &base_spec, opts) / gflops(&partial, &base_spec, opts);
    let no_reuse = TimingOptions {
        fast_math: true,
        disable_reg_reuse: true,
    };
    let win_off = gflops(&full, &base_spec, no_reuse) / gflops(&partial, &base_spec, no_reuse);
    println!("\nfull-over-partial advantage at n={n} (Fig 19, small n):");
    println!("  register-reuse window ON : {win:.2}x");
    println!("  register-reuse window OFF: {win_off:.2}x   <- signal gone");
    assert!(win > 1.1 && win_off <= 1.02);

    println!("\nall ablations behaved as designed.");
}
