//! Cross-GPU sanity check: rerun the Figure-13 comparison on the V100
//! preset. The paper's conclusions are architectural, not P100-specific;
//! every qualitative relationship must survive a change of hardware
//! constants.

use ibcf_core::flops::cholesky_flops_std;
use ibcf_gpu_sim::GpuSpec;
use ibcf_kernels::{gflops_of_config, time_traditional, KernelConfig, Unroll};

fn best_small(n: usize, fast: bool, spec: &GpuSpec, batch: usize) -> f64 {
    let mut best: f64 = 0.0;
    for nb in [2usize, 4, 8] {
        for unroll in Unroll::ALL {
            let c = KernelConfig {
                nb,
                unroll,
                fast_math: fast,
                ..KernelConfig::baseline(n)
            };
            best = best.max(gflops_of_config(&c, batch, spec));
        }
    }
    best
}

fn main() {
    let batch = 16_384;
    println!(
        "{:<6} {:>6} | {:>10} {:>10} {:>10} {:>8} | {:>10} {:>10} {:>10} {:>8}",
        "", "", "P100", "", "", "", "V100", "", "", ""
    );
    println!(
        "{:<6} {:>6} | {:>10} {:>10} {:>10} {:>8} | {:>10} {:>10} {:>10} {:>8}",
        "n", "", "ieee", "fast", "trad", "speedup", "ieee", "fast", "trad", "speedup"
    );
    let mut holds = true;
    for n in [8usize, 16, 24, 32, 48, 64] {
        let mut row = Vec::new();
        for spec in [GpuSpec::p100(), GpuSpec::v100()] {
            let ieee = best_small(n, false, &spec, batch);
            let fast = best_small(n, true, &spec, batch);
            let trad = time_traditional(n, batch, &spec, false)
                .gflops(cholesky_flops_std(n) * batch as f64);
            row.push((ieee, fast, trad, ieee / trad));
        }
        println!(
            "{:<6} {:>6} | {:>10.0} {:>10.0} {:>10.0} {:>7.1}x | {:>10.0} {:>10.0} {:>10.0} {:>7.1}x",
            n, "", row[0].0, row[0].1, row[0].2, row[0].3, row[1].0, row[1].1, row[1].2, row[1].3
        );
        // Qualitative invariants across GPUs.
        for (ieee, fast, trad, speedup) in &row {
            holds &= fast >= ieee;
            holds &= ieee > trad || n >= 96;
            holds &= *speedup > 1.0;
        }
        // V100 (more SMs, more bandwidth) at least matches P100.
        holds &= row[1].1 >= row[0].1 * 0.95;
    }
    assert!(
        holds,
        "a qualitative relationship failed to transfer to V100"
    );
    println!("\nall qualitative relationships hold on both GPU presets.");
}
