//! Regenerates every table and figure of the paper's evaluation in order.
//! Pass `--quick` for a reduced run.

use ibcf_bench::{results_dir, FigOpts};

fn main() {
    let opts = if std::env::args().any(|a| a == "--quick") {
        FigOpts::quick()
    } else {
        FigOpts::default()
    };
    let figs = ibcf_bench::figures::all(&opts);
    let mut pass = 0usize;
    let mut total = 0usize;
    for fig in &figs {
        fig.print();
        match fig.save_csv(&results_dir()) {
            Ok(p) => println!("saved {}\n", p.display()),
            Err(e) => eprintln!("could not save CSV: {e}"),
        }
        pass += fig.checks.iter().filter(|c| c.pass).count();
        total += fig.checks.len();
    }
    println!("=== shape checks: {pass}/{total} passed ===");
}
