//! Dumps the generated CUDA C sources for a representative slice of the
//! tuning space into `results/kernels/` — the artifact the paper's
//! pyexpander pipeline would hand to `nvcc`.

use ibcf_bench::results_dir;
use ibcf_core::Looking;
use ibcf_kernels::{emit_cuda, KernelConfig, Unroll};

fn main() {
    let dir = results_dir().join("kernels");
    std::fs::create_dir_all(&dir).expect("create results/kernels");
    let mut count = 0usize;
    let mut bytes = 0usize;
    for n in [8usize, 16, 24, 48] {
        for nb in [2usize, 4, 8] {
            for looking in Looking::ALL {
                for unroll in Unroll::ALL {
                    let config = KernelConfig {
                        n,
                        nb,
                        looking,
                        unroll,
                        ..KernelConfig::baseline(n)
                    };
                    let src = emit_cuda(&config);
                    let name =
                        format!("spotrf_n{n}_nb{nb}_{}_{}.cu", looking.name(), unroll.name());
                    bytes += src.len();
                    std::fs::write(dir.join(&name), src).expect("write kernel source");
                    count += 1;
                }
            }
        }
    }
    println!(
        "wrote {count} generated kernels ({:.1} KiB of CUDA C) to {}",
        bytes as f64 / 1024.0,
        dir.display()
    );
    println!("inspect e.g. {}/spotrf_n16_nb4_top_full.cu", dir.display());
}
