//! Shared harness: figure representation, CSV output, dataset caching.

use ibcf_autotune::{sweep_sizes_with, Dataset, ParamSpace, StderrProgress, SweepOptions};
use ibcf_gpu_sim::GpuSpec;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Options shared by every figure generator.
#[derive(Debug, Clone)]
pub struct FigOpts {
    /// Reduced sizes/space for quick runs (CI, `cargo bench`).
    pub quick: bool,
    /// Batch size (the paper uses 16,384).
    pub batch: usize,
    /// GPU model.
    pub spec: GpuSpec,
}

impl Default for FigOpts {
    fn default() -> Self {
        FigOpts {
            quick: false,
            batch: 16_384,
            spec: GpuSpec::p100(),
        }
    }
}

impl FigOpts {
    /// Quick-mode options.
    pub fn quick() -> Self {
        FigOpts {
            quick: true,
            batch: 8192,
            ..Default::default()
        }
    }
}

/// One shape assertion of a figure ("who wins, where the crossover is").
#[derive(Debug, Clone)]
pub struct Check {
    /// What the paper claims.
    pub claim: String,
    /// Whether the reproduction observes it.
    pub pass: bool,
}

/// A reproduced figure or table: columns of numbers plus shape checks and
/// a rendered chart.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Identifier (`fig13` … `fig21`, `table1`).
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Column names; the first column is the x axis where applicable.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<f64>>,
    /// ASCII rendering (chart or formatted table).
    pub rendering: String,
    /// Shape checks against the paper's claims.
    pub checks: Vec<Check>,
}

impl Figure {
    /// Writes the figure's data as CSV into `dir`.
    pub fn save_csv(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
        writeln!(f, "{}", self.columns.join(","))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            writeln!(f, "{}", cells.join(","))?;
        }
        Ok(path)
    }

    /// Prints the rendering, the data table (capped at 64 rows — the full
    /// set goes to the CSV), and the check outcomes.
    pub fn print(&self) {
        println!("== {}: {} ==", self.id, self.title);
        println!("{}", self.rendering);
        println!("{}", self.columns.join("\t"));
        const MAX_ROWS: usize = 64;
        for row in self.rows.iter().take(MAX_ROWS) {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:.2}")).collect();
            println!("{}", cells.join("\t"));
        }
        if self.rows.len() > MAX_ROWS {
            println!("... ({} more rows in the CSV)", self.rows.len() - MAX_ROWS);
        }
        println!();
        for c in &self.checks {
            println!("[{}] {}", if c.pass { "PASS" } else { "FAIL" }, c.claim);
        }
        println!();
    }

    /// `true` if every shape check passed.
    pub fn all_checks_pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }
}

/// Directory figures write their CSVs to (`results/` at the workspace
/// root, overridable via `IBCF_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    if let Ok(d) = std::env::var("IBCF_RESULTS_DIR") {
        return PathBuf::from(d);
    }
    // Walk up from the crate to the workspace root.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.join("results")
}

/// Loads the cached exhaustive-sweep dataset, or runs the sweep and caches
/// it. The cache key is the file name, which encodes mode and batch.
pub fn ensure_dataset(opts: &FigOpts) -> Dataset {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).ok();
    let name = format!(
        "dataset_{}_{}.jsonl",
        if opts.quick { "quick" } else { "paper" },
        opts.batch
    );
    let path = dir.join(name);
    if path.exists() {
        if let Ok(ds) = Dataset::load_jsonl(&path) {
            // Validate the cache against the requested batch AND GPU; a
            // stale dataset from another spec (or an edited timing model
            // under a renamed spec) must not silently feed the figures.
            if ds.batch == opts.batch && ds.gpu == opts.spec.name && !ds.measurements.is_empty() {
                return ds;
            }
            eprintln!(
                "cached dataset at {} does not match (batch/gpu); re-sweeping",
                path.display()
            );
        }
    }
    let (space, sizes) = if opts.quick {
        (ParamSpace::quick(), vec![8, 16, 24, 32, 48])
    } else {
        (ParamSpace::paper(), ParamSpace::paper_sizes())
    };
    eprintln!(
        "sweeping {} configurations ({} sizes x {} per size)...",
        sizes.len() * space.len_per_n(),
        sizes.len(),
        space.len_per_n()
    );
    let report = sweep_sizes_with(
        &space,
        &sizes,
        &opts.spec,
        &SweepOptions {
            batch: opts.batch,
            progress_every: 2000,
            ..Default::default()
        },
        &StderrProgress,
    );
    eprintln!(
        "swept {} configs in {:.1}s ({:.0} configs/s, plan-cache hit rate {:.1}%)",
        report.dataset.measurements.len(),
        report.wall_s,
        report.configs_per_sec(),
        report.cache.hit_rate() * 100.0
    );
    let ds = report.dataset;
    ds.save_jsonl(&path).ok();
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_csv_round_trip() {
        let fig = Figure {
            id: "fig13",
            title: "t".into(),
            columns: vec!["n".into(), "gflops".into()],
            rows: vec![vec![8.0, 100.0], vec![16.0, 200.0]],
            rendering: String::new(),
            checks: vec![Check {
                claim: "c".into(),
                pass: true,
            }],
        };
        let dir = std::env::temp_dir().join("ibcf_fig_test");
        let p = fig.save_csv(&dir).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        assert!(text.starts_with("n,gflops\n8,100\n"));
        assert!(fig.all_checks_pass());
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn results_dir_is_workspace_results() {
        let d = results_dir();
        assert!(d.ends_with("results") || std::env::var("IBCF_RESULTS_DIR").is_ok());
    }
}
