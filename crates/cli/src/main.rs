//! `ibcf` — command-line interface to the interleaved batch Cholesky
//! reproduction.
//!
//! ```text
//! ibcf simulate --n 16 [--nb 4] [--looking top] [--chunk 64] [--simple]
//!               [--full] [--fast] [--batch 16384]
//!               [--gpu p100|v100|a100|gtx1080]
//!     Time one kernel configuration and print the full model breakdown.
//!
//! ibcf best --n 16 [--batch 16384] [--quick]
//!     Exhaustively sweep one size and print the winning configurations.
//!
//! ibcf sweep --sizes 8,16,24 [--out sweep.jsonl] [--log sweep.log]
//!            [--shard i/k] [--batch 16384] [--quick]
//!            [--selector exhaustive|analytic|hill]
//!     Run a sweep and persist the dataset (JSON lines). With --log,
//!     stream every measurement to a crash-safe resumable log. With
//!     --selector, swap the exhaustive grid for a model-guided or
//!     hill-climbing search over the same logging machinery.
//!
//! ibcf resume --log sweep.log [--out sweep.jsonl]
//!     Finish an interrupted sweep from its log.
//!
//! ibcf merge --out sweep.jsonl shard0.log shard1.log ...
//!     Reassemble shard logs into one canonical dataset.
//!
//! ibcf verify-log sweep.log [--strict]
//!     Validate a sweep log (checksums, grid consistency, coverage).
//!
//! ibcf analyze --data sweep.jsonl [--trees 500]
//!     Fit the random forest and print Table-I-style importances.
//!
//! ibcf tune --data sweep.jsonl --out dispatch.jsonl
//!     Build a per-size kernel dispatch table from a sweep dataset.
//!
//! ibcf tune --out dispatch.jsonl [--selector analytic] [--regret]
//!     Model-guided fast path: build the table by searching directly,
//!     measuring only the analytic model's plausible candidates.
//!
//! ibcf emit --n 16 [--nb 4] [--looking top] [--full] [--out k.cu]
//!     Emit the CUDA C source the paper's generator would produce.
//!
//! ibcf verify --n 16 [--batch 1024]
//!     Factor a random batch functionally and report the residual.
//!
//! ibcf host-bench [--sizes 8,16,24,32] [--batch 16384] [--reps 3]
//!     Benchmark the CPU baselines per layout: sequential and
//!     rayon-gather gather/scatter vs the in-place lane-vectorized
//!     engine.
//!
//! ibcf tiled-bench [--sizes 128,256,512] [--nbs 16,32] [--threads T]
//!     Benchmark large-matrix Cholesky: sequential blocked baseline vs
//!     the core::tiled task-graph runtime (sequential and parallel).
//!
//! ibcf serve [--port 7117] [--workers 1] [--dispatch dispatch.jsonl]
//!     Run the dynamic-batching factorization service over TCP.
//!
//! ibcf loadgen [--addr 127.0.0.1:7117] [--requests 100000] [--rate R]
//!     Drive a running server and report throughput and latency.
//!
//! ibcf chaos [--plan mixed] [--seed 1] [--requests 2000]
//!     Run loadgen against an in-process service under a seeded fault
//!     plan and verify every request gets exactly one reply.
//! ```

mod args;
mod commands;

use args::Args;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let code = match parsed.command.as_deref() {
        Some("simulate") => commands::simulate(&parsed),
        Some("best") => commands::best(&parsed),
        Some("sweep") => commands::sweep(&parsed),
        Some("resume") => commands::resume(&parsed),
        Some("merge") => commands::merge(&parsed),
        Some("verify-log") => commands::verify_log(&parsed),
        Some("analyze") => commands::analyze(&parsed),
        Some("tune") => commands::tune(&parsed),
        Some("emit") => commands::emit(&parsed),
        Some("verify") => commands::verify(&parsed),
        Some("host-bench") => commands::host_bench(&parsed),
        Some("tiled-bench") => commands::tiled_bench(&parsed),
        Some("serve") => commands::serve(&parsed),
        Some("loadgen") => commands::loadgen(&parsed),
        Some("chaos") => commands::chaos(&parsed),
        Some("help") | None => {
            print!("{}", commands::USAGE);
            0
        }
        Some(other) => {
            eprintln!("unknown command: {other}\n\n{}", commands::USAGE);
            2
        }
    };
    std::process::exit(code);
}
