//! The `ibcf` subcommands.

use crate::args::Args;
use ibcf_autotune::{
    merge_logs, run_sizes, run_sizes_logged, sweep_sizes, sweep_sizes_logged, sweep_sizes_with,
    BestTable, Dataset, LoggedSweepReport, Measurement, ParamSpace, SelectionReport, SelectorKind,
    ShardSpec, StderrProgress, SweepLog, SweepOptions, SweepReport, TunedDispatch,
};
use ibcf_core::flops::cholesky_flops_std;
use ibcf_core::host_batch::{factorize_batch, factorize_batch_seq, BatchReport};
use ibcf_core::lane_batch::{LaneOrder, LaneWidth};
use ibcf_core::spd::{fill_batch_spd, SpdKind};
use ibcf_core::verify::batch_reconstruction_error;
use ibcf_core::{
    detect_isa, factorize_batch_auto_backend, potrf_blocked, potrf_tiled_seq, potrf_tiled_threads,
    LaneBackend, Looking, Real,
};
use ibcf_forest::{permutation_importance, Forest, ForestConfig, TableData};
use ibcf_gpu_sim::GpuSpec;
use ibcf_kernels::{
    emit_cuda, factorize_batch_device, time_config, time_traditional, KernelConfig, Unroll,
};
use ibcf_layout::{alloc_batch, Canonical, Chunked, Interleaved, Layout};
use std::path::Path;

/// Help text.
pub const USAGE: &str = "\
ibcf - interleaved batch Cholesky factorization (IPPS'17 reproduction)

commands:
  simulate  --n N [--nb NB] [--looking right|left|top] [--chunk C]
            [--simple] [--full] [--fast] [--batch B]
            [--gpu p100|v100|a100|gtx1080]
            time one kernel configuration on the simulator
  best      --n N [--batch B] [--quick]      sweep one size, print winners
  sweep     --sizes 8,16,24 [--out F.jsonl] [--log F.log] [--shard i/k]
            [--batch B] [--quick] [--noise SIGMA] [--noise-seed S]
            [--selector exhaustive|analytic|hill]
            run a sweep and persist the dataset; with --log, stream every
            measurement to a crash-safe resumable log; --selector swaps
            the exhaustive grid for a model-guided or hill-climbing
            search over the same logging machinery
  resume    --log F.log [--out F.jsonl]
            finish an interrupted sweep from its log (all sweep
            parameters come from the log header)
  merge     --out F.jsonl [--partial] SHARD.log...
            reassemble shard logs into one canonical dataset
  verify-log [--strict] F.log
            validate a sweep log (checksums, grid, coverage)
  analyze   --data F.jsonl [--trees T]       random-forest importances
  tune      --data F.jsonl --out D.jsonl [--fast]
            build a per-size dispatch table from a sweep dataset; or
  tune      --out D.jsonl [--sizes 8,...,64] [--selector analytic|hill]
            [--gpu G] [--batch B] [--quick] [--regret]
            search directly (no dataset needed): the analytic model
            ranks candidates and early stopping measures only the
            plausible ones; --regret also runs the exhaustive
            reference and prints the true per-size regret
  emit      --n N [--nb NB] [--looking L] [--full] [--out F.cu]
            emit the generated CUDA C source
  verify    --n N [--batch B] [--fast]       functional factorization check
  host-bench [--sizes 8,16,24,32] [--batch B] [--reps R] [--f32|--f64]
            CPU baseline throughput per layout: sequential vs
            rayon-gather vs the autovectorized lane engine vs the
            explicit-SIMD lane engine (the simd column reports the
            dispatched ISA: avx512, avx2, or fallback; force it with
            IBCF_SIMD=off|avx2|avx512)
  tiled-bench [--sizes 128,256,384,512] [--nbs 16,32] [--reps R]
            [--threads T] [--looking right|left|top] [--f32|--f64]
            large-matrix Cholesky throughput: sequential blocked
            baseline vs the core::tiled task-graph runtime, sequential
            replay and work-stealing parallel execution (the measured
            batched-vs-blocked crossover in EXPERIMENTS.md comes from
            this table)
  serve     [--host H] [--port P] [--workers W] [--queue-cap Q]
            [--max-batch B] [--max-delay-us D] [--max-n N] [--dispatch F]
            [--analytic G] [--shards N] [--procs N] [--shard-child]
            [--policy hash|least-loaded] [--retry-after-us U]
            [--hedge-after-us U] [--autovec] [--staged-ingest]
            run the dynamic-batching factorization service over TCP
            (engine plans fall back table -> analytic model for gpu G
            -> heuristics; each tier is optional); --shards N > 1 runs a
            health-checked in-process fleet behind a router keyed by
            (n, dtype) — a full shard answers with a typed backpressure
            reject carrying the --retry-after-us hint; --procs N runs
            each shard as a supervised *child process* instead
            (OS-level isolation: dead children are respawned with
            backoff, in-flight requests fail over, per-shard circuit
            breakers gate readmission); --hedge-after-us U duplicates a
            straggling request to a second shard after U us (first
            reply wins, the duplicate is suppressed); --shard-child is
            the child's own mode: bind an ephemeral port, print
            'shard-child listening on H:P', serve one shard; --autovec
            pins workers to the autovectorized lane kernels (no
            explicit SIMD); --staged-ingest restores the legacy
            stage-then-pack copy instead of the fused zero-copy scatter
  loadgen   [--addr H:P] [--sizes 16,24] [--dtype f32|f64]
            [--requests R] [--conns C] [--window W | --rate R/s]
            [--plant-bad K] [--seed S] [--deadline-us D] [--retry]
            [--read-timeout-ms T] [--large-every K] [--large-n N]
            [--shutdown]
            drive a running server closed-loop (fixed window) or
            open-loop (fixed arrival rate); prints throughput, latency
            percentiles, and mean batch occupancy; with --retry,
            reconnect and resubmit outstanding requests on a dropped
            or stalled connection
  chaos     [--plan P] [--seed S] [--requests R] [--conns C]
            [--window W] [--sizes 8,16] [--plant-bad K] [--workers W]
            [--max-batch B] [--deadline-us D] [--shards N] [--procs N]
            [--hedge-after-us U] [--large-every K] [--large-n N]
            run loadgen against an in-process service under a seeded
            fault plan (worker-panic, slow-batch, queue-stall,
            conn-drop, frame-corrupt, shard-kill, proc-kill, mixed,
            inert) and verify the exactly-one-reply invariant: 0 lost,
            0 duplicates; --shards N > 1 routes over an in-process
            fleet and lets the plan kill whole shards mid-run
            (failover must keep the invariant); --procs N > 1 runs the
            shards as real child processes and lets the proc-kill plan
            SIGKILL them mid-run — the run must show every kill
            respawned, the fleet healthy again, and zero
            lost/duplicate replies (optionally hedged via
            --hedge-after-us)
  help                                        this text
";

fn gpu_of(args: &Args) -> Result<GpuSpec, String> {
    let name = args.get("gpu", "p100".to_string())?;
    GpuSpec::by_name(&name)
        .ok_or_else(|| format!("unknown gpu {name} (use p100, v100, a100, or gtx1080)"))
}

fn selector_of(args: &Args) -> Result<SelectorKind, String> {
    let name = args.get("selector", "exhaustive".to_string())?;
    SelectorKind::parse(&name)
        .ok_or_else(|| format!("unknown selector {name} (use exhaustive, analytic, or hill)"))
}

fn config_of(args: &Args) -> Result<KernelConfig, String> {
    let n: usize = args.get("n", 0)?;
    if n == 0 {
        return Err("missing required option --n".into());
    }
    let looking = match args.get("looking", "top".to_string())?.as_str() {
        "right" => Looking::Right,
        "left" => Looking::Left,
        "top" => Looking::Top,
        other => return Err(format!("unknown looking order {other}")),
    };
    let config = KernelConfig {
        n,
        nb: args.get("nb", 4.min(n))?,
        looking,
        chunked: !args.flag("simple"),
        chunk_size: args.get("chunk", 64)?,
        unroll: if args.flag("full") {
            Unroll::Full
        } else {
            Unroll::Partial
        },
        fast_math: args.flag("fast"),
        cache_pref: ibcf_kernels::CachePref::L1,
    };
    config.validate()?;
    Ok(config)
}

fn fail(e: impl std::fmt::Display) -> i32 {
    eprintln!("error: {e}");
    2
}

/// `ibcf simulate`: one configuration through the timing model.
pub fn simulate(args: &Args) -> i32 {
    let (config, spec, batch) = match (
        config_of(args),
        gpu_of(args),
        args.get("batch", 16_384usize),
    ) {
        (Ok(c), Ok(s), Ok(b)) => (c, s, b),
        (Err(e), ..) | (_, Err(e), _) | (.., Err(e)) => return fail(e),
    };
    let t = time_config(&config, batch, &spec);
    let flops = cholesky_flops_std(config.n) * batch as f64;
    println!("configuration : {config}");
    println!("gpu           : {}", spec.name);
    println!("batch         : {batch}");
    println!("time          : {:.3} us", t.time_s * 1e6);
    println!("performance   : {:.0} GFLOP/s", t.gflops(flops));
    println!("bottleneck    : {:?}", t.bottleneck);
    println!("  compute     : {:.3} us", t.compute_time_s * 1e6);
    println!("  lsu         : {:.3} us", t.lsu_time_s * 1e6);
    println!(
        "  dram        : {:.3} us ({} MB, row hit {:.0}%, L2 hit {:.0}%)",
        t.dram_time_s * 1e6,
        t.dram_bytes / 1_000_000,
        t.row_hit_rate * 100.0,
        t.l2_hit_rate * 100.0
    );
    println!(
        "coalescing    : {:.2} transactions/access",
        t.transactions_per_access
    );
    println!(
        "occupancy     : {:.0}% ({} blocks/SM, limited by {:?})",
        t.occupancy.occupancy * 100.0,
        t.occupancy.blocks_per_sm,
        t.occupancy.limiter
    );
    println!(
        "code size     : {} bytes (i-cache penalty {:.2}x)",
        t.code_bytes, t.icache_penalty
    );
    if t.spill_bytes > 0 {
        println!("spill traffic : {} bytes", t.spill_bytes);
    }
    let trad = time_traditional(config.n, batch, &spec, config.fast_math);
    println!(
        "traditional   : {:.0} GFLOP/s -> speedup {:.2}x",
        trad.gflops(flops),
        trad.time_s / t.time_s
    );
    0
}

/// `ibcf best`: exhaustive winners at one size.
pub fn best(args: &Args) -> i32 {
    let n: usize = match args.get("n", 0) {
        Ok(0) => return fail("missing required option --n"),
        Ok(n) => n,
        Err(e) => return fail(e),
    };
    let batch = match args.get("batch", 16_384usize) {
        Ok(b) => b,
        Err(e) => return fail(e),
    };
    let spec = match gpu_of(args) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let space = if args.flag("quick") {
        ParamSpace::quick()
    } else {
        ParamSpace::paper()
    };
    eprintln!("sweeping {} configurations at n={n}...", space.len_per_n());
    let ds = sweep_sizes(
        &space,
        &[n],
        &spec,
        &SweepOptions {
            batch,
            progress_every: 0,
            ..Default::default()
        },
    );
    let table = BestTable::new(&ds);
    let overall = table.best(n).expect("non-empty sweep");
    println!(
        "best overall : {}  {:.0} GFLOP/s",
        overall.config, overall.gflops
    );
    for fast in [false, true] {
        if let Some(m) = table.best_by_arith(n, fast) {
            println!(
                "best {}    : {}  {:.0} GFLOP/s",
                if fast { "fast" } else { "ieee" },
                m.config,
                m.gflops
            );
        }
    }
    for looking in Looking::ALL {
        if let Some(m) = table.best_by_looking(n, looking) {
            println!(
                "best {:<5}   : {}  {:.0} GFLOP/s",
                looking.name(),
                m.config,
                m.gflops
            );
        }
    }
    0
}

fn parse_sizes(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| format!("bad size: {p}"))
        })
        .collect()
}

/// The GPU spec whose `name` a sweep-log header recorded.
fn spec_from_name(name: &str) -> Result<GpuSpec, String> {
    GpuSpec::presets()
        .into_iter()
        .find(|spec| spec.name == name)
        .ok_or_else(|| format!("log was swept on unknown gpu {name:?}"))
}

fn print_sweep_stats(report: &SweepReport) {
    println!(
        "sweep took {:.1}s ({:.0} configs/s)",
        report.wall_s,
        report.configs_per_sec()
    );
    println!(
        "plan cache: {} hits / {} lookups ({:.1}% hit rate)",
        report.cache.hits,
        report.cache.lookups(),
        report.cache.hit_rate() * 100.0
    );
    println!(
        "stage time: {:.1} ms planning, {:.1} ms pricing",
        report.cache.plan_ns as f64 / 1e6,
        report.cache.price_ns as f64 / 1e6
    );
}

/// Writes the dataset if `--out` was given, then prints logged-sweep
/// bookkeeping (resumed/measured counts, torn-tail recovery).
fn finish_logged(args: &Args, logged: &LoggedSweepReport, log: &str) -> i32 {
    if let Some(tail) = &logged.dropped_tail {
        eprintln!("recovered {log}: {tail}");
    }
    println!(
        "log {log}: {} resumed + {} measured = {} of shard {}",
        logged.resumed,
        logged.measured,
        logged.resumed + logged.measured,
        logged.shard,
    );
    if let Some(out) = args.options.get("out") {
        let ds = &logged.report.dataset;
        if let Err(e) = ds.save_jsonl(Path::new(out)) {
            return fail(format!("{out}: {e}"));
        }
        println!("wrote {} measurements to {out}", ds.measurements.len());
    }
    print_sweep_stats(&logged.report);
    0
}

/// Prints per-size selection stats (evaluations vs grid, regret bounds).
fn print_selection_stats(report: &SelectionReport) {
    for o in &report.outcomes {
        let bound = o
            .regret_bound
            .map_or("-".to_string(), |b| format!("{:.1}%", b * 100.0));
        println!(
            "  n={:<4} best {:>8.0} GFLOP/s  {}/{} configs{}  regret bound {bound}",
            o.n,
            o.best.gflops,
            o.evaluated,
            o.grid_total,
            if o.stopped_early {
                " (stopped early)"
            } else {
                ""
            },
        );
    }
    println!(
        "selector {}: {}/{} configurations evaluated in {:.2}s ({:.0} configs/s)",
        report.selector,
        report.evaluated(),
        report.grid_total(),
        report.wall_s,
        report.configs_per_sec()
    );
}

/// `ibcf sweep`: persist a dataset, optionally through a crash-safe log.
///
/// `--selector` swaps the strategy: `exhaustive` (default) measures the
/// whole grid; `analytic` measures the analytic model's ranking with
/// early stopping; `hill` runs restarted hill climbing. All strategies
/// share the logging/resume machinery (`--log`), though only the
/// exhaustive sweep shards.
pub fn sweep(args: &Args) -> i32 {
    let sizes = match args.require("sizes").and_then(parse_sizes) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let log = args.options.get("log").cloned();
    let out = match (args.options.get("out"), &log) {
        (Some(o), _) => Some(o.to_string()),
        (None, Some(_)) => None, // the log is the artifact
        (None, None) => return fail("missing required option --out (or --log)"),
    };
    let (batch, noise_sigma, noise_seed) = match (
        args.get("batch", 16_384usize),
        args.get("noise", 0.0f64),
        args.get("noise-seed", 0u64),
    ) {
        (Ok(b), Ok(s), Ok(n)) => (b, s, n),
        (Err(e), ..) | (_, Err(e), _) | (.., Err(e)) => return fail(e),
    };
    let shard = match args.options.get("shard") {
        None => ShardSpec::whole(),
        Some(s) => match ShardSpec::parse(s) {
            Ok(s) => s,
            Err(e) => return fail(e),
        },
    };
    if shard.count > 1 && log.is_none() {
        return fail("--shard requires --log (shard logs are what merge reassembles)");
    }
    let (spec, kind) = match (gpu_of(args), selector_of(args)) {
        (Ok(s), Ok(k)) => (s, k),
        (Err(e), _) | (_, Err(e)) => return fail(e),
    };
    let space = if args.flag("quick") {
        ParamSpace::quick()
    } else {
        ParamSpace::paper()
    };
    let opts = SweepOptions {
        batch,
        noise_sigma,
        noise_seed,
        progress_every: 2000,
        ..Default::default()
    };
    if kind == SelectorKind::Exhaustive {
        eprintln!(
            "sweeping {} configurations ({} sizes x {}, shard {shard})...",
            shard.owned_of(sizes.len() * space.len_per_n()),
            sizes.len(),
            space.len_per_n()
        );
        if let Some(log) = log {
            let logged = match sweep_sizes_logged(
                &space,
                &sizes,
                &spec,
                &opts,
                &StderrProgress,
                Path::new(&log),
                shard,
            ) {
                Ok(r) => r,
                Err(e) => return fail(e),
            };
            return finish_logged(args, &logged, &log);
        }
        let report = sweep_sizes_with(&space, &sizes, &spec, &opts, &StderrProgress);
        let ds = &report.dataset;
        let out = out.expect("out required without --log");
        if let Err(e) = ds.save_jsonl(Path::new(&out)) {
            return fail(format!("{out}: {e}"));
        }
        println!("wrote {} measurements to {out}", ds.measurements.len());
        print_sweep_stats(&report);
        return 0;
    }
    // Guided strategies: same driver, same log format, no sharding.
    if shard != ShardSpec::whole() {
        return fail(format!(
            "--selector {} does not shard; use --selector exhaustive",
            kind.name()
        ));
    }
    eprintln!(
        "searching {} sizes x up to {} configurations with selector {}...",
        sizes.len(),
        space.len_per_n(),
        kind.name()
    );
    let report = if let Some(log) = &log {
        match run_sizes_logged(
            kind,
            &space,
            &sizes,
            &spec,
            &opts,
            &StderrProgress,
            Path::new(log),
            shard,
        ) {
            Ok(r) => r,
            Err(e) => return fail(e),
        }
    } else {
        run_sizes(kind, &space, &sizes, &spec, &opts, &StderrProgress)
    };
    if let Some(tail) = &report.dropped_tail {
        eprintln!("recovered log: {tail}");
    }
    if report.resumed > 0 {
        println!("resumed {} measurements from the log", report.resumed);
    }
    if let Some(out) = out {
        let ds = report.dataset(&space);
        if let Err(e) = ds.save_jsonl(Path::new(&out)) {
            return fail(format!("{out}: {e}"));
        }
        println!("wrote {} measurements to {out}", ds.measurements.len());
    }
    print_selection_stats(&report);
    0
}

/// `ibcf resume`: finish an interrupted sweep from its log. Everything —
/// sizes, space, batch, GPU, noise, shard — comes from the log header,
/// so the resumed half cannot drift from the original run.
pub fn resume(args: &Args) -> i32 {
    let log = match args.require("log") {
        Ok(l) => l.to_string(),
        Err(e) => return fail(e),
    };
    // SweepLog / logged-sweep errors already name the log path.
    let parsed = match SweepLog::read(Path::new(&log), true) {
        Ok(p) => p,
        Err(e) => return fail(e),
    };
    let h = &parsed.header;
    let spec = match spec_from_name(&h.gpu) {
        Ok(s) => s,
        Err(e) => return fail(format!("{log}: {e}")),
    };
    let opts = SweepOptions {
        batch: h.batch,
        noise_sigma: h.noise_sigma,
        noise_seed: h.noise_seed,
        progress_every: 2000,
        ..Default::default()
    };
    eprintln!(
        "resuming {log}: {}/{} of shard {} already measured",
        parsed.entries.len(),
        parsed.owned_total(),
        h.shard
    );
    let logged = match sweep_sizes_logged(
        &h.space.clone(),
        &h.sizes.clone(),
        &spec,
        &opts,
        &StderrProgress,
        Path::new(&log),
        h.shard,
    ) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    finish_logged(args, &logged, &log)
}

/// `ibcf merge`: reassemble shard logs into one canonical dataset.
pub fn merge(args: &Args) -> i32 {
    let out = match args.require("out") {
        Ok(o) => o.to_string(),
        Err(e) => return fail(e),
    };
    if args.positional.is_empty() {
        return fail("merge needs at least one shard log (positional arguments)");
    }
    let paths: Vec<std::path::PathBuf> = args
        .positional
        .iter()
        .map(std::path::PathBuf::from)
        .collect();
    let (ds, report) = match merge_logs(&paths, args.flag("partial")) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    if let Err(e) = ds.save_jsonl(Path::new(&out)) {
        return fail(format!("{out}: {e}"));
    }
    println!(
        "merged {} shard logs: {}/{} configurations ({} duplicates deduplicated)",
        report.shards, report.measured, report.total, report.duplicates
    );
    println!("wrote {} measurements to {out}", ds.measurements.len());
    0
}

/// `ibcf verify-log`: validate a sweep log and report its coverage.
pub fn verify_log(args: &Args) -> i32 {
    let path = match args
        .positional
        .first()
        .cloned()
        .or_else(|| args.options.get("log").cloned())
    {
        Some(p) => p,
        None => return fail("verify-log needs a log path"),
    };
    let strict = args.flag("strict");
    let log = match SweepLog::read(Path::new(&path), !strict) {
        Ok(l) => l,
        Err(e) => return fail(e),
    };
    let h = &log.header;
    println!("log     : {path}");
    println!("gpu     : {}", h.gpu);
    println!("batch   : {}", h.batch);
    println!("sizes   : {:?}", h.sizes);
    println!("noise   : sigma {} seed {}", h.noise_sigma, h.noise_seed);
    println!(
        "shard   : {} ({} of {} grid configs)",
        h.shard,
        log.owned_total(),
        h.total
    );
    println!(
        "coverage: {}/{} measured{}",
        log.entries.len(),
        log.owned_total(),
        if log.is_complete() { " (complete)" } else { "" }
    );
    if log.duplicates > 0 {
        println!("dedup   : {} identical duplicate lines", log.duplicates);
    }
    match &log.dropped_tail {
        Some(reason) => println!("recovery: {reason}"),
        None => println!("recovery: clean (no torn tail)"),
    }
    0
}

/// `ibcf analyze`: forest + importances over a saved dataset.
pub fn analyze(args: &Args) -> i32 {
    let path = match args.require("data") {
        Ok(p) => p.to_string(),
        Err(e) => return fail(e),
    };
    let trees = match args.get("trees", 500usize) {
        Ok(t) => t,
        Err(e) => return fail(e),
    };
    let ds = match Dataset::load_jsonl(Path::new(&path)) {
        Ok(d) => d,
        Err(e) => return fail(format!("{path}: {e}")),
    };
    let ieee: Vec<&Measurement> = ds
        .measurements
        .iter()
        .filter(|m| !m.config.fast_math)
        .collect();
    if ieee.is_empty() {
        return fail("dataset has no IEEE measurements");
    }
    let data = TableData::new(
        Measurement::feature_names()
            .iter()
            .map(|s| s.to_string())
            .collect(),
        ieee.iter().map(|m| m.features()).collect(),
        ieee.iter().map(|m| m.gflops).collect(),
    );
    eprintln!("fitting {} trees on {} rows...", trees, data.len());
    let forest = Forest::fit(
        &data,
        ForestConfig {
            num_trees: trees,
            ..Default::default()
        },
    );
    let imp = permutation_importance(&forest, &data, 1);
    println!("permutation importance (%IncMSE), descending:");
    for (name, v) in imp.ranking() {
        println!("  {name:<12} {v:>8.1}");
    }
    println!(
        "forest: {} trees, average depth {:.1}, OOB MSE {:.1}",
        forest.trees().len(),
        forest.average_depth(),
        forest.oob_mse(&data)
    );
    0
}

/// `ibcf tune`: build a dispatch table, either from a saved sweep dataset
/// (`--data`, the original path) or by searching directly (`--sizes` with
/// a `--selector`, the model-guided fast path: no full sweep required).
pub fn tune(args: &Args) -> i32 {
    let out = match args.require("out") {
        Ok(o) => o.to_string(),
        Err(e) => return fail(e),
    };
    if let Some(data) = args.options.get("data") {
        let ds = match Dataset::load_jsonl(Path::new(data)) {
            Ok(d) => d,
            Err(e) => return fail(format!("{data}: {e}")),
        };
        let fast = if args.flag("fast") { None } else { Some(false) };
        let dispatch = TunedDispatch::from_dataset(&ds, fast);
        return finish_tune(dispatch, &out);
    }
    // Fast path: search now, on the simulator, with the chosen selector.
    let sizes = match args
        .options
        .get("sizes")
        .map_or_else(|| Ok(ParamSpace::paper_sizes()), |s| parse_sizes(s))
    {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    if sizes.is_empty() || sizes.contains(&0) {
        return fail("--sizes entries must be positive");
    }
    let batch = match args.get("batch", 16_384usize) {
        Ok(b) => b,
        Err(e) => return fail(e),
    };
    let spec = match gpu_of(args) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let kind = match args.get("selector", "analytic".to_string()) {
        Ok(name) => match SelectorKind::parse(&name) {
            Some(k) => k,
            None => return fail(format!("unknown selector {name}")),
        },
        Err(e) => return fail(e),
    };
    let space = if args.flag("quick") {
        ParamSpace::quick()
    } else {
        ParamSpace::paper()
    };
    let opts = SweepOptions {
        batch,
        progress_every: 0,
        ..Default::default()
    };
    eprintln!(
        "tuning {} sizes on {} with selector {}...",
        sizes.len(),
        spec.name,
        kind.name()
    );
    let report = run_sizes(kind, &space, &sizes, &spec, &opts, &StderrProgress);
    print_selection_stats(&report);
    if args.flag("regret") {
        // Measure the true exhaustive winner per size and report how far
        // the guided pick landed from it.
        eprintln!("computing exhaustive reference for regret...");
        let exhaustive = sweep_sizes_with(&space, &sizes, &spec, &opts, &StderrProgress);
        let best = BestTable::new(&exhaustive.dataset);
        let mut worst: f64 = 0.0;
        for o in &report.outcomes {
            let truth = best.best(o.n).expect("exhaustive covers every size");
            let regret = o.best.time_s / truth.time_s - 1.0;
            worst = worst.max(regret);
            println!(
                "  n={:<4} regret {:>6.2}%  (picked {:.0} vs true best {:.0} GFLOP/s)",
                o.n,
                regret * 100.0,
                o.best.gflops,
                truth.gflops
            );
        }
        println!(
            "worst regret {:.2}% at {}/{} of exhaustive cost",
            worst * 100.0,
            report.evaluated(),
            report.grid_total()
        );
    }
    finish_tune(report.dispatch_table(), &out)
}

/// Validates, saves, and prints a freshly built dispatch table.
fn finish_tune(dispatch: TunedDispatch, out: &str) -> i32 {
    if dispatch.is_empty() {
        return fail("tuning produced an empty dispatch table");
    }
    if let Err(e) = dispatch.save(Path::new(out)) {
        return fail(format!("{out}: {e}"));
    }
    println!("tuned {} sizes:", dispatch.len());
    for (n, config) in &dispatch.table {
        println!("  n={n:<4} -> {config}");
    }
    if let Some(p) = &dispatch.provenance {
        println!(
            "provenance: selector {}, {}/{} configs evaluated{}",
            p.selector,
            p.configs_evaluated,
            p.grid_total,
            p.regret_bound.map_or(String::new(), |b| format!(
                ", regret bound {:.1}%",
                b * 100.0
            ))
        );
    }
    println!("wrote {out}");
    0
}

/// `ibcf emit`: generated CUDA C.
pub fn emit(args: &Args) -> i32 {
    let config = match config_of(args) {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    let src = emit_cuda(&config);
    match args.options.get("out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &src) {
                return fail(format!("{path}: {e}"));
            }
            println!("wrote {} bytes of CUDA C to {path}", src.len());
        }
        None => print!("{src}"),
    }
    0
}

/// `ibcf verify`: functional correctness check.
pub fn verify(args: &Args) -> i32 {
    let config = match config_of(args) {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    let batch = match args.get("batch", 1024usize) {
        Ok(b) => b,
        Err(e) => return fail(e),
    };
    let layout = config.layout(batch);
    let mut data = vec![0.0f32; ibcf_layout::BatchLayout::len(&layout)];
    fill_batch_spd(&layout, &mut data, SpdKind::Wishart, 1);
    let orig = data.clone();
    factorize_batch_device(&config, batch, &mut data);
    let err = batch_reconstruction_error(&layout, &orig, &data);
    println!("{config}  batch {batch}");
    println!("worst relative reconstruction error: {err:.3e}");
    let tol = if config.fast_math { 5e-3 } else { 5e-4 };
    if err < tol {
        println!("OK (tolerance {tol:.0e})");
        0
    } else {
        eprintln!("FAILED (tolerance {tol:.0e})");
        1
    }
}

/// One engine of the host benchmark: name + entry point + the SIMD path
/// it runs on (`-` for scalar engines, `autovec` for the portable lane
/// path, the dispatched ISA for the explicit-SIMD engine).
type HostEngine<T> = (
    &'static str,
    fn(&Layout, &mut [T]) -> BatchReport,
    &'static str,
);

/// The lane engine pinned to the autovectorized backend — the pre-SIMD
/// baseline, kept as a bench row so the explicit-SIMD win stays visible.
fn lane_autovec<T: Real>(layout: &Layout, data: &mut [T]) -> BatchReport {
    factorize_batch_auto_backend(
        layout,
        data,
        LaneOrder::default(),
        LaneWidth::Auto,
        LaneBackend::Autovec,
    )
}

/// The lane engine on the runtime-dispatched explicit-SIMD backend.
fn lane_simd<T: Real>(layout: &Layout, data: &mut [T]) -> BatchReport {
    factorize_batch_auto_backend(
        layout,
        data,
        LaneOrder::default(),
        LaneWidth::Auto,
        LaneBackend::Simd,
    )
}

/// Times `engine` on pristine copies of `data`, returning the best-of-`reps`
/// wall time in seconds. The copy back to pristine state is not timed.
fn time_host_engine<T: Real>(
    layout: &Layout,
    pristine: &[T],
    engine: fn(&Layout, &mut [T]) -> BatchReport,
    reps: usize,
) -> f64 {
    let mut work = alloc_batch::<T, _>(layout);
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        work.copy_from_slice(pristine);
        let t0 = std::time::Instant::now();
        let report = engine(layout, &mut work);
        let dt = t0.elapsed().as_secs_f64();
        assert!(report.all_ok(), "benchmark batch must factorize");
        best = best.min(dt);
    }
    best
}

/// Benches one (element type, size) cell of the host table across layouts.
fn host_bench_size<T: Real>(ty: &str, n: usize, batch: usize, reps: usize) {
    let flops = cholesky_flops_std(n) * batch as f64;
    let layouts: Vec<(&str, Layout)> = vec![
        (
            "interleaved",
            Layout::Interleaved(Interleaved::new(n, batch)),
        ),
        ("chunked64", Layout::Chunked(Chunked::new(n, batch, 64))),
        ("canonical", Layout::Canonical(Canonical::new(n, batch))),
    ];
    // For canonical the "lane"/"simd" engines are the auto path: pack
    // into an aligned chunked scratch, lane-factorize, unpack — pack cost
    // included.
    let engines: [HostEngine<T>; 4] = [
        ("seq", factorize_batch_seq::<T, Layout>, "-"),
        ("rayon-gather", factorize_batch::<T, Layout>, "-"),
        ("lane", lane_autovec::<T>, "autovec"),
        ("simd", lane_simd::<T>, detect_isa().name()),
    ];
    for (lname, layout) in layouts {
        let mut pristine = alloc_batch::<T, _>(&layout);
        fill_batch_spd(&layout, &mut pristine, SpdKind::DiagDominant, 42);
        let mut base = f64::NAN;
        for (ename, engine, isa) in engines {
            let t = time_host_engine(&layout, &pristine, engine, reps);
            if ename == "rayon-gather" {
                base = t;
            }
            println!(
                "{ty}  n={n:<3} {lname:<12} {ename:<13} {:>9.2} Gflop/s {:>13.0} mats/s {:>7} {isa:>8}",
                flops / t / 1e9,
                batch as f64 / t,
                if base.is_nan() {
                    "-".to_string()
                } else {
                    format!("{:.2}x", base / t)
                },
            );
        }
    }
}

/// `ibcf host-bench`: CPU baseline throughput table — how much of the
/// interleaved layout's coalescing advantage the host lane engine
/// recovers over the gather/scatter baselines. Speedups are relative to
/// `rayon-gather` (the parallel gather/factor/scatter baseline).
pub fn host_bench(args: &Args) -> i32 {
    let sizes = match args
        .options
        .get("sizes")
        .map_or(Ok(vec![8, 16, 24, 32]), |s| parse_sizes(s))
    {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let (batch, reps) = match (args.get("batch", 16_384usize), args.get("reps", 3usize)) {
        (Ok(b), Ok(r)) => (b, r),
        (Err(e), _) | (_, Err(e)) => return fail(e),
    };
    if sizes.contains(&0) {
        return fail("--sizes entries must be positive");
    }
    let f32_only = args.flag("f32");
    let f64_only = args.flag("f64");
    println!(
        "host batch Cholesky, batch {batch}, best of {reps} rep(s), {} threads, simd dispatch: {}",
        std::thread::available_parallelism().map_or(1, usize::from),
        detect_isa().name(),
    );
    println!(
        "type n    layout       engine         throughput        matrices       speedup     simd"
    );
    for &n in &sizes {
        if !f64_only {
            host_bench_size::<f32>("f32", n, batch, reps);
        }
        if !f32_only {
            host_bench_size::<f64>("f64", n, batch, reps);
        }
    }
    0
}

fn time_tiled<T: Real>(pristine: &[T], reps: usize, mut run: impl FnMut(&mut [T])) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut a = pristine.to_vec();
        let t0 = std::time::Instant::now();
        run(&mut a);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn tiled_bench_size<T: Real>(
    ty: &str,
    n: usize,
    nb: usize,
    looking: Looking,
    threads: usize,
    reps: usize,
) {
    let flops = cholesky_flops_std(n);
    let layout = Canonical::new(n, 1);
    let mut batch = alloc_batch::<T, _>(&layout);
    fill_batch_spd(&layout, &mut batch, SpdKind::DiagDominant, 42);
    // Canonical stores each matrix contiguously: matrix 0 is the first
    // n*n elements, column-major with lda == n.
    let pristine = &batch[..n * n];

    let t_blocked = time_tiled(pristine, reps, |a| {
        let layout = Canonical::new(n, 1);
        potrf_blocked(&layout, a, 0, nb, looking).expect("SPD input must factor");
    });
    let t_seq = time_tiled(pristine, reps, |a| {
        potrf_tiled_seq(n, a, n, nb, looking).expect("SPD input must factor");
    });
    let t_par = time_tiled(pristine, reps, |a| {
        potrf_tiled_threads(n, a, n, nb, looking, threads).expect("SPD input must factor");
    });

    for (engine, t, speedup) in [
        ("blocked-seq", t_blocked, None),
        ("dag-seq", t_seq, Some(t_blocked / t_seq)),
        ("dag-par", t_par, Some(t_blocked / t_par)),
    ] {
        println!(
            "{ty}  n={n:<4} nb={nb:<3} {:<7} {engine:<12} {:>8.3} Gflop/s {:>8.2} ms {:>7}",
            looking.name(),
            flops / t / 1e9,
            t * 1e3,
            speedup.map_or("-".to_string(), |s| format!("{s:.2}x")),
        );
    }
}

/// `ibcf tiled-bench`: large-matrix Cholesky throughput — the
/// sequential blocked baseline against the `core::tiled` task-graph
/// runtime (sequential replay and work-stealing parallel execution).
/// The parallel column is bitwise identical to the sequential one by
/// construction; only the schedule differs.
pub fn tiled_bench(args: &Args) -> i32 {
    let sizes = match args
        .options
        .get("sizes")
        .map_or(Ok(vec![128, 256, 384, 512]), |s| parse_sizes(s))
    {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let nbs = match args
        .options
        .get("nbs")
        .map_or(Ok(vec![16, 32]), |s| parse_sizes(s))
    {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    if sizes.contains(&0) || nbs.contains(&0) {
        return fail("--sizes and --nbs entries must be positive");
    }
    let default_threads = std::thread::available_parallelism().map_or(1, usize::from);
    let (reps, threads) = match (
        args.get("reps", 3usize),
        args.get("threads", default_threads),
    ) {
        (Ok(r), Ok(t)) => (r, t),
        (Err(e), _) | (_, Err(e)) => return fail(e),
    };
    if threads == 0 || reps == 0 {
        return fail("--threads and --reps must be positive");
    }
    let looking = match args.get("looking", "right".to_string()) {
        Ok(name) => match name.as_str() {
            "right" => Looking::Right,
            "left" => Looking::Left,
            "top" => Looking::Top,
            other => return fail(format!("unknown looking order {other}")),
        },
        Err(e) => return fail(e),
    };
    let f32_only = args.flag("f32");
    let f64_only = args.flag("f64");
    println!(
        "tiled task-graph Cholesky, best of {reps} rep(s), {threads} worker thread(s), {looking} looking"
    );
    println!("type n      nb    looking engine        throughput         time    vs blocked");
    for &n in &sizes {
        for &nb in &nbs {
            if !f64_only {
                tiled_bench_size::<f32>("f32", n, nb, looking, threads, reps);
            }
            if !f32_only {
                tiled_bench_size::<f64>("f64", n, nb, looking, threads, reps);
            }
        }
    }
    0
}

/// `ibcf serve`: run the dynamic-batching factorization service over
/// TCP — one service, or (`--shards N`) a router-fronted in-process
/// fleet with health-checked failover and typed backpressure.
pub fn serve(args: &Args) -> i32 {
    use ibcf_service::{
        EngineSelector, Fleet, FleetConfig, InProcessShard, IngestMode, RoutePolicy, Router,
        RouterConfig, Service, ServiceConfig, ShardBackend, TcpServer, SHARD_READY_PREFIX,
    };
    use std::sync::Arc;
    let host = match args.get("host", "127.0.0.1".to_string()) {
        Ok(h) => h,
        Err(e) => return fail(e),
    };
    let parsed = (
        args.get("port", 7117u16),
        args.get("workers", 1usize),
        args.get("queue-cap", 8192usize),
        args.get("max-batch", 1024usize),
        args.get("max-delay-us", 1000u64),
        args.get("max-n", 64usize),
        args.get("shards", 1usize),
        args.get("retry-after-us", 1000u32),
    );
    let (port, workers, queue_cap, max_batch, max_delay_us, max_n, shards, retry_after_us) =
        match parsed {
            (Ok(a), Ok(b), Ok(c), Ok(d), Ok(e), Ok(f), Ok(g), Ok(h)) => (a, b, c, d, e, f, g, h),
            (Err(e), ..)
            | (_, Err(e), ..)
            | (_, _, Err(e), ..)
            | (_, _, _, Err(e), ..)
            | (_, _, _, _, Err(e), ..)
            | (_, _, _, _, _, Err(e), ..)
            | (_, _, _, _, _, _, Err(e), _)
            | (.., Err(e)) => return fail(e),
        };
    if workers == 0 || max_batch == 0 || queue_cap == 0 || max_n == 0 || shards == 0 {
        return fail("--workers, --max-batch, --queue-cap, --max-n and --shards must be positive");
    }
    let (procs, hedge_after_us) =
        match (args.get("procs", 0usize), args.get("hedge-after-us", 0u64)) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => return fail(e),
        };
    if procs > 0 && shards > 1 {
        return fail("--procs (child processes) and --shards (in-process) are mutually exclusive");
    }
    let shard_child = args.flag("shard-child");
    if shard_child && (procs > 0 || shards > 1) {
        return fail("--shard-child runs exactly one shard");
    }
    let policy: RoutePolicy = match args.get("policy", "hash".to_string()) {
        Ok(name) => match name.parse() {
            Ok(p) => p,
            Err(e) => return fail(e),
        },
        Err(e) => return fail(e),
    };
    let selector = match args.options.get("dispatch") {
        None => EngineSelector::heuristic(),
        Some(path) => match EngineSelector::load(Path::new(path)) {
            Ok(s) => s,
            Err(e) => return fail(format!("loading dispatch table {path}: {e}")),
        },
    };
    // The analytic middle tier: sizes the table cannot answer are
    // resolved by the model for the named GPU (at the paper's batch)
    // before falling back to the heuristic.
    let selector = match args.options.get("analytic") {
        None => selector,
        Some(name) => match GpuSpec::by_name(name) {
            Some(spec) => selector.with_analytic(spec, 16_384),
            None => return fail(format!("unknown gpu {name} for --analytic")),
        },
    };
    let selector = if args.flag("autovec") {
        selector.with_backend(LaneBackend::Autovec)
    } else {
        selector
    };
    let ingest = if args.flag("staged-ingest") {
        IngestMode::Staged
    } else {
        IngestMode::Fused
    };
    let config = ServiceConfig {
        workers,
        queue_cap,
        max_batch,
        max_delay: std::time::Duration::from_micros(max_delay_us),
        max_n,
        ingest,
        ..ServiceConfig::default()
    };
    // A shard child binds an ephemeral port: its supervisor learns the
    // address from the stdout handshake, never from configuration.
    let bind_port = if shard_child { 0 } else { port };
    let server = match TcpServer::bind(&format!("{host}:{bind_port}")) {
        Ok(s) => s,
        Err(e) => return fail(format!("binding {host}:{bind_port}: {e}")),
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    let engine = match (selector.is_tuned(), selector.has_analytic()) {
        (true, true) => "tuned+analytic",
        (true, false) => "tuned",
        (false, true) => "analytic",
        (false, false) => "heuristic",
    };
    let simd = if args.flag("autovec") {
        "autovec"
    } else {
        detect_isa().name()
    };
    use std::io::Write as _;
    let hedge_after =
        (hedge_after_us > 0).then(|| std::time::Duration::from_micros(hedge_after_us));
    let (run, snap) = if shard_child {
        let service = Service::start(config, selector);
        let client = service.client();
        println!("{SHARD_READY_PREFIX}{addr}");
        std::io::stdout().flush().ok();
        let run = server.run(client);
        (run, service.shutdown())
    } else if procs > 0 {
        let exe = match std::env::current_exe() {
            Ok(p) => p,
            Err(e) => return fail(format!("resolving own executable for shard children: {e}")),
        };
        let mut fleet_cfg = FleetConfig::new(exe, procs);
        let mut child_args: Vec<String> = vec![
            "serve".into(),
            "--shard-child".into(),
            "--workers".into(),
            workers.to_string(),
            "--queue-cap".into(),
            queue_cap.to_string(),
            "--max-batch".into(),
            max_batch.to_string(),
            "--max-delay-us".into(),
            max_delay_us.to_string(),
            "--max-n".into(),
            max_n.to_string(),
        ];
        if let Some(p) = args.options.get("dispatch") {
            child_args.extend(["--dispatch".into(), p.clone()]);
        }
        if let Some(g) = args.options.get("analytic") {
            child_args.extend(["--analytic".into(), g.clone()]);
        }
        if args.flag("autovec") {
            child_args.push("--autovec".into());
        }
        if args.flag("staged-ingest") {
            child_args.push("--staged-ingest".into());
        }
        fleet_cfg.child_args = child_args;
        let mut fleet = match Fleet::spawn(fleet_cfg) {
            Ok(f) => f,
            Err(e) => return fail(format!("spawning shard fleet: {e}")),
        };
        let router = Router::start(
            fleet.backends(),
            RouterConfig {
                policy,
                retry_after_us,
                hedge_after,
                ..RouterConfig::default()
            },
        );
        println!(
            "serving on {addr} ({engine} engine, simd {simd}, {} ingest, \
             {procs} shard process(es) x {workers} worker(s), \
             {policy:?} routing, retry-after {retry_after_us} us, batch <= {max_batch}, \
             deadline {max_delay_us} us, queue {queue_cap}/shard, n <= {max_n})",
            ingest.name()
        );
        println!("fleet pids: {:?}", fleet.child_pids());
        std::io::stdout().flush().ok();
        let run = server.run(router.client());
        // Respawns stop first, then each child drains gracefully and is
        // reaped — serve --procs never leaves orphan processes behind.
        fleet.stop_supervisor();
        let snap = router.shutdown();
        println!(
            "fleet: {} respawn(s); all shard processes reaped",
            fleet.respawns()
        );
        (run, snap)
    } else if shards > 1 {
        let backends: Vec<Arc<dyn ShardBackend>> = (0..shards)
            .map(|i| {
                let service = Service::start(config.clone(), selector.clone());
                Arc::new(InProcessShard::new(format!("shard-{i}"), service))
                    as Arc<dyn ShardBackend>
            })
            .collect();
        let router = Router::start(
            backends,
            RouterConfig {
                policy,
                retry_after_us,
                hedge_after,
                ..RouterConfig::default()
            },
        );
        println!(
            "serving on {addr} ({engine} engine, simd {simd}, {} ingest, \
             {shards} shards x {workers} worker(s), \
             {policy:?} routing, retry-after {retry_after_us} us, batch <= {max_batch}, \
             deadline {max_delay_us} us, queue {queue_cap}/shard, n <= {max_n})",
            ingest.name()
        );
        std::io::stdout().flush().ok();
        let run = server.run(router.client());
        (run, router.shutdown())
    } else {
        let service = Service::start(config, selector);
        let client = service.client();
        println!(
            "serving on {addr} ({engine} engine, simd {simd}, {} ingest, \
             {workers} worker(s), batch <= {max_batch}, \
             deadline {max_delay_us} us, queue {queue_cap}, n <= {max_n})",
            ingest.name()
        );
        std::io::stdout().flush().ok();
        let run = server.run(client);
        (run, service.shutdown())
    };
    if let Err(e) = run {
        return fail(format!("server loop: {e}"));
    }
    let (p50, p95, p99) = snap.percentiles_us();
    println!(
        "served {} requests in {} batches ({} matrices, {} rejected, {} failed)",
        snap.requests, snap.batches, snap.matrices, snap.rejected, snap.replies_failed
    );
    println!(
        "mean batch occupancy {:.1}%, latency p50/p95/p99 = {p50:.0}/{p95:.0}/{p99:.0} us",
        100.0 * snap.mean_occupancy
    );
    if let Some(shard_stats) = &snap.shards {
        for sh in shard_stats {
            let (sp50, _, sp99) = sh.snapshot.percentiles_us();
            let breaker = sh.breaker.as_ref().map_or(String::new(), |b| {
                format!(", breaker {} ({} trips)", b.state, b.trips)
            });
            println!(
                "  shard {} [{}]: {} routed, {} served, p50/p99 = {sp50:.0}/{sp99:.0} us{breaker}",
                sh.name,
                if sh.healthy { "up" } else { "down" },
                sh.routed,
                sh.snapshot.requests,
            );
        }
    }
    if let Some(fs) = &snap.fleet {
        println!(
            "fleet counters: {} hedges ({} duplicates suppressed), \
             {} in-flight losses resubmitted, breakers: {} trips, {} half-opens, {} closes",
            fs.hedges,
            fs.hedge_wasted,
            fs.shard_lost_resubmits,
            fs.breaker_trips,
            fs.breaker_half_opens,
            fs.breaker_closes
        );
    }
    0
}

/// `ibcf loadgen`: drive a running `ibcf serve` and report throughput,
/// latency percentiles, and batch occupancy.
pub fn loadgen(args: &Args) -> i32 {
    use ibcf_service::{ArrivalMode, Dtype, LoadgenConfig, RetryPolicy, TcpConn};
    let sizes = match args
        .options
        .get("sizes")
        .map_or(Ok(vec![16]), |s| parse_sizes(s))
    {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    if sizes.is_empty() || sizes.contains(&0) {
        return fail("--sizes entries must be positive");
    }
    let parsed = (
        args.get("addr", "127.0.0.1:7117".to_string()),
        args.get("requests", 100_000u64),
        args.get("conns", 4usize),
        args.get("window", 256usize),
        args.get("plant-bad", 0u64),
        args.get("seed", 1u64),
        args.get("dtype", Dtype::F32),
        args.get("deadline-us", 0u64),
        args.get("read-timeout-ms", 60_000u64),
    );
    let (addr, requests, conns, window, plant_bad, seed, dtype, deadline_us, read_timeout_ms) =
        match parsed {
            (Ok(a), Ok(b), Ok(c), Ok(d), Ok(e), Ok(f), Ok(g), Ok(h), Ok(i)) => {
                (a, b, c, d, e, f, g, h, i)
            }
            (Err(e), ..)
            | (_, Err(e), ..)
            | (_, _, Err(e), ..)
            | (_, _, _, Err(e), ..)
            | (_, _, _, _, Err(e), ..)
            | (_, _, _, _, _, Err(e), ..)
            | (_, _, _, _, _, _, Err(e), ..)
            | (_, _, _, _, _, _, _, Err(e), _)
            | (.., Err(e)) => return fail(e),
        };
    if requests == 0 || conns == 0 {
        return fail("--requests and --conns must be positive");
    }
    if plant_bad > requests {
        return fail("--plant-bad cannot exceed --requests");
    }
    let mode = match args.get("rate", 0.0f64) {
        Ok(rate) if rate > 0.0 => ArrivalMode::Open { rate },
        Ok(_) => ArrivalMode::Closed { window },
        Err(e) => return fail(e),
    };
    let (large_every, large_n) = match (args.get("large-every", 0u64), args.get("large-n", 96usize))
    {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return fail(e),
    };
    if large_every > 0 && large_n == 0 {
        return fail("--large-n must be positive");
    }
    let cfg = LoadgenConfig {
        addr,
        sizes,
        dtype,
        requests,
        conns,
        mode,
        plant_bad,
        seed,
        deadline: (deadline_us > 0).then(|| std::time::Duration::from_micros(deadline_us)),
        retry: if args.flag("retry") {
            RetryPolicy::standard(seed)
        } else {
            RetryPolicy::disabled()
        },
        read_timeout: std::time::Duration::from_millis(read_timeout_ms.max(1)),
        large_every,
        large_n,
    };
    println!(
        "loadgen: {} requests ({} planted non-SPD), sizes {:?} {}, {} conn(s), {:?}",
        cfg.requests, cfg.plant_bad, cfg.sizes, cfg.dtype, cfg.conns, cfg.mode
    );
    let report = match ibcf_service::loadgen::run(&cfg) {
        Ok(r) => r,
        Err(e) => return fail(format!("loadgen against {}: {e}", cfg.addr)),
    };
    println!("{}", report.render());
    if args.flag("shutdown") {
        match TcpConn::connect(&cfg.addr).and_then(|mut c| c.shutdown_server()) {
            Ok(()) => println!("server shutdown acknowledged"),
            Err(e) => return fail(format!("shutting down server: {e}")),
        }
    }
    if report.clean() {
        0
    } else {
        eprintln!(
            "error: {} replies contradicted expectations",
            report.mismatched
        );
        1
    }
}

/// `ibcf chaos`: run the load generator against an in-process service
/// under a seeded fault plan and check the exactly-one-reply invariant.
///
/// The whole run is reproducible from `--plan` + `--seed`: the plan
/// derives every fault firing (worker panics, stalls, connection drops,
/// frame corruption) from per-site logical clocks, not wall time.
pub fn chaos(args: &Args) -> i32 {
    use ibcf_service::{
        ArrivalMode, Dtype, EngineSelector, FaultHook, FaultPlan, Fleet as ProcFleet, FleetConfig,
        InProcessShard, LoadgenConfig, RetryPolicy, Router, RouterConfig, Service, ServiceConfig,
        ShardBackend, TcpConn, TcpServer,
    };
    use std::sync::Arc;
    use std::time::{Duration, Instant};
    let sizes = match args
        .options
        .get("sizes")
        .map_or(Ok(vec![8, 16]), |s| parse_sizes(s))
    {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    if sizes.is_empty() || sizes.contains(&0) {
        return fail("--sizes entries must be positive");
    }
    let parsed = (
        args.get("plan", "mixed".to_string()),
        args.get("seed", 1u64),
        args.get("requests", 2000u64),
        args.get("conns", 4usize),
        args.get("window", 64usize),
        args.get("plant-bad", 0u64),
        args.get("workers", 2usize),
        args.get("max-batch", 32usize),
        args.get("deadline-us", 0u64),
        args.get("shards", 1usize),
    );
    #[allow(clippy::type_complexity)]
    let (
        plan_name,
        seed,
        requests,
        conns,
        window,
        plant_bad,
        workers,
        max_batch,
        deadline_us,
        shards,
    ) = match parsed {
        (Ok(a), Ok(b), Ok(c), Ok(d), Ok(e), Ok(f), Ok(g), Ok(h), Ok(i), Ok(j)) => {
            (a, b, c, d, e, f, g, h, i, j)
        }
        (Err(e), ..)
        | (_, Err(e), ..)
        | (_, _, Err(e), ..)
        | (_, _, _, Err(e), ..)
        | (_, _, _, _, Err(e), ..)
        | (_, _, _, _, _, Err(e), ..)
        | (_, _, _, _, _, _, Err(e), ..)
        | (_, _, _, _, _, _, _, Err(e), ..)
        | (_, _, _, _, _, _, _, _, Err(e), _)
        | (.., Err(e)) => return fail(e),
    };
    if requests == 0 || conns == 0 || workers == 0 || max_batch == 0 || shards == 0 {
        return fail("--requests, --conns, --workers, --max-batch and --shards must be positive");
    }
    if plant_bad > requests {
        return fail("--plant-bad cannot exceed --requests");
    }
    let (large_every, large_n) = match (args.get("large-every", 0u64), args.get("large-n", 96usize))
    {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return fail(e),
    };
    if large_every > 0 && large_n == 0 {
        return fail("--large-n must be positive");
    }
    let (procs, hedge_after_us) =
        match (args.get("procs", 0usize), args.get("hedge-after-us", 0u64)) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => return fail(e),
        };
    if procs > 0 && shards > 1 {
        return fail("--procs (child processes) and --shards (in-process) are mutually exclusive");
    }
    if procs == 1 {
        return fail("--procs needs at least 2 shard processes (the last one is kill-immune)");
    }
    let plan = match FaultPlan::named(&plan_name, seed) {
        Ok(p) => p,
        Err(e) => return fail(e),
    };
    let hook = FaultHook::from_plan(plan);
    let service_config = ServiceConfig {
        workers,
        max_batch,
        max_delay: Duration::from_micros(500),
        fault: hook.clone(),
        ..ServiceConfig::default()
    };
    // One service, a routed in-process fleet the plan can kill whole
    // shards of, or a process fleet the plan can SIGKILL children of.
    enum Fleet {
        Single(Service),
        Routed(Router),
        Procs(ProcFleet, Router),
    }
    let fleet = if procs > 0 {
        let exe = match std::env::current_exe() {
            Ok(p) => p,
            Err(e) => return fail(format!("resolving own executable for shard children: {e}")),
        };
        let mut fleet_cfg = FleetConfig::new(exe, procs);
        // The children run *without* fault injection: the proc-kill
        // plan fires supervisor-side (real SIGKILL), so every observed
        // failure is genuine process death, not an in-process fault.
        fleet_cfg.child_args = vec![
            "serve".into(),
            "--shard-child".into(),
            "--workers".into(),
            workers.to_string(),
            "--max-batch".into(),
            max_batch.to_string(),
            "--max-delay-us".into(),
            "500".into(),
        ];
        fleet_cfg.fault = hook.clone();
        let fleet = match ProcFleet::spawn(fleet_cfg) {
            Ok(f) => f,
            Err(e) => return fail(format!("spawning shard fleet: {e}")),
        };
        let router = Router::start(
            fleet.backends(),
            RouterConfig {
                health_interval: Duration::from_millis(2),
                fault: hook.clone(),
                hedge_after: (hedge_after_us > 0).then(|| Duration::from_micros(hedge_after_us)),
                ..RouterConfig::default()
            },
        );
        Fleet::Procs(fleet, router)
    } else if shards > 1 {
        let backends: Vec<Arc<dyn ShardBackend>> = (0..shards)
            .map(|i| {
                let service = Service::start(service_config.clone(), EngineSelector::heuristic());
                Arc::new(InProcessShard::new(format!("shard-{i}"), service))
                    as Arc<dyn ShardBackend>
            })
            .collect();
        Fleet::Routed(Router::start(
            backends,
            RouterConfig {
                health_interval: Duration::from_millis(2),
                fault: hook.clone(),
                ..RouterConfig::default()
            },
        ))
    } else {
        Fleet::Single(Service::start(service_config, EngineSelector::heuristic()))
    };
    let server = match TcpServer::bind("127.0.0.1:0") {
        Ok(s) => s,
        Err(e) => return fail(format!("binding chaos server: {e}")),
    };
    let addr = match server.local_addr() {
        Ok(a) => a.to_string(),
        Err(e) => return fail(e),
    };
    let server_hook = hook.clone();
    let server_thread = match &fleet {
        Fleet::Single(service) => {
            let client = service.client();
            std::thread::spawn(move || server.run_with_faults(client, server_hook))
        }
        Fleet::Routed(router) | Fleet::Procs(_, router) => {
            let client = router.client();
            std::thread::spawn(move || server.run_with_faults(client, server_hook))
        }
    };
    if procs > 0 {
        println!(
            "chaos: plan {plan_name} seed {seed}, {requests} requests \
             ({plant_bad} planted non-SPD), sizes {sizes:?}, {conns} conn(s), \
             {procs} shard process(es), {workers} worker(s)/shard, batch <= {max_batch}"
        );
        if hedge_after_us > 0 {
            println!("       hedging stragglers after {hedge_after_us} us");
        }
    } else {
        println!(
            "chaos: plan {plan_name} seed {seed}, {requests} requests \
             ({plant_bad} planted non-SPD), sizes {sizes:?}, {conns} conn(s), \
             {shards} shard(s), {workers} worker(s), batch <= {max_batch}"
        );
    }
    if large_every > 0 {
        println!("       every {large_every}th request is large (n = {large_n}, task-graph path)");
    }
    let cfg = LoadgenConfig {
        addr: addr.clone(),
        sizes,
        dtype: Dtype::F32,
        requests,
        conns,
        mode: ArrivalMode::Closed { window },
        plant_bad,
        seed,
        deadline: (deadline_us > 0).then(|| Duration::from_micros(deadline_us)),
        // Chaos clients always retry: the plan may kill their
        // connections, and lost-vs-duplicate accounting is the point.
        retry: RetryPolicy::standard(seed),
        read_timeout: Duration::from_secs(5),
        large_every,
        large_n,
    };
    let report = match ibcf_service::loadgen::run(&cfg) {
        Ok(r) => r,
        Err(e) => return fail(format!("chaos loadgen against {addr}: {e}")),
    };
    // For a process fleet, gate on full recovery *before* tearing the
    // front server down — draining the server stops shard admission for
    // good, after which probes legitimately fail forever. Deadline-based
    // polling, no fixed sleeps: every budgeted SIGKILL fired, every
    // killed child respawned, every shard alive and probing healthy.
    let proc_recovered = match &fleet {
        Fleet::Procs(proc_fleet, router) => {
            let expected_kills: u64 = if plan_name == "proc-kill" { 2 } else { 0 };
            let client = router.client();
            let deadline = Instant::now() + Duration::from_secs(15);
            Some(loop {
                let kills_done = proc_fleet.proc_kills() >= expected_kills;
                let respawned = proc_fleet.respawns() >= proc_fleet.proc_kills();
                let alive = proc_fleet.all_children_alive();
                let healthy = client
                    .stats()
                    .shards
                    .is_some_and(|s| !s.is_empty() && s.iter().all(|sh| sh.healthy));
                if kills_done && respawned && alive && healthy {
                    break true;
                }
                if Instant::now() >= deadline {
                    break false;
                }
                std::thread::sleep(Duration::from_millis(10));
            })
        }
        _ => None,
    };
    // Stop the server. The shutdown connection itself can be a fault
    // victim, so keep asking until the run loop actually exits.
    let stop_start = Instant::now();
    while !server_thread.is_finished() && stop_start.elapsed() < Duration::from_secs(30) {
        TcpConn::connect(&addr)
            .and_then(|mut c| c.shutdown_server())
            .ok();
        std::thread::sleep(Duration::from_millis(50));
    }
    if !server_thread.is_finished() {
        return fail("chaos server did not drain within 30 s");
    }
    let run = server_thread.join().expect("chaos server thread");
    // For a routed fleet, capture the live healthy/killed picture before
    // shutdown flattens it, then fold in the router counters.
    let (snap, routing, proc_info) = match fleet {
        Fleet::Single(service) => (service.shutdown(), None, None),
        Fleet::Routed(router) => {
            let kills = router.kills();
            let failovers = router.failovers();
            let backpressured = router.backpressured();
            // The loadgen's final stats fetch ran before shutdown
            // drained the fleet, so its shard list is the live picture.
            let survivors = report
                .server
                .shards
                .as_ref()
                .map_or(0, |s| s.iter().filter(|sh| sh.healthy).count());
            (
                router.shutdown(),
                Some((kills, failovers, backpressured, survivors)),
                None,
            )
        }
        Fleet::Procs(mut proc_fleet, router) => {
            let recovered = proc_recovered.unwrap_or(false);
            let proc_kills = proc_fleet.proc_kills();
            let respawns = proc_fleet.respawns();
            proc_fleet.stop_supervisor();
            let failovers = router.failovers();
            let backpressured = router.backpressured();
            let snap = router.shutdown();
            (
                snap,
                Some((proc_kills, failovers, backpressured, procs)),
                Some((proc_kills, respawns, recovered)),
            )
        }
    };
    if let Err(e) = run {
        return fail(format!("chaos server loop: {e}"));
    }
    println!("{}", report.render());
    println!(
        "faults injected: {} ({} worker crashes, {} restarts, {} deadline-expired)",
        hook.injected(),
        snap.worker_crashes,
        snap.worker_restarts,
        snap.deadline_expired
    );
    if let Some((kills, failovers, backpressured, survivors)) = routing {
        let total = if procs > 0 { procs } else { shards };
        let what = if procs > 0 {
            "shard processes"
        } else {
            "shards"
        };
        println!(
            "fleet: {total} {what}, {kills} killed by the plan, {survivors} healthy at end, \
             {failovers} failovers, {backpressured} backpressure rejects"
        );
    }
    if let Some((proc_kills, respawns, recovered)) = proc_info {
        println!(
            "processes: {proc_kills} SIGKILLed, {respawns} respawned, fleet {}",
            if recovered {
                "fully recovered (all children alive and serving)"
            } else {
                "NOT recovered"
            }
        );
    }
    if let Some(fs) = &snap.fleet {
        println!(
            "breakers: {} trips, {} half-opens, {} closes; \
             {} in-flight losses resubmitted, {} hedges ({} duplicates suppressed)",
            fs.breaker_trips,
            fs.breaker_half_opens,
            fs.breaker_closes,
            fs.shard_lost_resubmits,
            fs.hedges,
            fs.hedge_wasted
        );
    }
    let mut failures: Vec<String> = Vec::new();
    if !report.clean() {
        failures.push(format!(
            "{} lost, {} duplicates, {} mismatched",
            report.lost, report.duplicates, report.mismatched
        ));
    }
    if plan_name == "worker-panic" && snap.worker_crashes < 3 {
        failures.push(format!(
            "worker-panic plan produced only {} crashes (need >= 3 to prove supervision)",
            snap.worker_crashes
        ));
    }
    if snap.worker_restarts != snap.worker_crashes {
        failures.push(format!(
            "{} crashes but {} restarts",
            snap.worker_crashes, snap.worker_restarts
        ));
    }
    match routing {
        Some((kills, ..)) if plan_name == "shard-kill" && kills == 0 => {
            failures.push("shard-kill plan never killed a shard".into());
        }
        Some((_, _, _, 0)) => {
            failures.push("no shard survived the run (the last one must be immune)".into());
        }
        None if plan_name == "shard-kill" => {
            failures.push("shard-kill plan needs --shards > 1 to have anything to kill".into());
        }
        _ => {}
    }
    if plan_name == "proc-kill" && proc_info.is_none() {
        failures.push("proc-kill plan needs --procs > 1 to have processes to kill".into());
    }
    if let Some((proc_kills, respawns, recovered)) = proc_info {
        if plan_name == "proc-kill" && proc_kills < 2 {
            failures.push(format!(
                "proc-kill plan SIGKILLed only {proc_kills} processes (budget is 2)"
            ));
        }
        if respawns < proc_kills {
            failures.push(format!(
                "{proc_kills} processes killed but only {respawns} respawned"
            ));
        }
        if !recovered {
            failures.push("fleet did not recover (children dead or unhealthy at end)".into());
        }
    }
    if failures.is_empty() {
        println!(
            "exactly-one-reply invariant holds: {} sent, 0 lost, 0 duplicates",
            report.sent
        );
        0
    } else {
        for f in &failures {
            eprintln!("error: {f}");
        }
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn config_parsing_round_trips() {
        let a = args("simulate --n 24 --nb 2 --looking left --chunk 128 --full --fast");
        let c = config_of(&a).unwrap();
        assert_eq!(c.n, 24);
        assert_eq!(c.nb, 2);
        assert_eq!(c.looking, Looking::Left);
        assert_eq!(c.chunk_size, 128);
        assert_eq!(c.unroll, Unroll::Full);
        assert!(c.fast_math && c.chunked);
        let a = args("simulate --n 8 --simple");
        assert!(!config_of(&a).unwrap().chunked);
    }

    #[test]
    fn config_requires_n() {
        let a = args("simulate --nb 4");
        assert!(config_of(&a).is_err());
    }

    #[test]
    fn gpu_selection() {
        assert_eq!(
            gpu_of(&args("x --gpu v100")).unwrap().name,
            GpuSpec::v100().name
        );
        assert!(gpu_of(&args("x --gpu k80")).is_err());
    }

    #[test]
    fn sizes_parse() {
        assert_eq!(parse_sizes("8,16, 24").unwrap(), vec![8, 16, 24]);
        assert!(parse_sizes("8,x").is_err());
    }

    #[test]
    fn verify_command_succeeds() {
        let a = args("verify --n 6 --batch 64");
        assert_eq!(verify(&a), 0);
    }

    #[test]
    fn host_bench_command_succeeds() {
        let a = args("host-bench --sizes 6 --batch 128 --reps 1 --f32");
        assert_eq!(host_bench(&a), 0);
    }

    #[test]
    fn host_bench_rejects_bad_sizes() {
        assert_eq!(host_bench(&args("host-bench --sizes 6,x")), 2);
        assert_eq!(host_bench(&args("host-bench --sizes 0 --reps 1")), 2);
    }

    #[test]
    fn simulate_command_succeeds() {
        let a = args("simulate --n 12 --batch 2048");
        assert_eq!(simulate(&a), 0);
    }

    #[test]
    fn emit_command_prints() {
        let a = args("emit --n 6 --full");
        assert_eq!(emit(&a), 0);
    }
}
