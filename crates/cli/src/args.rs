//! Tiny dependency-free argument parsing for the `ibcf` CLI.

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` / `--flag`
/// options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: Option<String>,
    /// `--key value` options.
    pub options: HashMap<String, String>,
    /// Bare `--flag` switches.
    pub flags: Vec<String>,
    /// Remaining positional arguments after the subcommand.
    pub positional: Vec<String>,
}

impl Args {
    /// Parses an iterator of arguments (excluding the program name).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = args.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if key.is_empty() {
                    return Err("empty option name".into());
                }
                // `--key=value` or `--key value` or bare flag.
                if let Some((k, v)) = key.split_once('=') {
                    out.options.insert(k.to_string(), v.to_string());
                } else if it.peek().is_some_and(|n| !n.starts_with("--")) {
                    let v = it.next().expect("peeked");
                    out.options.insert(key.to_string(), v);
                } else {
                    out.flags.push(key.to_string());
                }
            } else if out.command.is_none() {
                out.command = Some(a);
            } else {
                out.positional.push(a);
            }
        }
        Ok(out)
    }

    /// `true` if the bare flag is present.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A typed option with a default.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{name}: {v}")),
        }
    }

    /// A required string option.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.options
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required option --{name}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn subcommand_and_options() {
        let a = parse("sweep --n 16 --batch 4096 --quick");
        assert_eq!(a.command.as_deref(), Some("sweep"));
        assert_eq!(a.get("n", 0usize).unwrap(), 16);
        assert_eq!(a.get("batch", 0usize).unwrap(), 4096);
        assert!(a.flag("quick"));
        assert!(!a.flag("verbose"));
    }

    #[test]
    fn equals_syntax_and_defaults() {
        let a = parse("emit --n=24 --looking=top");
        assert_eq!(a.get("n", 0usize).unwrap(), 24);
        assert_eq!(a.require("looking").unwrap(), "top");
        assert_eq!(a.get("nb", 4usize).unwrap(), 4);
    }

    #[test]
    fn flag_followed_by_flag() {
        let a = parse("x --quick --fast");
        assert!(a.flag("quick") && a.flag("fast"));
        assert!(a.options.is_empty());
    }

    #[test]
    fn positionals_collected() {
        let a = parse("best 8 16 32 --metric gflops");
        assert_eq!(a.positional, vec!["8", "16", "32"]);
    }

    #[test]
    fn bad_value_reports_option_name() {
        let a = parse("x --n twelve");
        let err = a.get::<usize>("n", 0).unwrap_err();
        assert!(err.contains("--n"));
    }
}
