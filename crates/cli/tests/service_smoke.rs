//! End-to-end smoke test: `ibcf serve` on an ephemeral port, a short
//! `ibcf loadgen` run with mixed sizes and planted non-SPD requests, and
//! a clean shutdown.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_ibcf")
}

/// Waits for the child to exit, killing it if `limit` passes first.
fn wait_with_timeout(child: &mut Child, limit: Duration) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if start.elapsed() > limit {
            child.kill().ok();
            child.wait().ok();
            panic!("child did not exit within {limit:?}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn serve_loadgen_round_trip_with_planted_failures() {
    let mut serve = Command::new(bin())
        .args([
            "serve",
            "--port",
            "0", // ephemeral: the first stdout line reports the real port
            "--workers",
            "2",
            "--max-delay-us",
            "500",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn ibcf serve");

    let mut serve_out = BufReader::new(serve.stdout.take().expect("serve stdout"));
    let mut banner = String::new();
    serve_out.read_line(&mut banner).expect("read serve banner");
    assert!(
        banner.starts_with("serving on "),
        "unexpected banner: {banner:?}"
    );
    let addr = banner
        .trim_start_matches("serving on ")
        .split_whitespace()
        .next()
        .expect("address in banner")
        .to_string();

    // Short mixed-size run with planted non-SPD requests. loadgen itself
    // asserts per-request failure routing (exit 1 on any mismatch): each
    // planted request must come back NotSpd{column: 0} while its
    // same-batch neighbors factorize.
    let loadgen = Command::new(bin())
        .args([
            "loadgen",
            "--addr",
            &addr,
            "--requests",
            "600",
            "--conns",
            "2",
            "--window",
            "64",
            "--sizes",
            "8,16,17",
            "--plant-bad",
            "7",
            "--shutdown",
        ])
        .output()
        .expect("run ibcf loadgen");
    let stdout = String::from_utf8_lossy(&loadgen.stdout);
    assert!(
        loadgen.status.success(),
        "loadgen failed: {stdout}\n{}",
        String::from_utf8_lossy(&loadgen.stderr)
    );
    assert!(
        stdout.contains("7 planted non-SPD caught"),
        "planted failures not all routed: {stdout}"
    );
    assert!(
        stdout.contains("0 mismatched"),
        "mismatched replies: {stdout}"
    );
    assert!(
        stdout.contains("server shutdown acknowledged"),
        "no shutdown ack: {stdout}"
    );

    // --shutdown must take the server down cleanly: exit 0 and a final
    // stats report accounting for every request.
    let status = wait_with_timeout(&mut serve, Duration::from_secs(30));
    assert!(status.success(), "serve exited with {status:?}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut serve_out, &mut rest).expect("read serve report");
    assert!(
        rest.contains("served 600 requests"),
        "serve report wrong: {rest}"
    );
    assert!(
        rest.contains("mean batch occupancy"),
        "no occupancy: {rest}"
    );
}

#[test]
fn loadgen_against_no_server_fails_cleanly() {
    let out = Command::new(bin())
        .args(["loadgen", "--addr", "127.0.0.1:1", "--requests", "1"])
        .output()
        .expect("run ibcf loadgen");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error"), "no error message: {stderr}");
}
