//! Kill-and-resume integration test: spawn a logged sweep as a real
//! process, SIGKILL it mid-flight, resume from the log, and require the
//! final dataset to be bitwise-identical to an uninterrupted run.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_ibcf");
const SWEEP_ARGS: &[&str] = &[
    "--sizes",
    "8,16,24,32",
    "--quick",
    "--batch",
    "1024",
    "--noise",
    "0.03",
    "--noise-seed",
    "7",
];

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ibcf_kill_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn run_ok(args: &[&str]) {
    let out = Command::new(BIN).args(args).output().unwrap();
    assert!(
        out.status.success(),
        "ibcf {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn sweep_args(log: &Path, out: Option<&Path>, extra: &[&str]) -> Vec<String> {
    let mut v: Vec<String> = ["sweep"]
        .iter()
        .chain(SWEEP_ARGS)
        .map(|s| s.to_string())
        .collect();
    v.push("--log".into());
    v.push(log.display().to_string());
    if let Some(out) = out {
        v.push("--out".into());
        v.push(out.display().to_string());
    }
    v.extend(extra.iter().map(|s| s.to_string()));
    v
}

fn line_count(path: &Path) -> usize {
    std::fs::read_to_string(path)
        .map(|t| t.lines().count())
        .unwrap_or(0)
}

#[test]
fn killed_sweep_resumes_to_identical_dataset() {
    let dir = tmpdir("resume");
    let ref_log = dir.join("ref.log");
    let ref_out = dir.join("ref.jsonl");
    let int_log = dir.join("int.log");
    let int_out = dir.join("int.jsonl");

    // Uninterrupted reference run.
    let args: Vec<String> = sweep_args(&ref_log, Some(&ref_out), &[]);
    run_ok(&args.iter().map(String::as_str).collect::<Vec<_>>());

    // Interrupted run: SIGKILL as soon as the log shows real progress.
    let args: Vec<String> = sweep_args(&int_log, None, &[]);
    let mut child = Command::new(BIN)
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut killed = false;
    loop {
        if line_count(&int_log) > 10 {
            // SIGKILL: no chance to flush or finalize anything.
            child.kill().ok();
            killed = true;
            break;
        }
        if child.try_wait().unwrap().is_some() {
            break; // finished before we could kill it; resume is a no-op
        }
        assert!(Instant::now() < deadline, "sweep made no progress");
        std::thread::sleep(Duration::from_millis(2));
    }
    child.wait().unwrap();
    let lines_after_kill = line_count(&int_log);
    assert!(lines_after_kill > 1, "log never got past its header");

    // Simulate the worst crash artifact on top: tear the final line.
    if killed {
        let text = std::fs::read_to_string(&int_log).unwrap();
        let keep = text.len() - text.len().min(7);
        std::fs::write(&int_log, &text.as_bytes()[..keep]).unwrap();
    }

    // Resume (parameters come from the log header) and compare.
    run_ok(&[
        "resume",
        "--log",
        int_log.to_str().unwrap(),
        "--out",
        int_out.to_str().unwrap(),
    ]);
    let a = std::fs::read(&ref_out).unwrap();
    let b = std::fs::read(&int_out).unwrap();
    assert_eq!(a, b, "resumed dataset differs from uninterrupted run");

    // The completed log verifies clean.
    run_ok(&["verify-log", int_log.to_str().unwrap(), "--strict"]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_sweeps_merge_to_the_unsharded_dataset() {
    let dir = tmpdir("shards");
    let ref_log = dir.join("ref.log");
    let ref_out = dir.join("ref.jsonl");
    let args: Vec<String> = sweep_args(&ref_log, Some(&ref_out), &[]);
    run_ok(&args.iter().map(String::as_str).collect::<Vec<_>>());

    let mut shard_logs = Vec::new();
    for i in 0..2 {
        let log = dir.join(format!("s{i}.log"));
        let shard = format!("{i}/2");
        let args: Vec<String> = sweep_args(&log, None, &["--shard", &shard]);
        run_ok(&args.iter().map(String::as_str).collect::<Vec<_>>());
        shard_logs.push(log);
    }

    let merged = dir.join("merged.jsonl");
    run_ok(&[
        "merge",
        "--out",
        merged.to_str().unwrap(),
        shard_logs[0].to_str().unwrap(),
        shard_logs[1].to_str().unwrap(),
    ]);
    let a = std::fs::read(&ref_out).unwrap();
    let b = std::fs::read(&merged).unwrap();
    assert_eq!(a, b, "merged shards differ from the unsharded sweep");

    // Merging an incomplete set of shards must fail loudly.
    let out = Command::new(BIN)
        .args([
            "merge",
            "--out",
            dir.join("bad.jsonl").to_str().unwrap(),
            shard_logs[0].to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "partial merge must be rejected");
    std::fs::remove_dir_all(&dir).ok();
}
