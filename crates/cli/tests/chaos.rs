//! Chaos regression tests: `ibcf chaos` under fixed fault plans and
//! seeds must uphold the exactly-one-reply invariant (0 lost,
//! 0 duplicates) and, for the panic plan, survive repeated worker
//! crashes without losing the process.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_ibcf")
}

fn run_chaos(plan: &str, seed: &str, extra: &[&str]) -> (std::process::ExitStatus, String, String) {
    let mut args = vec![
        "chaos",
        "--plan",
        plan,
        "--seed",
        seed,
        "--requests",
        "1000",
        "--conns",
        "3",
        "--window",
        "32",
        "--plant-bad",
        "5",
    ];
    args.extend_from_slice(extra);
    let out = Command::new(bin())
        .args(&args)
        .output()
        .expect("run ibcf chaos");
    (
        out.status,
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn assert_invariant(plan: &str, seed: &str, extra: &[&str]) -> String {
    let (status, stdout, stderr) = run_chaos(plan, seed, extra);
    assert!(
        status.success(),
        "chaos --plan {plan} --seed {seed} failed:\n{stdout}\n{stderr}"
    );
    assert!(
        stdout.contains("exactly-one-reply invariant holds"),
        "invariant line missing for {plan}/{seed}: {stdout}"
    );
    assert!(
        stdout.contains("invariant: 0 lost, 0 duplicates"),
        "non-zero loss or duplication for {plan}/{seed}: {stdout}"
    );
    stdout
}

#[test]
fn chaos_worker_panic_survives_repeated_crashes() {
    let stdout = assert_invariant("worker-panic", "42", &[]);
    // The command itself enforces >= 3 crashes for this plan; check the
    // report surfaced them so a silently-inert plan can't pass.
    let crashes: u64 = stdout
        .lines()
        .find(|l| l.starts_with("faults injected"))
        .and_then(|l| l.split('(').nth(1))
        .and_then(|l| l.split_whitespace().next())
        .and_then(|w| w.parse().ok())
        .expect("crash count in report");
    assert!(crashes >= 3, "only {crashes} worker crashes: {stdout}");
}

#[test]
fn chaos_slow_batch_loses_nothing() {
    assert_invariant("slow-batch", "1009", &[]);
}

#[test]
fn chaos_conn_drop_reconnects_and_resubmits() {
    assert_invariant("conn-drop", "7", &[]);
}

#[test]
fn chaos_shard_kill_fails_over_without_losing_replies() {
    let stdout = assert_invariant("shard-kill", "42", &["--shards", "3"]);
    // The command enforces >= 1 kill and >= 1 survivor; check the fleet
    // report surfaced both so an inert plan (or a router that killed
    // everything) can't pass.
    let fleet = stdout
        .lines()
        .find(|l| l.starts_with("fleet: 3 shards"))
        .unwrap_or_else(|| panic!("no fleet summary line: {stdout}"));
    assert!(
        !fleet.contains("0 killed"),
        "shard-kill plan killed nothing: {stdout}"
    );
    assert!(
        !fleet.contains("0 healthy at end"),
        "no shard survived: {stdout}"
    );
    // Per-shard breakdown made it into the load report.
    assert!(
        stdout.contains("shard shard-0") && stdout.contains("p50/p99"),
        "per-shard latency lines missing: {stdout}"
    );
}

#[test]
fn chaos_mixed_plan_over_a_routed_fleet_stays_clean() {
    // The full fault mix (panics, stalls, drops, corruption) routed over
    // 3 shards: cross-layer interference must not break the invariant.
    assert_invariant("mixed", "1009", &["--shards", "3"]);
}

#[test]
fn chaos_proc_kill_respawns_every_victim_and_keeps_the_invariant() {
    let stdout = assert_invariant(
        "proc-kill",
        "42",
        &["--procs", "3", "--hedge-after-us", "2000"],
    );
    // The command enforces >= 2 SIGKILLs, a respawn per kill, and full
    // recovery before it exits; check the report surfaced all three so
    // an inert plan (or a supervisor that stopped respawning) can't
    // pass.
    let procs = stdout
        .lines()
        .find(|l| l.starts_with("processes:"))
        .unwrap_or_else(|| panic!("no process summary line: {stdout}"));
    assert!(
        !procs.contains("0 SIGKILLed"),
        "proc-kill plan killed nothing: {stdout}"
    );
    assert!(
        procs.contains("fully recovered"),
        "fleet did not recover: {stdout}"
    );
    assert!(
        stdout.contains("breakers:"),
        "breaker transitions missing from the report: {stdout}"
    );
}

#[test]
fn serve_procs_shutdown_reaps_every_shard_child() {
    use std::io::{BufRead, BufReader, Read};
    use std::process::Stdio;

    let mut serve = Command::new(bin())
        .args(["serve", "--port", "0", "--procs", "2", "--workers", "1"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn ibcf serve --procs");
    let mut reader = BufReader::new(serve.stdout.take().expect("serve stdout"));

    // The supervisor prints its bound address and the shard-child pids
    // before entering the accept loop.
    let mut addr = None;
    let mut pids: Vec<u32> = Vec::new();
    let mut line = String::new();
    while addr.is_none() || pids.is_empty() {
        line.clear();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            let _ = serve.kill();
            panic!("serve exited before handshake (addr {addr:?}, pids {pids:?})");
        }
        if let Some(rest) = line.strip_prefix("serving on ") {
            addr = rest.split_whitespace().next().map(str::to_owned);
        } else if let Some(rest) = line.trim_end().strip_prefix("fleet pids: [") {
            pids = rest
                .trim_end_matches(']')
                .split(',')
                .filter_map(|p| p.trim().parse().ok())
                .collect();
        }
    }
    let addr = addr.unwrap();
    assert_eq!(pids.len(), 2, "expected 2 shard-child pids: {pids:?}");
    for pid in &pids {
        assert!(
            std::path::Path::new(&format!("/proc/{pid}")).exists(),
            "shard child {pid} not alive after handshake"
        );
    }

    // Drive a little traffic through the fleet, then ask the server to
    // drain and exit.
    let load = Command::new(bin())
        .args([
            "loadgen",
            "--addr",
            &addr,
            "--requests",
            "64",
            "--conns",
            "1",
            "--window",
            "8",
            "--shutdown",
        ])
        .output()
        .expect("run ibcf loadgen --shutdown");
    assert!(
        load.status.success(),
        "loadgen failed:\n{}\n{}",
        String::from_utf8_lossy(&load.stdout),
        String::from_utf8_lossy(&load.stderr)
    );

    let status = serve.wait().expect("wait for serve");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).ok();
    assert!(status.success(), "serve exited with {status}:\n{rest}");
    assert!(
        rest.contains("all shard processes reaped"),
        "no reap confirmation in serve output:\n{rest}"
    );
    // Regression guard for the orphan leak: after the supervisor exits,
    // no shard child process may remain.
    for pid in &pids {
        assert!(
            !std::path::Path::new(&format!("/proc/{pid}")).exists(),
            "shard child {pid} leaked past shutdown:\n{rest}"
        );
    }
}

#[test]
fn chaos_rejects_unknown_plan() {
    let (status, _, stderr) = run_chaos("flaky-gpu", "1", &[]);
    assert!(!status.success());
    assert!(
        stderr.contains("unknown fault plan"),
        "no plan diagnostics: {stderr}"
    );
}
