//! Property tests for the simulator's memory-system models.

use ibcf_gpu_sim::cache::Cache;
use ibcf_gpu_sim::coalesce::coalesce;
use ibcf_gpu_sim::dram::RowBufferModel;
use ibcf_gpu_sim::trace::{apply_register_reuse, WarpAccess};
use proptest::prelude::*;

fn arb_addrs() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..1_000_000, 32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Coalescing bounds: 1 <= transactions <= 32, sectors >= transactions'
    /// lower bound, and both are monotone under address dedup.
    #[test]
    fn coalescing_bounds(addrs in arb_addrs()) {
        let a = WarpAccess { store: false, addrs };
        let c = coalesce(&a, 4, 128, 32);
        prop_assert!(c.transactions >= 1 && c.transactions <= 32);
        prop_assert!(c.sectors >= c.transactions, "sectors can't be fewer than 128B lines");
        prop_assert!(c.sectors <= 32);
        // Sector granularity is finer than line granularity: at most 4
        // sectors per line.
        prop_assert!(c.sectors <= c.transactions * 4);
    }

    /// Unit-stride accesses always coalesce into at most 2 lines.
    #[test]
    fn unit_stride_coalesces(base in 0u32..1_000_000) {
        let a = WarpAccess { store: false, addrs: (base..base + 32).collect() };
        let c = coalesce(&a, 4, 128, 32);
        prop_assert!(c.transactions <= 2);
        prop_assert!(c.sectors <= 5);
    }

    /// Cache accounting: hits + misses == accesses; a repeat of the same
    /// address within a working set smaller than capacity always hits.
    #[test]
    fn cache_accounting(addrs in prop::collection::vec(0u64..100_000, 1..500)) {
        let mut c = Cache::new(64 * 1024, 128, 8);
        for &a in &addrs {
            c.access(a);
        }
        prop_assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
        prop_assert!(c.hit_rate() >= 0.0 && c.hit_rate() <= 1.0);
    }

    /// A second pass over a small working set hits entirely (capacity
    /// permitting, sequential layout).
    #[test]
    fn second_pass_hits(lines in 1usize..32) {
        let mut c = Cache::new(64 * 1024, 128, 8);
        for pass in 0..2 {
            for l in 0..lines {
                let hit = c.access(l as u64 * 128);
                if pass == 1 {
                    prop_assert!(hit, "line {l} missed on pass 2");
                }
            }
        }
    }

    /// Row-buffer efficiency is within (0, 1] and decreasing in the
    /// penalty.
    #[test]
    fn row_efficiency_monotone(addrs in prop::collection::vec(0u64..10_000_000, 1..300)) {
        let mut m = RowBufferModel::new(4096, 8);
        for &a in &addrs {
            m.access(a);
        }
        let e1 = m.efficiency(1.0);
        let e2 = m.efficiency(2.0);
        let e4 = m.efficiency(4.0);
        prop_assert!((e1 - 1.0).abs() < 1e-12);
        prop_assert!(e2 <= e1 && e4 <= e2);
        prop_assert!(e4 > 0.0);
    }

    /// Register-reuse elimination never invents accesses and conserves the
    /// load/store partition.
    #[test]
    fn reuse_conserves_accesses(
        keys in prop::collection::vec((0u32..64, any::<bool>()), 1..200),
        capacity in 0u32..32,
        dse in any::<bool>(),
    ) {
        let accesses: Vec<WarpAccess> = keys
            .iter()
            .map(|&(k, store)| WarpAccess { store, addrs: vec![k; 32] })
            .collect();
        let n_loads = accesses.iter().filter(|a| !a.store).count() as u64;
        let n_stores = accesses.iter().filter(|a| a.store).count() as u64;
        let r = apply_register_reuse(accesses, capacity, dse);
        let kept_loads = r.kept.iter().filter(|a| !a.store).count() as u64;
        let kept_stores = r.kept.iter().filter(|a| a.store).count() as u64;
        prop_assert_eq!(kept_loads + r.eliminated_loads, n_loads);
        prop_assert_eq!(kept_stores + r.eliminated_stores, n_stores);
        if dse {
            // At most one store per distinct address survives.
            let mut seen = std::collections::HashSet::new();
            for a in r.kept.iter().filter(|a| a.store) {
                prop_assert!(seen.insert(a.addrs[0]), "duplicate store survived DSE");
            }
        }
        if capacity == 0 && !dse {
            prop_assert_eq!(r.eliminated_loads, 0);
        }
    }
}
