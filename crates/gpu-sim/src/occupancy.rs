//! Occupancy: how many blocks and warps an SM can keep resident, and what
//! limits them — the CUDA occupancy calculator, reduced to what the timing
//! model needs.

use crate::spec::GpuSpec;
use serde::{Deserialize, Serialize};

/// Which resource capped the number of resident blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OccLimiter {
    /// Per-SM register file.
    Registers,
    /// Max threads per SM.
    Threads,
    /// Max blocks per SM.
    Blocks,
    /// Shared memory per SM.
    SharedMemory,
}

/// Occupancy of one kernel configuration on one SM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Concurrent blocks per SM.
    pub blocks_per_sm: u32,
    /// Concurrent warps per SM.
    pub warps_per_sm: u32,
    /// Fraction of the SM's maximum resident warps.
    pub occupancy: f64,
    /// The binding resource.
    pub limiter: OccLimiter,
}

/// Computes occupancy for a block of `block_threads` threads needing
/// `regs_per_thread` registers (pre-rounding) and `shared_bytes` of shared
/// memory per block.
///
/// Registers per thread are clamped to the architectural maximum before
/// the register-file constraint (excess spills to local memory and is
/// charged by the timing model, not here).
pub fn occupancy(
    spec: &GpuSpec,
    block_threads: usize,
    regs_per_thread: u32,
    shared_bytes: u32,
) -> Occupancy {
    assert!(block_threads > 0 && block_threads.is_multiple_of(spec.warp_size as usize));
    let threads = block_threads as u32;
    let regs = spec.rounded_regs(regs_per_thread.min(spec.max_regs_per_thread).max(1));

    let by_threads = spec.max_threads_per_sm / threads;
    let by_blocks = spec.max_blocks_per_sm;
    let by_regs = spec.regs_per_sm / (regs * threads);
    let by_shared = spec
        .shared_per_sm
        .checked_div(shared_bytes)
        .unwrap_or(u32::MAX);

    let blocks = by_threads.min(by_blocks).min(by_regs).min(by_shared);
    let limiter = if blocks == by_threads {
        OccLimiter::Threads
    } else if blocks == by_regs {
        OccLimiter::Registers
    } else if blocks == by_shared && shared_bytes > 0 {
        OccLimiter::SharedMemory
    } else {
        OccLimiter::Blocks
    };
    let blocks = blocks.max(1); // a kernel that fits nowhere still runs, serially
    let warps = blocks * threads / spec.warp_size;
    let max_warps = spec.max_threads_per_sm / spec.warp_size;
    Occupancy {
        blocks_per_sm: blocks,
        warps_per_sm: warps,
        occupancy: f64::from(warps) / f64::from(max_warps),
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_blocks_hit_block_limit() {
        let spec = GpuSpec::p100();
        // 32-thread blocks, light registers: capped by 32 blocks/SM.
        let o = occupancy(&spec, 32, 32, 0);
        assert_eq!(o.blocks_per_sm, 32);
        assert_eq!(o.warps_per_sm, 32);
        assert_eq!(o.limiter, OccLimiter::Blocks);
        assert!((o.occupancy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn heavy_registers_limit_occupancy() {
        let spec = GpuSpec::p100();
        // 240 regs → rounded 240; 32 threads → 7680 regs/block →
        // 65536 / 7680 = 8 blocks.
        let o = occupancy(&spec, 32, 240, 0);
        assert_eq!(o.blocks_per_sm, 8);
        assert_eq!(o.limiter, OccLimiter::Registers);
    }

    #[test]
    fn big_blocks_hit_thread_limit() {
        let spec = GpuSpec::p100();
        let o = occupancy(&spec, 512, 32, 0);
        assert_eq!(o.blocks_per_sm, 4);
        assert_eq!(o.warps_per_sm, 64);
        assert_eq!(o.limiter, OccLimiter::Threads);
        assert!((o.occupancy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_memory_limits() {
        let spec = GpuSpec::p100();
        // 32 KiB per block → 2 blocks per 64 KiB SM.
        let o = occupancy(&spec, 64, 32, 32 * 1024);
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limiter, OccLimiter::SharedMemory);
    }

    #[test]
    fn excess_registers_clamped_not_zero() {
        let spec = GpuSpec::p100();
        // 400 regs/thread clamps to 255 (rounded 256): 65536/(256·32) = 8.
        let o = occupancy(&spec, 32, 400, 0);
        assert_eq!(o.blocks_per_sm, 8);
    }

    #[test]
    fn always_at_least_one_block() {
        let spec = GpuSpec::p100();
        let o = occupancy(&spec, 1024, 255, 48 * 1024);
        assert!(o.blocks_per_sm >= 1);
    }
}
