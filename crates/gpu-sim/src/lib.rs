//! A SIMT GPU simulator: the hardware substrate for reproducing the
//! IPPS'17 interleaved batch Cholesky study without a physical GPU.
//!
//! The simulator has two coupled halves sharing one kernel programming
//! model:
//!
//! * **Functional execution** ([`exec`], [`block::launch_block_functional`])
//!   runs kernels with real IEEE (or emulated fast-math) arithmetic against
//!   a flat global-memory buffer, so every kernel's numerics are validated
//!   against a host oracle.
//! * **Timing simulation** ([`timing`], [`block::time_block_kernel`])
//!   traces one representative warp — legal because the kernels have no
//!   data-dependent control flow — and prices the stream through explicit
//!   architectural models: memory coalescing ([`coalesce`]), a set-
//!   associative L2 ([`cache`]), a DRAM row-buffer model ([`dram`]), an
//!   occupancy calculator ([`occupancy`]), register-reuse/spill and
//!   instruction-cache models, and per-op issue costs including the
//!   IEEE-vs-`--use_fast_math` distinction ([`spec::OpCosts`]).
//!
//! Hardware constants live in [`spec::GpuSpec`]; the default preset is the
//! paper's NVIDIA P100.

#![warn(missing_docs)]

pub mod block;
pub mod cache;
pub mod coalesce;
pub mod dram;
pub mod exec;
pub mod kernel;
mod mem;
pub mod occupancy;
pub mod plan;
pub mod report;
pub mod spec;
pub mod timing;
pub mod trace;

pub use block::{
    launch_block_functional, launch_block_functional_opts, plan_block_kernel, time_block_kernel,
    trace_block_kernel, BlockCtx, BlockKernel, LaneCtx,
};
pub use exec::{launch_functional, launch_functional_seq, ExecOptions};
pub use kernel::{KernelCtx, KernelStatics, LaunchConfig, ThreadId, ThreadKernel};
pub use occupancy::{occupancy, OccLimiter, Occupancy};
pub use plan::{
    build_plan, plan_thread_kernel, price, CacheStats, PlanParams, PlannedAccess, PricingCtx,
    TraceCache, TracePlan,
};
pub use report::{Bottleneck, KernelTiming};
pub use spec::{GpuSpec, OpCosts};
pub use timing::{time_from_trace, time_thread_kernel, TimingOptions};
pub use trace::{apply_register_reuse, trace_warp, OpCounts, WarpAccess, WarpTrace};
