//! Cooperative block kernels: shared memory, barriers, and bank conflicts.
//!
//! The traditional (MAGMA-style) batched Cholesky assigns one thread block
//! per matrix and stages panels through shared memory — unlike the
//! interleaved kernels, its threads cooperate. Kernels are written as a
//! sequence of *phases* (the code between `__syncthreads()` barriers): each
//! phase body runs once per thread, and the executor provides functional or
//! tracing lane contexts exactly like the thread-kernel path.

use crate::exec::{degrade, ExecOptions};
use crate::kernel::{KernelStatics, LaunchConfig};
use crate::mem::SharedMem;
use crate::plan::{build_plan, price, PlanParams, PricingCtx, TracePlan};
use crate::report::KernelTiming;
use crate::spec::GpuSpec;
use crate::timing::TimingOptions;
use crate::trace::{MemRec, OpCounts, WarpAccess, WarpTrace};
use rayon::prelude::*;

/// Per-lane device instruction set for block kernels: global memory,
/// shared memory, and arithmetic.
pub trait LaneCtx {
    /// Thread index within the block.
    fn tid(&self) -> usize;
    /// Block index within the grid.
    fn block_idx(&self) -> usize;
    /// Global-memory load.
    fn ld(&mut self, addr: usize) -> f32;
    /// Global-memory store.
    fn st(&mut self, addr: usize, v: f32);
    /// Shared-memory load (index in f32 elements of the block's region).
    fn ld_shared(&mut self, idx: usize) -> f32;
    /// Shared-memory store.
    fn st_shared(&mut self, idx: usize, v: f32);
    /// Fused multiply-add `a * b + c`.
    fn fma(&mut self, a: f32, b: f32, c: f32) -> f32;
    /// Multiply.
    fn mul(&mut self, a: f32, b: f32) -> f32;
    /// Add.
    fn add(&mut self, a: f32, b: f32) -> f32;
    /// Subtract.
    fn sub(&mut self, a: f32, b: f32) -> f32;
    /// Divide.
    fn div(&mut self, a: f32, b: f32) -> f32;
    /// Square root.
    fn sqrt(&mut self, a: f32) -> f32;
    /// Reciprocal.
    fn rcp(&mut self, a: f32) -> f32;
    /// Integer/branch overhead accounting.
    fn iops(&mut self, count: u64);
}

/// One block's execution interface: run phases, separated by barriers.
pub trait BlockCtx {
    /// Block index within the grid.
    fn block_idx(&self) -> usize;
    /// Threads per block.
    fn block_dim(&self) -> usize;
    /// Runs `f(tid, lane)` for every thread of the block. CUDA discipline
    /// applies: shared-memory locations written in a phase may only be
    /// read by *other* threads in a later phase (after [`BlockCtx::sync`]).
    fn phase(&mut self, f: &mut dyn FnMut(usize, &mut dyn LaneCtx));
    /// Block-wide barrier (`__syncthreads()`).
    fn sync(&mut self);
}

/// A cooperative kernel: one `run` drives a whole block through its phases.
pub trait BlockKernel: Sync {
    /// Per-block body.
    fn run(&self, block: &mut dyn BlockCtx);
    /// Static resource estimates (must set `shared_bytes_per_block`).
    fn statics(&self) -> KernelStatics;
}

// ---------------------------------------------------------------------------
// Functional execution
// ---------------------------------------------------------------------------

struct FuncLane<'a, 'm> {
    tid: usize,
    block: usize,
    mem: &'a SharedMem<'m>,
    shared: *mut f32,
    shared_len: usize,
    fast_math: bool,
}

impl LaneCtx for FuncLane<'_, '_> {
    fn tid(&self) -> usize {
        self.tid
    }
    fn block_idx(&self) -> usize {
        self.block
    }
    fn ld(&mut self, addr: usize) -> f32 {
        // SAFETY: launch contract — blocks own disjoint global footprints.
        unsafe { self.mem.read(addr) }
    }
    fn st(&mut self, addr: usize, v: f32) {
        // SAFETY: as above.
        unsafe { self.mem.write(addr, v) }
    }
    fn ld_shared(&mut self, idx: usize) -> f32 {
        assert!(idx < self.shared_len, "shared load out of bounds");
        // SAFETY: in bounds; phases run threads sequentially.
        unsafe { *self.shared.add(idx) }
    }
    fn st_shared(&mut self, idx: usize, v: f32) {
        assert!(idx < self.shared_len, "shared store out of bounds");
        // SAFETY: in bounds; phases run threads sequentially.
        unsafe { *self.shared.add(idx) = v };
    }
    fn fma(&mut self, a: f32, b: f32, c: f32) -> f32 {
        a.mul_add(b, c)
    }
    fn mul(&mut self, a: f32, b: f32) -> f32 {
        a * b
    }
    fn add(&mut self, a: f32, b: f32) -> f32 {
        a + b
    }
    fn sub(&mut self, a: f32, b: f32) -> f32 {
        a - b
    }
    fn div(&mut self, a: f32, b: f32) -> f32 {
        if self.fast_math {
            degrade(a / b, 2)
        } else {
            a / b
        }
    }
    fn sqrt(&mut self, a: f32) -> f32 {
        if self.fast_math {
            degrade(a.sqrt(), 2)
        } else {
            a.sqrt()
        }
    }
    fn rcp(&mut self, a: f32) -> f32 {
        if self.fast_math {
            degrade(a.recip(), 2)
        } else {
            a.recip()
        }
    }
    fn iops(&mut self, _count: u64) {}
}

struct FuncBlock<'a, 'm> {
    block: usize,
    block_dim: usize,
    mem: &'a SharedMem<'m>,
    shared: Vec<f32>,
    fast_math: bool,
}

impl BlockCtx for FuncBlock<'_, '_> {
    fn block_idx(&self) -> usize {
        self.block
    }
    fn block_dim(&self) -> usize {
        self.block_dim
    }
    fn phase(&mut self, f: &mut dyn FnMut(usize, &mut dyn LaneCtx)) {
        let shared = self.shared.as_mut_ptr();
        let shared_len = self.shared.len();
        for tid in 0..self.block_dim {
            let mut lane = FuncLane {
                tid,
                block: self.block,
                mem: self.mem,
                shared,
                shared_len,
                fast_math: self.fast_math,
            };
            f(tid, &mut lane);
        }
    }
    fn sync(&mut self) {}
}

/// Runs a [`BlockKernel`] functionally; blocks execute in parallel.
///
/// # Contract
/// Distinct blocks must touch disjoint global addresses (one block = one
/// matrix for the traditional kernel).
pub fn launch_block_functional<K: BlockKernel>(kernel: &K, launch: LaunchConfig, mem: &mut [f32]) {
    launch_block_functional_opts(kernel, launch, mem, ExecOptions::default());
}

/// [`launch_block_functional`] with explicit arithmetic options.
pub fn launch_block_functional_opts<K: BlockKernel>(
    kernel: &K,
    launch: LaunchConfig,
    mem: &mut [f32],
    opts: ExecOptions,
) {
    let shared_elems = kernel.statics().shared_bytes_per_block as usize / 4;
    let shared_mem = SharedMem::new(mem);
    (0..launch.grid).into_par_iter().for_each(|block| {
        let mut ctx = FuncBlock {
            block,
            block_dim: launch.block,
            mem: &shared_mem,
            shared: vec![0.0f32; shared_elems],
            fast_math: opts.fast_math,
        };
        kernel.run(&mut ctx);
    });
}

// ---------------------------------------------------------------------------
// Tracing execution
// ---------------------------------------------------------------------------

struct TraceLane<'a> {
    tid: usize,
    block: usize,
    ops: &'a mut OpCounts,
    mem: &'a mut Vec<MemRec>,
    shared: &'a mut Vec<u32>,
}

impl LaneCtx for TraceLane<'_> {
    fn tid(&self) -> usize {
        self.tid
    }
    fn block_idx(&self) -> usize {
        self.block
    }
    fn ld(&mut self, addr: usize) -> f32 {
        self.ops.loads += 1;
        self.mem.push(MemRec {
            store: false,
            addr: addr as u32,
        });
        1.0
    }
    fn st(&mut self, addr: usize, _v: f32) {
        self.ops.stores += 1;
        self.mem.push(MemRec {
            store: true,
            addr: addr as u32,
        });
    }
    fn ld_shared(&mut self, idx: usize) -> f32 {
        self.shared.push(idx as u32);
        1.0
    }
    fn st_shared(&mut self, idx: usize, _v: f32) {
        self.shared.push(idx as u32);
    }
    fn fma(&mut self, _a: f32, _b: f32, _c: f32) -> f32 {
        self.ops.fma_class += 1;
        1.0
    }
    fn mul(&mut self, _a: f32, _b: f32) -> f32 {
        self.ops.fma_class += 1;
        1.0
    }
    fn add(&mut self, _a: f32, _b: f32) -> f32 {
        self.ops.fma_class += 1;
        1.0
    }
    fn sub(&mut self, _a: f32, _b: f32) -> f32 {
        self.ops.fma_class += 1;
        1.0
    }
    fn div(&mut self, _a: f32, _b: f32) -> f32 {
        self.ops.div += 1;
        1.0
    }
    fn sqrt(&mut self, _a: f32) -> f32 {
        self.ops.sqrt += 1;
        1.0
    }
    fn rcp(&mut self, _a: f32) -> f32 {
        self.ops.rcp += 1;
        1.0
    }
    fn iops(&mut self, count: u64) {
        self.ops.iops += count;
    }
}

struct TraceBlock {
    block: usize,
    block_dim: usize,
    lane_ops: Vec<OpCounts>,
    lane_mem: Vec<Vec<MemRec>>,
    lane_shared: Vec<Vec<u32>>,
    syncs: u64,
    shared_replays: f64,
}

impl TraceBlock {
    /// After each phase, zip this phase's shared accesses into warp
    /// instructions and count bank-conflict replays.
    fn absorb_shared_phase(&mut self, banks: u32) {
        let len = self.lane_shared.iter().map(Vec::len).max().unwrap_or(0);
        for i in 0..len {
            // Collect the lanes participating in this shared instruction.
            let mut bank_addrs: Vec<(u32, u32)> = Vec::new();
            for l in &self.lane_shared {
                if let Some(&idx) = l.get(i) {
                    bank_addrs.push((idx % banks, idx));
                }
            }
            // Conflict degree: max distinct addresses within one bank.
            let mut worst = 1u32;
            for b in 0..banks {
                let mut addrs: Vec<u32> = bank_addrs
                    .iter()
                    .filter(|&&(bank, _)| bank == b)
                    .map(|&(_, a)| a)
                    .collect();
                addrs.sort_unstable();
                addrs.dedup();
                worst = worst.max(addrs.len() as u32);
            }
            self.shared_replays += worst as f64;
        }
        for l in &mut self.lane_shared {
            l.clear();
        }
    }
}

impl BlockCtx for TraceBlock {
    fn block_idx(&self) -> usize {
        self.block
    }
    fn block_dim(&self) -> usize {
        self.block_dim
    }
    fn phase(&mut self, f: &mut dyn FnMut(usize, &mut dyn LaneCtx)) {
        // Trace warp 0 only; it is the representative warp.
        let lanes = self.block_dim.min(32);
        for tid in 0..lanes {
            let mut lane = TraceLane {
                tid,
                block: self.block,
                ops: &mut self.lane_ops[tid],
                mem: &mut self.lane_mem[tid],
                shared: &mut self.lane_shared[tid],
            };
            f(tid, &mut lane);
        }
        self.absorb_shared_phase(32);
    }
    fn sync(&mut self) {
        self.syncs += 1;
    }
}

/// Traces warp 0 of block 0 of a [`BlockKernel`]: returns the zipped warp
/// trace plus the block-only costs (bank-conflict replay count and barrier
/// count) that the pricing pass charges on top.
///
/// Lanes of a block kernel may legitimately diverge (idle lanes at the
/// matrix edge), so warp accesses are padded by replicating the lane-0
/// address for missing lanes — conservative for coalescing (the padded
/// lane adds no new line).
pub fn trace_block_kernel<K: BlockKernel>(
    kernel: &K,
    launch: LaunchConfig,
) -> (WarpTrace, f64, u64) {
    let mut ctx = TraceBlock {
        block: 0,
        block_dim: launch.block,
        lane_ops: vec![OpCounts::default(); launch.block.min(32)],
        lane_mem: vec![Vec::new(); launch.block.min(32)],
        lane_shared: vec![Vec::new(); launch.block.min(32)],
        syncs: 0,
        shared_replays: 0.0,
    };
    kernel.run(&mut ctx);

    // Zip global accesses; lanes may have different stream lengths
    // (divergence) — pad with lane 0's address.
    let max_len = ctx.lane_mem.iter().map(Vec::len).max().unwrap_or(0);
    let mut accesses = Vec::with_capacity(max_len);
    // Lane 0 must be the longest stream for padding to make sense; if not,
    // pad from the longest lane instead.
    let longest = (0..ctx.lane_mem.len())
        .max_by_key(|&l| ctx.lane_mem[l].len())
        .unwrap_or(0);
    for i in 0..max_len {
        let proto = ctx.lane_mem[longest][i];
        let mut addrs = Vec::with_capacity(32);
        for l in &ctx.lane_mem {
            addrs.push(l.get(i).map_or(proto.addr, |r| r.addr));
        }
        while addrs.len() < 32 {
            addrs.push(proto.addr);
        }
        accesses.push(WarpAccess {
            store: proto.store,
            addrs,
        });
    }
    // SIMT: a diverged warp pays for the union of its lanes' paths,
    // approximated per op class by the busiest lane.
    let ops = ctx
        .lane_ops
        .iter()
        .fold(OpCounts::default(), |a, &b| a.max(b));
    (WarpTrace { ops, accesses }, ctx.shared_replays, ctx.syncs)
}

/// Builds the structural [`TracePlan`] of a [`BlockKernel`] launch,
/// including the shared-memory replay and barrier extras.
pub fn plan_block_kernel<K: BlockKernel>(
    kernel: &K,
    launch: LaunchConfig,
    params: PlanParams,
) -> TracePlan {
    let (trace, shared_replays, syncs) = trace_block_kernel(kernel, launch);
    build_plan(&trace, kernel.statics(), params).with_block_extras(shared_replays, syncs)
}

/// Times a [`BlockKernel`] launch: traces warp 0 of block 0, prices shared
/// traffic and barriers on top of the shared throughput back end.
pub fn time_block_kernel<K: BlockKernel>(
    kernel: &K,
    launch: LaunchConfig,
    spec: &GpuSpec,
    opts: TimingOptions,
) -> KernelTiming {
    let plan = plan_block_kernel(
        kernel,
        launch,
        PlanParams::from_spec(spec, opts.disable_reg_reuse),
    );
    price(
        &plan,
        &PricingCtx {
            spec,
            launch,
            fast_math: opts.fast_math,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Block kernel: threads cooperatively reverse a 64-element segment via
    /// shared memory (two phases separated by a barrier).
    struct Reverse;
    impl BlockKernel for Reverse {
        fn run(&self, block: &mut dyn BlockCtx) {
            let b = block.block_idx();
            let dim = block.block_dim();
            block.phase(&mut |t, lane| {
                let v = lane.ld(b * dim + t);
                lane.st_shared(t, v);
            });
            block.sync();
            block.phase(&mut |t, lane| {
                let v = lane.ld_shared(dim - 1 - t);
                lane.st(b * dim + t, v);
            });
        }
        fn statics(&self) -> KernelStatics {
            KernelStatics {
                regs_per_thread: 16,
                static_instrs: 64,
                reg_reuse_capacity: 0,
                dead_store_elim: false,
                shared_bytes_per_block: 64 * 4,
            }
        }
    }

    #[test]
    fn functional_block_kernel_reverses() {
        let mut mem: Vec<f32> = (0..256).map(|i| i as f32).collect();
        launch_block_functional(&Reverse, LaunchConfig::new(4, 64), &mut mem);
        for blk in 0..4 {
            for t in 0..64 {
                assert_eq!(mem[blk * 64 + t], (blk * 64 + 63 - t) as f32);
            }
        }
    }

    #[test]
    fn timing_counts_syncs_and_shared() {
        let spec = GpuSpec::p100();
        let t = time_block_kernel(
            &Reverse,
            LaunchConfig::new(64, 64),
            &spec,
            TimingOptions::default(),
        );
        assert!(t.time_s > 0.0);
        assert!(t.compute_time_s > 0.0, "barrier cost must appear");
    }

    /// Conflict kernel: every lane hits the same bank with distinct
    /// addresses (stride 32) — worst-case 32-way conflict.
    struct Conflict;
    impl BlockKernel for Conflict {
        fn run(&self, block: &mut dyn BlockCtx) {
            block.phase(&mut |t, lane| {
                lane.st_shared(t * 32, 1.0);
            });
        }
        fn statics(&self) -> KernelStatics {
            KernelStatics {
                regs_per_thread: 16,
                static_instrs: 16,
                reg_reuse_capacity: 0,
                dead_store_elim: false,
                shared_bytes_per_block: 32 * 32 * 4,
            }
        }
    }

    /// Broadcast kernel: every lane reads shared[0] — no conflict.
    struct Broadcast;
    impl BlockKernel for Broadcast {
        fn run(&self, block: &mut dyn BlockCtx) {
            block.phase(&mut |_t, lane| {
                let _ = lane.ld_shared(0);
            });
        }
        fn statics(&self) -> KernelStatics {
            Conflict.statics()
        }
    }

    #[test]
    fn bank_conflicts_cost_more_than_broadcast() {
        let spec = GpuSpec::p100();
        let lc = LaunchConfig::new(64, 32);
        let c = time_block_kernel(&Conflict, lc, &spec, TimingOptions::default());
        let b = time_block_kernel(&Broadcast, lc, &spec, TimingOptions::default());
        assert!(
            c.compute_time_s > b.compute_time_s * 4.0,
            "conflict {} vs broadcast {}",
            c.compute_time_s,
            b.compute_time_s
        );
    }

    #[test]
    fn divergent_lane_streams_are_padded() {
        /// Only even lanes load.
        struct Divergent;
        impl BlockKernel for Divergent {
            fn run(&self, block: &mut dyn BlockCtx) {
                block.phase(&mut |t, lane| {
                    if t % 2 == 0 {
                        let v = lane.ld(t);
                        lane.st(t, v);
                    }
                });
            }
            fn statics(&self) -> KernelStatics {
                KernelStatics::streaming(8, 16)
            }
        }
        let spec = GpuSpec::p100();
        let t = time_block_kernel(
            &Divergent,
            LaunchConfig::new(4, 32),
            &spec,
            TimingOptions::default(),
        );
        assert!(t.time_s > 0.0);
    }
}
