//! Kernel abstractions: per-thread device code written once, executed by
//! either the functional executor (real arithmetic on device memory) or the
//! timing executor (instruction/address tracing through the performance
//! model).
//!
//! Cholesky has no data-dependent control flow, so one kernel body serves
//! both purposes — the same property that lets the paper's generated CUDA
//! kernels be analyzed statically.

use serde::{Deserialize, Serialize};

/// Grid/block shape of a launch (1-D, like the paper's kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Number of thread blocks.
    pub grid: usize,
    /// Threads per block (a multiple of the warp size).
    pub block: usize,
}

impl LaunchConfig {
    /// A launch of `grid` blocks of `block` threads.
    pub fn new(grid: usize, block: usize) -> Self {
        assert!(grid > 0, "grid must be non-empty");
        assert!(
            block > 0 && block.is_multiple_of(32),
            "block must be a positive warp multiple"
        );
        LaunchConfig { grid, block }
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> usize {
        self.grid * self.block
    }

    /// Warps per block.
    pub fn warps_per_block(&self) -> usize {
        self.block / 32
    }
}

/// Identity of the executing thread, as seen by kernel code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadId {
    /// Block index within the grid.
    pub block: usize,
    /// Thread index within the block.
    pub tid: usize,
    /// Threads per block.
    pub block_dim: usize,
}

impl ThreadId {
    /// Global thread index `block * block_dim + tid`.
    pub fn global(&self) -> usize {
        self.block * self.block_dim + self.tid
    }

    /// Lane within the warp.
    pub fn lane(&self) -> usize {
        self.tid % 32
    }

    /// Warp index within the block.
    pub fn warp(&self) -> usize {
        self.tid / 32
    }
}

/// The device-side instruction set available to kernel bodies.
///
/// Addresses are in **f32 elements** from the start of global memory.
/// Every arithmetic method is an *instruction*: the functional executor
/// computes it, the timing executor prices it. Kernel code must route all
/// floating-point work through these methods for the trace to be faithful.
pub trait KernelCtx {
    /// Who am I?
    fn thread(&self) -> ThreadId;
    /// Global-memory load.
    fn ld(&mut self, addr: usize) -> f32;
    /// Global-memory store.
    fn st(&mut self, addr: usize, v: f32);
    /// Fused multiply-add `a * b + c`.
    fn fma(&mut self, a: f32, b: f32, c: f32) -> f32;
    /// Multiply.
    fn mul(&mut self, a: f32, b: f32) -> f32;
    /// Add.
    fn add(&mut self, a: f32, b: f32) -> f32;
    /// Subtract.
    fn sub(&mut self, a: f32, b: f32) -> f32;
    /// Divide (IEEE or fast per launch options).
    fn div(&mut self, a: f32, b: f32) -> f32;
    /// Square root (IEEE or fast per launch options).
    fn sqrt(&mut self, a: f32) -> f32;
    /// Reciprocal (IEEE-quality or SFU-approximate per launch options).
    fn rcp(&mut self, a: f32) -> f32;
    /// Accounts `count` integer/address/branch overhead instructions.
    /// Functionally a no-op; the timing executor prices them. Kernel code
    /// calls this for loop overhead that full unrolling would remove.
    fn iops(&mut self, count: u64);
}

/// Static resource estimates a kernel reports to the timing model —
/// everything `nvcc`'s compilation statistics would say about the paper's
/// generated kernels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelStatics {
    /// Registers per thread the kernel's working set requires (before
    /// allocation-granularity rounding; may exceed the architectural
    /// maximum, in which case the timing model adds spill traffic).
    pub regs_per_thread: u32,
    /// Static instruction count of the generated code (drives the
    /// instruction-cache pressure model).
    pub static_instrs: u64,
    /// Capacity, in values, of the cross-operation register-reuse window.
    /// Fully unrolled straight-line code lets the compiler forward values
    /// across tile operations (capacity ≈ available registers); looped
    /// code reloads tiles from memory every operation (capacity 0).
    pub reg_reuse_capacity: u32,
    /// If true, redundant stores to the same address are eliminated (only
    /// the last store pays traffic) — dead-store elimination across the
    /// fully unrolled factorization when the matrix is register-resident.
    pub dead_store_elim: bool,
    /// Shared memory bytes per block (0 for the interleaved kernels).
    pub shared_bytes_per_block: u32,
}

impl KernelStatics {
    /// Statics for a plain streaming kernel with no cross-op reuse.
    pub fn streaming(regs_per_thread: u32, static_instrs: u64) -> Self {
        KernelStatics {
            regs_per_thread,
            static_instrs,
            reg_reuse_capacity: 0,
            dead_store_elim: false,
            shared_bytes_per_block: 0,
        }
    }
}

/// A kernel whose threads are fully independent (no shared memory, no
/// barriers) — the shape of all interleaved-layout kernels: one thread owns
/// one matrix.
pub trait ThreadKernel: Sync {
    /// Per-thread body.
    fn run<C: KernelCtx>(&self, ctx: &mut C);
    /// Static resource estimates.
    fn statics(&self) -> KernelStatics;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_config_arithmetic() {
        let lc = LaunchConfig::new(512, 64);
        assert_eq!(lc.total_threads(), 32768);
        assert_eq!(lc.warps_per_block(), 2);
    }

    #[test]
    #[should_panic(expected = "warp multiple")]
    fn rejects_ragged_block() {
        let _ = LaunchConfig::new(4, 48);
    }

    #[test]
    fn thread_id_lanes() {
        let t = ThreadId {
            block: 3,
            tid: 37,
            block_dim: 64,
        };
        assert_eq!(t.global(), 3 * 64 + 37);
        assert_eq!(t.lane(), 5);
        assert_eq!(t.warp(), 1);
    }

    #[test]
    fn streaming_statics() {
        let s = KernelStatics::streaming(40, 1000);
        assert_eq!(s.reg_reuse_capacity, 0);
        assert!(!s.dead_store_elim);
        assert_eq!(s.shared_bytes_per_block, 0);
    }
}
