//! DRAM row-buffer (open-page) model.
//!
//! This is the mechanism behind the paper's chunking result (Figure 17):
//! with the fully interleaved layout, consecutive accesses of a warp are a
//! whole batch apart (64 KiB for 16,384 f32 matrices), so every access
//! opens a new DRAM row; with chunking, `row_bytes / (chunk · 4)` accesses
//! land in each open row. A row miss costs `row_miss_penalty` times a row
//! hit, degrading effective bandwidth.

use std::collections::{BTreeMap, HashMap};

/// LRU set of open DRAM rows, tracking hit/miss statistics for one access
/// stream.
#[derive(Debug, Clone)]
pub struct RowBufferModel {
    row_bytes: u64,
    capacity: usize,
    stamp: u64,
    open_stamp: HashMap<u64, u64>,
    by_stamp: BTreeMap<u64, u64>,
    hits: u64,
    misses: u64,
}

impl RowBufferModel {
    /// A model with `open_rows` simultaneously open rows of `row_bytes`
    /// each.
    pub fn new(row_bytes: u32, open_rows: u32) -> Self {
        RowBufferModel {
            row_bytes: row_bytes.max(1) as u64,
            capacity: open_rows.max(1) as usize,
            stamp: 0,
            open_stamp: HashMap::new(),
            by_stamp: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses the row containing `byte_addr`; returns `true` on a
    /// row-buffer hit.
    pub fn access(&mut self, byte_addr: u64) -> bool {
        self.stamp += 1;
        let row = byte_addr / self.row_bytes;
        let hit = self.open_stamp.contains_key(&row);
        if let Some(old) = self.open_stamp.insert(row, self.stamp) {
            self.by_stamp.remove(&old);
        }
        self.by_stamp.insert(self.stamp, row);
        if self.open_stamp.len() > self.capacity {
            let (&oldest, &victim) = self.by_stamp.iter().next().expect("non-empty");
            self.by_stamp.remove(&oldest);
            self.open_stamp.remove(&victim);
        }
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Row-buffer hit rate in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            // An idle stream imposes no penalty.
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Effective bandwidth fraction given a row-miss penalty: the ratio of
    /// ideal access time (all hits) to modeled access time.
    pub fn efficiency(&self, row_miss_penalty: f64) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 1.0;
        }
        let cost = self.hits as f64 + self.misses as f64 * row_miss_penalty;
        total as f64 / cost
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_mostly_hits() {
        let mut m = RowBufferModel::new(4096, 4);
        for i in 0..1024u64 {
            m.access(i * 32);
        }
        // 1024 sector accesses over 8 rows: 8 misses.
        assert_eq!(m.misses(), 8);
        assert!(m.hit_rate() > 0.99);
    }

    #[test]
    fn huge_stride_always_misses() {
        let mut m = RowBufferModel::new(4096, 16);
        for i in 0..100u64 {
            m.access(i * 65536); // 64 KiB stride: new row every time
        }
        assert_eq!(m.misses(), 100);
        assert_eq!(m.hit_rate(), 0.0);
    }

    #[test]
    fn chunked_stride_hits_proportionally() {
        // chunk = 64 f32 → 256-byte plane stride → 16 accesses per 4 KiB row.
        let mut m = RowBufferModel::new(4096, 16);
        for i in 0..160u64 {
            m.access(i * 256);
        }
        assert_eq!(m.misses(), 10);
        assert!((m.hit_rate() - 150.0 / 160.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_degrades_with_penalty() {
        let mut m = RowBufferModel::new(4096, 1);
        for i in 0..10u64 {
            m.access(i * 8192);
        }
        assert_eq!(m.efficiency(1.0), 1.0);
        assert!((m.efficiency(2.5) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn lru_keeps_recent_rows_open() {
        let mut m = RowBufferModel::new(4096, 2);
        assert!(!m.access(0)); // row 0: miss
        assert!(!m.access(4096)); // row 1: miss
        assert!(m.access(0)); // row 0: hit (now most recent)
        assert!(!m.access(8192)); // row 2: miss, evicts row 1 (LRU)
        assert!(!m.access(4096), "row 1 was evicted");
        assert_eq!(m.hits(), 1);
        assert_eq!(m.misses(), 4);
    }

    #[test]
    fn untouched_model_is_neutral() {
        let m = RowBufferModel::new(4096, 8);
        assert_eq!(m.hit_rate(), 1.0);
        assert_eq!(m.efficiency(3.0), 1.0);
    }
}
