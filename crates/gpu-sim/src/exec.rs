//! The functional executor: runs kernels with real arithmetic against a
//! flat global-memory buffer, producing bit-level results that the tests
//! compare against the host oracle.

use crate::kernel::{KernelCtx, LaunchConfig, ThreadId, ThreadKernel};
use crate::mem::SharedMem;
use rayon::prelude::*;

/// Arithmetic mode of a functional launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecOptions {
    /// Emulate `--use_fast_math`: division, square root, and reciprocal go
    /// through hardware-approximation emulation (a few mantissa bits of
    /// error) instead of IEEE rounding.
    pub fast_math: bool,
}

/// Truncates the low `bits` mantissa bits — a simple stand-in for the
/// reduced accuracy of the SFU approximate ops under `--use_fast_math`.
#[inline]
pub(crate) fn degrade(v: f32, bits: u32) -> f32 {
    if !v.is_finite() {
        return v;
    }
    let mask = !((1u32 << bits) - 1);
    f32::from_bits(v.to_bits() & mask)
}

/// Functional execution context for one thread.
struct ExecCtx<'a> {
    thread: ThreadId,
    mem: &'a SharedMem<'a>,
    fast_math: bool,
}

impl KernelCtx for ExecCtx<'_> {
    #[inline]
    fn thread(&self) -> ThreadId {
        self.thread
    }
    #[inline]
    fn ld(&mut self, addr: usize) -> f32 {
        // SAFETY: kernels launched through `launch_functional` promise
        // per-thread-disjoint address footprints (see its doc contract).
        unsafe { self.mem.read(addr) }
    }
    #[inline]
    fn st(&mut self, addr: usize, v: f32) {
        // SAFETY: as above.
        unsafe { self.mem.write(addr, v) }
    }
    #[inline]
    fn fma(&mut self, a: f32, b: f32, c: f32) -> f32 {
        a.mul_add(b, c)
    }
    #[inline]
    fn mul(&mut self, a: f32, b: f32) -> f32 {
        a * b
    }
    #[inline]
    fn add(&mut self, a: f32, b: f32) -> f32 {
        a + b
    }
    #[inline]
    fn sub(&mut self, a: f32, b: f32) -> f32 {
        a - b
    }
    #[inline]
    fn div(&mut self, a: f32, b: f32) -> f32 {
        if self.fast_math {
            degrade(a / b, 2)
        } else {
            a / b
        }
    }
    #[inline]
    fn sqrt(&mut self, a: f32) -> f32 {
        if self.fast_math {
            degrade(a.sqrt(), 2)
        } else {
            a.sqrt()
        }
    }
    #[inline]
    fn rcp(&mut self, a: f32) -> f32 {
        if self.fast_math {
            degrade(a.recip(), 2)
        } else {
            a.recip()
        }
    }
    #[inline]
    fn iops(&mut self, _count: u64) {}
}

/// Runs a [`ThreadKernel`] functionally over global memory `mem`.
///
/// # Contract
/// Distinct threads of the launch must touch disjoint sets of addresses
/// (the defining property of the one-thread-one-matrix interleaved
/// kernels); blocks are executed in parallel under that assumption.
///
/// # Panics
/// If any thread accesses an address `>= mem.len()` (index check inside the
/// cell slice).
pub fn launch_functional<K: ThreadKernel>(
    kernel: &K,
    launch: LaunchConfig,
    mem: &mut [f32],
    opts: ExecOptions,
) {
    let shared = SharedMem::new(mem);
    (0..launch.grid).into_par_iter().for_each(|block| {
        for tid in 0..launch.block {
            let mut ctx = ExecCtx {
                thread: ThreadId {
                    block,
                    tid,
                    block_dim: launch.block,
                },
                mem: &shared,
                fast_math: opts.fast_math,
            };
            kernel.run(&mut ctx);
        }
    });
}

/// Runs a [`ThreadKernel`] functionally on a single OS thread (no rayon),
/// for deterministic debugging and for callers that cannot promise
/// cross-block disjointness.
pub fn launch_functional_seq<K: ThreadKernel>(
    kernel: &K,
    launch: LaunchConfig,
    mem: &mut [f32],
    opts: ExecOptions,
) {
    let shared = SharedMem::new(mem);
    for block in 0..launch.grid {
        for tid in 0..launch.block {
            let mut ctx = ExecCtx {
                thread: ThreadId {
                    block,
                    tid,
                    block_dim: launch.block,
                },
                mem: &shared,
                fast_math: opts.fast_math,
            };
            kernel.run(&mut ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelStatics;

    /// Each thread squares its own element and adds its global id.
    struct SquareKernel {
        len: usize,
    }

    impl ThreadKernel for SquareKernel {
        fn run<C: KernelCtx>(&self, ctx: &mut C) {
            let g = ctx.thread().global();
            if g < self.len {
                let v = ctx.ld(g);
                let sq = ctx.mul(v, v);
                let out = ctx.add(sq, g as f32);
                ctx.st(g, out);
            }
        }
        fn statics(&self) -> KernelStatics {
            KernelStatics::streaming(8, 16)
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let len = 4096;
        let mut a: Vec<f32> = (0..len).map(|i| (i as f32) * 0.25).collect();
        let mut b = a.clone();
        let k = SquareKernel { len };
        let lc = LaunchConfig::new(len / 64, 64);
        launch_functional(&k, lc, &mut a, ExecOptions::default());
        launch_functional_seq(&k, lc, &mut b, ExecOptions::default());
        assert_eq!(a, b);
        for (i, v) in b.iter().enumerate() {
            let x = (i as f32) * 0.25;
            assert_eq!(*v, x * x + i as f32);
        }
    }

    /// Thread 0 computes 1/3 and sqrt(2) into memory.
    struct SpecialOps;
    impl ThreadKernel for SpecialOps {
        fn run<C: KernelCtx>(&self, ctx: &mut C) {
            if ctx.thread().global() == 0 {
                let third = ctx.div(1.0, 3.0);
                ctx.st(0, third);
                let r = ctx.sqrt(2.0);
                ctx.st(1, r);
                let rc = ctx.rcp(7.0);
                ctx.st(2, rc);
            }
        }
        fn statics(&self) -> KernelStatics {
            KernelStatics::streaming(8, 8)
        }
    }

    #[test]
    fn fast_math_degrades_but_stays_close() {
        let mut ieee = vec![0.0f32; 32];
        let mut fast = vec![0.0f32; 32];
        let lc = LaunchConfig::new(1, 32);
        launch_functional_seq(&SpecialOps, lc, &mut ieee, ExecOptions { fast_math: false });
        launch_functional_seq(&SpecialOps, lc, &mut fast, ExecOptions { fast_math: true });
        assert_eq!(ieee[0], 1.0f32 / 3.0);
        assert_eq!(ieee[1], 2.0f32.sqrt());
        for i in 0..3 {
            let rel = ((ieee[i] - fast[i]) / ieee[i]).abs();
            assert!(rel < 1e-5, "i={i}: {} vs {}", ieee[i], fast[i]);
        }
    }

    #[test]
    fn degrade_preserves_non_finite() {
        assert!(degrade(f32::NAN, 2).is_nan());
        assert_eq!(degrade(f32::INFINITY, 2), f32::INFINITY);
    }
}
