//! GPU hardware descriptions driving the timing model.

use serde::{Deserialize, Serialize};

/// Per-operation issue costs, in **SM-cycles per warp instruction**.
///
/// A cost of 0.5 means two such warp instructions complete per SM cycle
/// (e.g. FP32 FMA on a 64-lane Pascal SM executing two 32-lane warps per
/// cycle). IEEE-compliant division and square root compile to multi-
/// instruction refinement sequences on NVIDIA GPUs, which is what
/// `--use_fast_math` removes — the effect the paper's Figure 13 isolates.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OpCosts {
    /// FMA / MUL / ADD / SUB.
    pub fma: f64,
    /// Integer / addressing / branch overhead op.
    pub iop: f64,
    /// IEEE-compliant FP32 divide.
    pub div_ieee: f64,
    /// Fast (approximate) FP32 divide (`--use_fast_math`).
    pub div_fast: f64,
    /// IEEE-compliant FP32 square root.
    pub sqrt_ieee: f64,
    /// Fast FP32 square root.
    pub sqrt_fast: f64,
    /// IEEE-quality reciprocal (division by refinement).
    pub rcp_ieee: f64,
    /// Hardware approximate reciprocal (SFU).
    pub rcp_fast: f64,
    /// Block-wide barrier, per warp.
    pub sync: f64,
    /// LSU cost per memory transaction (128-byte line) of a warp access;
    /// uncoalesced accesses replay once per extra line.
    pub lsu_per_transaction: f64,
    /// Shared-memory access per warp instruction; bank conflicts replay.
    pub shared_access: f64,
}

impl Default for OpCosts {
    fn default() -> Self {
        OpCosts {
            fma: 0.5,
            iop: 0.5,
            div_ieee: 40.0,
            div_fast: 4.0,
            sqrt_ieee: 45.0,
            sqrt_fast: 4.0,
            rcp_ieee: 40.0,
            rcp_fast: 2.0,
            sync: 16.0,
            lsu_per_transaction: 1.0,
            shared_access: 1.0,
        }
    }
}

impl OpCosts {
    /// Divide cost under the given arithmetic mode.
    pub fn div(&self, fast_math: bool) -> f64 {
        if fast_math {
            self.div_fast
        } else {
            self.div_ieee
        }
    }

    /// Square-root cost under the given arithmetic mode.
    pub fn sqrt(&self, fast_math: bool) -> f64 {
        if fast_math {
            self.sqrt_fast
        } else {
            self.sqrt_ieee
        }
    }

    /// Reciprocal cost under the given arithmetic mode.
    pub fn rcp(&self, fast_math: bool) -> f64 {
        if fast_math {
            self.rcp_fast
        } else {
            self.rcp_ieee
        }
    }
}

/// A GPU model: the architectural constants consumed by the occupancy,
/// memory, and timing models.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, for reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sms: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// FP32 lanes per SM (CUDA cores).
    pub fp32_lanes_per_sm: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Maximum registers addressable per thread; excess spills to local
    /// memory.
    pub max_regs_per_thread: u32,
    /// Register allocation granularity (registers are rounded up to this).
    pub reg_alloc_granularity: u32,
    /// Shared memory per SM, bytes.
    pub shared_per_sm: u32,
    /// Maximum shared memory per block, bytes.
    pub max_shared_per_block: u32,
    /// Shared memory banks.
    pub shared_banks: u32,
    /// L2 cache size, bytes.
    pub l2_bytes: u64,
    /// L2 line (sector granularity tracked separately), bytes.
    pub l2_line_bytes: u32,
    /// L2 associativity (ways) for the set-associative model.
    pub l2_ways: u32,
    /// Coalescing line size, bytes (L1/transaction granularity).
    pub line_bytes: u32,
    /// DRAM sector size, bytes (minimum DRAM transfer).
    pub sector_bytes: u32,
    /// Peak DRAM bandwidth, GB/s.
    pub dram_gbps: f64,
    /// DRAM row-buffer (page) size, bytes — granularity of the open-row
    /// spatial-locality model that makes chunking matter.
    pub dram_row_bytes: u32,
    /// Number of row buffers a single access stream keeps open (an
    /// abstraction of banks × channels visible to one warp's stream).
    pub dram_open_rows: u32,
    /// Cost multiplier of a row-miss DRAM access relative to a row hit.
    pub dram_row_miss_penalty: f64,
    /// Instruction cache size, bytes. Kernels whose hot code exceeds this
    /// pay a fetch penalty — the paper's "aggressive unrolling works to a
    /// point".
    pub icache_bytes: u32,
    /// Strength of the instruction-fetch penalty per doubling of code size
    /// beyond the instruction cache.
    pub icache_beta: f64,
    /// Average encoded instruction size, bytes.
    pub instr_bytes: u32,
    /// Estimated extra DRAM round trips per spilled register per use
    /// (local-memory traffic model).
    pub spill_reuse_factor: f64,
    /// Operation issue costs.
    pub costs: OpCosts,
}

impl GpuSpec {
    /// NVIDIA P100 (Pascal, GP100) — the card used in the paper, CUDA 8.0.
    pub fn p100() -> Self {
        GpuSpec {
            name: "NVIDIA P100 (Pascal)".to_string(),
            sms: 56,
            clock_ghz: 1.303,
            fp32_lanes_per_sm: 64,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            regs_per_sm: 65536,
            max_regs_per_thread: 255,
            reg_alloc_granularity: 8,
            shared_per_sm: 64 * 1024,
            max_shared_per_block: 48 * 1024,
            shared_banks: 32,
            l2_bytes: 4 * 1024 * 1024,
            l2_line_bytes: 128,
            l2_ways: 16,
            line_bytes: 128,
            sector_bytes: 32,
            dram_gbps: 732.0,
            dram_row_bytes: 4096,
            dram_open_rows: 16,
            dram_row_miss_penalty: 2.5,
            icache_bytes: 12 * 1024,
            icache_beta: 0.10,
            instr_bytes: 8,
            spill_reuse_factor: 2.0,
            costs: OpCosts::default(),
        }
    }

    /// NVIDIA V100 (Volta) — a second preset to exercise spec sensitivity.
    pub fn v100() -> Self {
        GpuSpec {
            name: "NVIDIA V100 (Volta)".to_string(),
            sms: 80,
            clock_ghz: 1.53,
            dram_gbps: 900.0,
            l2_bytes: 6 * 1024 * 1024,
            shared_per_sm: 96 * 1024,
            icache_bytes: 12 * 1024,
            ..Self::p100()
        }
    }

    /// NVIDIA A100 (Ampere, GA100) — the data-center generation after
    /// Volta: more SMs at a similar clock, a much larger L2 and shared
    /// memory, and roughly twice the HBM bandwidth.
    pub fn a100() -> Self {
        GpuSpec {
            name: "NVIDIA A100 (Ampere)".to_string(),
            sms: 108,
            clock_ghz: 1.41,
            shared_per_sm: 164 * 1024,
            max_shared_per_block: 160 * 1024,
            l2_bytes: 40 * 1024 * 1024,
            dram_gbps: 1555.0,
            dram_open_rows: 32,
            icache_bytes: 32 * 1024,
            icache_beta: 0.08,
            ..Self::p100()
        }
    }

    /// A consumer-class GeForce card (GTX-1080-like, Pascal GP104):
    /// fewer, wider SMs, a small L2, and GDDR with smaller row buffers
    /// and a steeper row-miss penalty than HBM — the regime where the
    /// paper's chunked layouts matter most.
    pub fn gtx1080() -> Self {
        GpuSpec {
            name: "NVIDIA GTX 1080 (Pascal, GeForce)".to_string(),
            sms: 20,
            clock_ghz: 1.733,
            fp32_lanes_per_sm: 128,
            shared_per_sm: 96 * 1024,
            l2_bytes: 2 * 1024 * 1024,
            dram_gbps: 320.0,
            dram_row_bytes: 2048,
            dram_open_rows: 8,
            dram_row_miss_penalty: 3.0,
            icache_bytes: 8 * 1024,
            icache_beta: 0.12,
            ..Self::p100()
        }
    }

    /// Every built-in preset, in presentation order.
    pub fn presets() -> Vec<GpuSpec> {
        vec![Self::p100(), Self::v100(), Self::a100(), Self::gtx1080()]
    }

    /// Looks a preset up by its short CLI name (`p100`, `v100`, `a100`,
    /// `gtx1080`; `consumer` and `geforce` alias the GeForce preset).
    pub fn by_name(name: &str) -> Option<GpuSpec> {
        match name.to_ascii_lowercase().as_str() {
            "p100" => Some(Self::p100()),
            "v100" => Some(Self::v100()),
            "a100" => Some(Self::a100()),
            "gtx1080" | "1080" | "consumer" | "geforce" => Some(Self::gtx1080()),
            _ => None,
        }
    }

    /// Peak FP32 throughput in GFLOP/s (2 flops per lane-FMA per cycle).
    pub fn peak_gflops(&self) -> f64 {
        self.sms as f64 * self.fp32_lanes_per_sm as f64 * 2.0 * self.clock_ghz
    }

    /// Core clock in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_ghz * 1e9
    }

    /// Registers per thread after allocation-granularity rounding.
    pub fn rounded_regs(&self, regs: u32) -> u32 {
        let g = self.reg_alloc_granularity.max(1);
        regs.div_ceil(g) * g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p100_peak_matches_datasheet() {
        let spec = GpuSpec::p100();
        // Datasheet: ~9.3 TFLOP/s single precision.
        let peak = spec.peak_gflops();
        assert!((peak - 9340.0).abs() < 50.0, "peak = {peak}");
    }

    #[test]
    fn fast_math_is_cheaper() {
        let c = OpCosts::default();
        assert!(c.div(true) < c.div(false));
        assert!(c.sqrt(true) < c.sqrt(false));
        assert!(c.rcp(true) < c.rcp(false));
    }

    #[test]
    fn register_rounding() {
        let spec = GpuSpec::p100();
        assert_eq!(spec.rounded_regs(1), 8);
        assert_eq!(spec.rounded_regs(8), 8);
        assert_eq!(spec.rounded_regs(9), 16);
        assert_eq!(spec.rounded_regs(255), 256);
    }

    #[test]
    fn v100_differs_sensibly() {
        let p = GpuSpec::p100();
        let v = GpuSpec::v100();
        assert!(v.peak_gflops() > p.peak_gflops());
        assert!(v.dram_gbps > p.dram_gbps);
        assert_eq!(v.warp_size, 32);
    }

    #[test]
    fn presets_resolve_by_name() {
        for spec in GpuSpec::presets() {
            assert!(spec.sms > 0 && spec.dram_gbps > 0.0, "{}", spec.name);
        }
        assert_eq!(GpuSpec::by_name("P100").unwrap().sms, 56);
        assert_eq!(GpuSpec::by_name("a100").unwrap().sms, 108);
        assert_eq!(GpuSpec::by_name("consumer").unwrap().sms, 20);
        assert_eq!(
            GpuSpec::by_name("geforce").unwrap().name,
            GpuSpec::by_name("gtx1080").unwrap().name
        );
        assert!(GpuSpec::by_name("k80").is_none());
    }

    #[test]
    fn a100_and_consumer_bracket_the_p100() {
        let p = GpuSpec::p100();
        let a = GpuSpec::a100();
        let g = GpuSpec::gtx1080();
        assert!(a.peak_gflops() > p.peak_gflops());
        assert!(a.dram_gbps > 2.0 * p.dram_gbps);
        assert!(g.dram_gbps < p.dram_gbps);
        assert!(g.dram_row_bytes < p.dram_row_bytes);
        assert!(g.l2_bytes < p.l2_bytes);
    }

    #[test]
    fn spec_is_cloneable() {
        let spec = GpuSpec::p100();
        let c = spec.clone();
        assert_eq!(c.sms, spec.sms);
        assert_eq!(c.name, spec.name);
    }
}
