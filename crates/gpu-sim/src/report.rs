//! The timing report a simulated launch produces.

use crate::occupancy::Occupancy;
use serde::{Deserialize, Serialize};

/// Which resource bound the kernel's runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bottleneck {
    /// Arithmetic issue (FP pipelines).
    Compute,
    /// Load/store unit issue (transaction replays).
    Lsu,
    /// DRAM bandwidth.
    Dram,
}

/// Timing estimate and diagnostic breakdown of one kernel launch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelTiming {
    /// Estimated wall time of the launch, seconds.
    pub time_s: f64,
    /// Arithmetic issue time, seconds (wave-quantization adjusted).
    pub compute_time_s: f64,
    /// LSU issue time, seconds (wave-quantization adjusted).
    pub lsu_time_s: f64,
    /// DRAM transfer time, seconds (row-buffer efficiency adjusted).
    pub dram_time_s: f64,
    /// Which term won.
    pub bottleneck: Bottleneck,
    /// Total DRAM traffic, bytes (after L2 filtering, including spills).
    pub dram_bytes: u64,
    /// DRAM row-buffer hit rate of the traced stream.
    pub row_hit_rate: f64,
    /// L2 hit rate of the traced stream.
    pub l2_hit_rate: f64,
    /// Average memory transactions per warp access (1.0 = perfectly
    /// coalesced).
    pub transactions_per_access: f64,
    /// Loads eliminated by the register-reuse window, per warp.
    pub reg_reuse_eliminated_loads: u64,
    /// Stores eliminated by dead-store elimination, per warp.
    pub eliminated_stores: u64,
    /// Local-memory spill traffic, bytes (whole launch).
    pub spill_bytes: u64,
    /// Kernel code size, bytes.
    pub code_bytes: u64,
    /// Instruction-fetch penalty multiplier (1.0 = fits in I-cache).
    pub icache_penalty: f64,
    /// Occupancy achieved.
    pub occupancy: Occupancy,
    /// Number of scheduling waves.
    pub waves: u64,
    /// Fraction of block slots filled across all waves (tail/quantization
    /// losses show up here).
    pub utilization: f64,
    /// Dynamic flops per thread, as traced.
    pub flops_per_thread: u64,
}

impl KernelTiming {
    /// Gflop/s of the launch given the externally-defined useful flop
    /// count (the paper always uses `batch · n³/3`).
    pub fn gflops(&self, useful_flops: f64) -> f64 {
        useful_flops / self.time_s / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::OccLimiter;

    #[test]
    fn gflops_from_time() {
        let t = KernelTiming {
            time_s: 1e-3,
            compute_time_s: 1e-3,
            lsu_time_s: 0.0,
            dram_time_s: 0.0,
            bottleneck: Bottleneck::Compute,
            dram_bytes: 0,
            row_hit_rate: 1.0,
            l2_hit_rate: 0.0,
            transactions_per_access: 1.0,
            reg_reuse_eliminated_loads: 0,
            eliminated_stores: 0,
            spill_bytes: 0,
            code_bytes: 0,
            icache_penalty: 1.0,
            occupancy: Occupancy {
                blocks_per_sm: 1,
                warps_per_sm: 1,
                occupancy: 0.1,
                limiter: OccLimiter::Blocks,
            },
            waves: 1,
            utilization: 1.0,
            flops_per_thread: 0,
        };
        assert!((t.gflops(2e9) - 2000.0).abs() < 1e-9);
    }
}
