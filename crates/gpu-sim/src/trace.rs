//! The tracing executor: runs kernel code with dummy arithmetic, recording
//! per-lane instruction counts and memory address streams.
//!
//! Because the Cholesky kernels have no data-dependent control flow, the
//! k-th memory access of every lane corresponds to the same source
//! instruction, so per-lane streams zip into warp-level accesses exactly as
//! the hardware would see them — and one traced warp is representative of
//! every warp in the launch.

use crate::kernel::{KernelCtx, LaunchConfig, ThreadId, ThreadKernel};
use std::collections::{BTreeMap, HashMap};

/// Dynamic instruction counts of one thread (warp-representative lane).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// FMA-class ops (fma/mul/add/sub).
    pub fma_class: u64,
    /// Divides.
    pub div: u64,
    /// Square roots.
    pub sqrt: u64,
    /// Reciprocals.
    pub rcp: u64,
    /// Integer/address/branch overhead ops.
    pub iops: u64,
    /// Global loads.
    pub loads: u64,
    /// Global stores.
    pub stores: u64,
}

impl OpCounts {
    /// Floating-point operations performed (for flop accounting: FMA-class
    /// counted once, div/sqrt/rcp once each).
    pub fn flops(&self) -> u64 {
        self.fma_class + self.div + self.sqrt + self.rcp
    }

    /// Total dynamic instructions.
    pub fn total(&self) -> u64 {
        self.flops() + self.iops + self.loads + self.stores
    }

    /// Elementwise maximum — the SIMT cost of a warp whose lanes diverge
    /// is the union of their paths, approximated per op class by the
    /// busiest lane.
    pub fn max(self, o: Self) -> Self {
        OpCounts {
            fma_class: self.fma_class.max(o.fma_class),
            div: self.div.max(o.div),
            sqrt: self.sqrt.max(o.sqrt),
            rcp: self.rcp.max(o.rcp),
            iops: self.iops.max(o.iops),
            loads: self.loads.max(o.loads),
            stores: self.stores.max(o.stores),
        }
    }
}

/// One recorded memory access of one lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRec {
    /// `true` for a store, `false` for a load.
    pub store: bool,
    /// Element address (f32 words).
    pub addr: u32,
}

/// A warp-level memory access: the same instruction across all lanes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpAccess {
    /// `true` for a store.
    pub store: bool,
    /// One element address per lane.
    pub addrs: Vec<u32>,
}

/// The trace of one warp: representative-lane op counts plus the zipped
/// warp-level access stream.
#[derive(Debug, Clone)]
pub struct WarpTrace {
    /// Dynamic op counts of lane 0 (identical across lanes for the
    /// data-independent kernels traced here).
    pub ops: OpCounts,
    /// Warp-level memory accesses, in program order.
    pub accesses: Vec<WarpAccess>,
}

struct TraceCtx {
    thread: ThreadId,
    count_ops: bool,
    ops: OpCounts,
    mem: Vec<MemRec>,
}

impl KernelCtx for TraceCtx {
    #[inline]
    fn thread(&self) -> ThreadId {
        self.thread
    }
    #[inline]
    fn ld(&mut self, addr: usize) -> f32 {
        if self.count_ops {
            self.ops.loads += 1;
        }
        self.mem.push(MemRec {
            store: false,
            addr: addr as u32,
        });
        1.0
    }
    #[inline]
    fn st(&mut self, addr: usize, _v: f32) {
        if self.count_ops {
            self.ops.stores += 1;
        }
        self.mem.push(MemRec {
            store: true,
            addr: addr as u32,
        });
    }
    #[inline]
    fn fma(&mut self, _a: f32, _b: f32, _c: f32) -> f32 {
        self.ops.fma_class += self.count_ops as u64;
        1.0
    }
    #[inline]
    fn mul(&mut self, _a: f32, _b: f32) -> f32 {
        self.ops.fma_class += self.count_ops as u64;
        1.0
    }
    #[inline]
    fn add(&mut self, _a: f32, _b: f32) -> f32 {
        self.ops.fma_class += self.count_ops as u64;
        1.0
    }
    #[inline]
    fn sub(&mut self, _a: f32, _b: f32) -> f32 {
        self.ops.fma_class += self.count_ops as u64;
        1.0
    }
    #[inline]
    fn div(&mut self, _a: f32, _b: f32) -> f32 {
        self.ops.div += self.count_ops as u64;
        1.0
    }
    #[inline]
    fn sqrt(&mut self, _a: f32) -> f32 {
        self.ops.sqrt += self.count_ops as u64;
        1.0
    }
    #[inline]
    fn rcp(&mut self, _a: f32) -> f32 {
        self.ops.rcp += self.count_ops as u64;
        1.0
    }
    #[inline]
    fn iops(&mut self, count: u64) {
        if self.count_ops {
            self.ops.iops += count;
        }
    }
}

/// Traces warp `warp` of block `block` of a launch: executes the 32 lanes
/// with dummy arithmetic and assembles the warp-level access stream.
///
/// # Panics
/// If the lanes' access streams diverge in length or direction (a
/// data-dependent kernel, which this tracer does not support).
pub fn trace_warp<K: ThreadKernel>(
    kernel: &K,
    launch: LaunchConfig,
    block: usize,
    warp: usize,
) -> WarpTrace {
    assert!(block < launch.grid, "block out of range");
    assert!(warp < launch.warps_per_block(), "warp out of range");
    let mut lanes: Vec<Vec<MemRec>> = Vec::with_capacity(32);
    let mut ops = OpCounts::default();
    for lane in 0..32 {
        let tid = warp * 32 + lane;
        let mut ctx = TraceCtx {
            thread: ThreadId {
                block,
                tid,
                block_dim: launch.block,
            },
            count_ops: lane == 0,
            ops: OpCounts::default(),
            mem: Vec::new(),
        };
        kernel.run(&mut ctx);
        if lane == 0 {
            ops = ctx.ops;
        }
        lanes.push(ctx.mem);
    }
    let len = lanes[0].len();
    for (lane, l) in lanes.iter().enumerate() {
        assert_eq!(l.len(), len, "lane {lane} diverged in access count");
    }
    let mut accesses = Vec::with_capacity(len);
    for i in 0..len {
        let store = lanes[0][i].store;
        let mut addrs = Vec::with_capacity(32);
        for (lane, l) in lanes.iter().enumerate() {
            assert_eq!(
                l[i].store, store,
                "lane {lane} diverged in access kind at {i}"
            );
            addrs.push(l[i].addr);
        }
        accesses.push(WarpAccess { store, addrs });
    }
    WarpTrace { ops, accesses }
}

/// Result of the register-reuse (and optional dead-store-elimination) pass.
#[derive(Debug, Clone)]
pub struct ReusedStream {
    /// Accesses that still reach the memory system.
    pub kept: Vec<WarpAccess>,
    /// Loads satisfied from the register-reuse window (free).
    pub eliminated_loads: u64,
    /// Stores removed by dead-store elimination.
    pub eliminated_stores: u64,
}

/// Models the register allocation of fully unrolled code: a per-thread LRU
/// window of `capacity` values. A load whose address is in the window is
/// forwarded from registers (eliminated); loads and stores insert their
/// address. With `dead_store_elim`, only the **last** store to each address
/// reaches memory.
///
/// Lane 0's addresses key the window — lanes are symmetric, so elimination
/// decisions are uniform across the warp, exactly like the compiler's
/// (lane-agnostic) register allocation of the generated CUDA code.
///
/// With `capacity == 0` the stream is returned unchanged: looped code
/// re-loads tiles from memory every operation.
pub fn apply_register_reuse(
    accesses: Vec<WarpAccess>,
    capacity: u32,
    dead_store_elim: bool,
) -> ReusedStream {
    if capacity == 0 && !dead_store_elim {
        return ReusedStream {
            kept: accesses,
            eliminated_loads: 0,
            eliminated_stores: 0,
        };
    }
    // Last store index per lane-0 address, for dead-store elimination.
    let mut last_store: HashMap<u32, usize> = HashMap::new();
    if dead_store_elim {
        for (i, a) in accesses.iter().enumerate() {
            if a.store {
                last_store.insert(a.addrs[0], i);
            }
        }
    }

    let mut lru_stamp: HashMap<u32, u64> = HashMap::new();
    let mut by_stamp: BTreeMap<u64, u32> = BTreeMap::new();
    let mut clock = 0u64;
    let mut touch =
        |addr: u32, lru_stamp: &mut HashMap<u32, u64>, by_stamp: &mut BTreeMap<u64, u32>| {
            clock += 1;
            if let Some(old) = lru_stamp.insert(addr, clock) {
                by_stamp.remove(&old);
            }
            by_stamp.insert(clock, addr);
            if lru_stamp.len() > capacity as usize {
                let (&oldest, &victim) = by_stamp.iter().next().expect("non-empty LRU");
                by_stamp.remove(&oldest);
                lru_stamp.remove(&victim);
            }
        };

    let mut kept = Vec::with_capacity(accesses.len());
    let mut eliminated_loads = 0u64;
    let mut eliminated_stores = 0u64;
    for (i, a) in accesses.into_iter().enumerate() {
        let key = a.addrs[0];
        if a.store {
            if capacity > 0 {
                touch(key, &mut lru_stamp, &mut by_stamp);
            }
            if dead_store_elim && last_store.get(&key) != Some(&i) {
                eliminated_stores += 1;
                continue;
            }
            kept.push(a);
        } else {
            if capacity > 0 && lru_stamp.contains_key(&key) {
                touch(key, &mut lru_stamp, &mut by_stamp);
                eliminated_loads += 1;
                continue;
            }
            if capacity > 0 {
                touch(key, &mut lru_stamp, &mut by_stamp);
            }
            kept.push(a);
        }
    }
    ReusedStream {
        kept,
        eliminated_loads,
        eliminated_stores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelStatics;

    /// Thread t loads a[t], a[t+N], stores to both, reloads the first.
    struct Pattern;
    const N: usize = 64;
    impl ThreadKernel for Pattern {
        fn run<C: KernelCtx>(&self, ctx: &mut C) {
            let t = ctx.thread().global();
            let x = ctx.ld(t);
            let y = ctx.ld(t + N);
            let s = ctx.add(x, y);
            ctx.st(t, s);
            ctx.st(t + N, s);
            let again = ctx.ld(t);
            ctx.st(t, again);
            ctx.iops(3);
        }
        fn statics(&self) -> KernelStatics {
            KernelStatics::streaming(8, 16)
        }
    }

    #[test]
    fn warp_trace_zips_lanes() {
        let t = trace_warp(&Pattern, LaunchConfig::new(2, 64), 1, 1);
        assert_eq!(t.accesses.len(), 6);
        assert_eq!(t.ops.loads, 3);
        assert_eq!(t.ops.stores, 3);
        assert_eq!(t.ops.fma_class, 1);
        assert_eq!(t.ops.iops, 3);
        // Block 1, warp 1 → global threads 96..128.
        assert_eq!(t.accesses[0].addrs[0], 96);
        assert_eq!(t.accesses[0].addrs[31], 127);
        assert_eq!(t.accesses[1].addrs[0], (96 + N) as u32);
        assert!(!t.accesses[0].store);
        assert!(t.accesses[3].store);
    }

    #[test]
    fn reuse_eliminates_register_resident_reload() {
        let t = trace_warp(&Pattern, LaunchConfig::new(1, 32), 0, 0);
        let r = apply_register_reuse(t.accesses.clone(), 16, false);
        // The reload of a[t] hits the window.
        assert_eq!(r.eliminated_loads, 1);
        assert_eq!(r.eliminated_stores, 0);
        assert_eq!(r.kept.len(), 5);
    }

    #[test]
    fn dead_store_elimination_keeps_last_store_only() {
        let t = trace_warp(&Pattern, LaunchConfig::new(1, 32), 0, 0);
        let r = apply_register_reuse(t.accesses.clone(), 16, true);
        // Stores to addr t: at indices 2 and 5 → first eliminated.
        assert_eq!(r.eliminated_stores, 1);
        assert_eq!(r.eliminated_loads, 1);
        assert_eq!(r.kept.len(), 4);
    }

    #[test]
    fn zero_capacity_is_identity() {
        let t = trace_warp(&Pattern, LaunchConfig::new(1, 32), 0, 0);
        let n = t.accesses.len();
        let r = apply_register_reuse(t.accesses, 0, false);
        assert_eq!(r.kept.len(), n);
        assert_eq!(r.eliminated_loads, 0);
    }

    #[test]
    fn lru_evicts_oldest() {
        // Stream: load A, load B, load C with capacity 2, then reload A
        // (must miss: evicted), reload C (must hit).
        let acc = |addr: u32, store: bool| WarpAccess {
            store,
            addrs: vec![addr; 32],
        };
        let stream = vec![
            acc(10, false),
            acc(20, false),
            acc(30, false),
            acc(10, false),
            acc(30, false),
        ];
        let r = apply_register_reuse(stream, 2, false);
        assert_eq!(r.eliminated_loads, 1); // only the reload of 30
        assert_eq!(r.kept.len(), 4);
    }

    #[test]
    fn flop_accounting() {
        let ops = OpCounts {
            fma_class: 10,
            div: 2,
            sqrt: 1,
            rcp: 3,
            iops: 5,
            loads: 4,
            stores: 4,
        };
        assert_eq!(ops.flops(), 16);
        assert_eq!(ops.total(), 29);
    }
}
