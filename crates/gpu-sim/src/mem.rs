//! Shared global-memory buffer for parallel functional execution.

use std::cell::UnsafeCell;

/// Global memory shared across rayon workers. Soundness rests on the
/// launch contract that distinct blocks/threads touch disjoint addresses.
pub(crate) struct SharedMem<'a> {
    data: &'a [UnsafeCell<f32>],
}

unsafe impl Sync for SharedMem<'_> {}

impl<'a> SharedMem<'a> {
    pub(crate) fn new(slice: &'a mut [f32]) -> Self {
        // SAFETY: UnsafeCell<f32> is layout-compatible with f32 and we own
        // the unique borrow for 'a.
        let data = unsafe { &*(slice as *mut [f32] as *const [UnsafeCell<f32>]) };
        SharedMem { data }
    }

    /// # Safety
    /// No concurrent writer to `addr`.
    #[inline]
    pub(crate) unsafe fn read(&self, addr: usize) -> f32 {
        unsafe { *self.data[addr].get() }
    }

    /// # Safety
    /// No concurrent reader or writer of `addr`.
    #[inline]
    pub(crate) unsafe fn write(&self, addr: usize, v: f32) {
        unsafe { *self.data[addr].get() = v };
    }
}
