//! A set-associative LRU cache model, used for the L2 slice a warp's
//! stream effectively owns.

/// Set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    /// Per-set vector of (tag, last-use stamp).
    sets: Vec<Vec<(u64, u64)>>,
    ways: usize,
    line_bytes: u64,
    num_sets: u64,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// A cache of `bytes` capacity, `line_bytes` lines, `ways`-way
    /// associative. Capacity is rounded down to a whole number of sets; a
    /// capacity smaller than one line degenerates to a single-line cache.
    pub fn new(bytes: u64, line_bytes: u32, ways: u32) -> Self {
        let line_bytes = line_bytes.max(1) as u64;
        let ways = ways.max(1) as usize;
        let lines = (bytes / line_bytes).max(1);
        let num_sets = (lines / ways as u64).max(1);
        Cache {
            sets: vec![Vec::with_capacity(ways); num_sets as usize],
            ways,
            line_bytes,
            num_sets,
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses the line containing `byte_addr`; returns `true` on hit.
    pub fn access(&mut self, byte_addr: u64) -> bool {
        self.stamp += 1;
        let line = byte_addr / self.line_bytes;
        let set = (line % self.num_sets) as usize;
        let tag = line / self.num_sets;
        let entries = &mut self.sets[set];
        if let Some(e) = entries.iter_mut().find(|e| e.0 == tag) {
            e.1 = self.stamp;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if entries.len() < self.ways {
            entries.push((tag, self.stamp));
        } else {
            let victim = entries
                .iter_mut()
                .min_by_key(|e| e.1)
                .expect("full set has entries");
            *victim = (tag, self.stamp);
        }
        false
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in [0, 1]; 0 for an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = Cache::new(4096, 128, 4);
        assert!(!c.access(0));
        assert!(c.access(64)); // same 128-byte line
        assert!(!c.access(128));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn hits_never_exceed_accesses() {
        let mut c = Cache::new(1024, 32, 2);
        for i in 0..1000u64 {
            c.access((i * 7919) % 65536);
        }
        assert_eq!(c.hits() + c.misses(), 1000);
        assert!(c.hit_rate() <= 1.0);
    }

    #[test]
    fn working_set_within_capacity_hits_on_second_pass() {
        let mut c = Cache::new(8192, 128, 8);
        // 64 lines = exactly the capacity; direct sweep is conflict-free
        // because consecutive lines map to consecutive sets.
        for line in 0..64u64 {
            c.access(line * 128);
        }
        let misses_first = c.misses();
        for line in 0..64u64 {
            assert!(c.access(line * 128), "line {line} should hit");
        }
        assert_eq!(c.misses(), misses_first);
    }

    #[test]
    fn streaming_larger_than_capacity_thrashes() {
        let mut c = Cache::new(1024, 128, 1); // 8 lines, direct mapped
        for pass in 0..2 {
            for line in 0..64u64 {
                let hit = c.access(line * 128);
                assert!(!hit, "pass {pass} line {line}");
            }
        }
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn lru_within_set() {
        // 2-way, single set: lines A, B, C → A evicted.
        let mut c = Cache::new(256, 128, 2);
        c.access(0); // A
        c.access(128); // B
        c.access(256); // C evicts A
        assert!(!c.access(0), "A was evicted");
        assert!(c.access(256), "C resident");
    }

    #[test]
    fn degenerate_tiny_cache() {
        let mut c = Cache::new(16, 128, 4); // smaller than one line
        assert!(!c.access(0));
        assert!(c.access(4));
    }
}
