//! Two-phase timing pipeline: structural [`TracePlan`]s and cheap pricing.
//!
//! The fused model in [`crate::timing`] retraced a warp and re-ran the
//! register-reuse and coalescing passes for every `(config, spec, batch)`
//! point, even though those passes depend only on the instruction stream.
//! This module splits the pipeline:
//!
//! * **Plan** ([`build_plan`]): everything structural — the traced op
//!   counts, the register-reuse/dead-store pass, and the per-access
//!   coalescing breakdown (transactions, sectors-per-line, distinct cache
//!   lines). A plan is computed once per distinct instruction stream and is
//!   immutable thereafter.
//! * **Price** ([`price`]): everything that depends on the [`GpuSpec`],
//!   launch shape, or `fast_math` — the L2/DRAM replay, op costs, spills,
//!   instruction-cache penalty, occupancy, and wave scaling. Pricing reads
//!   the plan without re-tracing, so it is cheap enough to run thousands of
//!   times per second in an autotuning sweep.
//!
//! [`TraceCache`] memoizes plans across a sweep under a caller-chosen
//! structural key, with FIFO eviction and hit/miss/time counters that the
//! sweep report surfaces.
//!
//! The split is bitwise-faithful: `price(&build_plan(trace, …), ctx)`
//! performs the exact floating-point operation sequence of the old fused
//! path, so timings (and therefore every autotuned decision) are unchanged.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::cache::Cache;
use crate::coalesce::coalesce;
use crate::dram::RowBufferModel;
use crate::kernel::{KernelStatics, LaunchConfig, ThreadKernel};
use crate::occupancy::occupancy;
use crate::report::{Bottleneck, KernelTiming};
use crate::spec::GpuSpec;
use crate::trace::{apply_register_reuse, trace_warp, OpCounts, WarpTrace};

/// Structural inputs a plan needs from the target GPU. Two specs that agree
/// on these fields produce identical plans, so they belong in any cache key
/// alongside the kernel-shape parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanParams {
    /// Cache-line size used for coalescing (bytes).
    pub line_bytes: u32,
    /// DRAM sector size used for coalescing (bytes).
    pub sector_bytes: u32,
    /// Ablation: skip the register-reuse window and dead-store elimination.
    pub disable_reg_reuse: bool,
}

impl PlanParams {
    /// Extracts the structural subset of `spec`.
    pub fn from_spec(spec: &GpuSpec, disable_reg_reuse: bool) -> Self {
        PlanParams {
            line_bytes: spec.line_bytes,
            sector_bytes: spec.sector_bytes,
            disable_reg_reuse,
        }
    }
}

/// One warp access after register reuse and coalescing: everything pricing
/// needs to replay it through the L2 and DRAM models.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedAccess {
    /// Whether the access is a store (write-through in this model).
    pub store: bool,
    /// Memory transactions the access issues (distinct lines touched).
    pub transactions: u32,
    /// Average DRAM sectors per touched line, as the fused model computed
    /// it: `max(sectors / max(transactions, 1), 1)`.
    pub sectors_per_line: f64,
    /// Distinct cache-line indices touched, sorted ascending.
    pub lines: Vec<u64>,
}

/// The structural half of a kernel timing: one traced warp reduced to the
/// data pricing needs. Independent of [`GpuSpec`] pricing constants, launch
/// grid, batch, and `fast_math`.
#[derive(Debug, Clone, PartialEq)]
pub struct TracePlan {
    /// Per-warp op counts of the traced warp.
    pub ops: OpCounts,
    /// The kernel's static resource estimates.
    pub statics: KernelStatics,
    /// The structural parameters the plan was built under.
    pub params: PlanParams,
    /// Accesses surviving the register-reuse pass, coalesced.
    pub accesses: Vec<PlannedAccess>,
    /// Total transactions across all surviving accesses.
    pub total_transactions: u64,
    /// Loads removed by the register-reuse window.
    pub eliminated_loads: u64,
    /// Stores removed by dead-store elimination.
    pub eliminated_stores: u64,
    /// Shared-memory replay instructions (block kernels only; 0 otherwise).
    pub shared_replays: f64,
    /// `__syncthreads()` barriers (block kernels only; 0 otherwise).
    pub syncs: u64,
}

impl TracePlan {
    /// Attaches block-kernel extras (bank-conflict replays and barriers)
    /// that the pricing pass charges on top of compute issue.
    pub fn with_block_extras(mut self, shared_replays: f64, syncs: u64) -> Self {
        self.shared_replays = shared_replays;
        self.syncs = syncs;
        self
    }
}

/// The pricing-dependent half of a timed launch: everything that may vary
/// between sweep points sharing one instruction stream.
#[derive(Debug, Clone, Copy)]
pub struct PricingCtx<'a> {
    /// Target GPU constants (op costs, bandwidths, occupancy limits, …).
    pub spec: &'a GpuSpec,
    /// Launch shape; scales the traced warp to the full grid.
    pub launch: LaunchConfig,
    /// Price divides/square roots/reciprocals at fast-math cost.
    pub fast_math: bool,
}

/// Reduces a traced warp to its structural plan: applies the
/// register-reuse/dead-store pass and coalesces every surviving access.
pub fn build_plan(trace: &WarpTrace, statics: KernelStatics, params: PlanParams) -> TracePlan {
    let (capacity, dse) = if params.disable_reg_reuse {
        (0, false)
    } else {
        (statics.reg_reuse_capacity, statics.dead_store_elim)
    };
    let reused = apply_register_reuse(trace.accesses.clone(), capacity, dse);

    let mut total_transactions = 0u64;
    let mut accesses = Vec::with_capacity(reused.kept.len());
    for access in &reused.kept {
        let c = coalesce(access, 4, params.line_bytes, params.sector_bytes);
        total_transactions += c.transactions as u64;
        let mut lines: Vec<u64> = access
            .addrs
            .iter()
            .map(|&a| (a as u64 * 4) / params.line_bytes as u64)
            .collect();
        lines.sort_unstable();
        lines.dedup();
        let sectors_per_line = (c.sectors as f64 / c.transactions.max(1) as f64).max(1.0);
        accesses.push(PlannedAccess {
            store: access.store,
            transactions: c.transactions,
            sectors_per_line,
            lines,
        });
    }

    TracePlan {
        ops: trace.ops,
        statics,
        params,
        accesses,
        total_transactions,
        eliminated_loads: reused.eliminated_loads,
        eliminated_stores: reused.eliminated_stores,
        shared_replays: 0.0,
        syncs: 0,
    }
}

/// Traces one representative warp of `kernel` and reduces it to a plan.
pub fn plan_thread_kernel<K: ThreadKernel>(
    kernel: &K,
    launch: LaunchConfig,
    params: PlanParams,
) -> TracePlan {
    let trace = trace_warp(kernel, launch, 0, 0);
    build_plan(&trace, kernel.statics(), params)
}

/// Prices arithmetic issue cycles (SM-cycles per warp).
pub(crate) fn compute_cycles(ops: &OpCounts, spec: &GpuSpec, fast_math: bool) -> f64 {
    let c = &spec.costs;
    ops.fma_class as f64 * c.fma
        + ops.div as f64 * c.div(fast_math)
        + ops.sqrt as f64 * c.sqrt(fast_math)
        + ops.rcp as f64 * c.rcp(fast_math)
        + ops.iops as f64 * c.iop
}

/// Prices a plan on a concrete GPU and launch: replays the planned accesses
/// through the L2/DRAM models, charges op/spill/icache costs, and scales by
/// occupancy and wave quantization.
///
/// # Panics
/// In debug builds, if `ctx.spec` disagrees with the plan's structural
/// [`PlanParams`] — such a spec needs its own plan.
pub fn price(plan: &TracePlan, ctx: &PricingCtx<'_>) -> KernelTiming {
    let spec = ctx.spec;
    let launch = ctx.launch;
    debug_assert_eq!(
        spec.line_bytes, plan.params.line_bytes,
        "plan built for a different line size"
    );
    debug_assert_eq!(
        spec.sector_bytes, plan.params.sector_bytes,
        "plan built for a different sector size"
    );
    let statics = &plan.statics;
    let warps_total = (launch.total_threads() / spec.warp_size as usize) as f64;

    // -- occupancy (needed early for the L2 share) ------------------------
    let occ = occupancy(
        spec,
        launch.block,
        statics.regs_per_thread,
        statics.shared_bytes_per_block,
    );
    let blocks_per_wave = (occ.blocks_per_sm as u64) * spec.sms as u64;
    let waves = (launch.grid as u64).div_ceil(blocks_per_wave);
    // SM load imbalance: every SM processes ceil(grid/sms) blocks' worth of
    // issue slots in the worst case; SMs are idle only in the ragged tail.
    let block_rounds = (launch.grid as u64).div_ceil(spec.sms as u64);
    let utilization = launch.grid as f64 / (block_rounds * spec.sms as u64) as f64;

    // Active warps across the GPU share the L2.
    let active_warps_gpu = (occ.warps_per_sm as u64 * spec.sms as u64)
        .min(warps_total as u64)
        .max(1);
    let l2_share = (spec.l2_bytes / active_warps_gpu).max(spec.l2_line_bytes as u64);
    let mut l2 = Cache::new(l2_share, spec.l2_line_bytes, spec.l2_ways.min(4));
    let mut rows = RowBufferModel::new(spec.dram_row_bytes, spec.dram_open_rows);

    // -- memory pipeline: replay the planned accesses ----------------------
    let mut lsu_cycles = 0.0f64;
    let mut dram_sectors = 0u64;
    for access in &plan.accesses {
        lsu_cycles += access.transactions as f64 * spec.costs.lsu_per_transaction;
        // Unique lines through L2; misses contribute sectors to DRAM.
        for &line in &access.lines {
            let byte = line * spec.line_bytes as u64;
            let hit = l2.access(byte);
            if !hit || access.store {
                // Stores are write-through to DRAM in this model.
                dram_sectors += access.sectors_per_line.round() as u64;
                rows.access(byte);
            }
        }
    }

    // -- spills ------------------------------------------------------------
    let max_regs = spec.max_regs_per_thread;
    let spill_regs = statics.regs_per_thread.saturating_sub(max_regs) as u64;
    // Each spilled value makes `spill_reuse_factor` store+reload round
    // trips per thread; local memory is lane-interleaved, hence coalesced.
    let spill_accesses_per_warp = (spill_regs as f64 * spec.spill_reuse_factor * 2.0).round();
    lsu_cycles += spill_accesses_per_warp * spec.costs.lsu_per_transaction;
    let spill_bytes_per_warp = spill_accesses_per_warp * 32.0 * 4.0;
    let spill_bytes = (spill_bytes_per_warp * warps_total) as u64;

    // -- instruction cache --------------------------------------------------
    let code_bytes = statics.static_instrs * spec.instr_bytes as u64;
    let icache_penalty = if code_bytes > spec.icache_bytes as u64 {
        1.0 + spec.icache_beta * (code_bytes as f64 / spec.icache_bytes as f64).log2()
    } else {
        1.0
    };

    // -- arithmetic ---------------------------------------------------------
    let comp_cycles = compute_cycles(&plan.ops, spec, ctx.fast_math) * icache_penalty;
    let lsu_cycles = lsu_cycles * icache_penalty;

    // -- assemble -----------------------------------------------------------
    let clock = spec.clock_hz();
    let sms = spec.sms as f64;
    let compute_time_s = comp_cycles * warps_total / sms / clock / utilization;
    let lsu_time_s = lsu_cycles * warps_total / sms / clock / utilization;

    // The traced warp's sectors scale to the whole launch.
    let dram_bytes =
        dram_sectors as f64 * spec.sector_bytes as f64 * warps_total + spill_bytes as f64;
    let dram_eff = rows.efficiency(spec.dram_row_miss_penalty);
    let dram_time_s = dram_bytes / (spec.dram_gbps * 1e9 * dram_eff);

    let (time_s, bottleneck) = if compute_time_s >= lsu_time_s && compute_time_s >= dram_time_s {
        (compute_time_s, Bottleneck::Compute)
    } else if lsu_time_s >= dram_time_s {
        (lsu_time_s, Bottleneck::Lsu)
    } else {
        (dram_time_s, Bottleneck::Dram)
    };

    let mut timing = KernelTiming {
        time_s,
        compute_time_s,
        lsu_time_s,
        dram_time_s,
        bottleneck,
        dram_bytes: dram_bytes as u64,
        row_hit_rate: rows.hit_rate(),
        l2_hit_rate: l2.hit_rate(),
        transactions_per_access: if plan.accesses.is_empty() {
            0.0
        } else {
            plan.total_transactions as f64 / plan.accesses.len() as f64
        },
        reg_reuse_eliminated_loads: plan.eliminated_loads,
        eliminated_stores: plan.eliminated_stores,
        spill_bytes,
        code_bytes,
        icache_penalty,
        occupancy: occ,
        waves,
        utilization,
        flops_per_thread: plan.ops.flops(),
    };

    // Block-kernel extras: shared-memory replays and barriers on top of
    // compute issue. Gated so the thread-kernel path is untouched.
    if plan.syncs != 0 || plan.shared_replays != 0.0 {
        let extra =
            plan.shared_replays * spec.costs.shared_access + plan.syncs as f64 * spec.costs.sync;
        let extra_s = extra * warps_total / sms / clock / timing.utilization;
        timing.compute_time_s += extra_s;
        timing.time_s = timing
            .compute_time_s
            .max(timing.lsu_time_s)
            .max(timing.dram_time_s);
    }
    timing
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

/// Counter snapshot of a [`TraceCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build a plan.
    pub misses: u64,
    /// Wall-clock nanoseconds spent building plans (misses only).
    pub plan_ns: u64,
    /// Wall-clock nanoseconds spent pricing, as reported by callers via
    /// [`TraceCache::record_price_ns`].
    pub price_ns: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

struct CacheInner<K> {
    map: HashMap<K, Arc<TracePlan>>,
    order: VecDeque<K>,
}

/// A concurrent, bounded memo of [`TracePlan`]s keyed by the caller's
/// structural key (e.g. the structural subset of a kernel config).
///
/// Eviction is FIFO by insertion order, which matches sweep access
/// patterns: a sweep visits each structural class in a burst and rarely
/// returns to it after moving on. Counters are lock-free; the map itself is
/// a mutex — plan construction happens *outside* the lock, so concurrent
/// sweep workers never serialize on a trace.
pub struct TraceCache<K> {
    inner: Mutex<CacheInner<K>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    plan_ns: AtomicU64,
    price_ns: AtomicU64,
}

impl<K> TraceCache<K> {
    /// A cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        TraceCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            plan_ns: AtomicU64::new(0),
            price_ns: AtomicU64::new(0),
        }
    }

    /// Adds pricing wall-clock time to the stats (pricing happens outside
    /// the cache, so callers report it).
    pub fn record_price_ns(&self, ns: u64) {
        self.price_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Snapshot of the hit/miss/time counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            plan_ns: self.plan_ns.load(Ordering::Relaxed),
            price_ns: self.price_ns.load(Ordering::Relaxed),
        }
    }

    /// Plans currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every resident plan (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.map.clear();
        inner.order.clear();
    }
}

impl<K: Hash + Eq + Clone> TraceCache<K> {
    /// Returns the plan for `key`, building (and timing) it with `build` on
    /// a miss. Construction runs outside the lock; if two threads race on
    /// the same key, both build and one result is kept — plans are pure
    /// functions of the key, so either is correct.
    pub fn get_or_build<F: FnOnce() -> TracePlan>(&self, key: K, build: F) -> Arc<TracePlan> {
        if let Some(plan) = self.inner.lock().unwrap().map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(plan);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let built = Arc::new(build());
        self.plan_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);

        let mut inner = self.inner.lock().unwrap();
        if let Some(existing) = inner.map.get(&key) {
            return Arc::clone(existing);
        }
        while inner.map.len() >= self.capacity {
            match inner.order.pop_front() {
                Some(old) => {
                    inner.map.remove(&old);
                }
                None => break,
            }
        }
        inner.map.insert(key.clone(), Arc::clone(&built));
        inner.order.push_back(key);
        built
    }
}

impl<K> Default for TraceCache<K> {
    /// A cache sized for full autotuning sweeps (4096 structural classes).
    fn default() -> Self {
        TraceCache::new(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelCtx;
    use crate::timing::{time_thread_kernel, TimingOptions};

    /// Strided load/store kernel with some arithmetic, enough to exercise
    /// every pricing stage.
    struct Probe {
        stride: usize,
    }

    impl ThreadKernel for Probe {
        fn run<C: KernelCtx>(&self, ctx: &mut C) {
            let g = ctx.thread().global();
            let mut acc = 0.0;
            for i in 0..24 {
                let v = ctx.ld(i * self.stride + g);
                acc = ctx.fma(acc, v, 1.0);
            }
            let d = ctx.div(acc, 3.0);
            let s = ctx.sqrt(d);
            ctx.st(self.stride + g, s);
        }
        fn statics(&self) -> KernelStatics {
            KernelStatics {
                regs_per_thread: 48,
                static_instrs: 900,
                reg_reuse_capacity: 4,
                dead_store_elim: true,
                shared_bytes_per_block: 0,
            }
        }
    }

    fn timings_equal(a: &KernelTiming, b: &KernelTiming) -> bool {
        // Debug formatting covers every field, including nested occupancy.
        format!("{a:?}") == format!("{b:?}")
    }

    #[test]
    fn split_matches_fused_path_bitwise() {
        let spec = GpuSpec::p100();
        for stride in [1usize, 37, 512, 1 << 16] {
            for fast_math in [false, true] {
                for disable in [false, true] {
                    let k = Probe { stride };
                    let launch = LaunchConfig::new(96, 64);
                    let opts = TimingOptions {
                        fast_math,
                        disable_reg_reuse: disable,
                    };
                    let fused = time_thread_kernel(&k, launch, &spec, opts);
                    let plan =
                        plan_thread_kernel(&k, launch, PlanParams::from_spec(&spec, disable));
                    let priced = price(
                        &plan,
                        &PricingCtx {
                            spec: &spec,
                            launch,
                            fast_math,
                        },
                    );
                    assert!(
                        timings_equal(&fused, &priced),
                        "stride {stride} fast {fast_math} disable {disable}:\n{fused:?}\nvs\n{priced:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn one_plan_prices_many_launches() {
        let spec = GpuSpec::p100();
        let k = Probe { stride: 64 };
        let plan = plan_thread_kernel(
            &k,
            LaunchConfig::new(16, 32),
            PlanParams::from_spec(&spec, false),
        );
        for grid in [16, 64, 1024] {
            for block in [32, 128] {
                let launch = LaunchConfig::new(grid, block);
                let fused = time_thread_kernel(&k, launch, &spec, TimingOptions::default());
                let priced = price(
                    &plan,
                    &PricingCtx {
                        spec: &spec,
                        launch,
                        fast_math: false,
                    },
                );
                assert!(
                    timings_equal(&fused, &priced),
                    "grid {grid} block {block} diverged"
                );
            }
        }
    }

    #[test]
    fn cache_hits_return_identical_timings() {
        let spec = GpuSpec::p100();
        let cache: TraceCache<u64> = TraceCache::new(16);
        let k = Probe { stride: 512 };
        let launch = LaunchConfig::new(64, 32);
        let params = PlanParams::from_spec(&spec, false);
        let ctx = PricingCtx {
            spec: &spec,
            launch,
            fast_math: false,
        };

        let miss = price(
            &cache.get_or_build(7, || plan_thread_kernel(&k, launch, params)),
            &ctx,
        );
        let hit = price(
            &cache.get_or_build(7, || plan_thread_kernel(&k, launch, params)),
            &ctx,
        );
        assert!(timings_equal(&miss, &hit));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn cache_is_bounded_fifo() {
        let cache: TraceCache<u32> = TraceCache::new(2);
        let plan = || {
            build_plan(
                &WarpTrace {
                    ops: OpCounts::default(),
                    accesses: Vec::new(),
                },
                KernelStatics::streaming(16, 64),
                PlanParams {
                    line_bytes: 128,
                    sector_bytes: 32,
                    disable_reg_reuse: false,
                },
            )
        };
        cache.get_or_build(1, plan);
        cache.get_or_build(2, plan);
        cache.get_or_build(3, plan); // evicts key 1
        assert_eq!(cache.len(), 2);
        cache.get_or_build(1, plan); // miss again
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(cache.stats().hits, 0);
        cache.get_or_build(3, plan);
        assert_eq!(cache.stats().hits, 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn price_time_is_recorded() {
        let cache: TraceCache<u32> = TraceCache::new(4);
        cache.record_price_ns(1234);
        assert_eq!(cache.stats().price_ns, 1234);
    }
}
