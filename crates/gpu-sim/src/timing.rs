//! The throughput timing model: assembles a [`KernelTiming`] from one
//! traced warp plus the kernel's static resource estimates.
//!
//! The model follows the standard GPU throughput-simulator recipe:
//!
//! 1. trace one representative warp (all warps are identical for batch
//!    kernels over same-size matrices);
//! 2. apply the register-reuse window of unrolled code;
//! 3. coalesce each surviving access into transactions and sectors;
//! 4. filter sectors through an L2 slice and a DRAM row-buffer model;
//! 5. price arithmetic with per-op costs (IEEE vs `--use_fast_math`);
//! 6. scale to the full grid via occupancy and wave quantization;
//! 7. runtime = max(compute issue, LSU issue, DRAM transfer).
//!
//! Since the two-phase split, steps 2–3 live in the structural *plan*
//! ([`crate::plan::build_plan`]) and steps 4–7 in the *price* pass
//! ([`crate::plan::price`]); the entry points here are thin wrappers kept
//! for compatibility and convenience.

use crate::kernel::{KernelStatics, LaunchConfig, ThreadKernel};
use crate::plan::{build_plan, price, PlanParams, PricingCtx};
use crate::report::KernelTiming;
use crate::spec::GpuSpec;
use crate::trace::{trace_warp, WarpTrace};

/// Options of a timed launch.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimingOptions {
    /// Price divides/square roots/reciprocals at fast-math cost.
    pub fast_math: bool,
    /// Ablation: ignore the kernel's register-reuse window and dead-store
    /// elimination (model a compiler that cannot forward values across
    /// tile operations of unrolled code).
    pub disable_reg_reuse: bool,
}

/// Times a [`ThreadKernel`] launch on `spec`.
pub fn time_thread_kernel<K: ThreadKernel>(
    kernel: &K,
    launch: LaunchConfig,
    spec: &GpuSpec,
    opts: TimingOptions,
) -> KernelTiming {
    let trace = trace_warp(kernel, launch, 0, 0);
    let statics = kernel.statics();
    time_from_trace(&trace, &statics, launch, spec, opts)
}

/// Assembles the timing report from a pre-computed warp trace. Exposed so
/// block-kernel timing (which builds traces differently) can share the
/// back end.
///
/// Thin wrapper over the two-phase pipeline: builds a throwaway
/// [`crate::plan::TracePlan`] and prices it. Callers evaluating many
/// pricing points per instruction stream should build the plan once (or
/// use a [`crate::plan::TraceCache`]) and call [`price`] directly.
pub fn time_from_trace(
    trace: &WarpTrace,
    statics: &KernelStatics,
    launch: LaunchConfig,
    spec: &GpuSpec,
    opts: TimingOptions,
) -> KernelTiming {
    let plan = build_plan(
        trace,
        *statics,
        PlanParams::from_spec(spec, opts.disable_reg_reuse),
    );
    price(
        &plan,
        &PricingCtx {
            spec,
            launch,
            fast_math: opts.fast_math,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KernelCtx, KernelStatics};
    use crate::report::Bottleneck;

    /// Streaming kernel: each thread reads `per_thread` consecutive-plane
    /// elements (interleaved batch pattern) and writes them back.
    struct Stream {
        per_thread: usize,
        plane_stride: usize,
        statics: KernelStatics,
        arithmetic: bool,
    }

    impl ThreadKernel for Stream {
        fn run<C: KernelCtx>(&self, ctx: &mut C) {
            let g = ctx.thread().global();
            for i in 0..self.per_thread {
                let a = i * self.plane_stride + g;
                let v = ctx.ld(a);
                let v = if self.arithmetic {
                    let mut acc = v;
                    for _ in 0..20 {
                        acc = ctx.fma(acc, 1.0001, 0.5);
                    }
                    let d = ctx.div(acc, 3.0);
                    ctx.sqrt(d)
                } else {
                    v
                };
                ctx.st(a, v);
            }
        }
        fn statics(&self) -> KernelStatics {
            self.statics
        }
    }

    fn stream(per_thread: usize, plane_stride: usize, arithmetic: bool) -> Stream {
        Stream {
            per_thread,
            plane_stride,
            statics: KernelStatics::streaming(32, 256),
            arithmetic,
        }
    }

    #[test]
    fn pure_streaming_is_dram_bound_near_peak() {
        let spec = GpuSpec::p100();
        // Warp-dense stream (plane stride = warp width): 512 blocks × 256
        // threads × 64 elements × 8 B (R+W).
        let k = stream(64, 32, false);
        let launch = LaunchConfig::new(512, 256);
        let t = time_thread_kernel(&k, launch, &spec, TimingOptions::default());
        assert_eq!(t.bottleneck, Bottleneck::Dram);
        let bytes = 512.0 * 256.0 * 64.0 * 8.0;
        let achieved = bytes / t.time_s / 1e9;
        // Unit-stride stream: should achieve most of the 732 GB/s peak.
        assert!(achieved > 0.85 * spec.dram_gbps, "achieved {achieved} GB/s");
        assert!(achieved <= spec.dram_gbps + 1.0);
    }

    #[test]
    fn strided_stream_loses_row_locality() {
        let spec = GpuSpec::p100();
        let near = time_thread_kernel(
            &stream(64, 32, false), // 128-byte plane stride: dense
            LaunchConfig::new(64, 32),
            &spec,
            TimingOptions::default(),
        );
        let far = time_thread_kernel(
            &stream(64, 1 << 20, false), // 4 MiB stride: every access a new row
            LaunchConfig::new(64, 32),
            &spec,
            TimingOptions::default(),
        );
        assert!(
            near.row_hit_rate > 0.9,
            "near hit rate {}",
            near.row_hit_rate
        );
        // The store of each load/store pair hits the row its load opened,
        // so the floor is 0.5, not 0.
        assert!(far.row_hit_rate < 0.55, "far hit rate {}", far.row_hit_rate);
        assert!(far.dram_time_s > near.dram_time_s * 1.5);
    }

    #[test]
    fn fast_math_speeds_up_compute_bound_kernels() {
        let spec = GpuSpec::p100();
        let k = stream(16, 64 * 32, true);
        let launch = LaunchConfig::new(64, 32);
        let ieee = time_thread_kernel(
            &k,
            launch,
            &spec,
            TimingOptions {
                fast_math: false,
                ..Default::default()
            },
        );
        let fast = time_thread_kernel(
            &k,
            launch,
            &spec,
            TimingOptions {
                fast_math: true,
                ..Default::default()
            },
        );
        assert_eq!(ieee.bottleneck, Bottleneck::Compute);
        assert!(fast.compute_time_s < ieee.compute_time_s * 0.7);
    }

    #[test]
    fn wave_quantization_penalizes_tiny_grids() {
        let spec = GpuSpec::p100();
        let k = stream(64, 1 << 22, true);
        // 32 blocks on 56 SMs: utilization 32/56.
        let t = time_thread_kernel(
            &k,
            LaunchConfig::new(32, 512),
            &spec,
            TimingOptions::default(),
        );
        assert_eq!(t.waves, 1);
        assert!((t.utilization - 32.0 / 56.0 / t.occupancy.blocks_per_sm as f64).abs() < 1.0);
        assert!(t.utilization < 0.6);
    }

    #[test]
    fn icache_penalty_applies_to_huge_kernels() {
        let spec = GpuSpec::p100();
        let mut k = stream(16, 512, true);
        k.statics.static_instrs = 40_000; // 320 KB of code
        let big = time_thread_kernel(
            &k,
            LaunchConfig::new(64, 32),
            &spec,
            TimingOptions::default(),
        );
        assert!(big.icache_penalty > 1.2, "penalty {}", big.icache_penalty);
        k.statics.static_instrs = 500;
        let small = time_thread_kernel(
            &k,
            LaunchConfig::new(64, 32),
            &spec,
            TimingOptions::default(),
        );
        assert_eq!(small.icache_penalty, 1.0);
        assert!(big.compute_time_s > small.compute_time_s);
    }

    #[test]
    fn spills_add_traffic() {
        let spec = GpuSpec::p100();
        let mut k = stream(16, 512, false);
        k.statics.regs_per_thread = 300; // 45 over the limit
        let t = time_thread_kernel(
            &k,
            LaunchConfig::new(64, 32),
            &spec,
            TimingOptions::default(),
        );
        assert!(t.spill_bytes > 0);
        let mut k2 = stream(16, 512, false);
        k2.statics.regs_per_thread = 64;
        let t2 = time_thread_kernel(
            &k2,
            LaunchConfig::new(64, 32),
            &spec,
            TimingOptions::default(),
        );
        assert_eq!(t2.spill_bytes, 0);
        assert!(t.dram_bytes > t2.dram_bytes);
    }

    #[test]
    fn register_reuse_window_cuts_dram_traffic() {
        let spec = GpuSpec::p100();
        // Kernel that re-reads the same element many times.
        struct Reread;
        impl ThreadKernel for Reread {
            fn run<C: KernelCtx>(&self, ctx: &mut C) {
                let g = ctx.thread().global();
                let mut acc = 0.0;
                for _ in 0..64 {
                    let v = ctx.ld(g);
                    acc = ctx.add(acc, v);
                }
                ctx.st(g, acc);
            }
            fn statics(&self) -> KernelStatics {
                KernelStatics {
                    regs_per_thread: 32,
                    static_instrs: 600,
                    reg_reuse_capacity: 8,
                    dead_store_elim: false,
                    shared_bytes_per_block: 0,
                }
            }
        }
        let t = time_thread_kernel(
            &Reread,
            LaunchConfig::new(8, 32),
            &spec,
            TimingOptions::default(),
        );
        assert_eq!(t.reg_reuse_eliminated_loads, 63);
    }
}
