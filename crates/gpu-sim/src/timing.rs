//! The throughput timing model: assembles a [`KernelTiming`] from one
//! traced warp plus the kernel's static resource estimates.
//!
//! The model follows the standard GPU throughput-simulator recipe:
//!
//! 1. trace one representative warp (all warps are identical for batch
//!    kernels over same-size matrices);
//! 2. apply the register-reuse window of unrolled code;
//! 3. coalesce each surviving access into transactions and sectors;
//! 4. filter sectors through an L2 slice and a DRAM row-buffer model;
//! 5. price arithmetic with per-op costs (IEEE vs `--use_fast_math`);
//! 6. scale to the full grid via occupancy and wave quantization;
//! 7. runtime = max(compute issue, LSU issue, DRAM transfer).

use crate::cache::Cache;
use crate::coalesce::coalesce;
use crate::dram::RowBufferModel;
use crate::kernel::{KernelStatics, LaunchConfig, ThreadKernel};
use crate::occupancy::occupancy;
use crate::report::{Bottleneck, KernelTiming};
use crate::spec::GpuSpec;
use crate::trace::{apply_register_reuse, trace_warp, OpCounts, WarpTrace};

/// Options of a timed launch.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimingOptions {
    /// Price divides/square roots/reciprocals at fast-math cost.
    pub fast_math: bool,
    /// Ablation: ignore the kernel's register-reuse window and dead-store
    /// elimination (model a compiler that cannot forward values across
    /// tile operations of unrolled code).
    pub disable_reg_reuse: bool,
}

/// Times a [`ThreadKernel`] launch on `spec`.
pub fn time_thread_kernel<K: ThreadKernel>(
    kernel: &K,
    launch: LaunchConfig,
    spec: &GpuSpec,
    opts: TimingOptions,
) -> KernelTiming {
    let trace = trace_warp(kernel, launch, 0, 0);
    let statics = kernel.statics();
    time_from_trace(&trace, &statics, launch, spec, opts)
}

/// Prices arithmetic issue cycles (SM-cycles per warp).
fn compute_cycles(ops: &OpCounts, spec: &GpuSpec, fast_math: bool) -> f64 {
    let c = &spec.costs;
    ops.fma_class as f64 * c.fma
        + ops.div as f64 * c.div(fast_math)
        + ops.sqrt as f64 * c.sqrt(fast_math)
        + ops.rcp as f64 * c.rcp(fast_math)
        + ops.iops as f64 * c.iop
}

/// Assembles the timing report from a pre-computed warp trace. Exposed so
/// block-kernel timing (which builds traces differently) can share the
/// back end.
pub fn time_from_trace(
    trace: &WarpTrace,
    statics: &KernelStatics,
    launch: LaunchConfig,
    spec: &GpuSpec,
    opts: TimingOptions,
) -> KernelTiming {
    let warps_total = (launch.total_threads() / spec.warp_size as usize) as f64;

    // -- register-reuse / dead-store pass ---------------------------------
    let (capacity, dse) = if opts.disable_reg_reuse {
        (0, false)
    } else {
        (statics.reg_reuse_capacity, statics.dead_store_elim)
    };
    let reused = apply_register_reuse(trace.accesses.clone(), capacity, dse);

    // -- occupancy (needed early for the L2 share) ------------------------
    let occ = occupancy(
        spec,
        launch.block,
        statics.regs_per_thread,
        statics.shared_bytes_per_block,
    );
    let blocks_per_wave = (occ.blocks_per_sm as u64) * spec.sms as u64;
    let waves = (launch.grid as u64).div_ceil(blocks_per_wave);
    // SM load imbalance: every SM processes ceil(grid/sms) blocks' worth of
    // issue slots in the worst case; SMs are idle only in the ragged tail.
    // (Resident-block concurrency affects latency hiding and cache shares,
    // not throughput utilization.)
    let block_rounds = (launch.grid as u64).div_ceil(spec.sms as u64);
    let utilization = launch.grid as f64 / (block_rounds * spec.sms as u64) as f64;

    // Active warps across the GPU share the L2.
    let active_warps_gpu = (occ.warps_per_sm as u64 * spec.sms as u64)
        .min(warps_total as u64)
        .max(1);
    let l2_share = (spec.l2_bytes / active_warps_gpu).max(spec.l2_line_bytes as u64);
    let mut l2 = Cache::new(l2_share, spec.l2_line_bytes, spec.l2_ways.min(4));
    let mut rows = RowBufferModel::new(spec.dram_row_bytes, spec.dram_open_rows);

    // -- memory pipeline ---------------------------------------------------
    let mut lsu_cycles = 0.0f64;
    let mut dram_sectors = 0u64;
    let mut total_transactions = 0u64;
    for access in &reused.kept {
        let c = coalesce(access, 4, spec.line_bytes, spec.sector_bytes);
        total_transactions += c.transactions as u64;
        lsu_cycles += c.transactions as f64 * spec.costs.lsu_per_transaction;
        // Unique lines through L2; misses contribute sectors to DRAM.
        let mut lines: Vec<u64> = access
            .addrs
            .iter()
            .map(|&a| (a as u64 * 4) / spec.line_bytes as u64)
            .collect();
        lines.sort_unstable();
        lines.dedup();
        let sectors_per_line =
            (c.sectors as f64 / c.transactions.max(1) as f64).max(1.0);
        for line in lines {
            let byte = line * spec.line_bytes as u64;
            let hit = l2.access(byte);
            if !hit || access.store {
                // Stores are write-through to DRAM in this model.
                dram_sectors += sectors_per_line.round() as u64;
                rows.access(byte);
            }
        }
    }

    // -- spills ------------------------------------------------------------
    let max_regs = spec.max_regs_per_thread;
    let spill_regs = statics.regs_per_thread.saturating_sub(max_regs) as u64;
    // Each spilled value makes `spill_reuse_factor` store+reload round
    // trips per thread; local memory is lane-interleaved, hence coalesced.
    let spill_accesses_per_warp = (spill_regs as f64 * spec.spill_reuse_factor * 2.0).round();
    lsu_cycles += spill_accesses_per_warp * spec.costs.lsu_per_transaction;
    let spill_bytes_per_warp = spill_accesses_per_warp * 32.0 * 4.0;
    let spill_bytes = (spill_bytes_per_warp * warps_total) as u64;

    // -- instruction cache ---------------------------------------------------
    let code_bytes = statics.static_instrs * spec.instr_bytes as u64;
    let icache_penalty = if code_bytes > spec.icache_bytes as u64 {
        1.0 + spec.icache_beta * (code_bytes as f64 / spec.icache_bytes as f64).log2()
    } else {
        1.0
    };

    // -- arithmetic ----------------------------------------------------------
    let comp_cycles = compute_cycles(&trace.ops, spec, opts.fast_math) * icache_penalty;
    let lsu_cycles = lsu_cycles * icache_penalty;

    // -- assemble ------------------------------------------------------------
    let clock = spec.clock_hz();
    let sms = spec.sms as f64;
    let compute_time_s = comp_cycles * warps_total / sms / clock / utilization;
    let lsu_time_s = lsu_cycles * warps_total / sms / clock / utilization;

    // The traced warp's sectors scale to the whole launch.
    let dram_bytes = dram_sectors as f64 * spec.sector_bytes as f64 * warps_total
        + spill_bytes as f64;
    let dram_eff = rows.efficiency(spec.dram_row_miss_penalty);
    let dram_time_s = dram_bytes / (spec.dram_gbps * 1e9 * dram_eff);

    let (time_s, bottleneck) = if compute_time_s >= lsu_time_s && compute_time_s >= dram_time_s {
        (compute_time_s, Bottleneck::Compute)
    } else if lsu_time_s >= dram_time_s {
        (lsu_time_s, Bottleneck::Lsu)
    } else {
        (dram_time_s, Bottleneck::Dram)
    };

    KernelTiming {
        time_s,
        compute_time_s,
        lsu_time_s,
        dram_time_s,
        bottleneck,
        dram_bytes: dram_bytes as u64,
        row_hit_rate: rows.hit_rate(),
        l2_hit_rate: l2.hit_rate(),
        transactions_per_access: if reused.kept.is_empty() {
            0.0
        } else {
            total_transactions as f64 / reused.kept.len() as f64
        },
        reg_reuse_eliminated_loads: reused.eliminated_loads,
        eliminated_stores: reused.eliminated_stores,
        spill_bytes,
        code_bytes,
        icache_penalty,
        occupancy: occ,
        waves,
        utilization,
        flops_per_thread: trace.ops.flops(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KernelCtx, KernelStatics};

    /// Streaming kernel: each thread reads `per_thread` consecutive-plane
    /// elements (interleaved batch pattern) and writes them back.
    struct Stream {
        per_thread: usize,
        plane_stride: usize,
        statics: KernelStatics,
        arithmetic: bool,
    }

    impl ThreadKernel for Stream {
        fn run<C: KernelCtx>(&self, ctx: &mut C) {
            let g = ctx.thread().global();
            for i in 0..self.per_thread {
                let a = i * self.plane_stride + g;
                let v = ctx.ld(a);
                let v = if self.arithmetic {
                    let mut acc = v;
                    for _ in 0..20 {
                        acc = ctx.fma(acc, 1.0001, 0.5);
                    }
                    let d = ctx.div(acc, 3.0);
                    ctx.sqrt(d)
                } else {
                    v
                };
                ctx.st(a, v);
            }
        }
        fn statics(&self) -> KernelStatics {
            self.statics
        }
    }

    fn stream(per_thread: usize, plane_stride: usize, arithmetic: bool) -> Stream {
        Stream {
            per_thread,
            plane_stride,
            statics: KernelStatics::streaming(32, 256),
            arithmetic,
        }
    }

    #[test]
    fn pure_streaming_is_dram_bound_near_peak() {
        let spec = GpuSpec::p100();
        // Warp-dense stream (plane stride = warp width): 512 blocks × 256
        // threads × 64 elements × 8 B (R+W).
        let k = stream(64, 32, false);
        let launch = LaunchConfig::new(512, 256);
        let t = time_thread_kernel(&k, launch, &spec, TimingOptions::default());
        assert_eq!(t.bottleneck, Bottleneck::Dram);
        let bytes = 512.0 * 256.0 * 64.0 * 8.0;
        let achieved = bytes / t.time_s / 1e9;
        // Unit-stride stream: should achieve most of the 732 GB/s peak.
        assert!(achieved > 0.85 * spec.dram_gbps, "achieved {achieved} GB/s");
        assert!(achieved <= spec.dram_gbps + 1.0);
    }

    #[test]
    fn strided_stream_loses_row_locality() {
        let spec = GpuSpec::p100();
        let near = time_thread_kernel(
            &stream(64, 32, false), // 128-byte plane stride: dense
            LaunchConfig::new(64, 32),
            &spec,
            TimingOptions::default(),
        );
        let far = time_thread_kernel(
            &stream(64, 1 << 20, false), // 4 MiB stride: every access a new row
            LaunchConfig::new(64, 32),
            &spec,
            TimingOptions::default(),
        );
        assert!(near.row_hit_rate > 0.9, "near hit rate {}", near.row_hit_rate);
        // The store of each load/store pair hits the row its load opened,
        // so the floor is 0.5, not 0.
        assert!(far.row_hit_rate < 0.55, "far hit rate {}", far.row_hit_rate);
        assert!(far.dram_time_s > near.dram_time_s * 1.5);
    }

    #[test]
    fn fast_math_speeds_up_compute_bound_kernels() {
        let spec = GpuSpec::p100();
        let k = stream(16, 64 * 32, true);
        let launch = LaunchConfig::new(64, 32);
        let ieee = time_thread_kernel(&k, launch, &spec, TimingOptions { fast_math: false, ..Default::default() });
        let fast = time_thread_kernel(&k, launch, &spec, TimingOptions { fast_math: true, ..Default::default() });
        assert_eq!(ieee.bottleneck, Bottleneck::Compute);
        assert!(fast.compute_time_s < ieee.compute_time_s * 0.7);
    }

    #[test]
    fn wave_quantization_penalizes_tiny_grids() {
        let spec = GpuSpec::p100();
        let k = stream(64, 1 << 22, true);
        // 32 blocks on 56 SMs: utilization 32/56.
        let t = time_thread_kernel(&k, LaunchConfig::new(32, 512), &spec, TimingOptions::default());
        assert_eq!(t.waves, 1);
        assert!((t.utilization - 32.0 / 56.0 / t.occupancy.blocks_per_sm as f64).abs() < 1.0);
        assert!(t.utilization < 0.6);
    }

    #[test]
    fn icache_penalty_applies_to_huge_kernels() {
        let spec = GpuSpec::p100();
        let mut k = stream(16, 512, true);
        k.statics.static_instrs = 40_000; // 320 KB of code
        let big = time_thread_kernel(&k, LaunchConfig::new(64, 32), &spec, TimingOptions::default());
        assert!(big.icache_penalty > 1.2, "penalty {}", big.icache_penalty);
        k.statics.static_instrs = 500;
        let small = time_thread_kernel(&k, LaunchConfig::new(64, 32), &spec, TimingOptions::default());
        assert_eq!(small.icache_penalty, 1.0);
        assert!(big.compute_time_s > small.compute_time_s);
    }

    #[test]
    fn spills_add_traffic() {
        let spec = GpuSpec::p100();
        let mut k = stream(16, 512, false);
        k.statics.regs_per_thread = 300; // 45 over the limit
        let t = time_thread_kernel(&k, LaunchConfig::new(64, 32), &spec, TimingOptions::default());
        assert!(t.spill_bytes > 0);
        let mut k2 = stream(16, 512, false);
        k2.statics.regs_per_thread = 64;
        let t2 = time_thread_kernel(&k2, LaunchConfig::new(64, 32), &spec, TimingOptions::default());
        assert_eq!(t2.spill_bytes, 0);
        assert!(t.dram_bytes > t2.dram_bytes);
    }

    #[test]
    fn register_reuse_window_cuts_dram_traffic() {
        let spec = GpuSpec::p100();
        // Kernel that re-reads the same element many times.
        struct Reread;
        impl ThreadKernel for Reread {
            fn run<C: KernelCtx>(&self, ctx: &mut C) {
                let g = ctx.thread().global();
                let mut acc = 0.0;
                for _ in 0..64 {
                    let v = ctx.ld(g);
                    acc = ctx.add(acc, v);
                }
                ctx.st(g, acc);
            }
            fn statics(&self) -> KernelStatics {
                KernelStatics {
                    regs_per_thread: 32,
                    static_instrs: 600,
                    reg_reuse_capacity: 8,
                    dead_store_elim: false,
                    shared_bytes_per_block: 0,
                }
            }
        }
        let t = time_thread_kernel(&Reread, LaunchConfig::new(8, 32), &spec, TimingOptions::default());
        assert_eq!(t.reg_reuse_eliminated_loads, 63);
    }
}
