//! Warp memory-access coalescing analysis.
//!
//! A warp access touches one byte-address per lane; the hardware services
//! it with one transaction per distinct 128-byte line and moves one
//! 32-byte sector per distinct sector from DRAM. Perfectly coalesced
//! accesses (the interleaved layouts) touch exactly one line; the canonical
//! layout at small `n` touches up to 32.

use crate::trace::WarpAccess;

/// Transaction/sector breakdown of one warp access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coalescing {
    /// Distinct cache lines touched (memory transactions issued).
    pub transactions: u32,
    /// Distinct DRAM sectors touched (minimum DRAM traffic, in sectors).
    pub sectors: u32,
}

/// Analyzes one warp access. `elem_bytes` converts element addresses to
/// bytes (4 for f32).
pub fn coalesce(
    access: &WarpAccess,
    elem_bytes: u32,
    line_bytes: u32,
    sector_bytes: u32,
) -> Coalescing {
    let mut lines: Vec<u64> = access
        .addrs
        .iter()
        .map(|&a| (a as u64 * elem_bytes as u64) / line_bytes as u64)
        .collect();
    lines.sort_unstable();
    lines.dedup();
    let mut sectors: Vec<u64> = access
        .addrs
        .iter()
        .map(|&a| (a as u64 * elem_bytes as u64) / sector_bytes as u64)
        .collect();
    sectors.sort_unstable();
    sectors.dedup();
    Coalescing {
        transactions: lines.len() as u32,
        sectors: sectors.len() as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(addrs: Vec<u32>) -> WarpAccess {
        WarpAccess {
            store: false,
            addrs,
        }
    }

    #[test]
    fn perfectly_coalesced_unit_stride() {
        // 32 consecutive f32 = 128 bytes, line-aligned.
        let a = access((0..32).collect());
        let c = coalesce(&a, 4, 128, 32);
        assert_eq!(c.transactions, 1);
        assert_eq!(c.sectors, 4);
    }

    #[test]
    fn unit_stride_misaligned_spills_into_second_line() {
        let a = access((8..40).collect());
        let c = coalesce(&a, 4, 128, 32);
        assert_eq!(c.transactions, 2);
        assert_eq!(c.sectors, 4);
    }

    #[test]
    fn fully_scattered_canonical_layout() {
        // Stride of one matrix (say 256 elements = 1 KiB) per lane: every
        // lane its own line and sector.
        let a = access((0..32).map(|l| l * 256).collect());
        let c = coalesce(&a, 4, 128, 32);
        assert_eq!(c.transactions, 32);
        assert_eq!(c.sectors, 32);
    }

    #[test]
    fn broadcast_same_address() {
        let a = access(vec![1000; 32]);
        let c = coalesce(&a, 4, 128, 32);
        assert_eq!(c.transactions, 1);
        assert_eq!(c.sectors, 1);
    }

    #[test]
    fn small_stride_partial_coalescing() {
        // Stride 2 elements (8 bytes): 32 lanes span 256 bytes = 2 lines,
        // 8 sectors.
        let a = access((0..32).map(|l| l * 2).collect());
        let c = coalesce(&a, 4, 128, 32);
        assert_eq!(c.transactions, 2);
        assert_eq!(c.sectors, 8);
    }
}
