//! Best-configuration extraction: the "best performance of the interleaved
//! implementation for different X" slices behind Figures 15–19.

use crate::record::{Dataset, Measurement};
use ibcf_core::Looking;
use ibcf_kernels::Unroll;

/// Query helpers over a dataset, borrowed.
pub struct BestTable<'a> {
    ds: &'a Dataset,
}

impl<'a> BestTable<'a> {
    /// Wraps a dataset.
    pub fn new(ds: &'a Dataset) -> Self {
        BestTable { ds }
    }

    /// The best measurement at dimension `n` among those satisfying `pred`.
    pub fn best_where(
        &self,
        n: usize,
        mut pred: impl FnMut(&Measurement) -> bool,
    ) -> Option<&'a Measurement> {
        self.ds
            .at_n(n)
            .filter(|m| pred(m))
            .max_by(|a, b| a.gflops.total_cmp(&b.gflops))
    }

    /// Overall best at dimension `n`.
    pub fn best(&self, n: usize) -> Option<&'a Measurement> {
        self.best_where(n, |_| true)
    }

    /// Best per arithmetic mode (Figure 13's two curves).
    pub fn best_by_arith(&self, n: usize, fast_math: bool) -> Option<&'a Measurement> {
        self.best_where(n, |m| m.config.fast_math == fast_math)
    }

    /// Best per tile size (Figure 15).
    pub fn best_by_nb(&self, n: usize, nb: usize) -> Option<&'a Measurement> {
        self.best_where(n, |m| m.config.nb == nb)
    }

    /// Best per looking order (Figure 16).
    pub fn best_by_looking(&self, n: usize, looking: Looking) -> Option<&'a Measurement> {
        self.best_where(n, |m| m.config.looking == looking)
    }

    /// Best per chunking on/off (Figure 17).
    pub fn best_by_chunking(&self, n: usize, chunked: bool) -> Option<&'a Measurement> {
        self.best_where(n, |m| m.config.chunked == chunked)
    }

    /// Best per chunk size, among chunked runs (Figure 18).
    pub fn best_by_chunk_size(&self, n: usize, chunk_size: usize) -> Option<&'a Measurement> {
        self.best_where(n, |m| m.config.chunked && m.config.chunk_size == chunk_size)
    }

    /// Best per unrolling mode (Figure 19).
    pub fn best_by_unroll(&self, n: usize, unroll: Unroll) -> Option<&'a Measurement> {
        self.best_where(n, |m| m.config.unroll == unroll)
    }

    /// All measurements at `n` with the given chunk size, sorted by
    /// (nb, looking, chunked, unroll) — the per-kernel scatter of
    /// Figure 20.
    pub fn kernels_at(&self, n: usize, chunk_size: usize) -> Vec<&'a Measurement> {
        let mut v: Vec<&Measurement> = self
            .ds
            .at_n(n)
            .filter(|m| m.config.chunk_size == chunk_size)
            .collect();
        v.sort_by_key(|m| {
            (
                m.config.nb,
                m.config.looking.name(),
                m.config.chunked,
                m.config.unroll == Unroll::Full,
            )
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{sweep, SweepOptions};
    use crate::space::ParamSpace;
    use ibcf_gpu_sim::GpuSpec;

    fn quick_dataset(n: usize) -> Dataset {
        sweep(
            &ParamSpace::quick(),
            n,
            &GpuSpec::p100(),
            &SweepOptions {
                batch: 2048,
                progress_every: 0,
                ..Default::default()
            },
        )
    }

    #[test]
    fn best_is_max_of_slices() {
        let ds = quick_dataset(16);
        let t = BestTable::new(&ds);
        let overall = t.best(16).unwrap().gflops;
        let by_nb: f64 = [1, 2, 4, 8]
            .iter()
            .map(|&nb| t.best_by_nb(16, nb).map_or(0.0, |m| m.gflops))
            .fold(0.0, f64::max);
        assert_eq!(overall, by_nb);
        let by_looking: f64 = Looking::ALL
            .iter()
            .map(|&l| t.best_by_looking(16, l).map_or(0.0, |m| m.gflops))
            .fold(0.0, f64::max);
        assert_eq!(overall, by_looking);
    }

    #[test]
    fn chunked_best_beats_non_chunked() {
        // Needs a memory-bound size: at n=32 with IEEE arithmetic the best
        // kernels are DRAM-limited, so the row-buffer locality of chunking
        // shows up. (At tiny n with IEEE div/sqrt the kernel is compute
        // bound and chunking is performance-neutral, as in the paper.)
        let n = 32;
        let ds = sweep(
            &ParamSpace::quick(),
            n,
            &GpuSpec::p100(),
            &SweepOptions {
                batch: 8192,
                progress_every: 0,
                ..Default::default()
            },
        );
        let t = BestTable::new(&ds);
        let chunked = t.best_by_chunking(n, true).unwrap().gflops;
        let simple = t.best_by_chunking(n, false).unwrap().gflops;
        assert!(chunked > simple, "chunked {chunked} simple {simple}");
    }

    #[test]
    fn kernels_at_filters_and_sorts() {
        let ds = quick_dataset(8);
        let t = BestTable::new(&ds);
        let ks = t.kernels_at(8, 64);
        assert!(!ks.is_empty());
        assert!(ks.iter().all(|m| m.config.chunk_size == 64));
        for w in ks.windows(2) {
            assert!(w[0].config.nb <= w[1].config.nb);
        }
    }

    #[test]
    fn missing_slices_return_none() {
        let ds = quick_dataset(8);
        let t = BestTable::new(&ds);
        assert!(t.best_by_nb(8, 7).is_none()); // 7 not in quick space
        assert!(t.best(99).is_none());
    }
}
