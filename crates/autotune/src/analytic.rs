//! Analytic performance prior: ranking kernel configurations from
//! hardware structure alone, without tracing a single warp.
//!
//! The tritonBLAS observation (PAPERS.md) is that occupancy and
//! arithmetic-intensity arithmetic over a `GpuSpec` picks near-optimal
//! kernel parameters with zero search. This module rebuilds the
//! simulator's pricing pass ([`ibcf_gpu_sim::plan::price`]) from closed
//! forms: the tile-operation walker ([`ibcf_kernels::codesize`]) yields
//! the exact dynamic op mix of the traced warp, the occupancy calculator
//! gives waves and utilization, and only the memory pipeline — register
//! reuse, L2 filtering, DRAM row locality — is approximated. The result
//! is a modeled time per configuration that is orders of magnitude
//! cheaper than a trace (no per-element address stream) yet ranks the
//! space well enough for an early-stopped sweep ([`crate::select`]) to
//! recover the exhaustive winner after measuring a few percent of it.

use crate::space::ParamSpace;
use ibcf_core::Looking;
use ibcf_gpu_sim::{occupancy, GpuSpec};
use ibcf_kernels::codesize::{self, TileOp};
use ibcf_kernels::tileops::LOOP_OVERHEAD_IOPS;
use ibcf_kernels::{KernelConfig, Unroll};
use ibcf_layout::BatchLayout;
use std::collections::HashMap;

/// Dynamic per-thread operation profile of one `(n, nb, looking)` walk:
/// the exact op mix the traced warp would execute, computed analytically.
#[derive(Debug, Clone, Copy, Default)]
struct OpProfile {
    /// FMA-class ops (fma/mul/add/sub).
    fma: u64,
    /// IEEE divides (TRSM).
    div: u64,
    /// Square roots (POTRF pivots).
    sqrt: u64,
    /// Reciprocals (POTRF column scaling).
    rcp: u64,
    /// Global load elements.
    loads: u64,
    /// Global store elements.
    stores: u64,
    /// Loop/addressing overhead ops charged under partial unrolling.
    partial_iops: u64,
}

/// Walks the tile operations of `(n, nb, looking)` and accumulates the
/// exact dynamic op mix, mirroring [`ibcf_kernels::tileops`]: POTRF
/// issues one sqrt and one rcp per pivot, TRSM divides, everything else
/// is FMA-class, and partial unrolling charges the loop overhead the
/// tile ops charge when `charge_iops` is set.
fn op_profile(n: usize, nb: usize, looking: Looking) -> OpProfile {
    let mut p = OpProfile::default();
    codesize::walk(n, nb, looking, |op| {
        let instrs = op.instrs();
        match op {
            TileOp::Potrf(d) => {
                p.sqrt += d as u64;
                p.rcp += d as u64;
                p.fma += instrs - 2 * d as u64;
                p.partial_iops += LOOP_OVERHEAD_IOPS;
            }
            TileOp::Trsm(m, d) => {
                p.div += (m * d) as u64;
                p.fma += instrs - (m * d) as u64;
                p.partial_iops += LOOP_OVERHEAD_IOPS;
            }
            TileOp::Syrk(..) | TileOp::Gemm(..) => {
                p.fma += instrs;
                p.partial_iops += LOOP_OVERHEAD_IOPS;
            }
            TileOp::LoadFull(..) | TileOp::LoadLower(_) => {
                p.loads += instrs;
                p.partial_iops += LOOP_OVERHEAD_IOPS + instrs;
            }
            TileOp::StoreFull(..) | TileOp::StoreLower(_) => {
                p.stores += instrs;
                p.partial_iops += LOOP_OVERHEAD_IOPS + instrs;
            }
        }
    });
    p
}

/// One analytically scored configuration: the modeled kernel time and
/// the per-pipeline breakdown it decomposes into.
#[derive(Debug, Clone, Copy)]
pub struct AnalyticScore {
    /// The configuration scored.
    pub config: KernelConfig,
    /// Modeled time, seconds (max of the three pipelines).
    pub time_s: f64,
    /// Modeled arithmetic-issue time, seconds.
    pub compute_s: f64,
    /// Modeled load/store-unit time, seconds.
    pub lsu_s: f64,
    /// Modeled DRAM time, seconds.
    pub dram_s: f64,
    /// Occupancy of the launch (fraction of max resident warps).
    pub occupancy: f64,
}

fn tri(n: usize) -> u64 {
    (n * (n + 1) / 2) as u64
}

fn score_with_profile(
    config: &KernelConfig,
    batch: usize,
    spec: &GpuSpec,
    p: &OpProfile,
) -> AnalyticScore {
    let statics = codesize::statics(config);
    let launch = config.launch(batch);
    let warps_total = (launch.total_threads() / spec.warp_size as usize) as f64;

    // -- occupancy, waves, SM load balance (exact: mirrors `price`) -------
    let occ = occupancy(
        spec,
        launch.block,
        statics.regs_per_thread,
        statics.shared_bytes_per_block,
    );
    let block_rounds = (launch.grid as u64).div_ceil(spec.sms as u64);
    let utilization = launch.grid as f64 / (block_rounds * spec.sms as u64) as f64;

    // -- register reuse (approximate): full unrolling keeps the working
    // set live across tile ops, so repeat loads of the same element are
    // served from registers up to the reuse capacity; dead-store
    // elimination drops all but the final triangle writes.
    let unique = tri(config.n);
    let (loads, stores) = match config.unroll {
        Unroll::Partial => (p.loads, p.stores),
        Unroll::Full => {
            let demand = unique + codesize::REG_OVERHEAD as u64;
            if statics.dead_store_elim {
                (unique.min(p.loads), unique.min(p.stores))
            } else {
                // Partial reuse: the capacity covers a fraction of the
                // triangle, eliminating that share of the repeat loads.
                let frac = (statics.reg_reuse_capacity as f64 / demand as f64).clamp(0.0, 1.0);
                let repeats = p.loads.saturating_sub(unique) as f64;
                let kept = unique as f64 + repeats * (1.0 - frac);
                (kept.round() as u64, p.stores)
            }
        }
    };

    // -- spills (exact formula of `price`) --------------------------------
    let spill_regs = statics
        .regs_per_thread
        .saturating_sub(spec.max_regs_per_thread) as f64;
    let spill_accesses = (spill_regs * spec.spill_reuse_factor * 2.0).round();
    let spill_bytes_per_warp = spill_accesses * 32.0 * 4.0;

    // -- instruction cache (exact formula of `price`) ---------------------
    let code_bytes = statics.static_instrs * spec.instr_bytes as u64;
    let icache_penalty = if code_bytes > spec.icache_bytes as u64 {
        1.0 + spec.icache_beta * (code_bytes as f64 / spec.icache_bytes as f64).log2()
    } else {
        1.0
    };

    // -- arithmetic issue (exact op mix) ----------------------------------
    let c = &spec.costs;
    let fast = config.fast_math;
    let iops = match config.unroll {
        Unroll::Partial => p.partial_iops,
        Unroll::Full => 0,
    };
    let comp_cycles = (p.fma as f64 * c.fma
        + p.div as f64 * c.div(fast)
        + p.sqrt as f64 * c.sqrt(fast)
        + p.rcp as f64 * c.rcp(fast)
        + iops as f64 * c.iop)
        * icache_penalty;

    // -- LSU: interleaved layouts coalesce to one transaction per access --
    let lsu_cycles =
        ((loads + stores) as f64 + spill_accesses) * c.lsu_per_transaction * icache_penalty;

    // -- DRAM (approximate): each element is a distinct cache line for a
    // warp (lane stride ≥ 32 floats). First touches and write-through
    // stores always reach DRAM; repeat loads hit the warp's L2 share when
    // the triangle fits in it.
    let active_warps = ((occ.warps_per_sm as u64 * spec.sms as u64) as f64)
        .min(warps_total)
        .max(1.0);
    let share_lines = (spec.l2_bytes as f64 / active_warps / spec.line_bytes as f64).max(1.0);
    let l2_hit = (share_lines / unique as f64).clamp(0.0, 1.0);
    let repeat_loads = loads.saturating_sub(unique) as f64;
    let dram_accesses = unique as f64 + repeat_loads * (1.0 - l2_hit) + stores as f64;
    let dram_bytes =
        dram_accesses * spec.line_bytes as f64 * warps_total + spill_bytes_per_warp * warps_total;

    // Row-buffer locality: consecutive element accesses of one warp are
    // one lane stride apart — 4·chunk_size bytes chunked, 4·padded_batch
    // simple — so the open-row hit rate falls linearly with the stride's
    // share of the row.
    let stride_bytes = 4.0
        * if config.chunked {
            config.chunk_size as f64
        } else {
            config.layout(batch).padded_batch() as f64
        };
    let row_hit = (1.0 - stride_bytes / spec.dram_row_bytes as f64).clamp(0.0, 1.0);
    let dram_eff = 1.0 / (row_hit + (1.0 - row_hit) * spec.dram_row_miss_penalty);

    // -- assemble (same scaling as `price`) -------------------------------
    let clock = spec.clock_hz();
    let sms = spec.sms as f64;
    let compute_s = comp_cycles * warps_total / sms / clock / utilization;
    let lsu_s = lsu_cycles * warps_total / sms / clock / utilization;
    let dram_s = dram_bytes / (spec.dram_gbps * 1e9 * dram_eff);

    AnalyticScore {
        config: *config,
        time_s: compute_s.max(lsu_s).max(dram_s),
        compute_s,
        lsu_s,
        dram_s,
        occupancy: occ.occupancy,
    }
}

/// Scores one configuration analytically (no tracing).
pub fn score_config(config: &KernelConfig, batch: usize, spec: &GpuSpec) -> AnalyticScore {
    let p = op_profile(config.n, config.nb_eff(), config.looking);
    score_with_profile(config, batch, spec, &p)
}

/// Scores every configuration of `space` at dimension `n` and returns
/// them ranked by modeled time, fastest first. Ties break toward the
/// canonical enumeration order, so the ranking is deterministic.
pub fn rank_candidates(
    space: &ParamSpace,
    n: usize,
    batch: usize,
    spec: &GpuSpec,
) -> Vec<AnalyticScore> {
    let mut profiles: HashMap<(usize, u8), OpProfile> = HashMap::new();
    let looking_tag = |l: Looking| match l {
        Looking::Right => 0u8,
        Looking::Left => 1,
        Looking::Top => 2,
    };
    let mut scored: Vec<AnalyticScore> = space
        .configs(n)
        .iter()
        .map(|config| {
            let key = (config.nb_eff(), looking_tag(config.looking));
            let p = *profiles
                .entry(key)
                .or_insert_with(|| op_profile(n, key.0, config.looking));
            score_with_profile(config, batch, spec, &p)
        })
        .collect();
    scored.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
    scored
}

/// The model's single best configuration — the zero-measurement pick the
/// serving fallback chain uses between a tuned table and the §11
/// heuristics.
pub fn best_config(space: &ParamSpace, n: usize, batch: usize, spec: &GpuSpec) -> KernelConfig {
    rank_candidates(space, n, batch, spec)
        .first()
        .map(|s| s.config)
        .unwrap_or_else(|| KernelConfig::baseline(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::measure;

    #[test]
    fn scores_are_finite_and_positive() {
        let spec = GpuSpec::p100();
        for c in ParamSpace::quick().configs(16) {
            let s = score_config(&c, 2048, &spec);
            assert!(s.time_s.is_finite() && s.time_s > 0.0, "{c}: {s:?}");
            assert!(s.compute_s > 0.0 && s.lsu_s > 0.0 && s.dram_s > 0.0, "{c}");
        }
    }

    #[test]
    fn ranking_is_sorted_and_complete() {
        let space = ParamSpace::quick();
        let spec = GpuSpec::p100();
        let ranked = rank_candidates(&space, 24, 2048, &spec);
        assert_eq!(ranked.len(), space.len_per_n());
        for w in ranked.windows(2) {
            assert!(w[0].time_s <= w[1].time_s);
        }
    }

    #[test]
    fn model_prefers_fast_math_and_chunking() {
        // The model must reproduce the paper's robust qualitative
        // findings, or it could never guide a search.
        let spec = GpuSpec::p100();
        let batch = 16_384;
        let base = KernelConfig::baseline(24);
        let fast = KernelConfig {
            fast_math: true,
            ..base
        };
        // Fast math cuts the compute term; total time never gets worse
        // (it ties exactly when the configuration is DRAM-bound, matching
        // the simulator's behavior at this size and batch).
        let s_fast = score_config(&fast, batch, &spec);
        let s_base = score_config(&base, batch, &spec);
        assert!(s_fast.time_s <= s_base.time_s);
        assert!(s_fast.compute_s < s_base.compute_s);
        let simple = KernelConfig {
            chunked: false,
            ..base
        };
        assert!(
            score_config(&base, batch, &spec).time_s < score_config(&simple, batch, &spec).time_s
        );
    }

    #[test]
    fn model_correlates_with_the_simulator() {
        // Spearman-ish sanity: the measured winner must sit in the model's
        // top quarter, and the model's top pick must measure well.
        let space = ParamSpace::quick();
        let spec = GpuSpec::p100();
        let batch = 4096;
        for n in [8usize, 24, 48] {
            let ranked = rank_candidates(&space, n, batch, &spec);
            let measured: Vec<f64> = ranked
                .iter()
                .map(|s| measure(&s.config, batch, &spec).time_s)
                .collect();
            let best_t = measured.iter().cloned().fold(f64::INFINITY, f64::min);
            let k = ranked.len() / 4;
            let top_q_best = measured[..k].iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(
                top_q_best <= 1.10 * best_t,
                "n={n}: model top quarter best {top_q_best} vs global best {best_t}"
            );
        }
    }

    #[test]
    fn best_config_is_inside_the_space() {
        let space = ParamSpace::paper();
        let spec = GpuSpec::p100();
        for n in [8usize, 32, 64] {
            let c = best_config(&space, n, 16_384, &spec);
            assert!(space.contains(&c), "n={n}: {c}");
            c.validate().unwrap();
        }
    }
}
