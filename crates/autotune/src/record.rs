//! Measurement records and dataset persistence.

use ibcf_core::Looking;
use ibcf_gpu_sim::Bottleneck;
use ibcf_kernels::{CachePref, KernelConfig, Unroll};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};
use std::path::Path;

/// One autotuning measurement: a configuration and its modeled performance.
/// Equality is bitwise — the model is deterministic, so re-measuring a
/// configuration must reproduce the measurement exactly (the sweep log's
/// duplicate/conflict detection relies on this).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// The configuration measured.
    pub config: KernelConfig,
    /// Batch size of the launch.
    pub batch: usize,
    /// Gflop/s at the paper's `batch · n³/3` flop count.
    pub gflops: f64,
    /// Modeled wall time, seconds.
    pub time_s: f64,
    /// Binding resource.
    pub bottleneck: Bottleneck,
    /// DRAM row-buffer hit rate.
    pub row_hit_rate: f64,
    /// Occupancy fraction.
    pub occupancy: f64,
    /// Total DRAM traffic, bytes.
    pub dram_bytes: u64,
}

impl Measurement {
    /// Numeric feature vector for the Section-IV analysis, in Table I's
    /// row order: n, tile size, looking, chunking, chunk size, unrolling,
    /// cache. Categorical variables are integer-coded.
    pub fn features(&self) -> Vec<f64> {
        let c = &self.config;
        vec![
            c.n as f64,
            c.nb as f64,
            match c.looking {
                Looking::Left => 0.0,
                Looking::Right => 1.0,
                Looking::Top => 2.0,
            },
            c.chunked as u8 as f64,
            c.chunk_size as f64,
            (c.unroll == Unroll::Full) as u8 as f64,
            (c.cache_pref == CachePref::Shared) as u8 as f64,
        ]
    }

    /// Names of the entries of [`Measurement::features`].
    pub fn feature_names() -> Vec<&'static str> {
        vec![
            "n",
            "nb",
            "looking",
            "chunking",
            "chunk_size",
            "unrolling",
            "cache",
        ]
    }
}

/// A full autotuning dataset: every measurement of a sweep, plus the
/// context needed to reproduce it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// GPU spec name the model used.
    pub gpu: String,
    /// Batch size of every launch.
    pub batch: usize,
    /// The measurements.
    pub measurements: Vec<Measurement>,
}

impl Dataset {
    /// Measurements at dimension `n`.
    pub fn at_n(&self, n: usize) -> impl Iterator<Item = &Measurement> {
        self.measurements.iter().filter(move |m| m.config.n == n)
    }

    /// Sorted distinct matrix dimensions present.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s: Vec<usize> = self.measurements.iter().map(|m| m.config.n).collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    /// Writes the dataset as JSON lines (one measurement per line, with a
    /// one-line header object).
    pub fn save_jsonl(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        let header = serde_json::json!({ "gpu": self.gpu, "batch": self.batch });
        writeln!(f, "{header}")?;
        for m in &self.measurements {
            writeln!(f, "{}", serde_json::to_string(m)?)?;
        }
        Ok(())
    }

    /// Reads a dataset written by [`Dataset::save_jsonl`]. A missing or
    /// malformed header is an [`InvalidData`](std::io::ErrorKind::InvalidData)
    /// error — a truncated or corrupt file must never load as a
    /// plausible-looking dataset.
    pub fn load_jsonl(path: &Path) -> std::io::Result<Self> {
        let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let f = std::io::BufReader::new(std::fs::File::open(path)?);
        let mut lines = f.lines();
        let header: serde_json::Value = serde_json::from_str(
            &lines
                .next()
                .ok_or_else(|| invalid("empty dataset".into()))??,
        )?;
        let gpu = header
            .get("gpu")
            .and_then(|v| v.as_str())
            .ok_or_else(|| invalid(r#"dataset header missing string field "gpu""#.into()))?
            .to_string();
        let batch = header
            .get("batch")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| invalid(r#"dataset header missing integer field "batch""#.into()))?
            as usize;
        let mut measurements = Vec::new();
        for line in lines {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            measurements.push(serde_json::from_str(&line)?);
        }
        Ok(Dataset {
            gpu,
            batch,
            measurements,
        })
    }

    /// Writes a CSV view (features + gflops), handy for external analysis.
    pub fn save_csv(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(
            f,
            "{},fast_math,gflops,time_s,row_hit_rate,occupancy",
            Measurement::feature_names().join(",")
        )?;
        for m in &self.measurements {
            let feats: Vec<String> = m.features().iter().map(|x| x.to_string()).collect();
            writeln!(
                f,
                "{},{},{},{},{},{}",
                feats.join(","),
                m.config.fast_math as u8,
                m.gflops,
                m.time_s,
                m.row_hit_rate,
                m.occupancy
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibcf_gpu_sim::Bottleneck;

    fn sample(n: usize, gflops: f64) -> Measurement {
        Measurement {
            config: KernelConfig::baseline(n),
            batch: 1024,
            gflops,
            time_s: 1e-4,
            bottleneck: Bottleneck::Dram,
            row_hit_rate: 0.9,
            occupancy: 0.5,
            dram_bytes: 1 << 20,
        }
    }

    #[test]
    fn features_align_with_names() {
        let m = sample(24, 100.0);
        assert_eq!(m.features().len(), Measurement::feature_names().len());
        assert_eq!(m.features()[0], 24.0);
        assert_eq!(m.features()[4], 64.0); // chunk_size
    }

    #[test]
    fn jsonl_round_trip() {
        let d = Dataset {
            gpu: "test".into(),
            batch: 1024,
            measurements: vec![sample(8, 50.0), sample(16, 150.0)],
        };
        let dir = std::env::temp_dir().join("ibcf_test_ds");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("ds.jsonl");
        d.save_jsonl(&p).unwrap();
        let back = Dataset::load_jsonl(&p).unwrap();
        assert_eq!(back.batch, 1024);
        assert_eq!(back.measurements.len(), 2);
        assert_eq!(back.measurements[1].config.n, 16);
        assert_eq!(back.sizes(), vec![8, 16]);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn corrupt_or_truncated_headers_are_invalid_data() {
        let dir = std::env::temp_dir().join("ibcf_test_ds");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("bad_header.jsonl");
        // A measurement line where the header should be: no gpu/batch.
        let m = serde_json::to_string(&sample(8, 50.0)).unwrap();
        for bad in [
            "".to_string(),
            "{}".to_string(),
            r#"{"gpu":"t"}"#.to_string(),
            r#"{"gpu":7,"batch":8}"#.to_string(),
            r#"{"gpu":"t","batch":"many"}"#.to_string(),
            m,
        ] {
            std::fs::write(&p, format!("{bad}\n")).unwrap();
            let err = Dataset::load_jsonl(&p).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{bad:?}");
        }
        // Garbage (a truncated header) fails the JSON parse outright.
        std::fs::write(&p, "{\"gpu\":\"t\",\"ba\n").unwrap();
        assert!(Dataset::load_jsonl(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn csv_has_header_and_rows() {
        let d = Dataset {
            gpu: "t".into(),
            batch: 8,
            measurements: vec![sample(8, 50.0)],
        };
        let dir = std::env::temp_dir().join("ibcf_test_ds");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("ds.csv");
        d.save_csv(&p).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        let mut lines = text.lines();
        assert!(lines.next().unwrap().starts_with("n,nb,looking"));
        assert_eq!(lines.count(), 1);
        std::fs::remove_file(&p).ok();
    }
}
