//! Guided search — the alternative to exhaustive sweeping the paper
//! discusses (and deliberately rejects for its analysis, calling guided
//! search a form of selection bias). Provided as an extension so the
//! trade-off can be quantified: how close does hill climbing get, with how
//! few evaluations?

use crate::record::Measurement;
use crate::runner::SweepOptions;
use crate::select::{run_search, HillSelector};
use crate::space::ParamSpace;
use ibcf_gpu_sim::{GpuSpec, TraceCache};
use ibcf_kernels::{KernelConfig, PlanKey};

/// A configuration chosen without any sweep data — the zero-measurement
/// fallback the serving layer uses when no dispatch table exists yet.
///
/// Encodes the paper's qualitative findings: chunked interleaving wins at
/// every size (spatial locality), full unrolling pays off only while the
/// generated kernel still fits the instruction cache (small `n`), and a
/// moderate tile keeps register pressure in check as `n` grows.
pub fn heuristic_config(n: usize) -> KernelConfig {
    use ibcf_kernels::Unroll;
    KernelConfig {
        unroll: if n <= 16 {
            Unroll::Full
        } else {
            Unroll::Partial
        },
        nb: if n <= 8 { n } else { 4 },
        ..KernelConfig::baseline(n)
    }
}

/// Result of a guided search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best measurement found.
    pub best: Measurement,
    /// Number of configurations evaluated.
    pub evaluations: usize,
}

/// Neighbors of a configuration: one parameter moved one step within the
/// space.
pub(crate) fn neighbors(space: &ParamSpace, c: &KernelConfig) -> Vec<KernelConfig> {
    let mut out = Vec::new();
    let step = |vals: &[usize], cur: usize| -> Vec<usize> {
        let i = vals.iter().position(|&v| v == cur);
        match i {
            Some(i) => {
                let mut v = Vec::new();
                if i > 0 {
                    v.push(vals[i - 1]);
                }
                if i + 1 < vals.len() {
                    v.push(vals[i + 1]);
                }
                v
            }
            None => vals.to_vec(),
        }
    };
    for nb in step(&space.nb, c.nb) {
        out.push(KernelConfig { nb, ..*c });
    }
    for &looking in &space.looking {
        if looking != c.looking {
            out.push(KernelConfig { looking, ..*c });
        }
    }
    for &chunked in &space.chunked {
        if chunked != c.chunked {
            out.push(KernelConfig { chunked, ..*c });
        }
    }
    for chunk_size in step(&space.chunk_size, c.chunk_size) {
        out.push(KernelConfig { chunk_size, ..*c });
    }
    for &unroll in &space.unroll {
        if unroll != c.unroll {
            out.push(KernelConfig { unroll, ..*c });
        }
    }
    out
}

/// Hill climbing with random restarts over the space restricted to one
/// arithmetic mode and cache preference (the paper's Table I variables
/// that actually move performance).
///
/// A thin wrapper over the shared selector driver ([`run_search`] with a
/// [`HillSelector`]): the driver owns the measurement loop, the
/// configuration dedup (restarts that re-pick a visited configuration
/// reuse its measurement instead of inflating `evaluations`), and the
/// plan cache that makes structural-neighbor revisits price-only.
pub fn hill_climb(
    space: &ParamSpace,
    n: usize,
    batch: usize,
    spec: &GpuSpec,
    restarts: usize,
    seed: u64,
) -> SearchResult {
    let opts = SweepOptions {
        batch,
        ..Default::default()
    };
    let cache: TraceCache<PlanKey> = TraceCache::default();
    let mut selector = HillSelector::new(restarts, seed);
    let outcome = run_search(&mut selector, space, n, spec, &opts, &cache);
    SearchResult {
        best: outcome.best,
        evaluations: outcome.evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::best::BestTable;
    use crate::runner::{sweep, SweepOptions};

    #[test]
    fn hill_climb_gets_close_to_exhaustive_with_fewer_evals() {
        let space = ParamSpace::quick();
        let spec = GpuSpec::p100();
        let n = 24;
        let batch = 2048;
        let ds = sweep(
            &space,
            n,
            &spec,
            &SweepOptions {
                batch,
                progress_every: 0,
                ..Default::default()
            },
        );
        // The climber explores the space's first arithmetic mode (IEEE);
        // compare under the same restriction.
        let exhaustive = BestTable::new(&ds)
            .best_where(n, |m| !m.config.fast_math)
            .unwrap()
            .gflops;
        let result = hill_climb(&space, n, batch, &spec, 4, 7);
        assert!(
            result.best.gflops >= 0.9 * exhaustive,
            "hill climb {} vs exhaustive {exhaustive}",
            result.best.gflops
        );
        assert!(
            result.evaluations < space.len_per_n(),
            "guided search used {} >= grid {}",
            result.evaluations,
            space.len_per_n()
        );
    }

    #[test]
    fn eval_count_is_bounded_by_distinct_configs() {
        // With 200 restarts over the (fast_math, cache_pref)-restricted
        // quick space (144 configurations), starts *must* repeat; honest
        // accounting keeps `evaluations` at or below the distinct count.
        // The pre-fix code counted every restart pick, so 200 restarts
        // alone would exceed the restricted grid.
        let space = ParamSpace::quick();
        let spec = GpuSpec::p100();
        let restricted = space.nb.len()
            * space.looking.len()
            * space.chunked.len()
            * space.chunk_size.len()
            * space.unroll.len();
        let result = hill_climb(&space, 16, 1024, &spec, 200, 3);
        assert!(
            result.evaluations <= restricted,
            "evaluations {} exceed the {restricted} distinct configurations",
            result.evaluations
        );
    }

    #[test]
    fn neighbors_move_one_parameter() {
        let space = ParamSpace::paper();
        let c = KernelConfig::baseline(16);
        for nb in neighbors(&space, &c) {
            let mut diffs = 0;
            diffs += (nb.nb != c.nb) as u32;
            diffs += (nb.looking != c.looking) as u32;
            diffs += (nb.chunked != c.chunked) as u32;
            diffs += (nb.chunk_size != c.chunk_size) as u32;
            diffs += (nb.unroll != c.unroll) as u32;
            assert_eq!(diffs, 1, "{nb}");
        }
    }
}
