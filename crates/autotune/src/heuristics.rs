//! Guided search — the alternative to exhaustive sweeping the paper
//! discusses (and deliberately rejects for its analysis, calling guided
//! search a form of selection bias). Provided as an extension so the
//! trade-off can be quantified: how close does hill climbing get, with how
//! few evaluations?

use crate::record::Measurement;
use crate::runner::measure_cached;
use crate::space::ParamSpace;
use ibcf_gpu_sim::{GpuSpec, TraceCache};
use ibcf_kernels::{KernelConfig, PlanKey};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// A configuration chosen without any sweep data — the zero-measurement
/// fallback the serving layer uses when no dispatch table exists yet.
///
/// Encodes the paper's qualitative findings: chunked interleaving wins at
/// every size (spatial locality), full unrolling pays off only while the
/// generated kernel still fits the instruction cache (small `n`), and a
/// moderate tile keeps register pressure in check as `n` grows.
pub fn heuristic_config(n: usize) -> KernelConfig {
    use ibcf_kernels::Unroll;
    KernelConfig {
        unroll: if n <= 16 {
            Unroll::Full
        } else {
            Unroll::Partial
        },
        nb: if n <= 8 { n } else { 4 },
        ..KernelConfig::baseline(n)
    }
}

/// Result of a guided search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best measurement found.
    pub best: Measurement,
    /// Number of configurations evaluated.
    pub evaluations: usize,
}

fn key(c: &KernelConfig) -> String {
    format!("{c}")
}

/// Neighbors of a configuration: one parameter moved one step within the
/// space.
fn neighbors(space: &ParamSpace, c: &KernelConfig) -> Vec<KernelConfig> {
    let mut out = Vec::new();
    let step = |vals: &[usize], cur: usize| -> Vec<usize> {
        let i = vals.iter().position(|&v| v == cur);
        match i {
            Some(i) => {
                let mut v = Vec::new();
                if i > 0 {
                    v.push(vals[i - 1]);
                }
                if i + 1 < vals.len() {
                    v.push(vals[i + 1]);
                }
                v
            }
            None => vals.to_vec(),
        }
    };
    for nb in step(&space.nb, c.nb) {
        out.push(KernelConfig { nb, ..*c });
    }
    for &looking in &space.looking {
        if looking != c.looking {
            out.push(KernelConfig { looking, ..*c });
        }
    }
    for &chunked in &space.chunked {
        if chunked != c.chunked {
            out.push(KernelConfig { chunked, ..*c });
        }
    }
    for chunk_size in step(&space.chunk_size, c.chunk_size) {
        out.push(KernelConfig { chunk_size, ..*c });
    }
    for &unroll in &space.unroll {
        if unroll != c.unroll {
            out.push(KernelConfig { unroll, ..*c });
        }
    }
    out
}

/// Hill climbing with random restarts over the space restricted to one
/// arithmetic mode and cache preference (the paper's Table I variables
/// that actually move performance).
pub fn hill_climb(
    space: &ParamSpace,
    n: usize,
    batch: usize,
    spec: &GpuSpec,
    restarts: usize,
    seed: u64,
) -> SearchResult {
    let mut rng = StdRng::seed_from_u64(seed);
    // Memoized evaluations: a configuration is measured (and counted)
    // at most once, so random restarts that re-pick an already-visited
    // start reuse its measurement instead of inflating `evaluations` —
    // the count the guided-vs-exhaustive comparison rests on.
    let mut seen: HashMap<String, Measurement> = HashMap::new();
    let mut evals = 0usize;
    // Online tuning revisits structural neighbors constantly (fast_math
    // and chunk-size moves keep the instruction stream); a local plan
    // cache makes those evaluations price-only.
    let cache: TraceCache<PlanKey> = TraceCache::default();
    let eval = |c: &KernelConfig, seen: &mut HashMap<String, Measurement>, evals: &mut usize| {
        if let Some(m) = seen.get(&key(c)) {
            return m.clone();
        }
        *evals += 1;
        let m = measure_cached(c, batch, spec, &cache);
        seen.insert(key(c), m.clone());
        m
    };

    let pick = |rng: &mut StdRng, space: &ParamSpace| KernelConfig {
        n,
        nb: space.nb[rng.random_range(0..space.nb.len())],
        looking: space.looking[rng.random_range(0..space.looking.len())],
        chunked: space.chunked[rng.random_range(0..space.chunked.len())],
        chunk_size: space.chunk_size[rng.random_range(0..space.chunk_size.len())],
        unroll: space.unroll[rng.random_range(0..space.unroll.len())],
        fast_math: space.fast_math[0],
        cache_pref: space.cache_pref[0],
    };

    let mut best: Option<Measurement> = None;
    for _ in 0..restarts.max(1) {
        let mut cur = eval(&pick(&mut rng, space), &mut seen, &mut evals);
        loop {
            let mut improved = false;
            for nb in neighbors(space, &cur.config) {
                if seen.contains_key(&key(&nb)) {
                    continue;
                }
                let m = eval(&nb, &mut seen, &mut evals);
                if m.gflops > cur.gflops {
                    cur = m;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
        if best.as_ref().is_none_or(|b| cur.gflops > b.gflops) {
            best = Some(cur);
        }
    }
    SearchResult {
        best: best.expect("at least one restart"),
        evaluations: evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::best::BestTable;
    use crate::runner::{sweep, SweepOptions};

    #[test]
    fn hill_climb_gets_close_to_exhaustive_with_fewer_evals() {
        let space = ParamSpace::quick();
        let spec = GpuSpec::p100();
        let n = 24;
        let batch = 2048;
        let ds = sweep(
            &space,
            n,
            &spec,
            &SweepOptions {
                batch,
                progress_every: 0,
                ..Default::default()
            },
        );
        // The climber explores the space's first arithmetic mode (IEEE);
        // compare under the same restriction.
        let exhaustive = BestTable::new(&ds)
            .best_where(n, |m| !m.config.fast_math)
            .unwrap()
            .gflops;
        let result = hill_climb(&space, n, batch, &spec, 4, 7);
        assert!(
            result.best.gflops >= 0.9 * exhaustive,
            "hill climb {} vs exhaustive {exhaustive}",
            result.best.gflops
        );
        assert!(
            result.evaluations < space.len_per_n(),
            "guided search used {} >= grid {}",
            result.evaluations,
            space.len_per_n()
        );
    }

    #[test]
    fn eval_count_is_bounded_by_distinct_configs() {
        // With 200 restarts over the (fast_math, cache_pref)-restricted
        // quick space (144 configurations), starts *must* repeat; honest
        // accounting keeps `evaluations` at or below the distinct count.
        // The pre-fix code counted every restart pick, so 200 restarts
        // alone would exceed the restricted grid.
        let space = ParamSpace::quick();
        let spec = GpuSpec::p100();
        let restricted = space.nb.len()
            * space.looking.len()
            * space.chunked.len()
            * space.chunk_size.len()
            * space.unroll.len();
        let result = hill_climb(&space, 16, 1024, &spec, 200, 3);
        assert!(
            result.evaluations <= restricted,
            "evaluations {} exceed the {restricted} distinct configurations",
            result.evaluations
        );
    }

    #[test]
    fn neighbors_move_one_parameter() {
        let space = ParamSpace::paper();
        let c = KernelConfig::baseline(16);
        for nb in neighbors(&space, &c) {
            let mut diffs = 0;
            diffs += (nb.nb != c.nb) as u32;
            diffs += (nb.looking != c.looking) as u32;
            diffs += (nb.chunked != c.chunked) as u32;
            diffs += (nb.chunk_size != c.chunk_size) as u32;
            diffs += (nb.unroll != c.unroll) as u32;
            assert_eq!(diffs, 1, "{nb}");
        }
    }
}
