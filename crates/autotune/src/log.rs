//! Crash-safe, shardable sweep logs.
//!
//! The paper's exhaustive sweep is >14,000 runs per GPU; at that scale a
//! sweep must survive interruption and be splittable across processes.
//! A [`SweepLog`] is an append-only file the runner streams completed
//! [`Measurement`]s into, one fsync'd line at a time, so a killed sweep
//! loses at most the line being written when the process died.
//!
//! ## File format
//!
//! Every line is self-validating: 8 lowercase hex digits of the CRC-32
//! (IEEE) of the JSON payload, one space, then the payload.
//!
//! ```text
//! c0ffee12 {"format":"ibcf-sweep-log","version":1,"gpu":...,"total":576,...}
//! 1a2b3c4d {"seq":0,"m":{...measurement...}}
//! 5e6f7a8b {"seq":3,"m":{...measurement...}}
//! ```
//!
//! The first line is a [`SweepLogHeader`]: everything needed to reproduce
//! the sweep (GPU, batch, sizes, the full [`ParamSpace`], noise
//! parameters, shard assignment, grid total). Each following line is one
//! measurement tagged with `seq`, the configuration's index in the
//! canonical grid enumeration (sizes outer, [`ParamSpace::configs`]
//! inner) — so a log can be reassembled into the canonical dataset order
//! no matter what order the parallel workers finished in.
//!
//! ## Recovery semantics
//!
//! A crash can tear at most the final line (appends are single `write`
//! calls followed by `fdatasync`). Reading with `recover = true` drops a
//! corrupt *final* line and reports it; a corrupt line anywhere else —
//! or a bad header, a checksum mismatch, a `seq` out of range, an entry
//! whose configuration disagrees with the header's grid — is always a
//! hard [`InvalidData`](std::io::ErrorKind::InvalidData) error, never a
//! silent default.
//!
//! ## Sharding
//!
//! A [`ShardSpec`] `i/k` deterministically owns every grid index
//! `seq % k == i` (round-robin, so shards are load-balanced across sizes).
//! [`merge_logs`] reassembles shard logs into one canonical [`Dataset`],
//! detecting duplicates (identical re-measurements are deduplicated) and
//! conflicts (same `seq`, different measurement — a hard error).

use crate::record::{Dataset, Measurement};
use crate::space::ParamSpace;
use ibcf_kernels::KernelConfig;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// The `format` tag every sweep-log header carries.
pub const LOG_FORMAT: &str = "ibcf-sweep-log";

/// Current log format version.
pub const LOG_VERSION: u32 = 1;

fn invalid(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), bitwise — log lines are
/// short and rare enough that a table is not worth carrying.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Frames a JSON payload as a self-validating log line (no newline).
fn encode_line(json: &str) -> String {
    format!("{:08x} {json}", crc32(json.as_bytes()))
}

/// Unframes a log line, verifying its checksum.
fn decode_line(line: &str) -> Result<&str, String> {
    let (crc_hex, json) = line
        .split_once(' ')
        .ok_or_else(|| "missing checksum field".to_string())?;
    if crc_hex.len() != 8 {
        return Err(format!(
            "checksum field has {} chars, want 8",
            crc_hex.len()
        ));
    }
    let want =
        u32::from_str_radix(crc_hex, 16).map_err(|_| format!("bad checksum hex {crc_hex:?}"))?;
    let got = crc32(json.as_bytes());
    if want != got {
        return Err(format!(
            "checksum mismatch (stored {crc_hex}, computed {got:08x})"
        ));
    }
    Ok(json)
}

/// The canonical configuration grid of a sweep: sizes outer,
/// [`ParamSpace::configs`] inner. Index into this vector is the `seq`
/// every log entry carries, and the order of the final dataset.
pub fn grid_configs(space: &ParamSpace, sizes: &[usize]) -> Vec<KernelConfig> {
    let mut all = Vec::with_capacity(sizes.len() * space.len_per_n());
    for &n in sizes {
        all.extend(space.configs(n));
    }
    all
}

/// A deterministic partition of the sweep grid: shard `index` of `count`
/// owns every configuration whose grid index is `index (mod count)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// This shard's index, `0 <= index < count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl ShardSpec {
    /// The trivial single-shard partition (an unsharded sweep).
    pub fn whole() -> Self {
        ShardSpec { index: 0, count: 1 }
    }

    /// A validated shard spec.
    pub fn new(index: usize, count: usize) -> Result<Self, String> {
        if count == 0 {
            return Err("shard count must be positive".into());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for {count} shards"
            ));
        }
        Ok(ShardSpec { index, count })
    }

    /// Parses `"i/k"` (e.g. `--shard 2/8`).
    pub fn parse(s: &str) -> Result<Self, String> {
        let (i, k) = s
            .split_once('/')
            .ok_or_else(|| format!("shard must be i/k (e.g. 0/4), got {s:?}"))?;
        let index = i
            .trim()
            .parse()
            .map_err(|_| format!("bad shard index {i:?}"))?;
        let count = k
            .trim()
            .parse()
            .map_err(|_| format!("bad shard count {k:?}"))?;
        ShardSpec::new(index, count)
    }

    /// `true` if this shard owns grid index `seq`.
    pub fn owns(&self, seq: usize) -> bool {
        seq % self.count == self.index
    }

    /// Number of grid indices in `0..total` this shard owns.
    pub fn owned_of(&self, total: usize) -> usize {
        (total + self.count - 1).saturating_sub(self.index) / self.count
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// The first line of a sweep log: everything needed to reproduce (and
/// therefore resume) the sweep it records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepLogHeader {
    /// Always [`LOG_FORMAT`].
    pub format: String,
    /// Log format version ([`LOG_VERSION`]).
    pub version: u32,
    /// GPU spec name the model used.
    pub gpu: String,
    /// Batch size of every launch.
    pub batch: usize,
    /// Matrix dimensions swept, in sweep order.
    pub sizes: Vec<usize>,
    /// The full parameter space, so the grid can be re-enumerated.
    pub space: ParamSpace,
    /// Measurement-noise sigma (resume must reproduce the noise).
    pub noise_sigma: f64,
    /// Measurement-noise seed.
    pub noise_seed: u64,
    /// Which slice of the grid this log covers.
    pub shard: ShardSpec,
    /// Total grid size across all shards (`sizes.len() * len_per_n`).
    pub total: usize,
}

impl SweepLogHeader {
    /// Structural validity: known format and version, consistent total.
    pub fn validate(&self) -> Result<(), String> {
        if self.format != LOG_FORMAT {
            return Err(format!("not a sweep log (format {:?})", self.format));
        }
        if self.version != LOG_VERSION {
            return Err(format!(
                "unsupported sweep-log version {} (this build reads {LOG_VERSION})",
                self.version
            ));
        }
        if self.shard.count == 0 || self.shard.index >= self.shard.count {
            return Err(format!("invalid shard {}", self.shard));
        }
        if self.total != self.sizes.len() * self.space.len_per_n() {
            return Err(format!(
                "header total {} disagrees with grid ({} sizes x {})",
                self.total,
                self.sizes.len(),
                self.space.len_per_n()
            ));
        }
        Ok(())
    }

    /// Checks that two logs describe the *same sweep* (shard assignment
    /// aside): merging or resuming across incompatible headers is an
    /// error, not a best-effort guess.
    pub fn compatible_with(&self, other: &SweepLogHeader) -> Result<(), String> {
        if self.version != other.version {
            return Err(format!("version {} vs {}", self.version, other.version));
        }
        if self.gpu != other.gpu {
            return Err(format!("gpu {:?} vs {:?}", self.gpu, other.gpu));
        }
        if self.batch != other.batch {
            return Err(format!("batch {} vs {}", self.batch, other.batch));
        }
        if self.sizes != other.sizes {
            return Err(format!("sizes {:?} vs {:?}", self.sizes, other.sizes));
        }
        if self.space != other.space {
            return Err("parameter spaces differ".into());
        }
        if self.noise_sigma != other.noise_sigma || self.noise_seed != other.noise_seed {
            return Err("noise models differ".into());
        }
        if self.total != other.total {
            return Err(format!("grid total {} vs {}", self.total, other.total));
        }
        Ok(())
    }
}

/// One log line: a measurement tagged with its canonical grid index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepLogEntry {
    /// Index into [`grid_configs`] of the header's space and sizes.
    pub seq: usize,
    /// The measurement.
    pub m: Measurement,
}

/// A parsed sweep log: header, validated entries, recovery notes.
#[derive(Debug, Clone)]
pub struct SweepLog {
    /// The sweep description.
    pub header: SweepLogHeader,
    /// Validated entries, in file order (not grid order).
    pub entries: Vec<SweepLogEntry>,
    /// `Some(reason)` if a torn final line was dropped during recovery.
    pub dropped_tail: Option<String>,
    /// Identical re-measurements that were deduplicated while reading.
    pub duplicates: usize,
    /// Byte length of the validated prefix of the file. Equal to the file
    /// size unless a torn tail was dropped — appenders must truncate the
    /// file to this length first, or the next read sees a line glued to
    /// the torn fragment.
    pub valid_len: u64,
}

impl SweepLog {
    /// Reads and validates a sweep log.
    ///
    /// With `recover = true`, a corrupt **final** line (the signature of
    /// a crash mid-append) is dropped and reported via `dropped_tail`;
    /// with `recover = false` it is an error. Corruption anywhere else is
    /// always an error.
    pub fn read(path: &Path, recover: bool) -> std::io::Result<SweepLog> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| std::io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
        // Keep byte offsets so recovery can report (and appenders can
        // truncate away) exactly the torn suffix.
        let mut raw: Vec<(u64, &str)> = Vec::new();
        let mut offset = 0u64;
        for piece in text.split_inclusive('\n') {
            raw.push((offset, piece.trim_end_matches(['\n', '\r'])));
            offset += piece.len() as u64;
        }
        let at = |msg: String| invalid(format!("{}: {msg}", path.display()));
        if raw.is_empty() {
            return Err(at("empty sweep log".into()));
        }
        let header_json = decode_line(raw[0].1).map_err(|e| at(format!("bad header line: {e}")))?;
        let header: SweepLogHeader =
            serde_json::from_str(header_json).map_err(|e| at(format!("bad header: {e}")))?;
        header.validate().map_err(&at)?;
        let grid = grid_configs(&header.space, &header.sizes);
        let mut entries: Vec<SweepLogEntry> = Vec::new();
        let mut by_seq: BTreeMap<usize, usize> = BTreeMap::new();
        let mut dropped_tail = None;
        let mut valid_len = text.len() as u64;
        let mut duplicates = 0usize;
        for (i, &(start, line)) in raw.iter().enumerate().skip(1) {
            let lineno = i + 1;
            let last = i == raw.len() - 1;
            let parsed = decode_line(line).and_then(|json| {
                serde_json::from_str::<SweepLogEntry>(json).map_err(|e| e.to_string())
            });
            let e = match parsed {
                Ok(e) => e,
                Err(msg) if recover && last => {
                    dropped_tail = Some(format!("dropped torn final line {lineno}: {msg}"));
                    valid_len = start;
                    break;
                }
                Err(msg) => return Err(at(format!("corrupt line {lineno}: {msg}"))),
            };
            if e.seq >= header.total {
                return Err(at(format!(
                    "line {lineno}: seq {} out of range (grid total {})",
                    e.seq, header.total
                )));
            }
            if !header.shard.owns(e.seq) {
                return Err(at(format!(
                    "line {lineno}: seq {} does not belong to shard {}",
                    e.seq, header.shard
                )));
            }
            if e.m.config != grid[e.seq] {
                return Err(at(format!(
                    "line {lineno}: configuration {} disagrees with grid seq {} ({})",
                    e.m.config, e.seq, grid[e.seq]
                )));
            }
            if e.m.batch != header.batch {
                return Err(at(format!(
                    "line {lineno}: batch {} disagrees with header batch {}",
                    e.m.batch, header.batch
                )));
            }
            if let Some(&j) = by_seq.get(&e.seq) {
                if entries[j].m == e.m {
                    duplicates += 1;
                    continue;
                }
                return Err(at(format!(
                    "line {lineno}: conflicting re-measurement of seq {}",
                    e.seq
                )));
            }
            by_seq.insert(e.seq, entries.len());
            entries.push(e);
        }
        Ok(SweepLog {
            header,
            entries,
            dropped_tail,
            duplicates,
            valid_len,
        })
    }

    /// Number of grid indices this log's shard is responsible for.
    pub fn owned_total(&self) -> usize {
        self.header.shard.owned_of(self.header.total)
    }

    /// `true` once every owned configuration has a measurement.
    pub fn is_complete(&self) -> bool {
        self.entries.len() == self.owned_total()
    }

    /// The log's measurements as a [`Dataset`] in canonical grid order.
    pub fn dataset(&self) -> Dataset {
        let mut es: Vec<&SweepLogEntry> = self.entries.iter().collect();
        es.sort_by_key(|e| e.seq);
        Dataset {
            gpu: self.header.gpu.clone(),
            batch: self.header.batch,
            measurements: es.into_iter().map(|e| e.m.clone()).collect(),
        }
    }
}

/// Appends self-validating lines to a sweep log, optionally fsync'ing
/// every line (`durable = true`, the crash-safe default).
#[derive(Debug)]
pub struct SweepLogWriter {
    file: std::fs::File,
    durable: bool,
}

impl SweepLogWriter {
    /// Creates a fresh log at `path`, writing (and syncing) the header.
    pub fn create(path: &Path, header: &SweepLogHeader, durable: bool) -> std::io::Result<Self> {
        header.validate().map_err(invalid)?;
        let file = std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)?;
        let mut w = SweepLogWriter { file, durable };
        let json = serde_json::to_string(header)?;
        w.write_line(&json)?;
        Ok(w)
    }

    /// Opens an existing log for appending (the resume path). The caller
    /// is expected to have validated the log via [`SweepLog::read`].
    pub fn open_append(path: &Path, durable: bool) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        Ok(SweepLogWriter { file, durable })
    }

    /// Appends one measurement. The framed line is written with a single
    /// `write` call and then fsync'd, so a crash tears at most this line —
    /// which recovery drops.
    pub fn append(&mut self, seq: usize, m: &Measurement) -> std::io::Result<()> {
        let json = serde_json::to_string(&SweepLogEntry { seq, m: m.clone() })?;
        self.write_line(&json)
    }

    fn write_line(&mut self, json: &str) -> std::io::Result<()> {
        let mut line = encode_line(json);
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        if self.durable {
            self.file.sync_data()?;
        }
        Ok(())
    }
}

/// What [`merge_logs`] did.
#[derive(Debug, Clone, Copy)]
pub struct MergeReport {
    /// Number of shard logs merged.
    pub shards: usize,
    /// Distinct configurations covered.
    pub measured: usize,
    /// Grid total the headers agree on.
    pub total: usize,
    /// Identical duplicate measurements that were deduplicated.
    pub duplicates: usize,
}

/// Merges shard logs into one canonical [`Dataset`].
///
/// All headers must describe the same sweep (GPU, batch, sizes, space,
/// noise — shard assignment may differ). Identical duplicate
/// measurements are deduplicated; a `seq` measured twice with different
/// results is a conflict and a hard error. Unless `allow_partial`, the
/// union must cover the full grid.
pub fn merge_logs(
    paths: &[std::path::PathBuf],
    allow_partial: bool,
) -> std::io::Result<(Dataset, MergeReport)> {
    if paths.is_empty() {
        return Err(invalid("merge: no logs given"));
    }
    let mut merged: BTreeMap<usize, Measurement> = BTreeMap::new();
    let mut first: Option<SweepLogHeader> = None;
    let mut duplicates = 0usize;
    for p in paths {
        let log = SweepLog::read(p, true)?;
        match &first {
            Some(f) => f
                .compatible_with(&log.header)
                .map_err(|e| invalid(format!("{}: incompatible shard log: {e}", p.display())))?,
            None => first = Some(log.header.clone()),
        }
        duplicates += log.duplicates;
        for e in log.entries {
            match merged.get(&e.seq) {
                Some(have) if *have == e.m => duplicates += 1,
                Some(_) => {
                    return Err(invalid(format!(
                        "{}: conflicting measurements for grid seq {}",
                        p.display(),
                        e.seq
                    )))
                }
                None => {
                    merged.insert(e.seq, e.m);
                }
            }
        }
    }
    let header = first.expect("at least one log");
    let measured = merged.len();
    if measured < header.total && !allow_partial {
        return Err(invalid(format!(
            "merged logs cover {measured}/{} configurations ({} missing); \
             add the missing shard logs, or allow a partial merge (--partial)",
            header.total,
            header.total - measured
        )));
    }
    let dataset = Dataset {
        gpu: header.gpu.clone(),
        batch: header.batch,
        measurements: merged.into_values().collect(),
    };
    Ok((
        dataset,
        MergeReport {
            shards: paths.len(),
            measured,
            total: header.total,
            duplicates,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{measure, SweepOptions};
    use ibcf_gpu_sim::GpuSpec;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("ibcf_log_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn header(sizes: &[usize]) -> SweepLogHeader {
        let space = ParamSpace::quick();
        let total = sizes.len() * space.len_per_n();
        SweepLogHeader {
            format: LOG_FORMAT.into(),
            version: LOG_VERSION,
            gpu: GpuSpec::p100().name,
            batch: 512,
            sizes: sizes.to_vec(),
            space,
            noise_sigma: 0.0,
            noise_seed: 0,
            shard: ShardSpec::whole(),
            total,
        }
    }

    #[test]
    fn crc_frame_round_trips_and_rejects_flips() {
        let json = r#"{"seq":7,"m":"x"}"#;
        let line = encode_line(json);
        assert_eq!(decode_line(&line).unwrap(), json);
        let mut bad = line.clone();
        bad.replace_range(9..10, "X");
        assert!(decode_line(&bad).unwrap_err().contains("mismatch"));
        assert!(decode_line("zz").unwrap_err().contains("checksum"));
    }

    #[test]
    fn shard_spec_parses_and_partitions() {
        let s = ShardSpec::parse("2/5").unwrap();
        assert_eq!((s.index, s.count), (2, 5));
        assert_eq!(s.to_string(), "2/5");
        assert!(ShardSpec::parse("5/5").is_err());
        assert!(ShardSpec::parse("1of4").is_err());
        assert!(ShardSpec::parse("0/0").is_err());
        // Every index owned by exactly one shard; owned_of counts agree.
        let total = 97;
        let shards: Vec<ShardSpec> = (0..5).map(|i| ShardSpec::new(i, 5).unwrap()).collect();
        let mut owned = 0;
        for s in &shards {
            let mine = (0..total).filter(|&q| s.owns(q)).count();
            assert_eq!(mine, s.owned_of(total), "{s}");
            owned += mine;
        }
        assert_eq!(owned, total);
        for q in 0..total {
            assert_eq!(shards.iter().filter(|s| s.owns(q)).count(), 1);
        }
    }

    #[test]
    fn write_read_round_trip_in_canonical_order() {
        let dir = tmpdir("roundtrip");
        let p = dir.join("a.log");
        std::fs::remove_file(&p).ok();
        let h = header(&[8]);
        let grid = grid_configs(&h.space, &h.sizes);
        let spec = GpuSpec::p100();
        let opts = SweepOptions::default();
        let mut w = SweepLogWriter::create(&p, &h, true).unwrap();
        // Append out of order; the dataset must come back in grid order.
        for &s in &[5usize, 0, 3] {
            w.append(s, &measure(&grid[s], opts.batch.min(512), &spec))
                .unwrap();
        }
        let log = SweepLog::read(&p, false).unwrap();
        assert_eq!(log.entries.len(), 3);
        assert!(log.dropped_tail.is_none());
        assert!(!log.is_complete());
        let ds = log.dataset();
        assert_eq!(ds.measurements[0].config, grid[0]);
        assert_eq!(ds.measurements[1].config, grid[3]);
        assert_eq!(ds.measurements[2].config, grid[5]);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn torn_tail_recovers_but_mid_file_corruption_is_fatal() {
        let dir = tmpdir("torn");
        let p = dir.join("b.log");
        std::fs::remove_file(&p).ok();
        let h = header(&[8]);
        let grid = grid_configs(&h.space, &h.sizes);
        let spec = GpuSpec::p100();
        let mut w = SweepLogWriter::create(&p, &h, true).unwrap();
        for (s, cfg) in grid.iter().enumerate().take(3) {
            w.append(s, &measure(cfg, h.batch, &spec)).unwrap();
        }
        drop(w);
        // Simulate a crash mid-append: a torn final line.
        let text = std::fs::read_to_string(&p).unwrap();
        std::fs::write(&p, format!("{text}deadbeef {{\"seq\":3")).unwrap();
        assert!(SweepLog::read(&p, false).is_err());
        let log = SweepLog::read(&p, true).unwrap();
        assert_eq!(log.entries.len(), 3);
        assert!(log.dropped_tail.is_some());
        // Corruption before the end is fatal even in recovery mode.
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines[2] = lines[2].replace(|c: char| c.is_ascii_digit(), "9");
        std::fs::write(&p, lines.join("\n")).unwrap();
        let err = SweepLog::read(&p, true).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn grid_mismatch_and_foreign_shard_entries_are_rejected() {
        let dir = tmpdir("grid");
        let p = dir.join("c.log");
        std::fs::remove_file(&p).ok();
        let h = header(&[8]);
        let grid = grid_configs(&h.space, &h.sizes);
        let spec = GpuSpec::p100();
        let mut w = SweepLogWriter::create(&p, &h, true).unwrap();
        // Entry whose config belongs to a different seq.
        w.append(1, &measure(&grid[0], h.batch, &spec)).unwrap();
        drop(w);
        let err = SweepLog::read(&p, true).unwrap_err().to_string();
        assert!(err.contains("disagrees with grid"), "{err}");
        // Entry outside the shard's slice.
        std::fs::remove_file(&p).ok();
        let mut h2 = header(&[8]);
        h2.shard = ShardSpec::new(0, 2).unwrap();
        let mut w = SweepLogWriter::create(&p, &h2, true).unwrap();
        w.append(1, &measure(&grid[1], h2.batch, &spec)).unwrap();
        drop(w);
        let err = SweepLog::read(&p, true).unwrap_err().to_string();
        assert!(err.contains("does not belong to shard"), "{err}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn duplicates_dedupe_but_conflicts_are_fatal() {
        let dir = tmpdir("dup");
        let p = dir.join("d.log");
        std::fs::remove_file(&p).ok();
        let h = header(&[8]);
        let grid = grid_configs(&h.space, &h.sizes);
        let spec = GpuSpec::p100();
        let m = measure(&grid[0], h.batch, &spec);
        let mut w = SweepLogWriter::create(&p, &h, true).unwrap();
        w.append(0, &m).unwrap();
        w.append(0, &m).unwrap();
        drop(w);
        let log = SweepLog::read(&p, false).unwrap();
        assert_eq!(log.entries.len(), 1);
        assert_eq!(log.duplicates, 1);
        // Same seq, different numbers: conflict.
        let mut w = SweepLogWriter::open_append(&p, true).unwrap();
        let mut m2 = m.clone();
        m2.gflops += 1.0;
        w.append(0, &m2).unwrap();
        drop(w);
        let err = SweepLog::read(&p, false).unwrap_err().to_string();
        assert!(err.contains("conflicting"), "{err}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn create_refuses_to_clobber() {
        let dir = tmpdir("clobber");
        let p = dir.join("e.log");
        std::fs::remove_file(&p).ok();
        let h = header(&[8]);
        SweepLogWriter::create(&p, &h, false).unwrap();
        assert!(SweepLogWriter::create(&p, &h, false).is_err());
        std::fs::remove_file(&p).ok();
    }
}
