//! The kernel tuning space (§II-D of the paper).

use ibcf_core::Looking;
use ibcf_kernels::{CachePref, KernelConfig, Unroll};
use serde::{Deserialize, Serialize};

/// A rectangular parameter space: the cross product of the listed values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamSpace {
    /// Tile sizes to sweep.
    pub nb: Vec<usize>,
    /// Looking orders to sweep.
    pub looking: Vec<Looking>,
    /// Chunking on/off.
    pub chunked: Vec<bool>,
    /// Chunk sizes (= thread-block sizes).
    pub chunk_size: Vec<usize>,
    /// Unrolling modes.
    pub unroll: Vec<Unroll>,
    /// Arithmetic modes (`false` = IEEE, `true` = fast-math).
    pub fast_math: Vec<bool>,
    /// Cache preferences.
    pub cache_pref: Vec<CachePref>,
}

impl ParamSpace {
    /// The paper's full space: `nb` 1–8, three looking orders, chunked or
    /// not, chunk sizes 32–512, partial/full unrolling, both arithmetic
    /// modes, both cache preferences.
    pub fn paper() -> Self {
        ParamSpace {
            nb: (1..=8).collect(),
            looking: Looking::ALL.to_vec(),
            chunked: vec![false, true],
            chunk_size: vec![32, 64, 128, 256, 512],
            unroll: Unroll::ALL.to_vec(),
            fast_math: vec![false, true],
            cache_pref: CachePref::ALL.to_vec(),
        }
    }

    /// A reduced space for quick runs and tests: `nb` ∈ {1, 2, 4, 8},
    /// chunk ∈ {32, 64, 256}; both arithmetic modes and cache preferences
    /// so every best-slice and the Table-I analysis stay meaningful.
    pub fn quick() -> Self {
        ParamSpace {
            nb: vec![1, 2, 4, 8],
            looking: Looking::ALL.to_vec(),
            chunked: vec![false, true],
            chunk_size: vec![32, 64, 256],
            unroll: Unroll::ALL.to_vec(),
            fast_math: vec![false, true],
            cache_pref: CachePref::ALL.to_vec(),
        }
    }

    /// Number of configurations per matrix size.
    pub fn len_per_n(&self) -> usize {
        self.nb.len()
            * self.looking.len()
            * self.chunked.len()
            * self.chunk_size.len()
            * self.unroll.len()
            * self.fast_math.len()
            * self.cache_pref.len()
    }

    /// Enumerates every configuration for matrix dimension `n`.
    pub fn configs(&self, n: usize) -> Vec<KernelConfig> {
        let mut out = Vec::with_capacity(self.len_per_n());
        for &nb in &self.nb {
            for &looking in &self.looking {
                for &chunked in &self.chunked {
                    for &chunk_size in &self.chunk_size {
                        for &unroll in &self.unroll {
                            for &fast_math in &self.fast_math {
                                for &cache_pref in &self.cache_pref {
                                    out.push(KernelConfig {
                                        n,
                                        nb,
                                        looking,
                                        chunked,
                                        chunk_size,
                                        unroll,
                                        fast_math,
                                        cache_pref,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// The index of `config` in the [`ParamSpace::configs`] enumeration of
    /// its own `n`, or `None` when any axis value lies outside the space.
    /// This is the per-size half of the canonical grid `seq` the sweep log
    /// tags entries with, so guided searches can share the exhaustive
    /// sweep's log format.
    pub fn index_of(&self, config: &ibcf_kernels::KernelConfig) -> Option<usize> {
        let pos_usize = |vals: &[usize], v: usize| vals.iter().position(|&x| x == v);
        let i_nb = pos_usize(&self.nb, config.nb)?;
        let i_lk = self.looking.iter().position(|&x| x == config.looking)?;
        let i_ch = self.chunked.iter().position(|&x| x == config.chunked)?;
        let i_cs = pos_usize(&self.chunk_size, config.chunk_size)?;
        let i_un = self.unroll.iter().position(|&x| x == config.unroll)?;
        let i_fm = self.fast_math.iter().position(|&x| x == config.fast_math)?;
        let i_cp = self
            .cache_pref
            .iter()
            .position(|&x| x == config.cache_pref)?;
        let mut idx = i_nb;
        idx = idx * self.looking.len() + i_lk;
        idx = idx * self.chunked.len() + i_ch;
        idx = idx * self.chunk_size.len() + i_cs;
        idx = idx * self.unroll.len() + i_un;
        idx = idx * self.fast_math.len() + i_fm;
        idx = idx * self.cache_pref.len() + i_cp;
        Some(idx)
    }

    /// `true` if every axis value of `config` is listed in this space.
    pub fn contains(&self, config: &ibcf_kernels::KernelConfig) -> bool {
        self.index_of(config).is_some()
    }

    /// The paper's default size sweep (8 sizes × the full space ≈ 15k
    /// configurations, matching the reported "over 14,000 measurements").
    pub fn paper_sizes() -> Vec<usize> {
        vec![8, 16, 24, 32, 40, 48, 56, 64]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_space_matches_reported_scale() {
        let s = ParamSpace::paper();
        assert_eq!(s.len_per_n(), 8 * 3 * 2 * 5 * 2 * 2 * 2);
        let total = s.len_per_n() * ParamSpace::paper_sizes().len();
        assert!(total > 14_000, "total {total}");
        assert_eq!(s.configs(24).len(), s.len_per_n());
    }

    #[test]
    fn all_generated_configs_are_valid() {
        let s = ParamSpace::paper();
        for c in s.configs(17) {
            c.validate().unwrap_or_else(|e| panic!("{c}: {e}"));
        }
    }

    #[test]
    fn index_of_inverts_configs_enumeration() {
        for space in [ParamSpace::paper(), ParamSpace::quick()] {
            for (i, c) in space.configs(17).iter().enumerate() {
                assert_eq!(space.index_of(c), Some(i), "{c}");
                assert!(space.contains(c));
            }
        }
    }

    #[test]
    fn index_of_rejects_out_of_space_configs() {
        let space = ParamSpace::quick();
        let mut c = KernelConfig::baseline(16);
        c.nb = 3; // quick space has nb ∈ {1, 2, 4, 8}
        assert_eq!(space.index_of(&c), None);
        assert!(!space.contains(&c));
    }

    #[test]
    fn quick_space_is_small() {
        let s = ParamSpace::quick();
        assert_eq!(s.len_per_n(), 4 * 3 * 2 * 3 * 2 * 2 * 2);
        assert!(s.len_per_n() < ParamSpace::paper().len_per_n());
    }
}
