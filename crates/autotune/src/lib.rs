//! Autotuning of the interleaved batch Cholesky kernels.
//!
//! Reproduces the paper's Section III/IV methodology: an **exhaustive**
//! sweep of the kernel configuration space (the paper reports over 14,000
//! successful runs), persisted as a dataset for post-mortem analysis, plus
//! best-configuration extraction sliced every way the figures need and a
//! guided-search extension (hill climbing) for comparison.

#![warn(missing_docs)]

pub mod analytic;
pub mod best;
pub mod dispatch;
pub mod heuristics;
pub mod log;
pub mod record;
pub mod runner;
pub mod select;
pub mod space;

pub use analytic::{best_config, rank_candidates, score_config, AnalyticScore};
pub use best::BestTable;
pub use dispatch::{DispatchTable, TableProvenance, TunedDispatch};
pub use log::{
    grid_configs, merge_logs, MergeReport, ShardSpec, SweepLog, SweepLogEntry, SweepLogHeader,
    SweepLogWriter,
};
pub use record::{Dataset, Measurement};
pub use runner::{
    measure, measure_cached, measure_noisy, measure_noisy_cached, sweep, sweep_sizes,
    sweep_sizes_logged, sweep_sizes_with, LoggedSweepReport, ProgressSink, SilentProgress,
    StderrProgress, SweepOptions, SweepReport,
};
pub use select::{
    run_search, run_sizes, run_sizes_logged, AnalyticSelector, Candidate, Evaluation,
    ExhaustiveSelector, HeuristicSelector, HillSelector, SelectCtx, SelectionReport, Selector,
    SelectorKind, SizeOutcome,
};
pub use space::ParamSpace;
