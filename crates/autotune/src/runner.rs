//! The exhaustive sweep runner.

use crate::log::{grid_configs, ShardSpec, SweepLog, SweepLogHeader, SweepLogWriter};
use crate::log::{LOG_FORMAT, LOG_VERSION};
use crate::record::{Dataset, Measurement};
use crate::space::ParamSpace;
use ibcf_core::flops::cholesky_flops_std;
use ibcf_gpu_sim::{CacheStats, GpuSpec, TraceCache};
use ibcf_kernels::{time_config, time_config_cached, CachePref, KernelConfig, PlanKey, Unroll};
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Sweep options.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Batch size of every launch (the paper uses 16,384).
    pub batch: usize,
    /// Report progress every this many configurations (0 = silent).
    pub progress_every: usize,
    /// Relative measurement noise (standard deviation of a multiplicative
    /// Gaussian-ish factor). Real autotuning corpora are noisy; setting
    /// this non-zero lets the analysis pipeline be exercised under
    /// realistic conditions. 0 = deterministic model output.
    pub noise_sigma: f64,
    /// Seed for the noise (per-configuration deterministic).
    pub noise_seed: u64,
    /// Share one [`TraceCache`] across the sweep so configurations with
    /// the same instruction stream reuse one trace plan. Timings are
    /// bitwise-identical either way; disabling exists for benchmarking
    /// the cache itself.
    pub share_plans: bool,
    /// fsync the sweep log after every appended measurement
    /// ([`sweep_sizes_logged`] only). On by default — that is the
    /// crash-safety guarantee; turning it off trades durability of the
    /// last few lines for append throughput.
    pub log_fsync: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            batch: 16_384,
            progress_every: 0,
            noise_sigma: 0.0,
            noise_seed: 0,
            share_plans: true,
            log_fsync: true,
        }
    }
}

/// Receives sweep progress callbacks (every `progress_every` completed
/// configurations). Implementations must be `Sync`: the sweep calls them
/// from parallel workers.
pub trait ProgressSink: Sync {
    /// `done` of `total` configurations have been measured.
    fn on_progress(&self, done: usize, total: usize);
}

/// Prints `swept k/total` lines to stderr — the CLI's historical behavior.
#[derive(Debug, Clone, Copy, Default)]
pub struct StderrProgress;

impl ProgressSink for StderrProgress {
    fn on_progress(&self, done: usize, total: usize) {
        eprintln!("  swept {done}/{total}");
    }
}

/// Discards progress callbacks (benches and tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct SilentProgress;

impl ProgressSink for SilentProgress {
    fn on_progress(&self, _done: usize, _total: usize) {}
}

/// A [`Dataset`] plus the sweep's observability surface: plan-cache
/// statistics and wall-clock throughput.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The measurements.
    pub dataset: Dataset,
    /// Plan-cache counters (all zero when `share_plans` was off).
    pub cache: CacheStats,
    /// Wall-clock seconds the sweep took.
    pub wall_s: f64,
}

impl SweepReport {
    /// Configurations measured per wall-clock second. Guarded: an empty
    /// sweep, a zero/negative wall clock, or a non-finite wall clock all
    /// report `0.0` rather than NaN or infinity.
    pub fn configs_per_sec(&self) -> f64 {
        rate(self.dataset.measurements.len(), self.wall_s)
    }
}

/// `count / wall_s`, guarded so degenerate inputs (empty, zero, negative,
/// or non-finite wall clock) yield `0.0` instead of NaN or infinity.
pub(crate) fn rate(count: usize, wall_s: f64) -> f64 {
    if count == 0 || !wall_s.is_finite() || wall_s <= 0.0 {
        0.0
    } else {
        count as f64 / wall_s
    }
}

/// A cheap deterministic standard-normal-ish sample (sum of uniforms) for
/// the measurement-noise model, keyed by configuration.
fn noise_factor(config: &KernelConfig, sigma: f64, seed: u64) -> f64 {
    if sigma == 0.0 {
        return 1.0;
    }
    let mut h = seed ^ 0x9E3779B97F4A7C15;
    let mut mix = |x: u64| {
        h ^= x.wrapping_mul(0xA24BAED4963EE407);
        h = h.rotate_left(23).wrapping_mul(0x9FB21C651E98DF25);
    };
    mix(config.n as u64);
    mix(config.nb as u64);
    mix(config.chunk_size as u64);
    mix(config.chunked as u64 + 2 * (config.fast_math as u64));
    mix(match config.looking {
        ibcf_core::Looking::Right => 11,
        ibcf_core::Looking::Left => 13,
        ibcf_core::Looking::Top => 17,
    });
    // Every tuning parameter must feed the hash: omitting one gives
    // configurations differing only in that parameter *identical* noise,
    // which biases exactly the per-parameter best-slice comparisons the
    // analysis rests on.
    mix(match config.unroll {
        Unroll::Partial => 19,
        Unroll::Full => 23,
    });
    mix(match config.cache_pref {
        CachePref::L1 => 29,
        CachePref::Shared => 31,
    });
    // Irwin-Hall(4) centered: mean 0, variance 1/3; scale to unit-ish.
    let mut z = 0.0f64;
    let mut state = h;
    for _ in 0..4 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        z += (state >> 40) as f64 / (1u64 << 24) as f64 - 0.5;
    }
    (1.0 + sigma * z * 1.732).max(0.05)
}

/// Measures one configuration (deterministic model output).
pub fn measure(config: &KernelConfig, batch: usize, spec: &GpuSpec) -> Measurement {
    measure_noisy(config, batch, spec, 0.0, 0)
}

/// [`measure`] through a shared plan cache; bitwise-identical output.
pub fn measure_cached(
    config: &KernelConfig,
    batch: usize,
    spec: &GpuSpec,
    cache: &TraceCache<PlanKey>,
) -> Measurement {
    measure_noisy_cached(config, batch, spec, 0.0, 0, cache)
}

/// Measures one configuration with the multiplicative noise model.
pub fn measure_noisy(
    config: &KernelConfig,
    batch: usize,
    spec: &GpuSpec,
    noise_sigma: f64,
    noise_seed: u64,
) -> Measurement {
    let t = time_config(config, batch, spec);
    finish_measurement(config, batch, t, noise_sigma, noise_seed)
}

/// [`measure_noisy`] through a shared plan cache; bitwise-identical output.
pub fn measure_noisy_cached(
    config: &KernelConfig,
    batch: usize,
    spec: &GpuSpec,
    noise_sigma: f64,
    noise_seed: u64,
    cache: &TraceCache<PlanKey>,
) -> Measurement {
    let t = time_config_cached(config, batch, spec, cache);
    finish_measurement(config, batch, t, noise_sigma, noise_seed)
}

fn finish_measurement(
    config: &KernelConfig,
    batch: usize,
    t: ibcf_gpu_sim::KernelTiming,
    noise_sigma: f64,
    noise_seed: u64,
) -> Measurement {
    let flops = cholesky_flops_std(config.n) * batch as f64;
    let f = noise_factor(config, noise_sigma, noise_seed);
    Measurement {
        config: *config,
        batch,
        gflops: t.gflops(flops) * f,
        time_s: t.time_s / f,
        bottleneck: t.bottleneck,
        row_hit_rate: t.row_hit_rate,
        occupancy: t.occupancy.occupancy,
        dram_bytes: t.dram_bytes,
    }
}

/// Exhaustively sweeps `space` at one matrix dimension.
///
/// # Examples
///
/// ```
/// use ibcf_autotune::{sweep, ParamSpace, SweepOptions};
/// use ibcf_gpu_sim::GpuSpec;
///
/// let ds = sweep(
///     &ParamSpace::quick(),
///     8,
///     &GpuSpec::p100(),
///     &SweepOptions { batch: 1024, ..Default::default() },
/// );
/// assert_eq!(ds.measurements.len(), ParamSpace::quick().len_per_n());
/// ```
pub fn sweep(space: &ParamSpace, n: usize, spec: &GpuSpec, opts: &SweepOptions) -> Dataset {
    sweep_sizes(space, &[n], spec, opts)
}

/// Exhaustively sweeps `space` across several matrix dimensions, in
/// parallel (rayon) over configurations. Progress goes to stderr
/// ([`StderrProgress`]); use [`sweep_sizes_with`] for a custom sink or the
/// cache statistics.
pub fn sweep_sizes(
    space: &ParamSpace,
    sizes: &[usize],
    spec: &GpuSpec,
    opts: &SweepOptions,
) -> Dataset {
    sweep_sizes_with(space, sizes, spec, opts, &StderrProgress).dataset
}

/// [`sweep_sizes`] with an explicit [`ProgressSink`], returning the full
/// [`SweepReport`]. All sweep workers share one [`TraceCache`], so the
/// warp trace and register-reuse/coalescing passes run once per distinct
/// instruction stream instead of once per configuration.
pub fn sweep_sizes_with(
    space: &ParamSpace,
    sizes: &[usize],
    spec: &GpuSpec,
    opts: &SweepOptions,
    sink: &dyn ProgressSink,
) -> SweepReport {
    let all = grid_configs(space, sizes);
    let done = AtomicUsize::new(0);
    let total = all.len();
    let cache: TraceCache<PlanKey> = TraceCache::default();
    let start = Instant::now();
    let measurements: Vec<Measurement> = all
        .par_iter()
        .map(|config| {
            let m = measure_opts(config, spec, opts, &cache);
            if opts.progress_every > 0 {
                let k = done.fetch_add(1, Ordering::Relaxed) + 1;
                if k.is_multiple_of(opts.progress_every) {
                    sink.on_progress(k, total);
                }
            }
            m
        })
        .collect();
    let wall_s = start.elapsed().as_secs_f64();
    SweepReport {
        dataset: Dataset {
            gpu: spec.name.clone(),
            batch: opts.batch,
            measurements,
        },
        cache: cache.stats(),
        wall_s,
    }
}

/// One measurement under the sweep's options (noise model, shared cache).
pub(crate) fn measure_opts(
    config: &KernelConfig,
    spec: &GpuSpec,
    opts: &SweepOptions,
    cache: &TraceCache<PlanKey>,
) -> Measurement {
    if opts.share_plans {
        measure_noisy_cached(
            config,
            opts.batch,
            spec,
            opts.noise_sigma,
            opts.noise_seed,
            cache,
        )
    } else {
        measure_noisy(config, opts.batch, spec, opts.noise_sigma, opts.noise_seed)
    }
}

/// A [`SweepReport`] plus what the crash-safe log contributed: how much
/// of the sweep was resumed from disk vs measured this run.
#[derive(Debug, Clone)]
pub struct LoggedSweepReport {
    /// Dataset (canonical grid order), cache counters, wall clock.
    pub report: SweepReport,
    /// Measurements recovered from an existing log (skipped this run).
    pub resumed: usize,
    /// Measurements performed (and appended) this run.
    pub measured: usize,
    /// `Some(reason)` if a torn final log line was dropped on recovery.
    pub dropped_tail: Option<String>,
    /// The shard of the grid this run covered.
    pub shard: ShardSpec,
}

impl LoggedSweepReport {
    /// Freshly measured configurations per wall-clock second. Guarded like
    /// [`SweepReport::configs_per_sec`]: a fully resumed run (nothing
    /// measured) or a degenerate wall clock reports `0.0`, never NaN or
    /// infinity.
    pub fn measured_per_sec(&self) -> f64 {
        rate(self.measured, self.report.wall_s)
    }
}

/// [`sweep_sizes_with`] made crash-safe and resumable: every completed
/// measurement is appended (fsync'd, self-validating) to the log at
/// `log_path` the moment it finishes.
///
/// If the log already exists it must describe the same sweep (GPU,
/// batch, sizes, space, noise, shard — anything else is an error); its
/// measurements are loaded, already-measured configurations are skipped,
/// and only the remainder runs. Because the model is deterministic, an
/// interrupted-and-resumed sweep produces a dataset bitwise-identical to
/// an uninterrupted one, in the same canonical grid order.
///
/// `shard` restricts this run to its deterministic slice of the grid
/// (see [`ShardSpec`]); shard logs are reassembled with
/// [`crate::merge_logs`]. Pass [`ShardSpec::whole`] for an unsharded
/// sweep.
pub fn sweep_sizes_logged(
    space: &ParamSpace,
    sizes: &[usize],
    spec: &GpuSpec,
    opts: &SweepOptions,
    sink: &dyn ProgressSink,
    log_path: &Path,
    shard: ShardSpec,
) -> std::io::Result<LoggedSweepReport> {
    let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let grid = grid_configs(space, sizes);
    let header = SweepLogHeader {
        format: LOG_FORMAT.into(),
        version: LOG_VERSION,
        gpu: spec.name.clone(),
        batch: opts.batch,
        sizes: sizes.to_vec(),
        space: space.clone(),
        noise_sigma: opts.noise_sigma,
        noise_seed: opts.noise_seed,
        shard,
        total: grid.len(),
    };
    let mut done: BTreeMap<usize, Measurement> = BTreeMap::new();
    let mut dropped_tail = None;
    let writer = if log_path.exists() {
        let log = SweepLog::read(log_path, true)?;
        header.compatible_with(&log.header).map_err(|e| {
            invalid(format!(
                "{}: log belongs to a different sweep: {e}",
                log_path.display()
            ))
        })?;
        if log.header.shard != shard {
            return Err(invalid(format!(
                "{}: log covers shard {}, this run wants {shard}",
                log_path.display(),
                log.header.shard
            )));
        }
        dropped_tail = log.dropped_tail.clone();
        if dropped_tail.is_some() {
            // Cut the torn fragment off before appending, or the next
            // line would be glued to it and corrupt the log mid-file.
            let f = std::fs::OpenOptions::new().write(true).open(log_path)?;
            f.set_len(log.valid_len)?;
            f.sync_data()?;
        }
        for e in log.entries {
            done.insert(e.seq, e.m);
        }
        SweepLogWriter::open_append(log_path, opts.log_fsync)?
    } else {
        SweepLogWriter::create(log_path, &header, opts.log_fsync)?
    };
    let resumed = done.len();
    let todo: Vec<usize> = (0..grid.len())
        .filter(|&s| shard.owns(s) && !done.contains_key(&s))
        .collect();
    let total_todo = todo.len();
    let cache: TraceCache<PlanKey> = TraceCache::default();
    let counter = AtomicUsize::new(0);
    let writer = Mutex::new(writer);
    let write_err: Mutex<Option<std::io::Error>> = Mutex::new(None);
    let start = Instant::now();
    let fresh: Vec<(usize, Measurement)> = todo
        .par_iter()
        .map(|&s| {
            let m = measure_opts(&grid[s], spec, opts, &cache);
            {
                let mut w = writer.lock().expect("log writer lock");
                if let Err(e) = w.append(s, &m) {
                    let mut we = write_err.lock().expect("error slot lock");
                    we.get_or_insert(e);
                }
            }
            if opts.progress_every > 0 {
                let k = counter.fetch_add(1, Ordering::Relaxed) + 1;
                if k.is_multiple_of(opts.progress_every) {
                    sink.on_progress(k, total_todo);
                }
            }
            (s, m)
        })
        .collect();
    let wall_s = start.elapsed().as_secs_f64();
    if let Some(e) = write_err.into_inner().expect("error slot lock") {
        return Err(e);
    }
    done.extend(fresh);
    Ok(LoggedSweepReport {
        report: SweepReport {
            dataset: Dataset {
                gpu: spec.name.clone(),
                batch: opts.batch,
                measurements: done.into_values().collect(),
            },
            cache: cache.stats(),
            wall_s,
        },
        resumed,
        measured: total_todo,
        dropped_tail,
        shard,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_full_grid() {
        let space = ParamSpace::quick();
        let spec = GpuSpec::p100();
        let ds = sweep(
            &space,
            12,
            &spec,
            &SweepOptions {
                batch: 2048,
                ..Default::default()
            },
        );
        assert_eq!(ds.measurements.len(), space.len_per_n());
        assert!(ds
            .measurements
            .iter()
            .all(|m| m.gflops > 0.0 && m.time_s > 0.0));
        assert_eq!(ds.sizes(), vec![12]);
    }

    #[test]
    fn sweep_is_deterministic() {
        let space = ParamSpace::quick();
        let spec = GpuSpec::p100();
        let opts = SweepOptions {
            batch: 1024,
            ..Default::default()
        };
        let a = sweep(&space, 8, &spec, &opts);
        let b = sweep(&space, 8, &spec, &opts);
        for (x, y) in a.measurements.iter().zip(&b.measurements) {
            assert_eq!(x.config, y.config);
            assert_eq!(x.gflops, y.gflops);
        }
    }

    #[test]
    fn noise_perturbs_but_preserves_structure() {
        let space = ParamSpace::quick();
        let spec = GpuSpec::p100();
        let clean = sweep(
            &space,
            16,
            &spec,
            &SweepOptions {
                batch: 2048,
                ..Default::default()
            },
        );
        let noisy = sweep(
            &space,
            16,
            &spec,
            &SweepOptions {
                batch: 2048,
                noise_sigma: 0.05,
                noise_seed: 9,
                ..Default::default()
            },
        );
        let mut rel = Vec::new();
        for (c, n) in clean.measurements.iter().zip(&noisy.measurements) {
            assert_eq!(c.config, n.config);
            rel.push((n.gflops / c.gflops - 1.0).abs());
        }
        let mean_dev = rel.iter().sum::<f64>() / rel.len() as f64;
        assert!(
            mean_dev > 0.005 && mean_dev < 0.2,
            "mean deviation {mean_dev}"
        );
        // Noise must be reproducible.
        let noisy2 = sweep(
            &space,
            16,
            &spec,
            &SweepOptions {
                batch: 2048,
                noise_sigma: 0.05,
                noise_seed: 9,
                ..Default::default()
            },
        );
        for (a, b) in noisy.measurements.iter().zip(&noisy2.measurements) {
            assert_eq!(a.gflops, b.gflops);
        }
    }

    #[test]
    fn noise_is_decorrelated_across_every_parameter() {
        // Configurations differing only in unroll (or only in cache_pref)
        // must draw *distinct* noise factors — correlated noise biases the
        // best-by-unroll / best-by-cache comparisons (Fig. 19 slices).
        let spec = GpuSpec::p100();
        let batch = 2048;
        let sigma = 0.05;
        let factor = |c: &KernelConfig| {
            let clean = measure(c, batch, &spec);
            let noisy = measure_noisy(c, batch, &spec, sigma, 42);
            noisy.gflops / clean.gflops
        };
        let base = KernelConfig::baseline(16);
        let full = KernelConfig {
            unroll: ibcf_kernels::Unroll::Full,
            ..base
        };
        assert_ne!(factor(&base), factor(&full), "unroll variants share noise");
        let shared = KernelConfig {
            cache_pref: ibcf_kernels::CachePref::Shared,
            ..base
        };
        assert_ne!(
            factor(&base),
            factor(&shared),
            "cache_pref variants share noise"
        );
    }

    #[test]
    fn shared_cache_is_bitwise_identical_to_uncached() {
        let space = ParamSpace::quick();
        let spec = GpuSpec::p100();
        let cached = sweep_sizes_with(
            &space,
            &[8, 16, 32],
            &spec,
            &SweepOptions {
                batch: 1024,
                ..Default::default()
            },
            &SilentProgress,
        );
        let uncached = sweep_sizes_with(
            &space,
            &[8, 16, 32],
            &spec,
            &SweepOptions {
                batch: 1024,
                share_plans: false,
                ..Default::default()
            },
            &SilentProgress,
        );
        assert_eq!(
            cached.dataset.measurements.len(),
            uncached.dataset.measurements.len()
        );
        for (a, b) in cached
            .dataset
            .measurements
            .iter()
            .zip(&uncached.dataset.measurements)
        {
            assert_eq!(a.config, b.config);
            assert_eq!(a.gflops, b.gflops, "{}", a.config);
            assert_eq!(a.time_s, b.time_s, "{}", a.config);
        }
        // The quick space varies fast_math (and more) per structural class,
        // so the cache must have been reused heavily.
        assert!(
            cached.cache.hit_rate() > 0.5,
            "hit rate {}",
            cached.cache.hit_rate()
        );
        assert_eq!(
            cached.cache.lookups() as usize,
            cached.dataset.measurements.len()
        );
        assert_eq!(uncached.cache.lookups(), 0);
    }

    #[test]
    fn progress_sink_receives_gated_callbacks() {
        use std::sync::atomic::AtomicUsize;

        struct Counting(AtomicUsize);
        impl ProgressSink for Counting {
            fn on_progress(&self, _done: usize, total: usize) {
                assert!(total > 0);
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }

        let space = ParamSpace::quick();
        let spec = GpuSpec::p100();
        let sink = Counting(AtomicUsize::new(0));
        let report = sweep_sizes_with(
            &space,
            &[8],
            &spec,
            &SweepOptions {
                batch: 512,
                progress_every: 10,
                ..Default::default()
            },
            &sink,
        );
        let expect = report.dataset.measurements.len() / 10;
        assert_eq!(sink.0.load(Ordering::Relaxed), expect);
        assert!(report.wall_s >= 0.0);
        assert!(report.configs_per_sec() > 0.0);
    }

    #[test]
    fn multi_size_sweep_covers_all_sizes() {
        let space = ParamSpace::quick();
        let spec = GpuSpec::p100();
        let ds = sweep_sizes(
            &space,
            &[4, 8],
            &spec,
            &SweepOptions {
                batch: 512,
                ..Default::default()
            },
        );
        assert_eq!(ds.sizes(), vec![4, 8]);
        assert_eq!(ds.measurements.len(), 2 * space.len_per_n());
    }
}
